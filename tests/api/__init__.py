"""Tests for the repro.api simulation service."""

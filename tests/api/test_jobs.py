"""JobManager: dedup, backpressure, events, ledger ingestion."""

import threading
import time

import pytest

from repro.api.jobs import JobManager, result_summary
from repro.errors import ApiError, JobQueueFullError
from repro.exec.cache import ResultCache
from repro.exec.runner import execute_spec
from repro.exec.spec import ExperimentSpec
from repro.simulation.network import NetworkConfig


def make_spec(p=0.5, seed=11, n_cycles=600, label=""):
    return ExperimentSpec(
        config=NetworkConfig(
            k=2, n_stages=2, p=p, topology="random", width=16, seed=seed
        ),
        n_cycles=n_cycles,
        label=label,
    )


def wait_done(manager, digest, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = manager.get(digest)
        if job is not None and job.done:
            return job
        time.sleep(0.01)
    raise AssertionError(f"job {digest[:12]} never finished")


class TestSubmit:
    def test_submit_runs_and_summarises(self, tmp_path):
        manager = JobManager(executors=1, cache=ResultCache(tmp_path / "cache"))
        try:
            spec = make_spec(label="one")
            job, enqueued = manager.submit(spec)
            assert enqueued and job.digest == spec.digest
            job = wait_done(manager, spec.digest)
            assert job.status == "done" and job.outcome_status == "completed"
            assert manager.executions == 1
            doc = job.to_jsonable()
            assert doc["result"]["n_cycles"] == 600
            assert doc["result"]["completed"] > 0
            assert len(doc["result"]["stage_means"]) == 2
        finally:
            manager.stop()

    def test_identical_submissions_dedupe_onto_one_job(self, tmp_path):
        manager = JobManager(executors=2, cache=ResultCache(tmp_path / "cache"))
        try:
            spec = make_spec()
            first, enq1 = manager.submit(spec)
            second, enq2 = manager.submit(spec)
            assert first is second
            assert enq1 and not enq2
            wait_done(manager, spec.digest)
            third, enq3 = manager.submit(spec)
            assert third is first and not enq3
            assert manager.executions == 1
        finally:
            manager.stop()

    def test_disk_cache_hit_creates_finished_job(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = make_spec()
        cache.put(spec, execute_spec(spec))
        manager = JobManager(executors=1, cache=cache)
        try:
            job, enqueued = manager.submit(spec)
            assert not enqueued
            assert job.status == "done" and job.outcome_status == "cached"
            assert manager.executions == 0
            assert [e["event"] for e in job.events] == ["done"]
        finally:
            manager.stop()

    def test_failed_digest_can_be_resubmitted(self, tmp_path):
        calls = []

        def flaky(spec):
            calls.append(spec.digest)
            if len(calls) < 3:
                raise RuntimeError("injected")
            return execute_spec(spec)

        manager = JobManager(
            executors=1,
            retries=0,
            cache=ResultCache(tmp_path / "cache"),
            task_fn=flaky,
        )
        try:
            spec = make_spec()
            manager.submit(spec)
            job = wait_done(manager, spec.digest)
            assert job.status == "failed" and "injected" in (job.error or "")
            again, enqueued = manager.submit(spec)
            assert enqueued and again is job
            job = wait_done(manager, spec.digest)
            # second attempt also fails (len(calls) == 2), third succeeds
            _, enqueued = manager.submit(spec)
            assert enqueued
            job = wait_done(manager, spec.digest)
            assert job.status == "done"
            assert manager.executions == 1
        finally:
            manager.stop()

    def test_queue_overflow_raises_429_error(self, tmp_path):
        gate = threading.Event()

        def slow(spec):
            gate.wait(10.0)
            return execute_spec(spec)

        manager = JobManager(
            executors=1,
            max_queue=2,
            cache=ResultCache(tmp_path / "cache"),
            task_fn=slow,
        )
        try:
            # 1 running + 2 queued fills the pipeline; the 4th submission
            # must be rejected without registering anything
            specs = [make_spec(seed=100 + i) for i in range(4)]
            manager.submit(specs[0])
            deadline = time.monotonic() + 5.0
            while manager.stats()["queue_depth"] > 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            manager.submit(specs[1])
            manager.submit(specs[2])
            with pytest.raises(JobQueueFullError, match="queue full"):
                manager.submit(specs[3])
            assert manager.get(specs[3].digest) is None
        finally:
            gate.set()
            manager.stop()

    def test_stopped_manager_rejects_submissions(self, tmp_path):
        manager = JobManager(executors=1, cache=ResultCache(tmp_path / "cache"))
        manager.stop()
        with pytest.raises(ApiError, match="stopped"):
            manager.submit(make_spec())


class TestEvents:
    def test_event_log_shape(self, tmp_path):
        manager = JobManager(executors=1, cache=ResultCache(tmp_path / "cache"))
        try:
            spec = make_spec(label="evts")
            manager.submit(spec)
            wait_done(manager, spec.digest)
            events, done = manager.wait_events(spec.digest, 0, timeout=1.0)
            assert done
            assert [e["event"] for e in events] == [
                "queued", "running", "completed", "done",
            ]
            assert events[-1]["status"] == "completed"
            assert all(e["label"] == "evts" for e in events)
        finally:
            manager.stop()

    def test_wait_events_cursor_and_timeout(self, tmp_path):
        manager = JobManager(executors=1, cache=ResultCache(tmp_path / "cache"))
        try:
            spec = make_spec()
            manager.submit(spec)
            wait_done(manager, spec.digest)
            all_events, _ = manager.wait_events(spec.digest, 0, timeout=1.0)
            tail, done = manager.wait_events(spec.digest, 2, timeout=1.0)
            assert done and tail == all_events[2:]
            none_left, done = manager.wait_events(
                spec.digest, len(all_events), timeout=0.05
            )
            assert done and none_left == []
        finally:
            manager.stop()

    def test_unknown_digest_raises(self, tmp_path):
        manager = JobManager(executors=1, cache=ResultCache(tmp_path / "cache"))
        try:
            with pytest.raises(ApiError, match="unknown run"):
                manager.wait_events("0" * 64, 0, timeout=0.05)
        finally:
            manager.stop()


class TestStatsAndLedger:
    def test_stats_counts(self, tmp_path):
        manager = JobManager(executors=1, cache=ResultCache(tmp_path / "cache"))
        try:
            spec = make_spec()
            manager.submit(spec)
            wait_done(manager, spec.digest)
            stats = manager.stats()
            assert stats["jobs"]["done"] == 1
            assert stats["n_jobs"] == 1
            assert stats["executions"] == 1
            assert stats["max_queue"] == 64
            assert stats["cache"]["entries"] == 1
            assert stats["ledger"] is False
        finally:
            manager.stop()

    def test_ledger_ingestion(self, tmp_path):
        from repro.expdb import ExperimentDB

        db_path = tmp_path / "ledger.sqlite"
        manager = JobManager(
            executors=1, cache=ResultCache(tmp_path / "cache"), db=db_path
        )
        try:
            spec = make_spec(label="led")
            manager.submit(spec)
            wait_done(manager, spec.digest)
        finally:
            manager.stop()
        rows = ExperimentDB(db_path).runs()
        assert len(rows) == 1
        assert rows[0]["digest"] == spec.digest
        assert rows[0]["source"] == "api"
        assert rows[0]["status"] == "completed"


class TestResultSummary:
    def test_summary_fields(self):
        spec = make_spec()
        summary = result_summary(execute_spec(spec))
        assert summary["n_cycles"] == 600
        assert summary["tracked_messages"] > 0
        assert summary["mean_total_wait"] is not None
        assert len(summary["stage_means"]) == 2
        assert len(summary["stage_variances"]) == 2

"""End-to-end HTTP service tests: concurrency, SSE, routes, errors.

The acceptance scenario of the service PR lives here: a server on an
ephemeral port receives the same spec from 8 concurrent threads and
must run the engine exactly once while every client gets the same
digest-keyed result.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import ApiClient, JobManager, make_server, start_in_thread
from repro.api.client import parse_sse
from repro.api.openapi import openapi_document
from repro.errors import ApiError
from repro.exec.cache import ResultCache
from repro.exec.runner import execute_spec
from repro.exec.spec import ExperimentSpec
from repro.simulation.network import NetworkConfig


def make_spec_doc(p=0.5, seed=21, n_cycles=600, label="e2e"):
    spec = ExperimentSpec(
        config=NetworkConfig(
            k=2, n_stages=2, p=p, topology="random", width=16, seed=seed
        ),
        n_cycles=n_cycles,
        label=label,
    )
    return spec, {"spec": spec.to_jsonable()}


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port, with an execution counter."""
    counted = []

    def counting_task(spec):
        counted.append(spec.digest)
        return execute_spec(spec)

    manager = JobManager(
        executors=4, cache=ResultCache(tmp_path / "cache"), task_fn=counting_task
    )
    server = make_server(port=0, manager=manager, quiet=True)
    start_in_thread(server)
    client = ApiClient(f"http://127.0.0.1:{server.port}", timeout=60.0)
    try:
        yield client, manager, counted
    finally:
        server.shutdown()
        server.server_close()


class TestConcurrentDedup:
    def test_eight_concurrent_identical_submissions_run_once(self, service):
        client, manager, counted = service
        _, payload = make_spec_doc()
        responses = [None] * 8
        barrier = threading.Barrier(8)

        def submit(i):
            barrier.wait()
            responses[i] = client.submit(payload)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        assert all(r is not None for r in responses)
        digests = {r["runs"][0]["digest"] for r in responses}
        assert len(digests) == 1
        digest = digests.pop()
        # exactly one submission scheduled work; the other seven deduped
        assert sum(1 for r in responses if not r["runs"][0]["cached"]) == 1

        finals = [client.wait(digest, timeout=60) for _ in range(8)]
        assert all(doc["status"] == "done" for doc in finals)
        assert all(doc["digest"] == digest for doc in finals)
        assert {json.dumps(doc["result"], sort_keys=True) for doc in finals}
        assert len({json.dumps(doc["result"], sort_keys=True) for doc in finals}) == 1
        # the engine ran exactly once for all eight clients
        assert counted.count(digest) == 1
        assert manager.executions == 1


class TestSse:
    def test_event_stream_is_well_formed(self, service):
        client, _, _ = service
        _, payload = make_spec_doc(seed=22, label="sse")
        digest = client.submit(payload)["runs"][0]["digest"]
        client.wait(digest, timeout=60)
        events = client.events(digest)
        names = [e["event"] for e in events]
        assert names == ["queued", "running", "completed", "done"]
        for event in events:
            assert isinstance(event["data"], dict)
            assert event["data"]["event"] == event["event"]
            assert event["data"]["digest"] == digest[:12]
        assert events[-1]["data"]["status"] == "completed"

    def test_sse_replays_for_finished_jobs(self, service):
        client, _, _ = service
        _, payload = make_spec_doc(seed=23)
        digest = client.submit(payload)["runs"][0]["digest"]
        client.wait(digest, timeout=60)
        first = client.events(digest)
        second = client.events(digest)
        assert [e["event"] for e in first] == [e["event"] for e in second]

    def test_parse_sse_skips_keepalives(self):
        raw = (
            ": keepalive\n\n"
            "event: queued\ndata: {\"event\": \"queued\"}\n\n"
            ": keepalive\n\n"
            "event: done\ndata: {\"event\": \"done\"}\n\n"
        )
        events = list(parse_sse(iter(raw.splitlines(keepends=True))))
        assert [e["event"] for e in events] == ["queued", "done"]


class TestRoutes:
    def test_healthz_and_stats(self, service):
        client, _, _ = service
        assert client.healthz()["status"] == "ok"
        stats = client.stats()
        assert "jobs" in stats and "executions" in stats

    def test_scenarios_catalogue(self, service):
        client, _, _ = service
        doc = client.scenarios()
        names = [s["name"] for s in doc["sets"]]
        assert "smoke" in names
        smoke = next(s for s in doc["sets"] if s["name"] == "smoke")
        assert smoke["n_scenarios"] == len(smoke["scenarios"])
        assert all(len(s["digest"]) == 64 for s in smoke["scenarios"])

    def test_openapi_served_and_covers_every_route(self, service):
        client, _, _ = service
        doc = client.openapi()
        assert doc == openapi_document()
        assert doc["openapi"].startswith("3.0")
        assert set(doc["paths"]) == {
            "/v1/healthz",
            "/v1/stats",
            "/v1/scenarios",
            "/v1/openapi.json",
            "/v1/runs",
            "/v1/runs/{digest}",
            "/v1/runs/{digest}/events",
        }

    def test_scenario_submission_by_name(self, service):
        client, _, _ = service
        doc = client.submit(
            {"scenario": "smoke", "label": "load-p0.2", "n_cycles": 1200}
        )
        assert doc["count"] == 1
        final = client.wait(doc["runs"][0]["digest"], timeout=60)
        assert final["status"] == "done"


class TestErrors:
    def test_unknown_run_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ApiError, match="HTTP 404"):
            client.run("0" * 64)
        with pytest.raises(ApiError, match="HTTP 404"):
            client.events("0" * 64)

    def test_unknown_scenario_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ApiError, match="HTTP 404"):
            client.submit({"scenario": "no-such-set"})
        with pytest.raises(ApiError, match="HTTP 404"):
            client.submit({"scenario": "smoke", "label": "no-such-label"})

    def test_malformed_submissions_are_400(self, service):
        client, _, _ = service
        for payload in (
            {},
            {"spec": {"config": {}}, "scenario": "smoke"},
            {"spec": "not a dict"},
            {"scenario": "smoke", "n_cycles": -5},
            {"spec": {"no_config": True}},
        ):
            with pytest.raises(ApiError, match="HTTP 400"):
                client.submit(payload)

    def test_invalid_json_body_is_400(self, service):
        client, _, _ = service
        request = urllib.request.Request(
            f"{client.base_url}/v1/runs",
            data=b"{nope",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_unknown_route_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ApiError, match="HTTP 404"):
            client._request("GET", "/v1/definitely-not-a-route")

    def test_queue_overflow_is_429(self, tmp_path):
        gate = threading.Event()

        def slow(spec):
            gate.wait(10.0)
            return execute_spec(spec)

        manager = JobManager(
            executors=1,
            max_queue=1,
            cache=ResultCache(tmp_path / "cache"),
            task_fn=slow,
        )
        server = make_server(port=0, manager=manager, quiet=True)
        start_in_thread(server)
        client = ApiClient(f"http://127.0.0.1:{server.port}", timeout=30.0)
        try:
            docs = [make_spec_doc(seed=200 + i)[1] for i in range(3)]
            client.submit(docs[0])
            # wait until the executor has picked job 0 up, freeing the queue
            deadline_stats = [None]
            for _ in range(500):
                deadline_stats[0] = client.stats()
                if deadline_stats[0]["queue_depth"] == 0:
                    break
                threading.Event().wait(0.01)
            client.submit(docs[1])
            with pytest.raises(ApiError, match="HTTP 429"):
                client.submit(docs[2])
        finally:
            gate.set()
            server.shutdown()
            server.server_close()

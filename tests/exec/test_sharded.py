"""Sharded streamed execution: digests, cache reuse, bit-identity."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec import (
    ExperimentSpec,
    ResultCache,
    estimate_replica_bytes,
    plan_shard_size,
    run_many,
    stream_totals,
)
from repro.exec.spec import (
    STREAM_MARKER,
    group_for_stream,
    group_for_vectorize,
    resolve_seeds,
)
from repro.simulation.network import NetworkConfig

N_CYCLES = 300
WARMUP = 40


def make_specs(n=8, *, track_limit=0, **kw):
    base = dict(k=2, n_stages=3, p=0.5)
    base.update(kw)
    return [
        ExperimentSpec(
            config=NetworkConfig(seed=50 + i, track_limit=track_limit, **base),
            n_cycles=N_CYCLES,
            warmup=WARMUP,
            label=f"r{i}",
        )
        for i in range(n)
    ]


def assert_batches_identical(a, b):
    for x, y in zip(a.results(), b.results(), strict=True):
        assert np.array_equal(x.stage_means, y.stage_means)
        assert np.array_equal(x.stage_variances, y.stage_variances)
        assert x.injected == y.injected
        assert x.completed == y.completed
        assert x.totals_summary == y.totals_summary


class TestStreamMarker:
    def test_marker_enters_digest_without_batch_info(self):
        specs = resolve_seeds(make_specs(2))
        marked, _ = group_for_stream(specs)
        assert marked[0].batch_marker == STREAM_MARKER
        assert marked[0].identity()["engine"] == {"kind": "stream"}
        # serial digest differs (distinct replication design)...
        assert marked[0].digest != specs[0].digest
        # ...and so does the replica-batched digest for the same batch
        batched, _ = group_for_vectorize(specs)
        assert marked[0].digest != batched[0].digest

    def test_singletons_are_marked_too(self):
        specs = resolve_seeds(make_specs(1))
        marked, groups = group_for_stream(specs)
        assert marked[0].batch_marker == STREAM_MARKER
        assert groups == [([0], True)]

    def test_digest_is_shard_configuration_free(self):
        """The same spec carries the same digest in any stream batch."""
        specs = resolve_seeds(make_specs(6))
        alone, _ = group_for_stream([specs[2]])
        together, _ = group_for_stream(specs)
        assert alone[0].digest == together[2].digest

    def test_finite_buffers_refused(self):
        spec = ExperimentSpec(
            config=NetworkConfig(
                k=2, n_stages=2, p=0.4, seed=1, buffer_capacity=4
            ),
            n_cycles=100,
        )
        with pytest.raises(ExecutionError, match="finite"):
            group_for_stream([spec])

    def test_marked_specs_refused(self):
        specs = resolve_seeds(make_specs(2))
        marked, _ = group_for_stream(specs)
        with pytest.raises(ExecutionError, match="already"):
            group_for_stream(marked)


class TestShardedRunMany:
    def test_bit_identical_across_shard_budgets_and_workers(self, tmp_path):
        specs = make_specs()
        mono = run_many(
            specs, stream=True, shard_mem=1 << 30
        ).raise_on_failure()
        tiny = run_many(
            specs, stream=True, shard_mem=200_000, workers=2,
            cache=ResultCache(tmp_path / "c"),
        ).raise_on_failure()
        assert_batches_identical(mono, tiny)

    def test_cache_hits_cross_shard_configurations(self, tmp_path):
        """shard_mem is an execution knob: results cached under one
        budget are served verbatim under any other."""
        cache = ResultCache(tmp_path / "cache")
        specs = make_specs()
        first = run_many(
            specs, stream=True, shard_mem=1 << 30, cache=cache
        ).raise_on_failure()
        assert first.n_simulated == len(specs)
        second = run_many(
            specs, stream=True, shard_mem=150_000, workers=2, cache=cache
        ).raise_on_failure()
        assert second.n_cached == len(specs)
        assert_batches_identical(first, second)

    def test_partial_cache_shards_only_pending(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = make_specs()
        run_many(specs[:3], stream=True, cache=cache).raise_on_failure()
        batch = run_many(specs, stream=True, cache=cache).raise_on_failure()
        assert batch.n_cached == 3
        assert batch.n_simulated == len(specs) - 3
        mono = run_many(specs, stream=True).raise_on_failure()
        assert_batches_identical(batch, mono)

    def test_tracked_mode_streams_too(self):
        specs = make_specs(4, track_limit=1000)
        batch = run_many(
            specs, stream=True, shard_mem=300_000
        ).raise_on_failure()
        result = batch.results()[0]
        assert result.totals_summary is None
        assert result.total_waits().size > 0

    def test_rehydrated_summary_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = make_specs(2)
        fresh = run_many(specs, stream=True, cache=cache).raise_on_failure()
        hit = cache.get(fresh.outcomes[0].spec)
        assert hit is not None
        assert hit.totals_summary == fresh.results()[0].totals_summary
        assert hit.total_waiting_mean() == fresh.results()[0].total_waiting_mean()

    def test_incompatible_options_refused(self):
        specs = make_specs(2)
        with pytest.raises(ExecutionError, match="pick one"):
            run_many(specs, stream=True, vectorize=True)
        with pytest.raises(ExecutionError, match="task_fn"):
            run_many(specs, stream=True, task_fn=lambda s: None)
        with pytest.raises(ExecutionError, match="chunksize"):
            run_many(specs, stream=True, chunksize=2)
        with pytest.raises(ExecutionError, match="shard_mem"):
            run_many(specs, shard_mem=1 << 20)


class TestShardPlanning:
    def test_estimate_scales_with_load_and_cycles(self):
        light = NetworkConfig(k=2, n_stages=3, p=0.1)
        heavy = NetworkConfig(k=2, n_stages=3, p=0.9)
        assert estimate_replica_bytes(heavy, 1000) > estimate_replica_bytes(
            light, 1000
        )
        assert estimate_replica_bytes(light, 10_000) > estimate_replica_bytes(
            light, 1000
        )

    def test_plan_respects_budget(self):
        config = NetworkConfig(k=2, n_stages=3, p=0.5)
        per = estimate_replica_bytes(config, N_CYCLES)
        assert plan_shard_size(config, N_CYCLES, 10 * per) == 10
        assert plan_shard_size(config, N_CYCLES, 1) == 1  # floor of one
        with pytest.raises(ExecutionError, match="shard_mem"):
            plan_shard_size(config, N_CYCLES, 0)


class TestStreamTotalsDriver:
    def test_shard_and_worker_invariant(self):
        config = NetworkConfig(k=2, n_stages=3, p=0.5)
        mono = stream_totals(
            config, 40, N_CYCLES, warmup=WARMUP, shard_mem=1 << 30
        )
        sharded = stream_totals(
            config, 40, N_CYCLES, warmup=WARMUP,
            shard_mem=400_000, workers=3,
        )
        assert mono.n_shards == 1 and sharded.n_shards > 1
        assert sharded.totals.count == mono.totals.count
        assert sharded.totals.mean == mono.totals.mean
        assert sharded.totals.variance == mono.totals.variance
        assert np.array_equal(sharded.totals.tail, mono.totals.tail)
        assert sharded.injected == mono.injected
        assert sharded.completed == mono.completed

    def test_matches_run_many_seeding(self):
        """stream_totals(seed=base+i) reproduces explicit-seed specs."""
        config = NetworkConfig(k=2, n_stages=3, p=0.5)
        driver = stream_totals(config, 5, N_CYCLES, warmup=WARMUP, base_seed=50)
        specs = [
            ExperimentSpec(
                config=dataclasses.replace(config, seed=50 + i, track_limit=0),
                n_cycles=N_CYCLES,
                warmup=WARMUP,
            )
            for i in range(5)
        ]
        batch = run_many(specs, stream=True).raise_on_failure()
        means = np.array([r.totals_summary.mean for r in batch.results()])
        assert np.array_equal(driver.totals.replica_means(), means)

    def test_progress_and_validation(self):
        config = NetworkConfig(k=2, n_stages=2, p=0.4)
        events = []
        out = stream_totals(
            config, 4, 100, warmup=10, shard_mem=1 << 30,
            progress=events.append,
        )
        assert out.n_shards == 1
        assert [e["event"] for e in events] == ["shard"]
        with pytest.raises(ExecutionError, match="n_replications"):
            stream_totals(config, 0, 100)
        with pytest.raises(ExecutionError, match="workers"):
            stream_totals(config, 4, 100, workers=0)

"""group_for_vectorize regression suite: shape keys and marker digests.

The grouping rules carry the cache-correctness burden of the stacked
path: serial, homogeneous-batched, and heterogeneous scenario-stacked
executions of the *same* scenario must live under pairwise-disjoint
digests (they are three different sample paths), while everything that
should stay on the serial engine -- singletons, finite buffers --
must keep its historical digest untouched.
"""

from dataclasses import replace

import pytest

from repro.errors import ExecutionError
from repro.exec.spec import (
    STACKABLE_CONFIG_FIELDS,
    ExperimentSpec,
    group_for_vectorize,
)
from repro.simulation.batched import STACK_SHAPE_FIELDS
from repro.simulation.network import NetworkConfig


def spec(n_cycles=1_200, **kwargs):
    defaults = dict(k=2, n_stages=3, p=0.5, topology="random", width=16)
    defaults.update(kwargs)
    return ExperimentSpec(config=NetworkConfig(**defaults), n_cycles=n_cycles)


class TestShapeKeys:
    @pytest.mark.parametrize(
        "variant",
        [
            dict(p=0.3),
            dict(message_size=3),
            dict(sizes=(1, 3), probabilities=(0.5, 0.5)),
            dict(bulk_size=2),
            dict(q=0.2, topology="omega", width=None),
        ],
        ids=["p", "message-size", "sizes", "bulk", "q"],
    )
    def test_stackable_fields_share_a_group(self, variant):
        base = {}
        if "topology" in variant:
            # q>0 needs destination routing; move both specs onto the
            # same banyan so only the stackable field differs
            base = dict(topology="omega", width=None)
            variant = {k: v for k, v in variant.items() if k not in ("topology", "width")}
        specs = [spec(seed=1, **base), spec(seed=2, **{**base, **variant})]
        _, groups = group_for_vectorize(specs)
        assert groups == [([0, 1], True)]

    @pytest.mark.parametrize(
        "variant",
        [
            dict(n_stages=4),
            dict(k=4, width=None, topology="omega"),
            dict(width=8),
            dict(transfer="store_forward"),
            dict(track_limit=50_000),
            dict(n_cycles=2_400),
        ],
        ids=["stages", "k", "width", "transfer", "track-limit", "cycles"],
    )
    def test_shape_fields_split_groups(self, variant):
        if "k" in variant:
            a = spec(seed=1, topology="omega", width=None)
        else:
            a = spec(seed=1)
        b = spec(seed=2, **variant)
        _, groups = group_for_vectorize([a, b])
        assert sorted(groups) == [([0], False), ([1], False)]

    def test_shape_field_lists_are_consistent(self):
        """Every config field is either stackable or shape-fixing
        (plus the seed); the two modules must agree."""
        import dataclasses

        config_fields = {f.name for f in dataclasses.fields(NetworkConfig)}
        covered = set(STACKABLE_CONFIG_FIELDS) | set(STACK_SHAPE_FIELDS) | {"seed"}
        assert covered == config_fields


class TestGroupStructure:
    def test_singletons_interleaved_with_stackable_groups(self):
        specs = [
            spec(seed=1),                 # group A
            spec(seed=2, n_stages=4),     # singleton (shape)
            spec(seed=3, p=0.8),          # group A (stackable diff)
            spec(seed=4, n_cycles=9_99),  # singleton (cycle budget)
            spec(seed=5),                 # group A
        ]
        marked, groups = group_for_vectorize(specs)
        assert ([0, 2, 4], True) in groups
        assert ([1], False) in groups and ([3], False) in groups
        for i in (1, 3):
            assert marked[i].batch_marker is None
            assert marked[i].digest == specs[i].digest

    def test_finite_buffer_groups_never_stack(self):
        specs = [
            spec(seed=s, p=p, buffer_capacity=4)
            for s, p in [(1, 0.3), (2, 0.6)]
        ]
        marked, groups = group_for_vectorize(specs)
        assert groups == [([0, 1], False)]
        assert all(s.batch_marker is None for s in marked)
        assert [s.digest for s in marked] == [s.digest for s in specs]

    def test_homogeneous_groups_keep_int_seed_markers(self):
        specs = [spec(seed=s) for s in (10, 11, 12)]
        marked, _ = group_for_vectorize(specs)
        for pos, m in enumerate(marked):
            assert m.batch_marker == (3, pos, (10, 11, 12))
            assert m.identity()["engine"]["kind"] == "replica-batched"

    def test_heterogeneous_groups_carry_scenario_rows(self):
        specs = [spec(seed=10), spec(seed=11, p=0.9)]
        marked, _ = group_for_vectorize(specs)
        for m in marked:
            n, _, rows = m.batch_marker
            assert n == 2 and all(isinstance(r, str) for r in rows)
            engine = m.identity()["engine"]
            assert engine["kind"] == "scenario-batched"
            assert engine["batch_rows"] == list(rows)
        # the rows record seed + every stackable field, canonically
        assert '"p":0.9' in marked[1].batch_marker[2][1]
        assert '"seed":11' in marked[1].batch_marker[2][1]


class TestDigestDisjointness:
    def test_serial_homogeneous_heterogeneous_never_alias(self):
        """The same (scenario, seed) under the three execution kinds
        must produce three distinct cache keys."""
        target = spec(seed=101)
        serial_digest = target.digest

        homo, _ = group_for_vectorize([spec(seed=100), target, spec(seed=102)])
        homo_digest = homo[1].digest

        het, _ = group_for_vectorize(
            [spec(seed=100), target, spec(seed=102, p=0.9)]
        )
        het_digest = het[1].digest

        assert len({serial_digest, homo_digest, het_digest}) == 3

    def test_batch_composition_enters_heterogeneous_digest(self):
        target = spec(seed=101)
        a, _ = group_for_vectorize([target, spec(seed=102, p=0.9)])
        b, _ = group_for_vectorize([target, spec(seed=102, p=0.8)])
        c, _ = group_for_vectorize([spec(seed=102, p=0.9), target])
        assert len({a[0].digest, b[0].digest, c[1].digest}) == 3

    def test_marker_row_type_mixing_rejected(self):
        with pytest.raises(ExecutionError, match="rows all ints"):
            replace(spec(seed=1), batch_marker=(2, 0, (100, "x")))

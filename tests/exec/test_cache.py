"""Content-addressed cache: round trips, invalidation, robustness."""

import json

import numpy as np
import pytest

import repro.exec.cache as cache_mod
from repro.exec.cache import ResultCache, payload_to_result, result_to_payload
from repro.exec.spec import ExperimentSpec
from repro.simulation.network import NetworkConfig, NetworkSimulator


def make_spec(p=0.5, seed=7, n_cycles=800):
    return ExperimentSpec(
        config=NetworkConfig(
            k=2, n_stages=3, p=p, topology="random", width=16, seed=seed
        ),
        n_cycles=n_cycles,
    )


@pytest.fixture
def spec():
    return make_spec()


@pytest.fixture
def result(spec):
    return NetworkSimulator(spec.config).run(spec.n_cycles, warmup=spec.warmup)


def assert_results_identical(a, b):
    assert np.array_equal(a.stage_means, b.stage_means)
    assert np.array_equal(a.stage_variances, b.stage_variances)
    assert np.array_equal(a.stage_counts, b.stage_counts)
    assert np.array_equal(a.tracked.complete_rows(), b.tracked.complete_rows())
    assert (a.injected, a.completed, a.dropped) == (b.injected, b.completed, b.dropped)


class TestPayloadRoundTrip:
    def test_bit_exact(self, spec, result):
        rebuilt = payload_to_result(result_to_payload(result), spec.config)
        assert_results_identical(result, rebuilt)

    def test_tracked_statistics_survive(self, spec, result):
        rebuilt = payload_to_result(result_to_payload(result), spec.config)
        assert np.array_equal(rebuilt.tracked.totals(), result.tracked.totals())
        assert np.array_equal(
            rebuilt.tracked.stage_correlations(), result.tracked.stage_correlations()
        )


class TestHitMiss:
    def test_get_put_get(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(spec) is None
        cache.put(spec, result)
        hit = cache.get(spec)
        assert hit is not None
        assert_results_identical(result, hit)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_spec_change_is_miss(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path / "cache")
        cache.put(spec, result)
        assert cache.get(make_spec(p=0.6)) is None
        assert cache.get(make_spec(seed=8)) is None
        assert cache.get(make_spec(n_cycles=900)) is None
        assert cache.get(spec) is not None

    def test_schema_bump_invalidates(self, tmp_path, spec, result, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        cache.put(spec, result)
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION", 2)
        assert cache.get(spec) is None  # old entry lives under v1/
        cache.put(spec, result)
        assert cache.get(spec) is not None
        assert len(cache.entries()) == 2  # both versions on disk, disjoint

    def test_stale_metadata_version_is_miss(self, tmp_path, spec, result):
        # same directory layout but a doctored in-file version field
        cache = ResultCache(tmp_path / "cache")
        cache.put(spec, result)
        meta_path, _ = cache._entry_paths(spec.digest)
        meta = json.loads(meta_path.read_text())
        meta["schema_version"] = 999
        meta_path.write_text(json.dumps(meta))
        assert cache.get(spec) is None


class TestRobustness:
    def test_corrupt_metadata_is_miss(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path / "cache")
        cache.put(spec, result)
        meta_path, _ = cache._entry_paths(spec.digest)
        meta_path.write_text("{not json")
        assert cache.get(spec) is None

    def test_missing_arrays_is_miss(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path / "cache")
        cache.put(spec, result)
        _, npz_path = cache._entry_paths(spec.digest)
        npz_path.unlink()
        assert cache.get(spec) is None

    def test_get_on_empty_dir_never_raises(self, tmp_path, spec):
        cache = ResultCache(tmp_path / "nonexistent")
        assert cache.get(spec) is None


class TestStatsAndClear:
    def test_stats(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path / "cache")
        stats = cache.stats()
        assert stats.entries == 0 and stats.total_bytes == 0
        cache.put(spec, result)
        cache.put(make_spec(p=0.3), result)
        cache.get(spec)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert stats.hits == 1
        assert "2 entries" in stats.to_text()
        assert stats.to_dict()["entries"] == 2

    def test_clear(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path / "cache")
        cache.put(spec, result)
        assert cache.clear() == 1
        assert cache.entries() == []
        assert cache.get(spec) is None
        assert cache.clear() == 0


class TestGetOrBegin:
    """In-process in-flight dedup (the repro.api leader/follower guard)."""

    def test_hit_returns_result_and_no_token(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path / "cache")
        cache.put(spec, result)
        got, token = cache.get_or_begin(spec)
        assert token is None
        assert_results_identical(got, result)

    def test_miss_elects_exactly_one_leader(self, tmp_path, spec):
        cache = ResultCache(tmp_path / "cache")
        _, first = cache.get_or_begin(spec)
        _, second = cache.get_or_begin(spec)
        assert first.leader and not second.leader
        assert first.digest == second.digest == spec.digest
        assert first.event is second.event

    def test_finish_is_idempotent_and_releases_claim(self, tmp_path, spec):
        cache = ResultCache(tmp_path / "cache")
        _, token = cache.get_or_begin(spec)
        assert token.leader
        cache.finish(spec)
        assert token.event.is_set()
        cache.finish(spec)  # no claim left: a no-op
        _, again = cache.get_or_begin(spec)
        assert again.leader  # the digest is claimable again

    def test_two_waiters_one_compute(self, tmp_path, spec, result):
        """Two follower threads block on the leader's event, then both
        read the single computed entry -- the engine runs once."""
        import threading

        cache = ResultCache(tmp_path / "cache")
        computes = []
        outcomes = {}
        ready = threading.Barrier(3)

        def worker(name):
            ready.wait()
            got, token = cache.get_or_begin(spec)
            if got is not None:
                outcomes[name] = ("hit", got)
                return
            if token.leader:
                try:
                    computes.append(name)
                    cache.put(spec, result)
                finally:
                    cache.finish(spec)
                outcomes[name] = ("computed", result)
            else:
                assert token.event.wait(10.0)
                got = cache.get(spec)
                assert got is not None
                outcomes[name] = ("waited", got)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(computes) == 1
        assert len(outcomes) == 3
        kinds = sorted(kind for kind, _ in outcomes.values())
        # one thread computed; the others either waited on the event or
        # raced in after the disk write and saw a plain hit
        assert kinds.count("computed") == 1
        for kind, got in outcomes.values():
            assert_results_identical(got, result)

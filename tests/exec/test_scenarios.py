"""Scenario library: YAML loading, schema validation, digest pins."""

import textwrap

import pytest

from repro.errors import ExecutionError
from repro.exec.scenarios import (
    available_scenario_sets,
    load_scenario_file,
    load_scenarios,
    parse_strict_yaml,
    scenario_dir,
    scenario_specs,
)
from repro.exec.spec import ExperimentSpec
from repro.simulation.network import NetworkConfig

# The Python scenario set `smoke` replaced by scenarios/smoke.yaml in
# the service PR.  These digests were computed from the *original*
# hard-coded specs; the YAML library must reproduce them byte for byte.
_LEGACY_SMOKE_DIGESTS = {
    "load-p0.2": "9b642f2c3b006945080ab171174e7e0a5220fd892a56c5539d067bd24bb02739",
    "load-p0.35": "f4b75476c37959f803e584fd0ed61dd24c743c649f4eefe9d3f7692ad7bae89f",
    "load-p0.5": "619cc301c23a5584cd8c377a583c8be8b10f65fdceac85e5553b9b690b0bac9a",
    "load-p0.65": "a33512932aee33eede9a6b3bf433f125149a584ff96a9033b7a8ff16b6832680",
    "message-m2": "90de0ad222ef1c966501b5160223a4b641ea43a698803e313943a9b681cb068c",
    "message-m4": "2c4c729cd22180faf3bb994460fb014c8e3cbb746800acd5471fd94c8e6fec97",
    "switch-k4": "cb1eb3256337cb5ea73901f633f9764a3ef43e557b7cb541bf1e1b7db3ff6f62",
    "favourite-q0.25": "1a091f4828efa3f2d8714637e17ed2d8ae12dbaa4858e4712bbff5ca7e5d9c60",
}


def write_set(path, body):
    path.write_text(textwrap.dedent(body))
    return path


class TestStrictYaml:
    def test_scalars_and_nesting(self):
        doc = parse_strict_yaml(
            textwrap.dedent(
                """\
                version: 1
                name: demo  # trailing comment
                pi: 3.5
                flag: true
                nothing: null
                items:
                  - label: a
                    config:
                      p: 0.5
                  - label: b
                """
            )
        )
        assert doc["version"] == 1 and isinstance(doc["version"], int)
        assert doc["name"] == "demo"
        assert doc["pi"] == 3.5
        assert doc["flag"] is True
        assert doc["nothing"] is None
        assert doc["items"][0]["config"]["p"] == 0.5
        assert doc["items"][1] == {"label": "b"}

    def test_inline_lists_rejected(self):
        with pytest.raises(ExecutionError, match="flow collection"):
            parse_strict_yaml("sizes: [1, 2]")

    def test_tabs_rejected(self):
        with pytest.raises(ExecutionError, match="tab"):
            parse_strict_yaml("a:\n\tb: 1")

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ExecutionError, match="duplicate key"):
            parse_strict_yaml("a: 1\na: 2")


class TestLibrary:
    def test_smoke_is_byte_identical_to_legacy_python_set(self):
        """The YAML library's pin test: replacing the hard-coded Python
        scenario set must not move a single digest (every cache entry
        and ledger row stays valid)."""
        specs = scenario_specs("smoke")
        assert {s.label: s.digest for s in specs} == _LEGACY_SMOKE_DIGESTS

    def test_library_sets_all_load(self):
        names = available_scenario_sets()
        assert "smoke" in names and "stress" in names
        for name in names:
            specs = scenario_specs(name)
            assert specs and all(isinstance(s, ExperimentSpec) for s in specs)
            assert all(isinstance(s.config, NetworkConfig) for s in specs)

    def test_n_cycles_override_skips_pins(self):
        specs = scenario_specs("smoke", n_cycles=5_000)
        assert all(s.n_cycles == 5_000 for s in specs)
        # overridden budgets move the digest away from the pin -- the
        # loader must not enforce pins in that case
        assert specs[0].digest != _LEGACY_SMOKE_DIGESTS[specs[0].label]

    def test_unknown_set_lists_library(self):
        with pytest.raises(ExecutionError) as err:
            scenario_specs("definitely-not-a-set")
        message = str(err.value)
        assert "unknown scenario set" in message
        assert "smoke" in message
        assert str(scenario_dir()) in message

    def test_load_scenarios_dispatch(self, tmp_path):
        by_name = load_scenarios("smoke", n_cycles=None)
        assert [s.label for s in by_name] == list(_LEGACY_SMOKE_DIGESTS)
        json_file = tmp_path / "specs.json"
        json_file.write_text(
            '[{"config": {"k": 2, "n_stages": 2, "p": 0.4, "seed": 3},'
            ' "n_cycles": 700, "label": "j"}]'
        )
        (loaded,) = load_scenarios(str(json_file), n_cycles=None)
        assert loaded.label == "j" and loaded.n_cycles == 700


class TestFileValidation:
    def good_body(self):
        return """\
            version: 1
            name: good
            description: A valid little set.
            scenarios:
              - label: only
                n_cycles: 900
                config:
                  k: 2
                  n_stages: 2
                  p: 0.4
                  seed: 5
            """

    def test_valid_file_loads(self, tmp_path):
        path = write_set(tmp_path / "good.yaml", self.good_body())
        scenario_set = load_scenario_file(path)
        assert scenario_set.name == "good"
        (spec,) = scenario_set.specs
        assert spec.label == "only" and spec.n_cycles == 900
        doc = scenario_set.to_jsonable()
        assert doc["n_scenarios"] == 1
        assert doc["scenarios"][0]["digest"] == spec.digest

    def test_name_must_match_filename(self, tmp_path):
        path = write_set(tmp_path / "other.yaml", self.good_body())
        with pytest.raises(ExecutionError, match="must match the file name"):
            load_scenario_file(path)

    def test_malformed_yaml_reports_line(self, tmp_path):
        path = write_set(
            tmp_path / "bad.yaml",
            """\
            version: 1
            name: bad
            description: x
            scenarios: [oops
            """,
        )
        with pytest.raises(ExecutionError, match=r"bad\.yaml:4"):
            load_scenario_file(path)

    def test_duplicate_labels_rejected(self, tmp_path):
        path = write_set(
            tmp_path / "dup.yaml",
            """\
            version: 1
            name: dup
            description: duplicate labels
            defaults:
              n_cycles: 700
            scenarios:
              - label: twin
                config:
                  k: 2
                  n_stages: 2
                  p: 0.3
                  seed: 1
              - label: twin
                config:
                  k: 2
                  n_stages: 2
                  p: 0.4
                  seed: 2
            """,
        )
        with pytest.raises(ExecutionError, match="duplicate label 'twin'"):
            load_scenario_file(path)

    def test_digest_pin_mismatch_rejected(self, tmp_path):
        path = write_set(
            tmp_path / "pinned.yaml",
            f"""\
            version: 1
            name: pinned
            description: a drifted pin
            scenarios:
              - label: only
                n_cycles: 900
                digest: {"f" * 64}
                config:
                  k: 2
                  n_stages: 2
                  p: 0.4
                  seed: 5
            """,
        )
        with pytest.raises(ExecutionError, match="drifted from its pinned identity"):
            load_scenario_file(path)

    def test_unknown_config_field_rejected(self, tmp_path):
        path = write_set(
            tmp_path / "unk.yaml",
            """\
            version: 1
            name: unk
            description: x
            scenarios:
              - label: only
                n_cycles: 900
                config:
                  k: 2
                  n_stages: 2
                  p: 0.4
                  warp_drive: 9
            """,
        )
        with pytest.raises(ExecutionError, match="warp_drive"):
            load_scenario_file(path)

    def test_missing_required_key_rejected(self, tmp_path):
        path = write_set(
            tmp_path / "nover.yaml",
            """\
            name: nover
            description: no version
            scenarios:
              - label: only
                n_cycles: 900
                config:
                  k: 2
                  n_stages: 2
                  p: 0.4
            """,
        )
        with pytest.raises(ExecutionError, match="version"):
            load_scenario_file(path)

    def test_env_override_redirects_library(self, tmp_path, monkeypatch):
        write_set(tmp_path / "solo.yaml", self.good_body().replace("good", "solo"))
        monkeypatch.setenv("REPRO_SCENARIOS_DIR", str(tmp_path))
        assert available_scenario_sets() == ["solo"]
        (spec,) = scenario_specs("solo")
        assert spec.label == "only"

"""Backend selection is an execution detail, never an identity.

The pluggable compute backends (:mod:`repro.simulation.backends`) must
be invisible to everything content-addressed: spec digests, cache keys,
vectorize grouping, and cached payloads.  These tests pin that down,
plus the plumbing that carries ``backend=`` from the CLI/context down
to :func:`~repro.simulation.batched.run_stacked`.
"""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec.cache import ResultCache
from repro.exec.context import ExecutionContext, run_batch, use_execution
from repro.exec.runner import run_many
from repro.exec.spec import ExperimentSpec, group_for_vectorize
from repro.simulation.backends import NumbaBackend
from repro.simulation.backends.jit import cycle_loop_kernel
from repro.simulation.network import NetworkConfig


def make_specs(n=3, **kwargs):
    base = dict(k=2, n_stages=3, p=0.5, topology="random", width=16)
    base.update(kwargs)
    return [
        ExperimentSpec(
            config=NetworkConfig(seed=s, **base), n_cycles=800, warmup=0,
            label=f"s{s}",
        )
        for s in range(1, n + 1)
    ]


class TestBackendAbsentFromIdentity:
    def test_identity_has_no_backend_key(self):
        [spec] = make_specs(1)
        identity = spec.identity()
        flat = str(identity)
        assert "backend" not in flat
        assert "numba" not in flat

    def test_digest_ignores_ambient_backend(self):
        specs_a = make_specs()
        with use_execution(backend="numpy"):
            digests_numpy = [s.digest for s in make_specs()]
        with use_execution(backend="auto"):
            digests_auto = [s.digest for s in make_specs()]
        assert digests_numpy == digests_auto == [s.digest for s in specs_a]

    def test_grouping_ignores_backend(self):
        """group_for_vectorize partitions by shape, never by backend."""
        specs = make_specs(4)
        _, groups_a = group_for_vectorize(specs)
        with use_execution(backend="numpy"):
            _, groups_b = group_for_vectorize(make_specs(4))
        assert groups_a == groups_b


class TestRunManyBackend:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ExecutionError, match="backend must be one of"):
            run_many(make_specs(1), backend="cupy")

    def test_accepts_each_choice_serially(self):
        """Serial (non-vectorized) paths take any backend value and
        always run the reference engine."""
        for backend in ("numpy", "numba", "auto"):
            batch = run_many(make_specs(1), backend=backend)
            assert batch.n_failed == 0
            assert batch.results()[0].backend == "numpy"

    def test_vectorized_backend_numpy_matches_default(self):
        specs = make_specs()
        a = run_many(specs, vectorize=True, backend="numpy").results()
        b = run_many(specs, vectorize=True).results()
        for ra, rb in zip(a, b, strict=True):
            assert np.array_equal(ra.stage_means, rb.stage_means)
            assert np.array_equal(ra.stage_variances, rb.stage_variances)
            assert ra.injected == rb.injected

    def test_vectorized_results_identical_across_backends(self):
        """The whole exec path: numpy group run == pre-drawn kernel run.

        run_many only accepts backend *names*, so the kernel side goes
        through run_stacked directly with the same grouped spec list.
        """
        from repro.simulation.batched import run_stacked

        specs = make_specs()
        via_runner = run_many(specs, vectorize=True, backend="numpy").results()
        via_kernel = run_stacked(
            [s.config for s in via_runner],
            specs[0].n_cycles,
            warmup=specs[0].warmup,
            backend=NumbaBackend(kernel=cycle_loop_kernel),
        )
        for ra, rb in zip(via_runner, via_kernel, strict=True):
            assert np.array_equal(ra.stage_means, rb.stage_means)
            assert np.array_equal(ra.stage_variances, rb.stage_variances)
            assert np.array_equal(ra.stage_counts, rb.stage_counts)
            assert ra.injected == rb.injected
            assert ra.completed == rb.completed
            assert ra.max_occupancy == rb.max_occupancy


class TestCacheAcrossBackends:
    def test_cache_hit_regardless_of_backend_setting(self, tmp_path):
        """A result computed under one backend setting is served from
        cache under any other -- the key carries no backend."""
        cache = ResultCache(tmp_path)
        specs = make_specs()
        first = run_many(specs, vectorize=True, backend="numpy", cache=cache)
        assert first.n_simulated == len(specs)
        second = run_many(specs, vectorize=True, backend="auto", cache=cache)
        assert second.n_cached == len(specs)
        for ra, rb in zip(first.results(), second.results(), strict=True):
            assert np.array_equal(ra.stage_means, rb.stage_means)
            # rehydrated payloads carry no backend: the label defaults
            assert rb.backend == "numpy"


class TestExecutionContext:
    def test_default_backend_is_auto(self):
        assert ExecutionContext().backend == "auto"

    def test_context_threads_backend_into_run_batch(self):
        captured = {}

        import repro.exec.context as context_mod

        original = context_mod.run_many

        def spy(specs, **kwargs):
            captured.update(kwargs)
            return original(specs, **kwargs)

        context_mod.run_many = spy
        try:
            with use_execution(backend="numpy", vectorize=True):
                run_batch(make_specs(1))
        finally:
            context_mod.run_many = original
        assert captured["backend"] == "numpy"
        assert captured["vectorize"] is True

"""Batch runner: determinism, caching, fault tolerance, observability."""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec.cache import ResultCache
from repro.exec.runner import execute_spec, run_many
from repro.exec.spec import ExperimentSpec
from repro.obs import session
from repro.simulation.network import NetworkConfig

# ----------------------------------------------------------------------
# picklable task functions for fault injection (must be module-level so
# worker processes can import them by qualified name)

_FLAG_ENV = "REPRO_TEST_FAIL_FLAG_DIR"


def _flaky_task(spec):
    """Fail exactly once (across all processes) for the 'flaky' spec."""
    if spec.label == "flaky":
        flag = Path(os.environ[_FLAG_ENV]) / "tripped"
        if not flag.exists():
            flag.write_text("x")
            raise RuntimeError("injected transient failure")
    return execute_spec(spec)


def _doomed_task(spec):
    """Fail every attempt for the 'doomed' spec."""
    if spec.label == "doomed":
        raise RuntimeError("injected permanent failure")
    return execute_spec(spec)


def _doomed_task_for_last(spec):
    """Fail every attempt for the 'load-2' spec (summary() test)."""
    if spec.label == "load-2":
        raise RuntimeError("injected permanent failure")
    return execute_spec(spec)


def _sleepy_task(spec):
    """Hold the 'sleepy' spec well past any reasonable test timeout."""
    if spec.label == "sleepy":
        time.sleep(1.0)
    return execute_spec(spec)


# ----------------------------------------------------------------------


def make_specs(n=6, n_cycles=600, seeded=True):
    loads = [0.15 + 0.08 * i for i in range(n)]
    return [
        ExperimentSpec(
            config=NetworkConfig(
                k=2,
                n_stages=3,
                p=p,
                topology="random",
                width=16,
                seed=(100 + i) if seeded else None,
            ),
            n_cycles=n_cycles,
            label=f"load-{i}",
        )
        for i, p in enumerate(loads)
    ]


def assert_batches_identical(a, b):
    assert a.n_tasks == b.n_tasks
    for oa, ob in zip(a.outcomes, b.outcomes, strict=True):
        assert oa.spec.digest == ob.spec.digest
        assert np.array_equal(oa.result.stage_means, ob.result.stage_means)
        assert np.array_equal(oa.result.stage_variances, ob.result.stage_variances)
        assert np.array_equal(oa.result.stage_counts, ob.result.stage_counts)
        assert np.array_equal(
            oa.result.tracked.complete_rows(), ob.result.tracked.complete_rows()
        )
        assert oa.result.completed == ob.result.completed


class TestDeterminism:
    def test_workers_4_bit_identical_to_workers_1(self):
        # ISSUE acceptance: parallel statistics == serial statistics
        specs = make_specs()
        serial = run_many(specs, workers=1)
        parallel = run_many(specs, workers=4)
        assert serial.n_simulated == parallel.n_simulated == len(specs)
        assert_batches_identical(serial, parallel)

    def test_unseeded_specs_identical_across_worker_counts(self):
        # seeds must come from batch position, not execution order
        specs = make_specs(n=4, seeded=False)
        serial = run_many(specs, workers=1, base_seed=77)
        parallel = run_many(specs, workers=3, base_seed=77)
        assert_batches_identical(serial, parallel)
        other_base = run_many(specs, workers=1, base_seed=78)
        assert not np.array_equal(
            serial.outcomes[0].result.stage_means,
            other_base.outcomes[0].result.stage_means,
        )

    def test_outcomes_in_spec_order(self):
        specs = make_specs(n=5)
        batch = run_many(specs, workers=2)
        assert [o.index for o in batch.outcomes] == list(range(5))
        assert [o.spec.label for o in batch.outcomes] == [s.label for s in specs]


class TestCaching:
    def test_repeated_batch_is_all_hits(self, tmp_path):
        # ISSUE acceptance: identical repeat => zero new simulations
        specs = make_specs(n=4)
        cache = ResultCache(tmp_path / "cache")
        first = run_many(specs, workers=1, cache=cache)
        assert (first.n_simulated, first.n_cached) == (4, 0)
        second = run_many(specs, workers=1, cache=cache)
        assert (second.n_simulated, second.n_cached) == (0, 4)
        assert all(o.status == "cached" and o.attempts == 0 for o in second.outcomes)
        assert_batches_identical(first, second)

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        specs = make_specs(n=4)
        cache = ResultCache(tmp_path / "cache")
        first = run_many(specs, workers=2, cache=cache)
        assert first.n_simulated == 4
        second = run_many(specs, workers=1, cache=cache)
        assert (second.n_simulated, second.n_cached) == (0, 4)
        assert_batches_identical(first, second)

    def test_partial_hits_only_simulate_the_new_specs(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_many(make_specs(n=2), cache=cache)
        batch = run_many(make_specs(n=4), cache=cache)
        assert (batch.n_simulated, batch.n_cached) == (2, 2)
        assert [o.status for o in batch.outcomes] == [
            "cached", "cached", "completed", "completed",
        ]


class TestFaultTolerance:
    def test_transient_failure_is_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_FLAG_ENV, str(tmp_path))
        specs = make_specs(n=4)
        specs[2] = ExperimentSpec(
            config=specs[2].config, n_cycles=specs[2].n_cycles, label="flaky"
        )
        batch = run_many(specs, workers=2, retries=1, task_fn=_flaky_task)
        assert batch.n_failed == 0
        assert batch.outcomes[2].attempts == 2
        assert all(o.ok for o in batch.outcomes)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_permanent_failure_bounded_then_reported(self, workers):
        # ISSUE acceptance: a sick task is retried up to the bound, then
        # reported failed while every other task still completes
        specs = make_specs(n=4)
        specs[1] = ExperimentSpec(
            config=specs[1].config, n_cycles=specs[1].n_cycles, label="doomed"
        )
        batch = run_many(specs, workers=workers, retries=2, task_fn=_doomed_task)
        doomed = batch.outcomes[1]
        assert doomed.status == "failed"
        assert doomed.attempts == 3  # 1 initial + 2 retries
        assert "injected permanent failure" in doomed.error
        assert doomed.result is None
        others = [o for i, o in enumerate(batch.outcomes) if i != 1]
        assert all(o.status == "completed" for o in others)
        assert batch.n_failed == 1 and batch.n_simulated == 3
        with pytest.raises(ExecutionError, match="doomed"):
            batch.raise_on_failure()
        assert [r is None for r in batch.results()] == [False, True, False, False]

    def test_retries_zero_means_single_attempt(self):
        specs = make_specs(n=2)
        specs[0] = ExperimentSpec(
            config=specs[0].config, n_cycles=specs[0].n_cycles, label="doomed"
        )
        batch = run_many(specs, workers=1, retries=0, task_fn=_doomed_task)
        assert batch.outcomes[0].status == "failed"
        assert batch.outcomes[0].attempts == 1

    def test_timeout_fails_slow_task_but_not_batch(self):
        specs = make_specs(n=2)
        specs[0] = ExperimentSpec(
            config=specs[0].config, n_cycles=specs[0].n_cycles, label="sleepy"
        )
        batch = run_many(
            specs, workers=2, retries=0, timeout=0.25,
            chunksize=1, task_fn=_sleepy_task,
        )
        assert batch.outcomes[0].status == "failed"
        assert "timeout" in batch.outcomes[0].error
        assert batch.outcomes[1].status == "completed"

    def test_failed_tasks_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = make_specs(n=2)
        specs[0] = ExperimentSpec(
            config=specs[0].config, n_cycles=specs[0].n_cycles, label="doomed"
        )
        run_many(specs, workers=1, retries=0, cache=cache, task_fn=_doomed_task)
        assert len(cache.entries()) == 1  # only the healthy task

    def test_input_validation(self):
        with pytest.raises(ExecutionError):
            run_many(make_specs(n=1), workers=0)
        with pytest.raises(ExecutionError):
            run_many(make_specs(n=1), retries=-1)


class TestObservability:
    def test_batch_summary_counts(self, tmp_path):
        specs = make_specs(n=3)
        cache = ResultCache(tmp_path / "cache")
        run_many(specs[:1], workers=1, cache=cache)  # pre-warm one entry
        batch = run_many(specs, workers=1, cache=cache, retries=0,
                         task_fn=_doomed_task_for_last)
        summary = batch.summary()
        assert summary["n_tasks"] == 3
        assert summary["statuses"] == {"cached": 1, "completed": 1, "failed": 1}
        assert summary["cache_hits"] == 1
        assert summary["cache_misses"] == 2
        # cached task: 0 attempts; completed: 1; failed at retries=0: 1
        assert summary["total_attempts"] == 2
        assert summary["workers"] == 1
        assert summary["elapsed_seconds"] == batch.elapsed_seconds

    def test_progress_events(self):
        events = []
        specs = make_specs(n=3)
        run_many(specs, workers=1, progress=events.append)
        assert len(events) == 3
        assert {e["event"] for e in events} == {"completed"}
        assert {e["label"] for e in events} == {s.label for s in specs}
        assert all(len(e["digest"]) == 12 for e in events)

    def test_retry_and_failure_events(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_FLAG_ENV, str(tmp_path))
        events = []
        specs = [
            ExperimentSpec(
                config=make_specs(n=1)[0].config, n_cycles=600, label="flaky"
            )
        ]
        run_many(specs, workers=1, retries=1, progress=events.append,
                 task_fn=_flaky_task)
        assert [e["event"] for e in events] == ["completed"]
        assert events[0]["attempts"] == 2

    def test_broken_progress_sink_does_not_abort(self):
        def bad_sink(event):
            raise RuntimeError("sink is broken")

        with pytest.warns(RuntimeWarning, match="progress callback failed"):
            batch = run_many(make_specs(n=2), workers=1, progress=bad_sink)
        assert batch.n_simulated == 2

    def test_broken_progress_sink_warns_per_event_and_results_survive(self):
        """Fault injection: a sink that dies on every event must leave the
        batch identical to a sink-free run, with one warning per outcome."""
        calls = []

        def bad_sink(event):
            calls.append(event["event"])
            raise ValueError(f"sink rejects {event['event']}")

        specs = make_specs(n=3)
        with pytest.warns(RuntimeWarning, match="batch continues") as caught:
            batch = run_many(specs, workers=1, progress=bad_sink)
        clean = run_many(specs, workers=1)
        assert calls == ["completed"] * 3
        assert len(caught) == 3
        assert batch.n_simulated == 3 and batch.n_failed == 0
        for noisy, quiet in zip(batch.outcomes, clean.outcomes, strict=True):
            assert noisy.status == quiet.status == "completed"
            assert noisy.result is not None and quiet.result is not None
            assert noisy.result.stage_means == pytest.approx(quiet.result.stage_means)

    def test_exec_batch_manifest(self, tmp_path):
        specs = make_specs(n=3)
        specs[1] = ExperimentSpec(
            config=specs[1].config, n_cycles=specs[1].n_cycles, label="doomed"
        )
        with session(tmp_path / "obs", profile=False):
            run_many(specs, workers=1, retries=0, task_fn=_doomed_task)
        (manifest,) = sorted((tmp_path / "obs").glob("exec-batch-*.json"))
        doc = json.loads(manifest.read_text())
        assert doc["kind"] == "exec_batch"
        assert doc["n_tasks"] == 3
        assert doc["counts"] == {"completed": 2, "cached": 0, "failed": 1}
        statuses = [t["status"] for t in doc["tasks"]]
        assert statuses == ["completed", "failed", "completed"]
        assert doc["tasks"][1]["error"]
        assert all(len(t["digest"]) == 64 for t in doc["tasks"])

    def test_pool_workers_write_no_run_manifests(self, tmp_path):
        # forked workers inherit the session; if they wrote run-NNNN
        # manifests their process-local sequence numbers would collide
        with session(tmp_path / "obs", profile=False):
            batch = run_many(make_specs(n=4), workers=2)
        assert batch.n_simulated == 4
        out = tmp_path / "obs"
        assert sorted(p.name for p in out.glob("exec-batch-*.json"))
        assert list(out.glob("run-*.manifest.json")) == []

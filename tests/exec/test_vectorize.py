"""Vectorized (replica-batched) execution through run_many.

Contract under test:

* grouping is by shape (identical specs up to the config seed and the
  stackable traffic parameters), a pure function of the spec list, with
  singletons and finite-buffer specs left on the serial path;
* marked specs get distinct digests (no cache aliasing between batched
  and serial results of the same scenario), while unmarked specs keep
  their historical digests;
* ``vectorize=True`` composes with workers and the cache: pool runs are
  bit-identical to in-process runs, repeats are fully cache-served;
* a failing stacked group fails atomically without sinking the batch.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec.cache import ResultCache
from repro.exec.runner import run_many
from repro.exec.spec import ExperimentSpec, group_for_vectorize, resolve_seeds
from repro.simulation.network import NetworkConfig
from repro.simulation.replication import replicate


def base_config(**kwargs):
    defaults = dict(k=2, n_stages=3, p=0.5, topology="random", width=16)
    defaults.update(kwargs)
    return NetworkConfig(**defaults)


def spec_batch(n=4, n_cycles=1_200, **kwargs):
    return [
        ExperimentSpec(
            config=base_config(seed=100 + i, **kwargs),
            n_cycles=n_cycles,
            label=f"r{i}",
        )
        for i in range(n)
    ]


class TestGrouping:
    def test_same_shape_specs_marked_as_one_group(self):
        specs = spec_batch(3)
        marked, groups = group_for_vectorize(specs)
        assert groups == [([0, 1, 2], True)]
        seeds = (100, 101, 102)
        for pos, spec in enumerate(marked):
            assert spec.batch_marker == (3, pos, seeds)

    def test_mixed_shapes_split_and_singletons_unmarked(self):
        # n_stages changes the engine's array shapes, so the odd spec
        # cannot join the stack (a mere load difference now could)
        specs = [
            *spec_batch(2),
            ExperimentSpec(config=base_config(n_stages=4, seed=7), n_cycles=1_200),
        ]
        marked, groups = group_for_vectorize(specs)
        assert ([0, 1], True) in groups and ([2], False) in groups
        assert marked[2].batch_marker is None
        assert marked[2].digest == specs[2].digest

    def test_load_sweep_specs_stack_heterogeneously(self):
        specs = [
            ExperimentSpec(config=base_config(p=p, seed=7 + i), n_cycles=1_200)
            for i, p in enumerate([0.2, 0.5, 0.8])
        ]
        marked, groups = group_for_vectorize(specs)
        assert groups == [([0, 1, 2], True)]
        for pos, spec in enumerate(marked):
            n, where, rows = spec.batch_marker
            assert (n, where) == (3, pos)
            assert all(isinstance(r, str) for r in rows)

    def test_finite_buffer_groups_stay_serial(self):
        specs = [
            ExperimentSpec(
                config=NetworkConfig(
                    k=2, n_stages=3, p=0.5, buffer_capacity=4, seed=s
                ),
                n_cycles=1_200,
            )
            for s in (1, 2)
        ]
        marked, groups = group_for_vectorize(specs)
        assert groups == [([0, 1], False)]
        assert all(s.batch_marker is None for s in marked)

    def test_needs_resolved_seeds_and_unmarked_input(self):
        unseeded = ExperimentSpec(config=base_config(), n_cycles=1_200)
        with pytest.raises(ExecutionError, match="seed-resolved"):
            group_for_vectorize([unseeded])
        marked, _ = group_for_vectorize(resolve_seeds(spec_batch(2)))
        with pytest.raises(ExecutionError, match="already"):
            group_for_vectorize(marked)

    def test_grouping_ignores_labels(self):
        specs = spec_batch(2)
        relabelled = [replace(specs[0], label="x"), replace(specs[1], label="y")]
        _, g1 = group_for_vectorize(specs)
        _, g2 = group_for_vectorize(relabelled)
        assert g1 == g2


class TestDigests:
    def test_marker_changes_digest(self):
        [spec] = spec_batch(1)
        marked = replace(spec, batch_marker=(2, 0, (100, 101)))
        assert marked.digest != spec.digest
        assert "engine" in marked.identity()
        assert "engine" not in spec.identity()

    def test_marker_position_and_seed_list_enter_digest(self):
        [spec] = spec_batch(1)
        a = replace(spec, batch_marker=(2, 0, (100, 101)))
        b = replace(spec, batch_marker=(2, 1, (100, 101)))
        c = replace(spec, batch_marker=(2, 0, (100, 999)))
        assert len({a.digest, b.digest, c.digest}) == 3

    def test_invalid_markers_rejected(self):
        [spec] = spec_batch(1)
        for bad in [(1, 0, (100,)), (2, 2, (100, 101)), (2, 0, (100,)), ("x",)]:
            with pytest.raises(ExecutionError):
                replace(spec, batch_marker=bad)


class TestRunMany:
    def test_vectorized_matches_itself_across_workers(self):
        specs = spec_batch(5)
        inproc = run_many(specs, vectorize=True).raise_on_failure()
        pooled = run_many(specs, vectorize=True, workers=2).raise_on_failure()
        for a, b in zip(inproc.outcomes, pooled.outcomes, strict=True):
            assert np.array_equal(a.result.stage_means, b.result.stage_means)
            assert np.array_equal(a.result.stage_counts, b.result.stage_counts)
            assert a.spec.digest == b.spec.digest

    def test_cache_round_trip_per_spec(self, tmp_path):
        specs = spec_batch(4)
        cache = ResultCache(tmp_path / "cache")
        first = run_many(specs, vectorize=True, cache=cache).raise_on_failure()
        assert first.n_simulated == 4
        again = run_many(specs, vectorize=True, cache=cache).raise_on_failure()
        assert again.n_cached == 4
        for a, b in zip(first.outcomes, again.outcomes, strict=True):
            assert np.array_equal(a.result.stage_means, b.result.stage_means)
            assert np.array_equal(
                a.result.tracked.complete_rows(), b.result.tracked.complete_rows()
            )

    def test_no_aliasing_with_serial_cache_entries(self, tmp_path):
        specs = spec_batch(3)
        cache = ResultCache(tmp_path / "cache")
        run_many(specs, vectorize=True, cache=cache).raise_on_failure()
        serial = run_many(specs, cache=cache).raise_on_failure()
        # marked digests differ, so the serial batch cannot be served
        # from the batched entries
        assert serial.n_simulated == 3 and serial.n_cached == 0

    def test_partial_cache_reruns_whole_group_consistently(self, tmp_path):
        specs = spec_batch(4)
        cache = ResultCache(tmp_path / "cache")
        full = run_many(specs, vectorize=True, cache=cache).raise_on_failure()
        # evict one member; the group re-runs but every result must
        # reproduce (stacked runs are pure functions of the seed list)
        marked, _ = group_for_vectorize(resolve_seeds(specs))
        for path in cache._entry_paths(marked[2].digest):
            path.unlink()
        partial = run_many(specs, vectorize=True, cache=cache).raise_on_failure()
        assert partial.n_cached == 3 and partial.n_simulated == 1
        for a, b in zip(full.outcomes, partial.outcomes, strict=True):
            assert np.array_equal(a.result.stage_means, b.result.stage_means)

    def test_single_replica_batch_matches_serial_digest_and_result(self):
        """A 1-spec 'group' runs serial and shares the serial digest."""
        specs = spec_batch(1)
        vec = run_many(specs, vectorize=True).raise_on_failure()
        ser = run_many(specs).raise_on_failure()
        assert vec.outcomes[0].spec.digest == ser.outcomes[0].spec.digest
        assert np.array_equal(
            vec.outcomes[0].result.stage_means, ser.outcomes[0].result.stage_means
        )

    def test_atomic_group_failure(self, monkeypatch):
        import repro.simulation.batched as batched_mod

        def boom(*args, **kwargs):
            raise RuntimeError("injected batched failure")

        monkeypatch.setattr(batched_mod, "run_stacked", boom)
        specs = [
            *spec_batch(3),
            ExperimentSpec(config=base_config(n_stages=4, seed=9), n_cycles=1_200),
        ]
        batch = run_many(specs, vectorize=True, retries=1)
        assert batch.n_failed == 3
        assert batch.n_simulated == 1  # the singleton ran serially
        for o in batch.failures():
            assert o.attempts == 2
            assert "injected batched failure" in o.error

    def test_vectorize_rejects_task_fn_and_chunksize(self):
        specs = spec_batch(2)
        with pytest.raises(ExecutionError, match="task_fn"):
            run_many(specs, vectorize=True, task_fn=lambda s: None)
        with pytest.raises(ExecutionError, match="chunksize"):
            run_many(specs, vectorize=True, chunksize=2)


class TestStatisticalEquivalence:
    def test_stacked_heterogeneous_sweep_agrees_with_serial_runs(self):
        """A vectorized loads x seeds sweep (one scenario-stacked group)
        and the same specs run serially are different sample paths of
        the same system: per-load cross-replication t-intervals must
        overlap at every load."""
        from repro.simulation.replication import replicated_statistic

        loads = [0.3, 0.6]
        seeds = range(300, 308)
        specs = [
            ExperimentSpec(
                config=base_config(p=p, seed=s, n_stages=4),
                n_cycles=6_000,
                label=f"p={p}/s={s}",
            )
            for p in loads
            for s in seeds
        ]
        # sanity: the whole sweep really is one stacked group
        _, groups = group_for_vectorize(resolve_seeds(specs))
        assert groups == [(list(range(len(specs))), True)]

        vec = run_many(specs, vectorize=True).raise_on_failure()
        ser = run_many(specs).raise_on_failure()
        n_seeds = len(list(seeds))
        for j, p in enumerate(loads):
            rows = slice(j * n_seeds, (j + 1) * n_seeds)
            stat = lambda r: float(r.stage_means[0])
            a = replicated_statistic([o.result for o in vec.outcomes[rows]], stat)
            b = replicated_statistic([o.result for o in ser.outcomes[rows]], stat)
            lo_a, hi_a = a.interval()
            lo_b, hi_b = b.interval()
            assert max(lo_a, lo_b) <= min(hi_a, hi_b), (
                f"p={p}: stacked {a.interval()} vs serial {b.interval()}"
            )


class TestReplicate:
    def test_replicate_vectorized_returns_per_replica_results(self):
        config = base_config()
        results = replicate(config, 6, 1_500, vectorize=True)
        assert len(results) == 6
        assert [r.config.seed for r in results] == [1000 + i for i in range(6)]
        means = {float(r.stage_means[0]) for r in results}
        assert len(means) == 6

    def test_replicate_vectorized_is_deterministic(self):
        config = base_config()
        a = replicate(config, 4, 1_500, vectorize=True)
        b = replicate(config, 4, 1_500, vectorize=True)
        for ra, rb in zip(a, b, strict=True):
            assert np.array_equal(ra.stage_means, rb.stage_means)

"""Experiment-spec and digest tests."""

import dataclasses
import json

import pytest

from repro.errors import ExecutionError
from repro.exec.spec import (
    ExperimentSpec,
    resolve_seeds,
    spec_from_jsonable,
    specs_from_file,
)
from repro.simulation.network import NetworkConfig


def spec(**overrides):
    fields = dict(k=2, n_stages=3, p=0.5, topology="random", width=32, seed=7)
    fields.update(overrides)
    return ExperimentSpec(config=NetworkConfig(**fields), n_cycles=2_000)


class TestDigest:
    def test_equal_specs_equal_digests(self):
        assert spec().digest == spec().digest
        assert len(spec().digest) == 64

    def test_config_changes_change_digest(self):
        base = spec().digest
        assert spec(p=0.6).digest != base
        assert spec(seed=8).digest != base
        assert spec(n_stages=4).digest != base

    def test_cycles_and_warmup_in_digest(self):
        cfg = NetworkConfig(k=2, n_stages=3, p=0.5, topology="random", width=32, seed=7)
        a = ExperimentSpec(cfg, n_cycles=2_000)
        b = ExperimentSpec(cfg, n_cycles=3_000)
        c = ExperimentSpec(cfg, n_cycles=2_000, warmup=100)
        assert len({a.digest, b.digest, c.digest}) == 3

    def test_label_excluded_from_digest(self):
        cfg = NetworkConfig(k=2, n_stages=3, p=0.5, topology="random", width=32, seed=7)
        assert (
            ExperimentSpec(cfg, 2_000, label="x").digest
            == ExperimentSpec(cfg, 2_000, label="y").digest
        )

    def test_unstable_repr_rejected(self):
        class Opaque:
            pass  # default repr carries a memory address

        cfg = NetworkConfig(k=2, n_stages=3, p=0.5, topology="random", width=32, seed=7)
        bad = dataclasses.replace(cfg, track_limit=cfg.track_limit)
        object.__setattr__(bad, "service", Opaque())
        with pytest.raises(ExecutionError):
            ExperimentSpec(bad, 2_000).digest


class TestValidation:
    def test_bad_cycles(self):
        cfg = NetworkConfig(k=2, n_stages=3, p=0.5, topology="random", width=32)
        with pytest.raises(ExecutionError):
            ExperimentSpec(cfg, n_cycles=0)

    def test_bad_warmup(self):
        cfg = NetworkConfig(k=2, n_stages=3, p=0.5, topology="random", width=32)
        with pytest.raises(ExecutionError):
            ExperimentSpec(cfg, n_cycles=1_000, warmup=1_000)
        with pytest.raises(ExecutionError):
            ExperimentSpec(cfg, n_cycles=1_000, warmup=-1)

    def test_config_type_checked(self):
        with pytest.raises(ExecutionError):
            ExperimentSpec(config={"k": 2}, n_cycles=1_000)


class TestResolveSeeds:
    def unseeded(self, p):
        return ExperimentSpec(
            NetworkConfig(k=2, n_stages=3, p=p, topology="random", width=32),
            n_cycles=1_000,
        )

    def test_deterministic_by_position(self):
        specs = [self.unseeded(p) for p in (0.2, 0.4, 0.6)]
        a = resolve_seeds(specs, base_seed=11)
        b = resolve_seeds(specs, base_seed=11)
        assert [s.config.seed for s in a] == [s.config.seed for s in b]
        assert all(s.config.seed is not None for s in a)

    def test_seeds_distinct_and_base_dependent(self):
        specs = [self.unseeded(p) for p in (0.2, 0.4, 0.6)]
        seeds = [s.config.seed for s in resolve_seeds(specs, base_seed=11)]
        assert len(set(seeds)) == 3
        other = [s.config.seed for s in resolve_seeds(specs, base_seed=12)]
        assert seeds != other

    def test_explicit_seeds_untouched(self):
        explicit = spec(seed=99)
        out = resolve_seeds([explicit, self.unseeded(0.3)])
        assert out[0] is explicit
        assert out[1].config.seed is not None


class TestJsonRoundTrip:
    def test_roundtrip_preserves_digest(self):
        original = ExperimentSpec(
            NetworkConfig(
                k=2, n_stages=4, p=0.25, sizes=(2, 4), probabilities=(0.5, 0.5),
                topology="random", width=64, seed=5,
            ),
            n_cycles=3_000,
            warmup=300,
            label="mix",
        )
        rebuilt = spec_from_jsonable(json.loads(json.dumps(original.to_jsonable())))
        assert rebuilt.digest == original.digest
        assert rebuilt.label == "mix"

    def test_unknown_fields_rejected(self):
        doc = spec().to_jsonable()
        doc["config"]["bogus"] = 1
        with pytest.raises(ExecutionError):
            spec_from_jsonable(doc)

    def test_spec_file(self, tmp_path):
        path = tmp_path / "specs.json"
        path.write_text(json.dumps([spec().to_jsonable(), spec(p=0.3).to_jsonable()]))
        specs = specs_from_file(path)
        assert len(specs) == 2
        assert specs[0].digest != specs[1].digest

    def test_bad_spec_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ExecutionError):
            specs_from_file(path)

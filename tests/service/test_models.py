"""Unit + statistical tests for the service-time models."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.series.pgf import PGF
from repro.service import (
    DeterministicService,
    GeneralService,
    GeometricService,
    MultiSizeService,
)


def rng():
    return np.random.default_rng(99)


class TestDeterministicService:
    def test_moments(self):
        s = DeterministicService(4)
        assert s.mean == 4
        assert s.variance() == 0
        assert s.factorial_moment(2) == 12  # m(m-1)
        assert s.factorial_moment(3) == 24  # m(m-1)(m-2)

    def test_sampler_constant(self):
        s = DeterministicService(3)
        assert (s.sample(rng(), 100) == 3).all()

    def test_validation(self):
        with pytest.raises(ModelError):
            DeterministicService(0)
        with pytest.raises(ModelError):
            DeterministicService(2.5)


class TestGeometricService:
    def test_paper_moments(self):
        """m = 1/mu, U''(1) = 2(1-mu)/mu^2, U'''(1) = 6(1-mu)^2/mu^3."""
        mu = Fraction(1, 3)
        s = GeometricService(mu)
        assert s.mean == 3
        assert s.factorial_moment(2) == 2 * (1 - mu) / mu ** 2
        assert s.factorial_moment(3) == 6 * (1 - mu) ** 2 / mu ** 3

    def test_mu_one_is_unit_service(self):
        s = GeometricService(1)
        assert s.mean == 1
        assert s.variance() == 0

    def test_sampler_matches_pgf(self):
        s = GeometricService(0.5)
        assert s.empirical_pgf_check(rng(), n_samples=100_000, max_value=16) < 0.01

    def test_validation(self):
        with pytest.raises(ModelError):
            GeometricService(0)
        with pytest.raises(ModelError):
            GeometricService(1.2)


class TestMultiSizeService:
    def test_paper_moments(self):
        """m = sum g_i m_i, U''(1) = sum m_i (m_i - 1) g_i."""
        s = MultiSizeService([4, 8], [0.5, 0.5])
        assert s.mean == 6
        assert s.factorial_moment(2) == Fraction(1, 2) * 12 + Fraction(1, 2) * 56

    def test_single_component_is_deterministic(self):
        assert MultiSizeService([5], [1]).pgf() == DeterministicService(5).pgf()

    def test_sampler_matches_pgf(self):
        s = MultiSizeService([1, 4], [0.75, 0.25])
        assert s.empirical_pgf_check(rng(), n_samples=100_000, max_value=6) < 0.01

    def test_validation(self):
        with pytest.raises(ModelError):
            MultiSizeService([1, 2], [0.5])
        with pytest.raises(ModelError):
            MultiSizeService([], [])
        with pytest.raises(ModelError):
            MultiSizeService([0], [1])
        with pytest.raises(ModelError):
            MultiSizeService([2, 2], [0.5, 0.5])
        with pytest.raises(ModelError):
            MultiSizeService([1, 2], [0.4, 0.4])


class TestGeneralService:
    def test_from_pmf(self):
        s = GeneralService([0, 0.5, 0.5])
        assert s.mean == Fraction(3, 2)

    def test_from_pgf(self):
        s = GeneralService(PGF.geometric(Fraction(1, 2)))
        assert s.mean == 2

    def test_rejects_mass_at_zero(self):
        with pytest.raises(ModelError):
            GeneralService([0.1, 0.9])

    def test_sampler_matches_pgf(self):
        s = GeneralService([0, 0.2, 0.3, 0.5])
        assert s.empirical_pgf_check(rng(), n_samples=100_000, max_value=6) < 0.01

    def test_rejects_garbage(self):
        with pytest.raises(ModelError):
            GeneralService(42)


class TestProperties:
    @given(m=st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_factorial_moments_are_falling_factorials(self, m):
        s = DeterministicService(m)
        assert s.factorial_moment(2) == m * (m - 1)
        assert s.factorial_moment(3) == m * (m - 1) * (m - 2)

    @given(
        mu_num=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=20, deadline=None)
    def test_geometric_variance_identity(self, mu_num):
        mu = Fraction(mu_num, 10)
        s = GeometricService(mu)
        assert s.variance() == (1 - mu) / mu ** 2

"""Self-validation harness tests."""

from repro.analysis.validate import (
    ValidationCheck,
    render_validation,
    run_validation,
)


class TestValidation:
    def test_all_checks_pass(self):
        checks = run_validation(n_cycles=5_000)
        failures = [c for c in checks if not c.passed]
        assert not failures, "\n".join(f"{c.name}: {c.detail}" for c in failures)
        assert len(checks) == 6

    def test_render(self):
        checks = [
            ValidationCheck("ok", True, "fine", 0.1),
            ValidationCheck("bad", False, "broken", 0.2),
        ]
        text = render_validation(checks)
        assert "[PASS] ok" in text
        assert "[FAIL] bad" in text
        assert "1/2 checks passed" in text


class TestReportSmoke:
    def test_report_generates_reduced(self):
        from repro.analysis.experiments_report import generate_experiments_markdown

        # smallest meaningful scope: one figure depth, short runs
        text = generate_experiments_markdown(n_cycles=2_000, figure_depths=(3,))
        assert "# EXPERIMENTS" in text
        assert "Table I" in text
        assert "Table XII" in text
        assert "| 8 |" in text  # figure rows rendered

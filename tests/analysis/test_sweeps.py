"""Parameter-sweep utility tests."""

import pytest

from repro.analysis.sweeps import (
    load_sweep,
    message_size_sweep,
    sweep,
    switch_size_sweep,
)
from repro.errors import AnalysisError

FAST = dict(n_cycles=5_000)


class TestLoadSweep:
    def test_points_align_with_predictions(self):
        rows = load_sweep(loads=(0.3, 0.6), n_stages=5, **FAST)
        assert len(rows) == 2
        for r in rows:
            # first-stage CI brackets the exact prediction
            assert (
                abs(r.first_stage_mean - r.predicted_first_mean)
                < max(3 * r.first_stage_ci, 0.02)
            )
            assert r.agreement() < 0.15
        # waits rise with load
        assert rows[0].total_mean < rows[1].total_mean

    def test_labels(self):
        rows = load_sweep(loads=(0.5,), n_stages=5, **FAST)
        assert rows[0].label == "p=0.5"


class TestOtherSweeps:
    def test_switch_size_sweep_shape(self):
        rows = switch_size_sweep(degrees=(2, 4), **FAST)
        # Eq. (6): waits rise with k at fixed load
        assert rows[0].predicted_first_mean < rows[1].predicted_first_mean
        assert rows[0].first_stage_mean < rows[1].first_stage_mean

    def test_message_size_sweep_linear(self):
        rows = message_size_sweep(sizes=(2, 4), n_cycles=8_000)
        assert rows[1].predicted_limit_mean == pytest.approx(
            2 * rows[0].predicted_limit_mean
        )
        assert rows[1].deep_stage_mean == pytest.approx(
            2 * rows[0].deep_stage_mean, rel=0.2
        )


class TestExecutionRouting:
    def test_sweep_is_cache_served_on_repeat(self, tmp_path):
        from repro.exec import ExecutionContext, ResultCache, use_execution

        cache = ResultCache(tmp_path / "cache")
        with use_execution(ExecutionContext(cache=cache)):
            first = load_sweep(loads=(0.3, 0.5), n_stages=4, n_cycles=3_000)
            assert (cache.hits, cache.misses) == (0, 2)
            second = load_sweep(loads=(0.3, 0.5), n_stages=4, n_cycles=3_000)
        assert (cache.hits, cache.misses) == (2, 2)  # repeat: zero new simulations
        for a, b in zip(first, second, strict=True):
            assert a.total_mean == b.total_mean
            assert a.first_stage_ci == b.first_stage_ci

    def test_load_sweep_fuses_under_vectorized_context(self, tmp_path):
        """With vectorize on, a whole load sweep is one scenario-stacked
        engine run; the fused results still bracket the predictions and
        occupy cache keys disjoint from serial ones."""
        from repro.exec import ExecutionContext, ResultCache, use_execution

        cache = ResultCache(tmp_path / "cache")
        grid = dict(loads=(0.3, 0.5, 0.7), n_stages=4, n_cycles=4_000)
        with use_execution(ExecutionContext(cache=cache, vectorize=True)):
            rows = load_sweep(**grid)
            assert (cache.hits, cache.misses) == (0, 3)
            again = load_sweep(**grid)
            assert (cache.hits, cache.misses) == (3, 3)
        for a, b in zip(rows, again, strict=True):
            assert a.first_stage_mean == b.first_stage_mean
        for r in rows:
            assert (
                abs(r.first_stage_mean - r.predicted_first_mean)
                < max(3 * r.first_stage_ci, 0.02)
            )
        # stacked entries are scenario-batched: the same grid run
        # serially cannot be served from them (no cache aliasing)
        with use_execution(ExecutionContext(cache=cache)):
            load_sweep(**grid)
        assert cache.misses == 6

    def test_first_stage_ci_brackets_cohort_mean(self):
        # the CI is batch means over the tracked cohort's first-stage
        # column, so it must bracket that cohort's own mean
        rows = load_sweep(loads=(0.5,), n_stages=4, **FAST)
        assert rows[0].first_stage_ci > 0


class TestValidation:
    def test_misaligned_inputs(self):
        with pytest.raises(AnalysisError):
            sweep([], ["x"], [])

    def test_too_few_tracked_messages(self):
        from repro.core.later_stages import LaterStageModel
        from repro.simulation.network import NetworkConfig

        cfg = NetworkConfig(
            k=2, n_stages=3, p=0.01, topology="random", width=16, seed=1,
            track_limit=5,
        )
        with pytest.raises(AnalysisError):
            sweep([cfg], ["tiny"], [LaterStageModel(k=2, p=0.01)], n_cycles=2_000)

"""Experiment-harness tests (fast settings: structure, not statistics)."""

import numpy as np
import pytest

from repro.analysis import compare, tables
from repro.analysis.figures import FIGURE_CONFIGS, figure_waiting_histogram
from repro.analysis.report import render_figure, render_lag_profile

FAST = dict(n_cycles=2_500)


class TestCompare:
    def test_relative_error(self):
        assert compare.relative_error(2.0, 1.0) == 0.5
        assert compare.relative_error(0.0, 0.0) == 0.0

    def test_max_relative_error(self):
        assert compare.max_relative_error([1.0, 2.0], [1.1, 2.0]) == pytest.approx(0.1)

    def test_comparison_row(self):
        row = compare.ComparisonRow("x", simulated=2.0, predicted=1.8)
        assert row.error == pytest.approx(0.1)
        assert "x" in str(row)


class TestStageTables:
    def test_table_I_structure(self):
        result = tables.table_I(loads=(0.5,), n_stages=4, **FAST)
        assert result.table_id == "I"
        assert len(result.columns) == 1
        col = result.columns[0]
        assert col.stage_means.shape == (4,)
        assert col.analysis_mean == pytest.approx(0.25)
        assert col.estimate_mean == pytest.approx(0.30)
        text = result.to_text()
        assert "ANALYSIS" in text and "ESTIMATE" in text

    def test_table_I_to_dict_json_ready(self):
        import json

        result = tables.table_I(loads=(0.5,), n_stages=3, **FAST)
        payload = json.dumps(result.to_dict())
        assert '"table": "I"' in payload

    def test_table_II_structure(self):
        result = tables.table_II(degrees=(2,), n_stages=3, **FAST)
        assert result.columns[0].label == "k=2"

    def test_table_III_structure(self):
        result = tables.table_III(sizes=(4,), n_stages=4, **FAST)
        col = result.columns[0]
        assert col.analysis_mean == pytest.approx(1.75)
        assert col.estimate_mean == pytest.approx(1.2)

    def test_table_IV_pure_and_mixed(self):
        result = tables.table_IV(mixes=((1.0, 0.0), (0.5, 0.5)), n_stages=4, **FAST)
        assert len(result.columns) == 2

    def test_table_V_structure(self):
        result = tables.table_V(biases=(0.0, 0.5), n_stages=4, **FAST)
        assert result.columns[1].estimate_mean == pytest.approx(0.20625)

    def test_table_VI_structure(self):
        result = tables.table_VI(n_stages=5, **FAST)
        assert result.simulated.shape == (5, 5)
        assert result.chain_a == pytest.approx(0.12)
        assert result.model_correlation(0) == 1.0
        assert "lag" in result.to_text()


class TestTotalsTables:
    def test_structure(self):
        result = tables.table_totals("IX", depths=(3,), **FAST)
        assert result.p == 0.5 and result.m == 1
        row = result.rows[0]
        assert row.stages == 3
        assert row.pred_mean == pytest.approx(0.822, abs=0.01)
        assert row.pred_variance > row.pred_variance_independent
        assert "TABLE IX" in result.to_text()

    def test_totals_to_dict_json_ready(self):
        import json

        result = tables.table_totals("VII", depths=(3,), **FAST)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["rows"][0]["stages"] == 3

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            tables.table_totals("XIII")

    def test_config_map_complete(self):
        assert sorted(tables.TOTALS_CONFIGS) == ["IX", "VII", "VIII", "X", "XI", "XII"]


class TestFigures:
    def test_figure_structure(self):
        result = figure_waiting_histogram(5, stages=3, **FAST)
        assert result.histogram.shape == result.gamma_bins.shape
        assert result.histogram.sum() <= 1.0 + 1e-9
        assert 0 <= result.total_variation_distance() <= 1

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            figure_waiting_histogram(2, stages=3, **FAST)

    def test_config_map_matches_totals(self):
        # Figures 3-8 pair with Tables VII-XII
        assert sorted(FIGURE_CONFIGS) == [3, 4, 5, 6, 7, 8]

    def test_render_figure(self):
        result = figure_waiting_histogram(3, stages=3, **FAST)
        art = render_figure(result, width=30, max_rows=6)
        assert "Figure 3" in art
        assert "|" in art

    def test_render_lag_profile(self):
        out = render_lag_profile(np.array([0.1, 0.05]), np.array([0.12, 0.048]))
        assert "lag" in out


class TestDefaultCycles:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CYCLES", "7000")
        assert tables.default_cycles() == 7000

    def test_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CYCLES", "10")
        assert tables.default_cycles() == 2000

    def test_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CYCLES", raising=False)
        assert tables.default_cycles(1234) == 1234

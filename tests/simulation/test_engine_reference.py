"""Differential tests: vectorised engine vs the naive reference model.

Both simulators consume *identical pre-generated traffic*; the test
demands identical per-message waiting times at every stage.  Scenarios
are both hand-picked (multi-packet, store-and-forward, finite buffers)
and hypothesis-generated.
"""

from typing import List

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import ClockedEngine
from repro.simulation.topology import OmegaTopology, RandomRoutingTopology
from repro.simulation.traffic import CycleArrivals

from tests.simulation.reference_model import ReferenceNetwork


class ScriptedTraffic:
    """Replays a pre-generated traffic script into the engine."""

    def __init__(self, width: int, script: List[tuple]) -> None:
        self.width = width
        self._script = list(script)
        self._cursor = 0
        self.injected = 0

    def generate(self) -> CycleArrivals:
        if self._cursor >= len(self._script):
            empty = np.empty(0, dtype=np.int64)
            return CycleArrivals(empty, empty, empty)
        sources, dests, services, _ids = self._script[self._cursor]
        self._cursor += 1
        self.injected += len(sources)
        return CycleArrivals(
            np.asarray(sources, dtype=np.int64),
            np.asarray(dests, dtype=np.int64),
            np.asarray(services, dtype=np.int64),
        )


def make_script(rng, width, dest_space, n_cycles, p, max_service=1, bulk=1):
    """Random traffic script: per-cycle (sources, dests, services, ids)."""
    script = []
    next_id = 0
    for _ in range(n_cycles):
        active = np.flatnonzero(rng.random(width) < p)
        dests = rng.integers(0, dest_space, size=active.size)
        if bulk > 1:
            active = np.repeat(active, bulk)
            dests = np.repeat(dests, bulk)
        services = rng.integers(1, max_service + 1, size=active.size)
        ids = np.arange(next_id, next_id + active.size)
        next_id += active.size
        script.append((active, dests, services, ids))
    return script


def run_both(topology, script, transfer="cut_through", buffer_capacity=None):
    n_cycles = len(script)
    total_msgs = sum(len(s[0]) for s in script)

    traffic = ScriptedTraffic(topology.width, script)
    engine = ClockedEngine(
        topology,
        traffic,
        transfer=transfer,
        buffer_capacity=buffer_capacity,
        track_limit=max(total_msgs, 1),
    )
    engine.run(n_cycles + 200, warmup=0)  # drain

    ref = ReferenceNetwork(
        topology, transfer=transfer, buffer_capacity=buffer_capacity
    )
    ref.run_with_traffic(script)
    for _ in range(200):
        ref.step_service()
    return engine, ref


def assert_identical(engine, ref, topology):
    waits = engine.tracker.waits[: engine.tracker.allocated]
    for (msg_id, stage), ref_wait in ref.waits.items():
        got = waits[msg_id, stage]
        assert got == ref_wait, (
            f"message {msg_id} stage {stage}: engine={got} reference={ref_wait}"
        )
    # both saw every service event (unless drops occurred)
    engine_events = int((waits >= 0).sum())
    assert engine_events == len(ref.waits)
    assert engine.completed >= len(ref.completed)  # engine counts non-tracked too


class TestHandPicked:
    def test_unit_service_banyan(self):
        topo = OmegaTopology(2, 3)
        script = make_script(np.random.default_rng(0), 8, 8, 60, p=0.6)
        engine, ref = run_both(topo, script)
        assert_identical(engine, ref, topo)

    def test_multi_packet_cut_through(self):
        topo = OmegaTopology(2, 3)
        script = [
            (np.array([0, 3]), np.array([5, 5]), np.array([4, 4]), np.array([0, 1])),
            (np.array([1]), np.array([5]), np.array([2]), np.array([2])),
            *((np.array([], dtype=int),) * 4 for _ in range(20)),
        ]
        engine, ref = run_both(topo, script)
        assert_identical(engine, ref, topo)

    def test_store_and_forward(self):
        topo = OmegaTopology(2, 2)
        script = make_script(np.random.default_rng(2), 4, 4, 50, p=0.3, max_service=3)
        engine, ref = run_both(topo, script, transfer="store_forward")
        assert_identical(engine, ref, topo)

    def test_finite_buffers_drop_identically(self):
        topo = OmegaTopology(2, 2)
        script = make_script(np.random.default_rng(3), 4, 4, 80, p=0.9, max_service=2)
        engine, ref = run_both(topo, script, buffer_capacity=2)
        assert engine.queues.dropped == ref.dropped
        assert_identical(engine, ref, topo)

    def test_width_decoupled_topology(self):
        topo = RandomRoutingTopology(2, 5, width=8)
        script = make_script(
            np.random.default_rng(4), 8, topo.destination_space, 60, p=0.5
        )
        engine, ref = run_both(topo, script)
        assert_identical(engine, ref, topo)

    def test_bulk_arrivals(self):
        topo = OmegaTopology(2, 3)
        script = make_script(np.random.default_rng(5), 8, 8, 40, p=0.3, bulk=2)
        engine, ref = run_both(topo, script)
        assert_identical(engine, ref, topo)


class TestHypothesisDifferential:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.sampled_from([2, 3]),
        n_stages=st.integers(min_value=1, max_value=3),
        p=st.floats(min_value=0.1, max_value=0.9),
        max_service=st.integers(min_value=1, max_value=4),
        transfer=st.sampled_from(["cut_through", "store_forward"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_scenarios(self, seed, k, n_stages, p, max_service, transfer):
        topo = OmegaTopology(k, n_stages)
        script = make_script(
            np.random.default_rng(seed), topo.width, topo.width, 30,
            p=p, max_service=max_service,
        )
        engine, ref = run_both(topo, script, transfer=transfer)
        assert_identical(engine, ref, topo)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        capacity=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_finite_buffer_scenarios(self, seed, capacity):
        topo = OmegaTopology(2, 2)
        script = make_script(
            np.random.default_rng(seed), 4, 4, 40, p=0.8, max_service=2
        )
        engine, ref = run_both(topo, script, buffer_capacity=capacity)
        assert engine.queues.dropped == ref.dropped
        assert_identical(engine, ref, topo)

"""Replica-batched engine: serial equivalence and statistical validity.

Two layers of evidence that the stacked path simulates the same system
as :class:`~repro.simulation.engine.ClockedEngine`:

* **bit-for-bit at R=1** -- a one-replica batch shares the serial
  engine's seeding (``SeedSequence([s]) == SeedSequence(s)``) and
  consumes the RNG stream identically, so every statistic must match
  exactly, across traffic/service/topology/transfer variants;
* **statistically at R=32** -- the cross-replication t-interval on the
  mean first-stage wait must cover Theorem 1's exact ``E[w]`` at load
  points up to ``rho = 0.9`` (heavy traffic, where a subtly wrong
  queue discipline shows up first).
"""

import numpy as np
import pytest

from repro.arrivals.bernoulli import UniformTraffic
from repro.core.first_stage import FirstStageQueue
from repro.errors import SimulationError
from repro.service.deterministic import DeterministicService
from repro.simulation.batched import BatchedClockedEngine, run_batched, run_stacked
from repro.simulation.network import NetworkConfig, NetworkSimulator
from repro.simulation.replication import replicated_statistic
from repro.simulation.stats import BatchedTrackedMessages, TrackedMessages


def assert_results_identical(serial, batched):
    assert np.array_equal(serial.stage_counts, batched.stage_counts)
    assert np.array_equal(serial.stage_means, batched.stage_means, equal_nan=True)
    assert np.array_equal(
        serial.stage_variances, batched.stage_variances, equal_nan=True
    )
    assert serial.injected == batched.injected
    assert serial.completed == batched.completed
    assert serial.max_occupancy == batched.max_occupancy
    assert serial.dropped == batched.dropped == 0
    assert np.array_equal(
        serial.tracked.complete_rows(), batched.tracked.complete_rows()
    )


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(k=2, n_stages=3, p=0.5, topology="omega"),
        dict(k=2, n_stages=6, p=0.7, topology="random", width=8),
        dict(k=2, n_stages=3, p=0.4, topology="butterfly", bulk_size=2),
        dict(k=2, n_stages=3, p=0.5, topology="baseline", q=0.3),
        dict(
            k=2, n_stages=3, p=0.3, message_size=3, transfer="store_forward"
        ),
        dict(k=2, n_stages=3, p=0.4, sizes=(1, 3), probabilities=(0.5, 0.5)),
        dict(k=4, n_stages=2, p=0.6, topology="omega"),
    ],
    ids=["omega", "random-deep", "bulk", "favourite", "store-forward",
         "multisize", "k4"],
)
def test_single_replica_bit_identical_to_serial(kwargs):
    config = NetworkConfig(seed=42, **kwargs)
    serial = NetworkSimulator(config).run(n_cycles=2_000)
    [batched] = run_batched(config, [42], 2_000)
    assert_results_identical(serial, batched)
    assert batched.config == config
    assert batched.warmup == serial.warmup


def test_replicas_differ_and_carry_their_seeds():
    config = NetworkConfig(k=2, n_stages=3, p=0.5, topology="random", width=16)
    seeds = [7, 8, 9]
    results = run_batched(config, seeds, 2_000)
    assert [r.config.seed for r in results] == seeds
    means = [r.stage_means[0] for r in results]
    assert len(set(means)) == len(means), "replicas produced identical paths"
    for r in results:
        assert r.stage_means.shape == (config.n_stages,)
        assert r.stage_counts.sum() > 0
        assert r.tracked.complete_rows().shape[1] == config.n_stages


def test_per_replica_conservation():
    """Injected/completed/occupancy bookkeeping is per replica."""
    config = NetworkConfig(k=2, n_stages=3, p=0.6, topology="omega")
    results = run_batched(config, [1, 2, 3, 4], 3_000)
    for r in results:
        assert r.injected >= r.completed > 0
        assert r.max_occupancy >= 1


@pytest.mark.parametrize("p,n_cycles,warmup", [
    (0.3, 6_000, None),
    (0.6, 6_000, None),
    # rho = 0.9: the relaxation time scales like 1/(1-rho)^2, and short
    # runs bias the sampled mean visibly upward -- heavy traffic needs
    # a longer horizon and warm-up to meet the exact value
    (0.9, 16_000, 3_000),
])
def test_r32_interval_covers_theorem_1(p, n_cycles, warmup):
    """32-replica t-interval on the first-stage mean vs exact E[w]."""
    config = NetworkConfig(k=2, n_stages=4, p=p, topology="random", width=16)
    results = run_batched(config, list(range(500, 532)), n_cycles, warmup=warmup)
    exact = float(
        FirstStageQueue(UniformTraffic(2, p), DeterministicService(1)).waiting_mean()
    )
    stat = replicated_statistic(results, lambda r: float(r.stage_means[0]))
    assert stat.covers(exact), (
        f"p={p}: interval {stat.interval()} misses exact E[w]={exact:.4f}"
    )


# ----------------------------------------------------------------------
# scenario stacking (run_stacked): heterogeneous parameter batches
# ----------------------------------------------------------------------
def test_stacked_identical_rows_bit_identical_to_run_batched():
    """Anchor 1: a 'heterogeneous' batch whose rows happen to be
    identical must reproduce the homogeneous batched engine exactly."""
    from dataclasses import replace

    config = NetworkConfig(
        k=2, n_stages=4, p=0.6, topology="random", width=16, bulk_size=2
    )
    seeds = [11, 12, 13, 14]
    stacked = run_stacked([replace(config, seed=s) for s in seeds], 3_000)
    batched = run_batched(config, seeds, 3_000)
    for a, b in zip(stacked, batched, strict=True):
        assert_results_identical(a, b)
        assert a.config == b.config


def test_stacked_single_scenario_bit_identical_to_serial():
    """Anchor 2: an R=1 stack reproduces ClockedEngine bit-for-bit."""
    config = NetworkConfig(
        k=2, n_stages=3, p=0.5, topology="omega", q=0.3, seed=42
    )
    serial = NetworkSimulator(config).run(n_cycles=2_000)
    [stacked] = run_stacked([config], 2_000)
    assert_results_identical(serial, stacked)


def test_stacked_load_sweep_intervals_cover_theorem_1():
    """Anchor 3: one stacked grid over loads x seeds; each load's
    cross-replication t-interval must cover Theorem 1's exact E[w]."""
    from dataclasses import replace

    base = NetworkConfig(k=2, n_stages=4, p=0.5, topology="random", width=16)
    loads = [0.3, 0.6]
    seeds = range(700, 716)
    configs = [
        replace(base, p=p, seed=s) for p in loads for s in seeds
    ]
    results = run_stacked(configs, 8_000)
    n_seeds = len(list(seeds))
    for j, p in enumerate(loads):
        per_load = results[j * n_seeds : (j + 1) * n_seeds]
        assert all(r.config.p == p for r in per_load)
        exact = float(
            FirstStageQueue(
                UniformTraffic(2, p), DeterministicService(1)
            ).waiting_mean()
        )
        stat = replicated_statistic(per_load, lambda r: float(r.stage_means[0]))
        assert stat.covers(exact), (
            f"p={p}: interval {stat.interval()} misses exact E[w]={exact:.4f}"
        )


def test_stacked_results_track_their_own_scenario():
    """Per-replica statistics respond to that replica's parameters."""
    from dataclasses import replace

    base = NetworkConfig(k=2, n_stages=3, p=0.2, topology="random", width=16)
    configs = [replace(base, p=p, seed=9) for p in (0.2, 0.9)]
    light, heavy = run_stacked(configs, 4_000)
    assert heavy.injected > 2 * light.injected
    assert heavy.stage_means[0] > light.stage_means[0]


def test_stacked_rejects_shape_mismatches():
    from dataclasses import replace

    base = NetworkConfig(k=2, n_stages=3, p=0.5, topology="random", width=16)
    with pytest.raises(SimulationError, match="n_stages"):
        run_stacked([base, replace(base, n_stages=4)], 1_000)
    with pytest.raises(SimulationError, match="width"):
        run_stacked([base, replace(base, width=8)], 1_000)
    with pytest.raises(SimulationError, match="at least one"):
        run_stacked([], 1_000)


def test_rejects_finite_buffers_and_auto_warmup():
    config = NetworkConfig(k=2, n_stages=3, p=0.5, buffer_capacity=4)
    with pytest.raises(SimulationError, match="infinite buffers"):
        run_batched(config, [1, 2], 1_000)
    ok = NetworkConfig(k=2, n_stages=3, p=0.5)
    with pytest.raises(SimulationError, match="auto"):
        run_batched(ok, [1, 2], 1_000, warmup="auto")
    with pytest.raises(SimulationError):
        run_batched(ok, [], 1_000)
    with pytest.raises(SimulationError):
        run_batched(ok, [1], 1_000, warmup=1_000)


def test_engine_validates_replica_mismatch():
    config = NetworkConfig(k=2, n_stages=3, p=0.5)
    topology = config.build_topology()
    traffic = config.build_traffic(np.random.default_rng(0), topology, n_replicas=2)
    with pytest.raises(SimulationError, match="replicas"):
        BatchedClockedEngine(topology, traffic, 3)


def test_batched_tracker_matches_serial_allocation():
    """Per-replica slot ids replay the serial tracker's sequence."""
    rng = np.random.default_rng(5)
    batched = BatchedTrackedMessages(n_replicas=3, limit=10, n_stages=2)
    serials = [TrackedMessages(10, 2) for _ in range(3)]
    for _ in range(20):
        counts = rng.integers(0, 4, size=3)
        replicas = np.repeat(np.arange(3), counts)
        got = batched.allocate(replicas)
        expected = np.concatenate(
            [serials[r].allocate(int(c)) for r, c in enumerate(counts)]
        ) if replicas.size else np.empty(0, dtype=np.int64)
        # serial ids are replica-local; batched ids are offset by r*limit
        offset = np.where(expected >= 0, replicas * 10, 0)
        assert np.array_equal(got, expected + offset)


def test_batched_tracker_rows_partition_by_replica():
    tracker = BatchedTrackedMessages(n_replicas=2, limit=4, n_stages=1)
    ids = tracker.allocate(np.array([0, 0, 1]))
    tracker.record(ids, np.zeros(3, dtype=np.int64), np.array([1.0, 2.0, 3.0]))
    assert tracker.replica_tracker(0).complete_rows().ravel().tolist() == [1.0, 2.0]
    assert tracker.replica_tracker(1).complete_rows().ravel().tolist() == [3.0]


def test_elapsed_seconds_is_amortised():
    config = NetworkConfig(k=2, n_stages=3, p=0.5)
    results = run_batched(config, [1, 2, 3, 4], 1_500)
    per_replica = {r.elapsed_seconds for r in results}
    assert len(per_replica) == 1 and per_replica.pop() > 0

"""Output-statistics estimator tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.stats import (
    StageAccumulator,
    TrackedMessages,
    batch_means_ci,
    histogram_pmf,
)


class TestStageAccumulator:
    def test_streaming_moments(self):
        acc = StageAccumulator(2)
        rng = np.random.default_rng(0)
        data0 = rng.exponential(2.0, size=5000)
        data1 = rng.exponential(5.0, size=5000)
        for i in range(0, 5000, 100):
            acc.add(np.zeros(100, dtype=int), data0[i : i + 100])
            acc.add(np.ones(100, dtype=int), data1[i : i + 100])
        assert acc.means() == pytest.approx([data0.mean(), data1.mean()])
        assert acc.variances() == pytest.approx(
            [data0.var(ddof=1), data1.var(ddof=1)], rel=1e-9
        )

    def test_empty_stage_is_nan(self):
        acc = StageAccumulator(2)
        acc.add(np.zeros(3, dtype=int), np.ones(3))
        assert np.isnan(acc.means()[1])
        assert np.isnan(acc.variances()[1])

    def test_no_samples_noop(self):
        acc = StageAccumulator(1)
        acc.add(np.array([], dtype=int), np.array([]))
        assert acc.count[0] == 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            StageAccumulator(0)


class TestTrackedMessages:
    def test_allocation_caps_at_limit(self):
        t = TrackedMessages(limit=3, n_stages=2)
        ids = t.allocate(5)
        assert ids.tolist() == [0, 1, 2, -1, -1]
        assert t.allocate(2).tolist() == [-1, -1]

    def test_complete_rows_filter(self):
        t = TrackedMessages(limit=4, n_stages=2)
        t.allocate(4)
        t.record(np.array([0, 1]), np.array([0, 0]), np.array([1.0, 2.0]))
        t.record(np.array([0]), np.array([1]), np.array([3.0]))
        rows = t.complete_rows()
        assert rows.shape == (1, 2)
        assert rows[0].tolist() == [1.0, 3.0]

    def test_totals(self):
        t = TrackedMessages(limit=2, n_stages=3)
        t.allocate(1)
        for s, w in enumerate([1.0, 0.0, 2.5]):
            t.record(np.array([0]), np.array([s]), np.array([w]))
        assert t.totals().tolist() == [3.5]

    def test_untracked_records_ignored(self):
        t = TrackedMessages(limit=2, n_stages=1)
        t.record(np.array([-1]), np.array([0]), np.array([9.0]))
        assert t.complete_rows().shape[0] == 0

    def test_correlations_need_samples(self):
        t = TrackedMessages(limit=2, n_stages=2)
        with pytest.raises(SimulationError):
            t.stage_correlations()

    def test_correlations_of_independent_streams(self):
        rng = np.random.default_rng(1)
        t = TrackedMessages(limit=5000, n_stages=2)
        ids = t.allocate(5000)
        for s in range(2):
            t.record(ids, np.full(5000, s), rng.normal(size=5000))
        corr = t.stage_correlations()
        assert corr[0, 0] == pytest.approx(1.0)
        assert abs(corr[0, 1]) < 0.05


class TestBatchMeans:
    def test_iid_coverage(self):
        rng = np.random.default_rng(10)
        hits = 0
        for _ in range(40):
            sample = rng.normal(3.0, 1.0, size=2000)
            ci = batch_means_ci(sample, n_batches=20)
            hits += ci.low <= 3.0 <= ci.high
        assert hits >= 30  # ~95% nominal

    def test_validation(self):
        with pytest.raises(SimulationError):
            batch_means_ci(np.ones(10), n_batches=1)
        with pytest.raises(SimulationError):
            batch_means_ci(np.ones(10), n_batches=20)

    def test_interval_endpoints(self):
        ci = batch_means_ci(np.arange(100, dtype=float), n_batches=10)
        assert ci.low < ci.mean < ci.high


class TestHistogram:
    def test_normalised(self):
        pmf = histogram_pmf(np.array([0, 0, 1, 2]))
        assert pmf.tolist() == [0.5, 0.25, 0.25]

    def test_n_bins_truncates_and_pads(self):
        pmf = histogram_pmf(np.array([0, 3]), n_bins=3)
        assert pmf.tolist() == [0.5, 0.0, 0.0]
        pmf = histogram_pmf(np.array([0]), n_bins=4)
        assert len(pmf) == 4

    def test_validation(self):
        with pytest.raises(SimulationError):
            histogram_pmf(np.array([]))
        with pytest.raises(SimulationError):
            histogram_pmf(np.array([-1.0]))

"""Output-statistics estimator tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.stats import (
    BatchedTrackedMessages,
    QuantileSketch,
    StageAccumulator,
    StreamingTotals,
    TotalsSummary,
    TrackedMessages,
    batch_means_ci,
    histogram_pmf,
)


class TestStageAccumulator:
    def test_streaming_moments(self):
        acc = StageAccumulator(2)
        rng = np.random.default_rng(0)
        data0 = rng.exponential(2.0, size=5000)
        data1 = rng.exponential(5.0, size=5000)
        for i in range(0, 5000, 100):
            acc.add(np.zeros(100, dtype=int), data0[i : i + 100])
            acc.add(np.ones(100, dtype=int), data1[i : i + 100])
        assert acc.means() == pytest.approx([data0.mean(), data1.mean()])
        assert acc.variances() == pytest.approx(
            [data0.var(ddof=1), data1.var(ddof=1)], rel=1e-9
        )

    def test_empty_stage_is_nan(self):
        acc = StageAccumulator(2)
        acc.add(np.zeros(3, dtype=int), np.ones(3))
        assert np.isnan(acc.means()[1])
        assert np.isnan(acc.variances()[1])

    def test_no_samples_noop(self):
        acc = StageAccumulator(1)
        acc.add(np.array([], dtype=int), np.array([]))
        assert acc.count[0] == 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            StageAccumulator(0)

    def test_large_offset_regression(self):
        # The naive total_sq - n*mean**2 form returns garbage (often a
        # negative "variance") for a tight sample riding a huge offset;
        # the shifted accumulator must stay exact.
        offset = 1.0e8
        sample = offset + np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        acc = StageAccumulator(1)
        acc.add(np.zeros(sample.size, dtype=int), sample)
        assert acc.means()[0] == pytest.approx(offset + 2.0, abs=1e-6)
        assert acc.variances()[0] == pytest.approx(2.5, rel=1e-12)

    def test_incremental_adds_match_single_add(self):
        # Shift assignment is first-value-wins, so chunked feeding must
        # reproduce the one-shot sums bit for bit (integer-valued data).
        rng = np.random.default_rng(7)
        waits = rng.integers(0, 50, size=1000).astype(float) + 1000.0
        stages = rng.integers(0, 3, size=1000)
        one = StageAccumulator(3)
        one.add(stages, waits)
        many = StageAccumulator(3)
        for i in range(0, 1000, 37):
            many.add(stages[i : i + 37], waits[i : i + 37])
        assert np.array_equal(one.total, many.total)
        assert np.array_equal(one.total_sq, many.total_sq)
        assert np.array_equal(one.shift, many.shift)
        assert np.array_equal(one.means(), many.means())
        assert np.array_equal(one.variances(), many.variances())

    def test_snapshot_returns_raw_moments(self):
        # Metrics samplers difference cumulative snapshots, so snapshot()
        # must keep exposing the un-shifted running sums.
        acc = StageAccumulator(1)
        sample = np.array([10.0, 12.0, 14.0])
        acc.add(np.zeros(3, dtype=int), sample)
        count, total, total_sq = acc.snapshot()
        assert count[0] == 3
        assert total[0] == sample.sum()
        assert total_sq[0] == (sample * sample).sum()


class TestTrackedMessages:
    def test_allocation_caps_at_limit(self):
        t = TrackedMessages(limit=3, n_stages=2)
        ids = t.allocate(5)
        assert ids.tolist() == [0, 1, 2, -1, -1]
        assert t.allocate(2).tolist() == [-1, -1]

    def test_complete_rows_filter(self):
        t = TrackedMessages(limit=4, n_stages=2)
        t.allocate(4)
        t.record(np.array([0, 1]), np.array([0, 0]), np.array([1.0, 2.0]))
        t.record(np.array([0]), np.array([1]), np.array([3.0]))
        rows = t.complete_rows()
        assert rows.shape == (1, 2)
        assert rows[0].tolist() == [1.0, 3.0]

    def test_totals(self):
        t = TrackedMessages(limit=2, n_stages=3)
        t.allocate(1)
        for s, w in enumerate([1.0, 0.0, 2.5]):
            t.record(np.array([0]), np.array([s]), np.array([w]))
        assert t.totals().tolist() == [3.5]

    def test_untracked_records_ignored(self):
        t = TrackedMessages(limit=2, n_stages=1)
        t.record(np.array([-1]), np.array([0]), np.array([9.0]))
        assert t.complete_rows().shape[0] == 0

    def test_correlations_need_samples(self):
        t = TrackedMessages(limit=2, n_stages=2)
        with pytest.raises(SimulationError):
            t.stage_correlations()

    def test_correlations_of_independent_streams(self):
        rng = np.random.default_rng(1)
        t = TrackedMessages(limit=5000, n_stages=2)
        ids = t.allocate(5000)
        for s in range(2):
            t.record(ids, np.full(5000, s), rng.normal(size=5000))
        corr = t.stage_correlations()
        assert corr[0, 0] == pytest.approx(1.0)
        assert abs(corr[0, 1]) < 0.05


class TestBatchMeans:
    def test_iid_coverage(self):
        rng = np.random.default_rng(10)
        hits = 0
        for _ in range(40):
            sample = rng.normal(3.0, 1.0, size=2000)
            ci = batch_means_ci(sample, n_batches=20)
            hits += ci.low <= 3.0 <= ci.high
        assert hits >= 30  # ~95% nominal

    def test_validation(self):
        with pytest.raises(SimulationError):
            batch_means_ci(np.ones(10), n_batches=1)
        with pytest.raises(SimulationError):
            batch_means_ci(np.ones(10), n_batches=20)

    def test_interval_endpoints(self):
        ci = batch_means_ci(np.arange(100, dtype=float), n_batches=10)
        assert ci.low < ci.mean < ci.high


class TestHistogram:
    def test_normalised(self):
        pmf = histogram_pmf(np.array([0, 0, 1, 2]))
        assert pmf.tolist() == [0.5, 0.25, 0.25]

    def test_n_bins_pads(self):
        pmf = histogram_pmf(np.array([0]), n_bins=4)
        assert len(pmf) == 4
        assert pmf.tolist() == [1.0, 0.0, 0.0, 0.0]

    def test_truncation_raises_by_default(self):
        with pytest.raises(SimulationError, match="1 of 2 observations"):
            histogram_pmf(np.array([0, 3]), n_bins=3)

    def test_truncation_renormalize_is_conditional_pmf(self):
        pmf = histogram_pmf(np.array([0, 0, 1, 5]), n_bins=3, tail="renormalize")
        assert pmf.tolist() == [2 / 3, 1 / 3, 0.0]
        assert pmf.sum() == pytest.approx(1.0)

    def test_truncation_keep_exposes_tail_deficit(self):
        pmf = histogram_pmf(np.array([0, 3]), n_bins=3, tail="keep")
        assert pmf.tolist() == [0.5, 0.0, 0.0]
        assert 1.0 - pmf.sum() == pytest.approx(0.5)  # the tail mass

    def test_no_truncation_all_modes_agree(self):
        for tail in ("raise", "renormalize", "keep"):
            pmf = histogram_pmf(np.array([0, 0, 1, 2]), n_bins=3, tail=tail)
            assert pmf.tolist() == [0.5, 0.25, 0.25]

    def test_validation(self):
        with pytest.raises(SimulationError):
            histogram_pmf(np.array([]))
        with pytest.raises(SimulationError):
            histogram_pmf(np.array([-1.0]))
        with pytest.raises(SimulationError):
            histogram_pmf(np.array([1.0]), tail="truncate")
        with pytest.raises(SimulationError, match="nothing to renormalize"):
            histogram_pmf(np.array([5, 6]), n_bins=2, tail="renormalize")


class TestBatchedAllocateValidation:
    def test_unsorted_replicas_raise(self):
        t = BatchedTrackedMessages(n_replicas=3, limit=4, n_stages=2)
        with pytest.raises(SimulationError, match="sorted ascending"):
            t.allocate(np.array([1, 0, 2]))

    def test_sorted_replicas_allocate_like_serial(self):
        t = BatchedTrackedMessages(n_replicas=2, limit=2, n_stages=1)
        ids = t.allocate(np.array([0, 0, 0, 1]))
        assert ids.tolist() == [0, 1, -1, 2]


class TestTotalsSummary:
    def test_matches_numpy_moments(self):
        values = np.array([3.0, 7.0, 7.0, 11.0, 30.0])
        s = TotalsSummary.from_values(values)
        assert s.count == 5
        assert s.mean == pytest.approx(values.mean())
        assert s.variance == pytest.approx(values.var(ddof=1))
        assert s.minimum == 3.0 and s.maximum == 30.0

    def test_empty(self):
        s = TotalsSummary.from_values(np.array([]))
        assert s.count == 0
        assert np.isnan(s.mean) and np.isnan(s.variance)


class TestQuantileSketch:
    def test_exact_on_small_samples(self):
        values = np.arange(100, dtype=float)
        sk = QuantileSketch.from_values(values, n_markers=129)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert sk.quantile(q) == pytest.approx(np.quantile(values, q), abs=1.0)

    def test_merge_within_grid_bound(self):
        rng = np.random.default_rng(3)
        a = rng.exponential(4.0, size=4000)
        b = rng.exponential(4.0, size=4000) + 2.0
        both = np.concatenate([a, b])
        merged = QuantileSketch.merge(
            [QuantileSketch.from_values(a), QuantileSketch.from_values(b)]
        )
        assert merged.count == both.size
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = np.quantile(both, q)
            # bounded by the grid resolution: compare against the exact
            # quantiles one grid step away
            lo = np.quantile(both, max(0.0, q - 1 / 64))
            hi = np.quantile(both, min(1.0, q + 1 / 64))
            assert lo - 1e-9 <= merged.quantile(q) <= hi + 1e-9, q
        assert merged.quantile(0.0) == pytest.approx(both.min())
        assert merged.quantile(1.0) == pytest.approx(both.max())

    def test_pmf_overlay_close_to_exact_histogram(self):
        rng = np.random.default_rng(4)
        values = np.rint(rng.gamma(4.0, 3.0, size=20000))
        sk = QuantileSketch.from_values(values, n_markers=257)
        approx = sk.pmf(30)
        exact = histogram_pmf(values, n_bins=30, tail="keep")
        assert np.abs(approx - exact).max() < 0.02

    def test_determinism(self):
        values = np.random.default_rng(5).exponential(1.0, 1000)
        a = QuantileSketch.from_values(values)
        b = QuantileSketch.from_values(values.copy())
        assert np.array_equal(a.knots, b.knots)

    def test_validation(self):
        with pytest.raises(SimulationError):
            QuantileSketch.from_values(np.array([]))
        with pytest.raises(SimulationError):
            QuantileSketch.from_values(np.array([1.0]), n_markers=2)
        sk = QuantileSketch.from_values(np.array([1.0, 2.0]))
        with pytest.raises(SimulationError):
            sk.quantile(1.5)


class TestStreamingTotals:
    def _random_case(self, seed, n_replicas=8, per=200):
        rng = np.random.default_rng(seed)
        replicas = np.repeat(np.arange(n_replicas), per)
        totals = np.rint(rng.gamma(5.0, 6.0, size=replicas.size)) + 100.0
        return totals, replicas

    def test_monolithic_moments_match_numpy(self):
        totals, replicas = self._random_case(0)
        st = StreamingTotals.from_totals(totals, replicas, 8)
        assert st.count == totals.size
        assert st.mean == pytest.approx(totals.mean())
        assert st.variance == pytest.approx(totals.var(ddof=1))
        assert st.minimum == totals.min() and st.maximum == totals.max()

    def test_sharded_moments_bit_identical(self):
        totals, replicas = self._random_case(1)
        mono = StreamingTotals.from_totals(totals, replicas, 8)
        for split in (1, 2, 3, 5, 8):
            parts = []
            bounds = np.linspace(0, 8, split + 1).astype(int)
            for lo, hi in zip(bounds[:-1], bounds[1:], strict=True):
                mask = (replicas >= lo) & (replicas < hi)
                parts.append(
                    StreamingTotals.from_totals(
                        totals[mask], replicas[mask] - lo, hi - lo
                    )
                )
            merged = StreamingTotals.concat(parts)
            assert merged.mean == mono.mean  # bit-identical, not approx
            assert merged.variance == mono.variance
            assert np.array_equal(merged.counts, mono.counts)
            assert np.array_equal(merged.replica_means(), mono.replica_means())
            # exact top-k tail: identical as a sorted vector
            assert np.array_equal(merged.tail, mono.tail)
            # sketch: approximate but within the documented bound -- one
            # grid step in probability plus one unit of interpolation
            # smoothing on integer-valued data
            for q in (0.25, 0.5, 0.9):
                lo_q = np.quantile(totals, max(0.0, q - 1 / 64))
                hi_q = np.quantile(totals, min(1.0, q + 1 / 64))
                assert lo_q - 1.0 <= merged.quantile(q) <= hi_q + 1.0

    def test_replica_summary_matches_direct(self):
        totals, replicas = self._random_case(2)
        st = StreamingTotals.from_totals(totals, replicas, 8)
        direct = TotalsSummary.from_values(totals[replicas == 3])
        via = st.replica_summary(3)
        assert via == direct

    def test_empty_replicas_are_nan(self):
        st = StreamingTotals.from_totals(
            np.array([5.0]), np.array([0]), n_replicas=3
        )
        means = st.replica_means()
        assert means[0] == 5.0
        assert np.isnan(means[1]) and np.isnan(means[2])
        assert st.replica_summary(1).count == 0

    def test_tail_reservoir_is_exact_topk(self):
        totals, replicas = self._random_case(3)
        st = StreamingTotals.from_totals(totals, replicas, 8, tail_k=10)
        assert np.array_equal(st.tail, np.sort(totals)[::-1][:10])

"""Warm-up detection (MSER-5) tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.network import NetworkConfig, NetworkSimulator
from repro.simulation.warmup import moving_average, mser5_truncation


class TestMSER5:
    def test_detects_obvious_transient(self):
        rng = np.random.default_rng(0)
        transient = np.linspace(10, 1, 200)  # decaying ramp
        steady = rng.normal(1.0, 0.2, size=2000)
        series = np.concatenate([transient, steady])
        cut = mser5_truncation(series)
        assert 100 <= cut <= 400

    def test_stationary_series_barely_truncates(self):
        rng = np.random.default_rng(1)
        series = rng.normal(5.0, 1.0, size=2000)
        cut = mser5_truncation(series)
        assert cut < 400  # no systematic transient to remove

    def test_cap_fraction_guard(self):
        # a series that 'improves' to the very end: the rule must not
        # truncate beyond the cap
        series = np.linspace(10, 0, 1000)
        cut = mser5_truncation(series, cap_fraction=0.5)
        assert cut <= 500

    def test_nan_tolerance(self):
        rng = np.random.default_rng(2)
        series = rng.normal(2.0, 0.5, size=1000)
        series[::7] = np.nan  # idle cycles
        cut = mser5_truncation(series)
        assert 0 <= cut < 500

    def test_validation(self):
        with pytest.raises(SimulationError):
            mser5_truncation(np.ones(10))
        with pytest.raises(SimulationError):
            mser5_truncation(np.ones(100), cap_fraction=0.0)
        with pytest.raises(SimulationError):
            mser5_truncation(np.full(100, np.nan))


class TestMovingAverage:
    def test_constant_series(self):
        out = moving_average(np.full(50, 3.0), window=5)
        assert out == pytest.approx(np.full(50, 3.0))

    def test_nan_gaps_interpolated(self):
        series = np.array([1.0, np.nan, 1.0, 1.0, np.nan, 1.0] * 5)
        out = moving_average(series, window=3)
        assert np.nanmax(np.abs(out - 1.0)) < 1e-12

    def test_validation(self):
        with pytest.raises(SimulationError):
            moving_average(np.ones(5), window=0)
        with pytest.raises(SimulationError):
            moving_average(np.ones(5), window=6)


class TestAutoWarmupIntegration:
    def test_auto_mode_runs_and_reports(self):
        cfg = NetworkConfig(k=2, n_stages=4, p=0.5, topology="random", width=64, seed=5)
        result = NetworkSimulator(cfg).run(6_000, warmup="auto")
        assert 100 <= result.warmup < 6_000
        # statistics still agree with the exact first stage
        assert result.stage_means[0] == pytest.approx(0.25, rel=0.1)

    def test_engine_series_recording(self):
        cfg = NetworkConfig(k=2, n_stages=3, p=0.5, topology="random", width=32, seed=6)
        sim = NetworkSimulator(cfg)
        sim.engine.record_cycle_series = True
        sim.engine.run(500, warmup=0)
        assert len(sim.engine.cycle_wait_sums) == 500
        assert sum(sim.engine.cycle_wait_counts) > 0

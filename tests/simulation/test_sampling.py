"""Alias-method sampler tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation.sampling import AliasSampler


class TestConstruction:
    def test_table_encodes_input_pmf(self):
        pmf = [0.1, 0.2, 0.3, 0.4]
        s = AliasSampler(pmf)
        assert s.reconstructed_pmf() == pytest.approx(pmf, abs=1e-12)

    def test_degenerate(self):
        s = AliasSampler([1.0])
        rng = np.random.default_rng(0)
        assert (s.sample(rng, 100) == 0).all()

    def test_unnormalised_input_renormalised(self):
        s = AliasSampler([2.0, 2.0])
        assert s.reconstructed_pmf() == pytest.approx([0.5, 0.5])

    def test_custom_values(self):
        s = AliasSampler([0.5, 0.5], values=np.array([10, 20]))
        rng = np.random.default_rng(1)
        draws = s.sample(rng, 1000)
        assert set(np.unique(draws)) == {10, 20}

    def test_validation(self):
        with pytest.raises(SimulationError):
            AliasSampler([])
        with pytest.raises(SimulationError):
            AliasSampler([0.5, -0.5])
        with pytest.raises(SimulationError):
            AliasSampler([0.0, 0.0])
        with pytest.raises(SimulationError):
            AliasSampler([1.0], values=np.array([1, 2]))
        with pytest.raises(SimulationError):
            AliasSampler([1.0]).sample_indices(np.random.default_rng(0), -1)


class TestStatistics:
    def test_frequencies_match(self):
        pmf = [0.05, 0.15, 0.30, 0.50]
        s = AliasSampler(pmf)
        rng = np.random.default_rng(2)
        draws = s.sample_indices(rng, 400_000)
        freq = np.bincount(draws, minlength=4) / draws.size
        assert freq == pytest.approx(pmf, abs=0.005)

    @given(
        weights=st.lists(
            st.integers(min_value=0, max_value=20), min_size=1, max_size=10
        ).filter(lambda w: sum(w) > 0)
    )
    @settings(max_examples=50, deadline=None)
    def test_reconstruction_property(self, weights):
        total = sum(weights)
        pmf = [w / total for w in weights]
        s = AliasSampler(pmf)
        assert s.reconstructed_pmf() == pytest.approx(pmf, abs=1e-9)

    def test_matches_choice_distribution(self):
        """Same distribution as rng.choice (KS-style max-gap check)."""
        pmf = np.array([0.2, 0.1, 0.4, 0.3])
        s = AliasSampler(pmf)
        rng = np.random.default_rng(3)
        a = np.bincount(s.sample_indices(rng, 200_000), minlength=4) / 200_000
        b = np.bincount(
            rng.choice(4, size=200_000, p=pmf), minlength=4
        ) / 200_000
        assert np.abs(a - b).max() < 0.01

"""Replica-aware traffic generation: stream equivalence and batching."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.service.deterministic import DeterministicService
from repro.simulation.traffic import NetworkTrafficGenerator


def make(n_replicas=1, **kwargs):
    defaults = dict(
        width=8,
        p=0.5,
        service=DeterministicService(1),
        rng=np.random.default_rng(kwargs.pop("seed", 11)),
        n_replicas=n_replicas,
    )
    defaults.update(kwargs)
    return NetworkTrafficGenerator(**defaults)


def test_generate_batch_r1_matches_generate():
    """One-replica batches consume the RNG stream exactly like the
    serial path, cycle for cycle."""
    serial = make(seed=3)
    batched = make(n_replicas=1, seed=3)
    for _ in range(200):
        s = serial.generate()
        b = batched.generate_batch()
        assert np.array_equal(b.replicas, np.zeros(b.sources.size, dtype=np.int64))
        assert np.array_equal(s.sources, b.sources)
        assert np.array_equal(s.destinations, b.destinations)
        assert np.array_equal(s.services, b.services)
    assert serial.injected == batched.injected


def test_generate_batch_replica_major_order():
    gen = make(n_replicas=4, seed=9)
    for _ in range(50):
        arrivals = gen.generate_batch()
        assert np.all(np.diff(arrivals.replicas) >= 0)
        assert np.all((arrivals.replicas >= 0) & (arrivals.replicas < 4))
        assert np.all((arrivals.sources >= 0) & (arrivals.sources < 8))


def test_generate_batch_bulk_keeps_packets_together():
    gen = make(n_replicas=2, bulk_size=3, seed=1, p=0.9)
    arrivals = gen.generate_batch()
    assert arrivals.sources.size % 3 == 0
    trip = arrivals.destinations.reshape(-1, 3)
    assert np.array_equal(trip[:, 0], trip[:, 1])
    assert np.array_equal(trip[:, 0], trip[:, 2])


def test_services_are_int64_without_copy():
    gen = make(seed=2, p=1.0)
    arrivals = gen.generate()
    assert arrivals.services.dtype == np.int64


def test_load_statistics_per_replica():
    """Every replica's injection rate is ~p (shared-stream replicas are
    identically distributed)."""
    R, width, p, cycles = 4, 16, 0.4, 2_000
    gen = make(n_replicas=R, width=width, p=p, seed=21)
    counts = np.zeros(R)
    for _ in range(cycles):
        arrivals = gen.generate_batch()
        counts += np.bincount(arrivals.replicas, minlength=R)
    rates = counts / (cycles * width)
    assert np.all(np.abs(rates - p) < 0.02), rates


def test_rejects_bad_replica_count():
    with pytest.raises(ModelError):
        make(n_replicas=0)


# ----------------------------------------------------------------------
# parameter stacking: per-replica p / q / bulk / service columns
# ----------------------------------------------------------------------
def test_equal_parameter_columns_match_scalar_generator():
    """A stack whose per-replica parameters are all equal consumes the
    RNG stream bit-for-bit like the scalar-parameter generator."""
    scalar = make(n_replicas=3, seed=17, p=0.5, bulk_size=2)
    stacked = make(
        n_replicas=3, seed=17, p=[0.5, 0.5, 0.5], bulk_size=[2, 2, 2],
        q=[0.0, 0.0, 0.0],
        service=[DeterministicService(1)] * 3,
    )
    assert not stacked.heterogeneous
    assert stacked.p == 0.5 and stacked.bulk_size == 2
    for _ in range(100):
        a = scalar.generate_batch()
        b = stacked.generate_batch()
        assert np.array_equal(a.replicas, b.replicas)
        assert np.array_equal(a.sources, b.sources)
        assert np.array_equal(a.destinations, b.destinations)
        assert np.array_equal(a.services, b.services)


def test_per_replica_loads_inject_at_their_own_rate():
    loads = np.array([0.2, 0.5, 0.8])
    width, cycles = 32, 2_000
    gen = make(n_replicas=3, width=width, p=loads, seed=23)
    assert gen.heterogeneous and gen.p is None
    counts = np.zeros(3)
    for _ in range(cycles):
        counts += np.bincount(gen.generate_batch().replicas, minlength=3)
    rates = counts / (cycles * width)
    assert np.all(np.abs(rates - loads) < 0.02), rates


def test_per_replica_bulk_and_service_models():
    gen = make(
        n_replicas=2, seed=5, p=0.9,
        bulk_size=[1, 3],
        service=[DeterministicService(1), DeterministicService(1)],
    )
    arrivals = gen.generate_batch()
    # replica 0 packets are singletons; replica 1 arrives in triples
    r1 = arrivals.replicas == 1
    assert r1.sum() % 3 == 0
    trip = arrivals.destinations[r1].reshape(-1, 3)
    assert np.array_equal(trip[:, 0], trip[:, 1])

    mixed = make(
        n_replicas=2, seed=5, p=1.0,
        service=[DeterministicService(1), DeterministicService(4)],
    )
    assert mixed.heterogeneous and mixed.service is None
    out = mixed.generate_batch()
    assert np.all(out.services[out.replicas == 0] == 1)
    assert np.all(out.services[out.replicas == 1] == 4)


def test_heterogeneous_generator_refuses_serial_path():
    gen = make(n_replicas=2, p=[0.3, 0.6])
    with pytest.raises(ModelError, match="generate_batch"):
        gen.generate()


def test_offered_load_averages_over_replicas():
    gen = make(n_replicas=2, p=[0.2, 0.6], bulk_size=[1, 2])
    assert gen.offered_load == pytest.approx((0.2 * 1 + 0.6 * 2) / 2)


def test_rejects_bad_parameter_columns():
    with pytest.raises(ModelError, match="length-3"):
        make(n_replicas=3, p=[0.1, 0.2])
    with pytest.raises(ModelError, match="outside"):
        make(n_replicas=2, p=[0.5, 1.5])
    with pytest.raises(ModelError, match="bulk"):
        make(n_replicas=2, bulk_size=[1, 0])
    with pytest.raises(ModelError, match="one service model per replica"):
        make(n_replicas=3, service=[DeterministicService(1)] * 2)

"""Replica-aware traffic generation: stream equivalence and batching."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.service.deterministic import DeterministicService
from repro.simulation.traffic import NetworkTrafficGenerator


def make(n_replicas=1, **kwargs):
    defaults = dict(
        width=8,
        p=0.5,
        service=DeterministicService(1),
        rng=np.random.default_rng(kwargs.pop("seed", 11)),
        n_replicas=n_replicas,
    )
    defaults.update(kwargs)
    return NetworkTrafficGenerator(**defaults)


def test_generate_batch_r1_matches_generate():
    """One-replica batches consume the RNG stream exactly like the
    serial path, cycle for cycle."""
    serial = make(seed=3)
    batched = make(n_replicas=1, seed=3)
    for _ in range(200):
        s = serial.generate()
        b = batched.generate_batch()
        assert np.array_equal(b.replicas, np.zeros(b.sources.size, dtype=np.int64))
        assert np.array_equal(s.sources, b.sources)
        assert np.array_equal(s.destinations, b.destinations)
        assert np.array_equal(s.services, b.services)
    assert serial.injected == batched.injected


def test_generate_batch_replica_major_order():
    gen = make(n_replicas=4, seed=9)
    for _ in range(50):
        arrivals = gen.generate_batch()
        assert np.all(np.diff(arrivals.replicas) >= 0)
        assert np.all((arrivals.replicas >= 0) & (arrivals.replicas < 4))
        assert np.all((arrivals.sources >= 0) & (arrivals.sources < 8))


def test_generate_batch_bulk_keeps_packets_together():
    gen = make(n_replicas=2, bulk_size=3, seed=1, p=0.9)
    arrivals = gen.generate_batch()
    assert arrivals.sources.size % 3 == 0
    trip = arrivals.destinations.reshape(-1, 3)
    assert np.array_equal(trip[:, 0], trip[:, 1])
    assert np.array_equal(trip[:, 0], trip[:, 2])


def test_services_are_int64_without_copy():
    gen = make(seed=2, p=1.0)
    arrivals = gen.generate()
    assert arrivals.services.dtype == np.int64


def test_load_statistics_per_replica():
    """Every replica's injection rate is ~p (shared-stream replicas are
    identically distributed)."""
    R, width, p, cycles = 4, 16, 0.4, 2_000
    gen = make(n_replicas=R, width=width, p=p, seed=21)
    counts = np.zeros(R)
    for _ in range(cycles):
        arrivals = gen.generate_batch()
        counts += np.bincount(arrivals.replicas, minlength=R)
    rates = counts / (cycles * width)
    assert np.all(np.abs(rates - p) < 0.02), rates


def test_rejects_bad_replica_count():
    with pytest.raises(ModelError):
        make(n_replicas=0)

"""The runtime sanitizer: arming, invariant hooks, error coordinates.

Three layers of evidence:

* the hooks are *quiet* on healthy runs -- and change nothing: a
  sanitized run is bit-identical to an unsanitized one;
* each invariant check raises :class:`SanitizerError` with the
  cycle/stage/replica coordinates a debugger needs;
* a deliberately poisoned kernel (NaN injected into the waiting-time
  stream mid-run) is caught *at the cycle it happens*, on both the
  serial and the stacked engine.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.errors import SanitizerError
from repro.exec.context import use_execution
from repro.simulation.batched import run_stacked
from repro.simulation.network import NetworkConfig, NetworkSimulator
from repro.simulation.sanitize import (
    SANITIZE_ENV,
    check_conservation,
    check_merged_totals,
    check_queue_depths,
    sanitizer_enabled,
)
from repro.simulation.stats import StageAccumulator, StreamingTotals
from repro.simulation.streamed import run_streamed

CFG = NetworkConfig(k=2, n_stages=3, p=0.7, seed=7)


@pytest.fixture
def armed(monkeypatch):
    monkeypatch.setenv(SANITIZE_ENV, "1")


def poison_nan_at(monkeypatch, call_index):
    """Patch ``StageAccumulator.add`` to slip one NaN into the
    waiting-time stream on its ``call_index``-th non-empty call."""
    real_add = StageAccumulator.add
    state = {"calls": 0}

    def poisoned(self, stages, waits):
        if np.asarray(waits).size:
            state["calls"] += 1
            if state["calls"] == call_index:
                waits = np.asarray(waits, dtype=np.float64).copy()
                waits[0] = np.nan
        real_add(self, stages, waits)

    monkeypatch.setattr(StageAccumulator, "add", poisoned)


class TestArming:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert not sanitizer_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "ON", "yes"])
    def test_truthy_values_arm(self, monkeypatch, value):
        monkeypatch.setenv(SANITIZE_ENV, value)
        assert sanitizer_enabled()

    @pytest.mark.parametrize("value", ["0", "", "off", "no"])
    def test_falsy_values_do_not(self, monkeypatch, value):
        monkeypatch.setenv(SANITIZE_ENV, value)
        assert not sanitizer_enabled()

    def test_execution_context_exports_and_restores_env(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        with use_execution(sanitize=True):
            assert os.environ[SANITIZE_ENV] == "1"
            assert sanitizer_enabled()
        assert SANITIZE_ENV not in os.environ


class TestCleanRuns:
    def test_serial_run_is_quiet_and_bit_identical(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        plain = NetworkSimulator(CFG).run(400, warmup=50)
        monkeypatch.setenv(SANITIZE_ENV, "1")
        sanitized = NetworkSimulator(CFG).run(400, warmup=50)
        assert np.array_equal(plain.stage_counts, sanitized.stage_counts)
        assert np.array_equal(plain.stage_means, sanitized.stage_means)
        assert plain.injected == sanitized.injected
        assert plain.completed == sanitized.completed

    def test_stacked_run_is_quiet(self, armed):
        cfgs = [dataclasses.replace(CFG, seed=s) for s in (1, 2, 3)]
        results = run_stacked(cfgs, 300, warmup=30, backend="numpy")
        assert len(results) == 3

    def test_streamed_run_is_quiet(self, armed):
        cfgs = [dataclasses.replace(CFG, seed=s, track_limit=0) for s in (1, 2)]
        batch = run_streamed(cfgs, 300, warmup=30)
        assert batch.totals is not None and batch.totals.count > 0


class TestNanInjection:
    def test_serial_kernel_nan_raises_with_coordinates(self, armed, monkeypatch):
        """THE acceptance case: a NaN slipped into the waiting-time
        stream raises at the offending cycle, with coordinates."""
        poison_nan_at(monkeypatch, 30)
        with pytest.raises(SanitizerError) as info:
            NetworkSimulator(CFG).run(2_000, warmup=0)
        err = info.value
        assert err.cycle is not None and err.cycle < 2_000
        assert err.stage is not None
        assert f"[cycle={err.cycle}, stage={err.stage}]" in str(err)
        assert "non-finite" in str(err)

    def test_stacked_kernel_nan_raises_with_replica(self, armed, monkeypatch):
        poison_nan_at(monkeypatch, 30)
        cfgs = [dataclasses.replace(CFG, seed=s) for s in (1, 2)]
        with pytest.raises(SanitizerError) as info:
            run_stacked(cfgs, 2_000, warmup=0, backend="numpy")
        err = info.value
        assert err.cycle is not None
        assert err.stage is not None and 0 <= err.stage < CFG.n_stages
        assert err.replica is not None and 0 <= err.replica < 2

    def test_unsanitized_run_does_not_raise(self, monkeypatch):
        """Without arming, the poison sails through (and would surface
        as a silently wrong table entry -- the failure mode the
        sanitizer exists for)."""
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        poison_nan_at(monkeypatch, 30)
        result = NetworkSimulator(CFG).run(2_000, warmup=0)
        assert np.isnan(result.stage_means).any()


class TestInvariantChecks:
    def test_conservation_mismatch_raises_with_cycle(self):
        with pytest.raises(SanitizerError) as info:
            check_conservation(10, 5, 2, 1, cycle=7)
        assert info.value.cycle == 7
        assert "[cycle=7]" in str(info.value)
        assert "injected=10" in str(info.value)

    def test_conservation_balance_is_quiet(self):
        check_conservation(10, 5, 4, 1, cycle=7)

    def test_negative_queue_depth_raises(self):
        counts = np.array([0, 3, -1, 2], dtype=np.int64)
        with pytest.raises(SanitizerError) as info:
            check_queue_depths(counts, cycle=12, ports_per_replica=2)
        assert "port 2" in str(info.value)
        assert info.value.replica == 1

    def test_non_negative_depths_are_quiet(self):
        check_queue_depths(np.array([0, 1, 2], dtype=np.int64), cycle=0)


class TestMergeConsistency:
    def _parts(self):
        rng = np.random.default_rng(0)
        totals = rng.integers(1, 50, size=200).astype(np.float64)
        replicas = rng.integers(0, 4, size=200)
        parts = [
            StreamingTotals.from_totals(
                totals[replicas == r], np.zeros((replicas == r).sum(), int), 1
            )
            for r in range(4)
        ]
        return parts

    def test_count_preserving_merge_is_quiet(self, armed):
        parts = self._parts()
        merged = StreamingTotals.concat(parts)
        assert merged.count == sum(p.count for p in parts)

    def test_lossy_merge_raises(self):
        parts = self._parts()
        merged = StreamingTotals.concat(parts)
        merged.counts[0] += 1  # simulate a merge that invented a message
        with pytest.raises(SanitizerError, match="lost messages"):
            check_merged_totals(merged, parts)

    def test_poisoned_replica_moment_raises(self, armed):
        parts = self._parts()
        parts[1].sums_shifted[0] = np.nan
        with pytest.raises(SanitizerError) as info:
            StreamingTotals.concat(parts)
        assert "non-finite per-replica" in str(info.value)
        assert info.value.replica == 1

"""Message-journey tracing tests."""

import pytest

from repro.errors import SimulationError
from repro.simulation.network import NetworkConfig, NetworkSimulator
from repro.simulation.trace import MessageTracer


def traced_run(n_cycles=300, **config_kwargs):
    cfg = NetworkConfig(k=2, n_stages=3, p=0.4, seed=11, **config_kwargs)
    sim = NetworkSimulator(cfg)
    tracer = MessageTracer(limit=200)
    sim.engine.observer = tracer
    result = sim.run(n_cycles, warmup=0)
    return sim, tracer, result


class TestTracer:
    def test_journeys_recorded(self):
        sim, tracer, _ = traced_run()
        assert tracer.traced > 0
        j = tracer.journey(0)
        assert j.injected_cycle is not None
        assert j.source is not None

    def test_completed_journeys_cross_all_stages(self):
        sim, tracer, _ = traced_run()
        done = tracer.completed_journeys(n_stages=3)
        assert done
        for j in done[:10]:
            stages = sorted(e.stage for e in j.events)
            assert stages == [0, 1, 2]
            # service starts are causally ordered
            cycles = [e.cycle for e in sorted(j.events, key=lambda e: e.stage)]
            assert all(a < b for a, b in zip(cycles, cycles[1:], strict=False))

    def test_waits_match_statistics_tracker(self):
        sim, tracer, result = traced_run()
        rows = result.tracked.waits
        for j in tracer.completed_journeys(3)[:20]:
            for e in j.events:
                assert rows[j.track_id, e.stage] == e.wait

    def test_total_wait_consistency(self):
        sim, tracer, result = traced_run()
        done = tracer.completed_journeys(3)
        matrix = result.tracked.waits
        # the tracker's totals for the traced subset coincide
        for j in done[:10]:
            assert j.total_wait == sum(e.wait for e in j.events)
            assert j.total_wait == matrix[j.track_id, :3].sum()

    def test_describe_renders(self):
        _, tracer, _ = traced_run()
        text = tracer.journey(0).describe()
        assert "message 0" in text
        assert "stage 1" in text

    def test_slowest_sorted(self):
        _, tracer, _ = traced_run(n_cycles=500)
        slow = tracer.slowest(3)
        waits = [j.total_wait for j in slow]
        assert waits == sorted(waits, reverse=True)

    def test_untraced_message_raises(self):
        _, tracer, _ = traced_run()
        with pytest.raises(SimulationError):
            tracer.journey(10 ** 9)

    def test_limit_validation(self):
        with pytest.raises(SimulationError):
            MessageTracer(limit=0)

    def test_short_circuits_after_all_journeys_complete(self):
        """Regression: tracing must stop once `limit` journeys finish.

        The docstring promises the tracer is cheap to leave attached;
        that only holds if observation short-circuits after the traced
        cohort completes instead of inspecting every later event.
        """
        cfg = NetworkConfig(k=2, n_stages=3, p=0.4, seed=11)
        sim = NetworkSimulator(cfg)
        tracer = MessageTracer(limit=5)
        sim.engine.add_observer(tracer)
        sim.run(400, warmup=0)
        assert tracer.finished
        assert len(tracer.completed_journeys(3)) == 5
        # post-completion events are ignored entirely
        events_before = sum(j.stages_served for j in tracer.slowest(5))
        tracer.on_inject(999, [0], [0], [2])
        tracer.on_service_start(999, [0], [0], [1.0], [2])
        assert tracer.traced == 5
        assert sum(j.stages_served for j in tracer.slowest(5)) == events_before

    def test_not_finished_while_journeys_incomplete(self):
        _, tracer, _ = traced_run(n_cycles=5)
        assert not tracer.finished

    def test_first_stage_wait_zero_when_idle(self):
        """At light load most first-stage waits are zero (idle ports)."""
        _, tracer, _ = traced_run(n_cycles=400)
        first_waits = [
            e.wait
            for j in tracer.completed_journeys(3)
            for e in j.events
            if e.stage == 0
        ]
        assert first_waits.count(0) / len(first_waits) > 0.5

"""Message-journey tracing tests."""

import pytest

from repro.errors import SimulationError
from repro.simulation.network import NetworkConfig, NetworkSimulator
from repro.simulation.trace import MessageTracer


def traced_run(n_cycles=300, **config_kwargs):
    cfg = NetworkConfig(k=2, n_stages=3, p=0.4, seed=11, **config_kwargs)
    sim = NetworkSimulator(cfg)
    tracer = MessageTracer(limit=200)
    sim.engine.observer = tracer
    result = sim.run(n_cycles, warmup=0)
    return sim, tracer, result


class TestTracer:
    def test_journeys_recorded(self):
        sim, tracer, _ = traced_run()
        assert tracer.traced > 0
        j = tracer.journey(0)
        assert j.injected_cycle is not None
        assert j.source is not None

    def test_completed_journeys_cross_all_stages(self):
        sim, tracer, _ = traced_run()
        done = tracer.completed_journeys(n_stages=3)
        assert done
        for j in done[:10]:
            stages = sorted(e.stage for e in j.events)
            assert stages == [0, 1, 2]
            # service starts are causally ordered
            cycles = [e.cycle for e in sorted(j.events, key=lambda e: e.stage)]
            assert all(a < b for a, b in zip(cycles, cycles[1:]))

    def test_waits_match_statistics_tracker(self):
        sim, tracer, result = traced_run()
        rows = result.tracked.waits
        for j in tracer.completed_journeys(3)[:20]:
            for e in j.events:
                assert rows[j.track_id, e.stage] == e.wait

    def test_total_wait_consistency(self):
        sim, tracer, result = traced_run()
        done = tracer.completed_journeys(3)
        totals = {j.track_id: j.total_wait for j in done}
        matrix = result.tracked.complete_rows()
        # the tracker's totals for the traced subset coincide
        for j in done[:10]:
            assert j.total_wait == sum(e.wait for e in j.events)

    def test_describe_renders(self):
        _, tracer, _ = traced_run()
        text = tracer.journey(0).describe()
        assert "message 0" in text
        assert "stage 1" in text

    def test_slowest_sorted(self):
        _, tracer, _ = traced_run(n_cycles=500)
        slow = tracer.slowest(3)
        waits = [j.total_wait for j in slow]
        assert waits == sorted(waits, reverse=True)

    def test_untraced_message_raises(self):
        _, tracer, _ = traced_run()
        with pytest.raises(SimulationError):
            tracer.journey(10 ** 9)

    def test_limit_validation(self):
        with pytest.raises(SimulationError):
            MessageTracer(limit=0)

    def test_first_stage_wait_zero_when_idle(self):
        """At light load most first-stage waits are zero (idle ports)."""
        _, tracer, _ = traced_run(n_cycles=400)
        first_waits = [
            e.wait
            for j in tracer.completed_journeys(3)
            for e in j.events
            if e.stage == 0
        ]
        assert first_waits.count(0) / len(first_waits) > 0.5

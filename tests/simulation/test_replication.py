"""Independent-replication runner tests."""

import pytest

from repro.errors import SimulationError
from repro.simulation.network import NetworkConfig
from repro.simulation.replication import (
    ReplicatedStatistic,
    replicate,
    replicated_statistic,
)


def small_config():
    return NetworkConfig(k=2, n_stages=3, p=0.5, topology="random", width=64)


class TestReplicate:
    def test_runs_are_independent(self):
        results = replicate(small_config(), n_replications=3, n_cycles=2_000)
        means = [r.stage_means[0] for r in results]
        assert len(set(means)) == 3  # different seeds, different paths

    def test_seed_in_config_is_overridden(self):
        cfg = NetworkConfig(k=2, n_stages=3, p=0.5, topology="random", width=64, seed=7)
        a, b = replicate(cfg, n_replications=2, n_cycles=1_500)
        assert a.stage_means[0] != b.stage_means[0]

    def test_validation(self):
        with pytest.raises(SimulationError):
            replicate(small_config(), n_replications=1, n_cycles=1_000)
        with pytest.raises(SimulationError):
            replicate(small_config(), n_replications=2, n_cycles=1_000, warmup="auto")

    def test_parallel_matches_serial(self):
        import numpy as np

        serial = replicate(small_config(), n_replications=3, n_cycles=1_500, workers=1)
        parallel = replicate(small_config(), n_replications=3, n_cycles=1_500, workers=2)
        for a, b in zip(serial, parallel, strict=True):
            assert np.array_equal(a.stage_means, b.stage_means)
            assert np.array_equal(
                a.tracked.complete_rows(), b.tracked.complete_rows()
            )

    def test_uses_ambient_execution_cache(self, tmp_path):
        from repro.exec import ExecutionContext, ResultCache, use_execution

        cache = ResultCache(tmp_path / "cache")
        with use_execution(ExecutionContext(cache=cache)):
            replicate(small_config(), n_replications=2, n_cycles=1_200)
            assert len(cache.entries()) == 2
            replicate(small_config(), n_replications=2, n_cycles=1_200)
        assert cache.hits == 2  # second batch fully cache-served


class TestReplicatedStatistic:
    def test_interval_covers_exact_value(self):
        results = replicate(small_config(), n_replications=5, n_cycles=4_000)
        stat = replicated_statistic(results, lambda r: r.stage_means[0])
        assert stat.n == 5
        # w1 = 0.25 exactly; 5 replications at 4k cycles should cover it
        assert stat.covers(0.25)
        assert stat.half_width < 0.05

    def test_interval_arithmetic(self):
        stat = ReplicatedStatistic(values=(1.0, 2.0, 3.0), confidence=0.95)
        low, high = stat.interval()
        assert low < stat.mean < high
        assert stat.mean == 2.0
        assert "+/-" in str(stat)

    def test_validation(self):
        results = replicate(small_config(), n_replications=2, n_cycles=1_000)
        with pytest.raises(SimulationError):
            replicated_statistic(results[:1], lambda r: 0.0)
        with pytest.raises(SimulationError):
            replicated_statistic(results, lambda r: 0.0, confidence=1.5)

    def test_single_replication_half_width_raises(self):
        # df = 0 used to surface as a silent NaN from t.ppf
        stat = ReplicatedStatistic(values=(1.0,), confidence=0.95)
        assert stat.mean == 1.0  # the point estimate is still usable
        with pytest.raises(SimulationError, match="at least 2 replications"):
            stat.half_width
        with pytest.raises(SimulationError):
            stat.interval()

"""Independent-replication runner tests."""

import pytest

from repro.errors import SimulationError
from repro.simulation.network import NetworkConfig
from repro.simulation.replication import (
    ReplicatedStatistic,
    replicate,
    replicate_until,
    replicated_statistic,
)


def small_config():
    return NetworkConfig(k=2, n_stages=3, p=0.5, topology="random", width=64)


class TestReplicate:
    def test_runs_are_independent(self):
        results = replicate(small_config(), n_replications=3, n_cycles=2_000)
        means = [r.stage_means[0] for r in results]
        assert len(set(means)) == 3  # different seeds, different paths

    def test_seed_in_config_is_overridden(self):
        cfg = NetworkConfig(k=2, n_stages=3, p=0.5, topology="random", width=64, seed=7)
        a, b = replicate(cfg, n_replications=2, n_cycles=1_500)
        assert a.stage_means[0] != b.stage_means[0]

    def test_validation(self):
        with pytest.raises(SimulationError):
            replicate(small_config(), n_replications=1, n_cycles=1_000)
        with pytest.raises(SimulationError):
            replicate(small_config(), n_replications=2, n_cycles=1_000, warmup="auto")

    def test_parallel_matches_serial(self):
        import numpy as np

        serial = replicate(small_config(), n_replications=3, n_cycles=1_500, workers=1)
        parallel = replicate(small_config(), n_replications=3, n_cycles=1_500, workers=2)
        for a, b in zip(serial, parallel, strict=True):
            assert np.array_equal(a.stage_means, b.stage_means)
            assert np.array_equal(
                a.tracked.complete_rows(), b.tracked.complete_rows()
            )

    def test_uses_ambient_execution_cache(self, tmp_path):
        from repro.exec import ExecutionContext, ResultCache, use_execution

        cache = ResultCache(tmp_path / "cache")
        with use_execution(ExecutionContext(cache=cache)):
            replicate(small_config(), n_replications=2, n_cycles=1_200)
            assert len(cache.entries()) == 2
            replicate(small_config(), n_replications=2, n_cycles=1_200)
        assert cache.hits == 2  # second batch fully cache-served


class TestReplicatedStatistic:
    def test_interval_covers_exact_value(self):
        results = replicate(small_config(), n_replications=5, n_cycles=4_000)
        stat = replicated_statistic(results, lambda r: r.stage_means[0])
        assert stat.n == 5
        # w1 = 0.25 exactly; 5 replications at 4k cycles should cover it
        assert stat.covers(0.25)
        assert stat.half_width < 0.05

    def test_interval_arithmetic(self):
        stat = ReplicatedStatistic(values=(1.0, 2.0, 3.0), confidence=0.95)
        low, high = stat.interval()
        assert low < stat.mean < high
        assert stat.mean == 2.0
        assert "+/-" in str(stat)

    def test_validation(self):
        results = replicate(small_config(), n_replications=2, n_cycles=1_000)
        with pytest.raises(SimulationError):
            replicated_statistic(results[:1], lambda r: 0.0)
        with pytest.raises(SimulationError):
            replicated_statistic(results, lambda r: 0.0, confidence=1.5)

    def test_single_replication_half_width_raises(self):
        # df = 0 used to surface as a silent NaN from t.ppf
        stat = ReplicatedStatistic(values=(1.0,), confidence=0.95)
        assert stat.mean == 1.0  # the point estimate is still usable
        with pytest.raises(SimulationError, match="at least 2 replications"):
            stat.half_width
        with pytest.raises(SimulationError):
            stat.interval()


def stage1_mean(r):
    return float(r.stage_means[0])


class TestReplicateUntil:
    R_MAX = 64
    N_CYCLES = 3_000

    def test_early_stop_beats_fixed_budget(self):
        """The tentpole contract: a low-variance scenario converges on
        the pilot and simulates far fewer cycles than a fixed-r_max
        study would have."""
        out = replicate_until(
            small_config(),
            stage1_mean,
            target_half_width=0.05,
            n_cycles=self.N_CYCLES,
            r_max=self.R_MAX,
        )
        assert out.converged
        assert out.statistic.half_width <= 0.05
        assert out.engine_cycles < self.R_MAX * self.N_CYCLES
        assert out.n_replications < self.R_MAX
        assert "converged" in str(out)

    @pytest.mark.parametrize("p", [0.3, 0.5, 0.7])
    def test_interval_covers_theorem_1(self, p):
        """Early stopping must not sacrifice correctness: at every load
        the adaptive t-interval still covers the Paper Eq. (6) mean."""
        from fractions import Fraction

        from repro.core.formulas import uniform_unit_mean

        # width 128: wide enough that the finite-width bias relative
        # to the asymptotic theorem is inside the interval (the same
        # width the analysis validators use)
        cfg = NetworkConfig(
            k=2, n_stages=3, p=p, topology="random", width=128
        )
        out = replicate_until(
            cfg,
            stage1_mean,
            target_half_width=0.06,
            n_cycles=4_000,
            r_max=32,
        )
        target = float(uniform_unit_mean(2, Fraction(p).limit_denominator(10)))
        assert out.statistic.covers(target), (
            f"p={p}: interval {out.statistic.interval()} misses {target}"
        )

    def test_r_max_exhaustion_reports_not_converged(self):
        out = replicate_until(
            small_config(),
            stage1_mean,
            target_half_width=1e-9,  # unreachable
            n_cycles=400,
            warmup=50,
            r0=2,
            r_max=8,
        )
        assert not out.converged
        assert out.n_replications == 8
        assert out.rounds >= 2
        assert out.statistic.n == 8
        assert "NOT converged" in str(out)

    def test_growth_reuses_cached_rounds(self, tmp_path):
        """A grown round re-submits earlier replicas; with the ambient
        cache they are served, not re-simulated, so engine_cycles counts
        each replica exactly once."""
        from repro.exec import ExecutionContext, ResultCache, use_execution

        cache = ResultCache(tmp_path / "cache")
        with use_execution(ExecutionContext(cache=cache)):
            out = replicate_until(
                small_config(),
                stage1_mean,
                target_half_width=1e-9,
                n_cycles=400,
                warmup=50,
                r0=2,
                r_max=8,
            )
        assert out.rounds >= 2
        assert cache.hits >= 2  # pilot replicas reused by round 2
        assert out.engine_cycles == out.n_replications * 400

    def test_streamed_execution_path(self):
        """stream=True routes rounds through the streamed engine, which
        re-derives earlier replicas bit-identically without a cache."""
        cfg = NetworkConfig(k=2, n_stages=3, p=0.5)
        out = replicate_until(
            cfg,
            stage1_mean,
            target_half_width=1e-9,
            n_cycles=300,
            warmup=40,
            r0=2,
            r_max=8,
            stream=True,
        )
        fixed = replicate_until(
            cfg,
            stage1_mean,
            target_half_width=1e-9,
            n_cycles=300,
            warmup=40,
            r0=8,
            r_max=8,
            stream=True,
        )
        # growth rounds extend, never perturb: the final 8-replica
        # statistic is identical whether grown 2->4->8 or run at 8
        assert out.statistic.values == fixed.statistic.values

    def test_validation(self):
        cfg = small_config()
        with pytest.raises(SimulationError, match="target_half_width"):
            replicate_until(cfg, stage1_mean, 0.0, 100)
        with pytest.raises(SimulationError, match="r0"):
            replicate_until(cfg, stage1_mean, 0.1, 100, r0=1)
        with pytest.raises(SimulationError, match="r_max"):
            replicate_until(cfg, stage1_mean, 0.1, 100, r0=8, r_max=4)
        with pytest.raises(SimulationError, match="confidence"):
            replicate_until(cfg, stage1_mean, 0.1, 100, confidence=2.0)

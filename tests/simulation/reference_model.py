"""A deliberately naive reference simulator for differential testing.

This model trades all performance for obviousness: messages are Python
objects, queues are lists, and each cycle walks every port in a plain
loop.  It implements exactly the semantics the vectorised engine claims:

* output-queued ``k x k`` switches, FIFO service;
* a message arriving at cycle ``t`` may start service at cycle ``t``;
* on service start at ``t`` the port stays busy ``service`` cycles and
  the message joins the next stage with arrival ``t + 1`` (cut-through)
  or ``t + service`` (store-and-forward);
* waiting time = service start - queue arrival.

The differential tests drive both simulators with *identical
pre-generated traffic* and require identical per-message waiting times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional, Tuple

import numpy as np

from repro.simulation.topology import MultistageTopology


@dataclass
class RefMessage:
    msg_id: int
    dest: int
    service: int
    arrival: int  # at the current queue


@dataclass
class ReferenceNetwork:
    """Pure-Python clocked network with the engine's semantics."""

    topology: MultistageTopology
    transfer: Literal["cut_through", "store_forward"] = "cut_through"
    buffer_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        n_ports = self.topology.n_stages * self.topology.width
        self.queues: List[List[RefMessage]] = [[] for _ in range(n_ports)]
        self.busy = [0] * n_ports
        self.now = 0
        #: (msg_id, stage) -> waiting time
        self.waits: Dict[Tuple[int, int], int] = {}
        self.completed: List[int] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    def inject(self, sources, dests, services, msg_ids) -> None:
        """Fresh messages entering the first stage this cycle."""
        entry = self.topology.entry_queue(np.asarray(sources), np.asarray(dests))
        for line, dest, service, mid in zip(entry, dests, services, msg_ids, strict=True):
            self._enqueue(int(line), RefMessage(int(mid), int(dest), int(service), self.now))

    def _enqueue(self, port: int, msg: RefMessage) -> None:
        if self.buffer_capacity is not None and len(self.queues[port]) >= self.buffer_capacity:
            self.dropped += 1
            return
        self.queues[port].append(msg)

    def step_service(self) -> None:
        """Serve every idle port whose head has arrived; then tick."""
        width = self.topology.width
        moves: List[Tuple[int, RefMessage]] = []
        for port, queue in enumerate(self.queues):
            if self.busy[port] > 0 or not queue:
                continue
            head = queue[0]
            if head.arrival > self.now:
                continue
            queue.pop(0)
            stage = port // width
            self.waits[(head.msg_id, stage)] = self.now - head.arrival
            self.busy[port] = head.service
            if stage == self.topology.n_stages - 1:
                self.completed.append(head.msg_id)
            else:
                line = port % width
                nxt = self.topology.next_queue(
                    np.asarray([line]), np.asarray([head.dest]), stage + 1
                )[0]
                arrival = self.now + 1 if self.transfer == "cut_through" else self.now + head.service
                moves.append(
                    (
                        (stage + 1) * width + int(nxt),
                        RefMessage(head.msg_id, head.dest, head.service, arrival),
                    )
                )
        for port, msg in moves:
            self._enqueue(port, msg)
        for port in range(len(self.busy)):
            if self.busy[port] > 0:
                self.busy[port] -= 1
        self.now += 1

    def run_with_traffic(self, traffic_by_cycle) -> None:
        """Drive with a pre-generated list of per-cycle injections."""
        for sources, dests, services, msg_ids in traffic_by_cycle:
            if len(sources):
                self.inject(sources, dests, services, msg_ids)
            self.step_service()

"""End-to-end network simulator tests: conservation, stationarity,
agreement with the exact first-stage analysis, and the model options."""

import numpy as np
import pytest

from repro.core import formulas
from repro.errors import ModelError, SimulationError
from repro.simulation.network import NetworkConfig, NetworkSimulator
from repro.simulation.traffic import NetworkTrafficGenerator
from repro.service import DeterministicService


def run(cfg, cycles=8_000, warmup=1_000):
    return NetworkSimulator(cfg).run(cycles, warmup=warmup)


class TestConservation:
    def test_messages_conserved(self):
        cfg = NetworkConfig(k=2, n_stages=4, p=0.5, seed=0)
        sim = NetworkSimulator(cfg)
        res = sim.run(5_000, warmup=500)
        assert res.injected == res.completed + sim.engine.in_flight
        assert res.dropped == 0

    def test_throughput_matches_offered_load(self):
        cfg = NetworkConfig(k=2, n_stages=3, p=0.5, seed=1)
        res = run(cfg)
        offered = 0.5 * 8  # p * width
        assert res.throughput() == pytest.approx(offered, rel=0.1)

    def test_stage_counts_near_equal(self):
        cfg = NetworkConfig(k=2, n_stages=4, p=0.5, seed=2)
        res = run(cfg)
        counts = res.stage_counts.astype(float)
        assert counts.std() / counts.mean() < 0.05


class TestFirstStageAgreement:
    def test_uniform_unit(self):
        cfg = NetworkConfig(k=2, n_stages=3, p=0.5, topology="random", width=128, seed=3)
        res = run(cfg, cycles=20_000, warmup=2_000)
        assert res.stage_means[0] == pytest.approx(0.25, rel=0.05)
        assert res.stage_variances[0] == pytest.approx(0.25, rel=0.08)

    def test_constant_service(self):
        cfg = NetworkConfig(
            k=2, n_stages=3, p=0.125, message_size=4,
            topology="random", width=128, seed=4,
        )
        res = run(cfg, cycles=20_000, warmup=2_000)
        assert res.stage_means[0] == pytest.approx(1.75, rel=0.06)

    def test_bulk_arrivals(self):
        cfg = NetworkConfig(
            k=2, n_stages=3, p=0.2, bulk_size=2,
            topology="random", width=128, seed=5,
        )
        res = run(cfg, cycles=20_000, warmup=2_000)
        expected = float(formulas.bulk_mean(2, 0.2, 2))
        assert res.stage_means[0] == pytest.approx(expected, rel=0.08)

    def test_favorite_traffic(self):
        cfg = NetworkConfig(k=2, n_stages=6, p=0.5, q=0.5, seed=6)
        res = run(cfg, cycles=12_000, warmup=1_500)
        expected = float(formulas.nonuniform_mean(2, 0.5, 0.5))
        assert res.stage_means[0] == pytest.approx(expected, rel=0.08)

    def test_geometric_service(self):
        from repro.service import GeometricService

        cfg = NetworkConfig(
            k=2, n_stages=3, p=0.25, service=GeometricService(0.5),
            topology="random", width=128, seed=14,
        )
        res = run(cfg, cycles=25_000, warmup=2_500)
        expected = float(formulas.geometric_mean(2, 0.25, 0.5))
        assert res.stage_means[0] == pytest.approx(expected, rel=0.08)

    def test_multisize(self):
        cfg = NetworkConfig(
            k=2, n_stages=3, p=0.0625, sizes=(4, 8), probabilities=(0.5, 0.5),
            topology="random", width=128, seed=7,
        )
        res = run(cfg, cycles=25_000, warmup=2_500)
        expected = float(formulas.multisize_mean(2, 0.0625, [4, 8], [0.5, 0.5]))
        assert res.stage_means[0] == pytest.approx(expected, rel=0.10)


class TestStageConvergence:
    def test_later_stages_plateau(self):
        """Per-stage means settle: the paper's 'spatial steady state'."""
        cfg = NetworkConfig(k=2, n_stages=8, p=0.5, topology="random", width=128, seed=8)
        res = run(cfg, cycles=15_000, warmup=2_000)
        last = res.stage_means[-3:]
        assert last.std() / last.mean() < 0.05

    def test_stage2_above_stage1(self):
        cfg = NetworkConfig(k=2, n_stages=4, p=0.5, topology="random", width=128, seed=9)
        res = run(cfg, cycles=15_000, warmup=2_000)
        assert res.stage_means[1] > res.stage_means[0]


class TestTransferModes:
    def test_store_forward_slower_end_to_end(self):
        """Store-and-forward spends n*m cycles in service; cut-through
        n+m-1.  With equal waiting this shows up in completion counts
        staying equal but in-flight population growing."""
        res_ct = run(
            NetworkConfig(k=2, n_stages=4, p=0.1, message_size=4,
                          topology="random", width=64, seed=10, transfer="cut_through"),
            cycles=6_000,
        )
        res_sf = run(
            NetworkConfig(k=2, n_stages=4, p=0.1, message_size=4,
                          topology="random", width=64, seed=10, transfer="store_forward"),
            cycles=6_000,
        )
        # same offered load, both stable
        assert res_sf.completed == pytest.approx(res_ct.completed, rel=0.05)

    def test_store_forward_waits_match_mg1_structure(self):
        res = run(
            NetworkConfig(k=2, n_stages=3, p=0.125, message_size=4,
                          topology="random", width=64, seed=11,
                          transfer="store_forward"),
            cycles=10_000,
        )
        # first stage unchanged by the transfer mode
        assert res.stage_means[0] == pytest.approx(1.75, rel=0.1)


class TestFiniteBuffers:
    def test_drops_counted_when_tiny(self):
        cfg = NetworkConfig(
            k=2, n_stages=4, p=0.8, buffer_capacity=1,
            topology="random", width=64, seed=12,
        )
        res = run(cfg, cycles=4_000, warmup=500)
        assert res.dropped > 0
        assert res.injected > res.completed

    def test_generous_finite_buffers_match_infinite(self):
        """'for light-to-moderate loads, moderate-sized buffers provide
        approximately the same performance as infinite buffers.'"""
        base = NetworkConfig(k=2, n_stages=4, p=0.5, topology="random", width=64, seed=13)
        finite = NetworkConfig(
            k=2, n_stages=4, p=0.5, buffer_capacity=64,
            topology="random", width=64, seed=13,
        )
        r_inf = run(base, cycles=10_000)
        r_fin = run(finite, cycles=10_000)
        assert r_fin.dropped == 0
        assert r_fin.stage_means[0] == pytest.approx(r_inf.stage_means[0], rel=1e-9)


class TestConfigValidation:
    def test_bulk_and_multipacket_exclusive(self):
        with pytest.raises(ModelError):
            NetworkConfig(k=2, n_stages=2, p=0.1, bulk_size=2, message_size=2)

    def test_service_and_sizes_exclusive(self):
        with pytest.raises(ModelError):
            NetworkConfig(
                k=2, n_stages=2, p=0.1, message_size=2,
                service=DeterministicService(2),
            )

    def test_sizes_and_message_size_exclusive(self):
        with pytest.raises(ModelError):
            NetworkConfig(
                k=2, n_stages=2, p=0.1, message_size=2,
                sizes=(1, 2), probabilities=(0.5, 0.5),
            )

    def test_favorite_needs_destination_routing(self):
        with pytest.raises(ModelError):
            NetworkConfig(k=2, n_stages=2, p=0.1, q=0.5, topology="random", width=16)

    def test_random_needs_width(self):
        cfg = NetworkConfig(k=2, n_stages=2, p=0.1, topology="random")
        with pytest.raises(ModelError):
            cfg.build_topology()

    def test_warmup_bounds(self):
        sim = NetworkSimulator(NetworkConfig(k=2, n_stages=2, p=0.1, seed=0))
        with pytest.raises(SimulationError):
            sim.run(100, warmup=100)

    def test_traffic_validation(self):
        rng = np.random.default_rng(0)
        srv = DeterministicService(1)
        with pytest.raises(ModelError):
            NetworkTrafficGenerator(width=0, p=0.5, service=srv, rng=rng)
        with pytest.raises(ModelError):
            NetworkTrafficGenerator(width=4, p=1.5, service=srv, rng=rng)
        with pytest.raises(ModelError):
            NetworkTrafficGenerator(
                width=4, p=0.5, service=srv, rng=rng, favorite=np.array([0, 0, 1, 2])
            )


class TestDeterminism:
    def test_same_seed_same_results(self):
        cfg = NetworkConfig(k=2, n_stages=3, p=0.5, seed=42)
        a = run(cfg, cycles=3_000, warmup=300)
        b = run(cfg, cycles=3_000, warmup=300)
        assert np.array_equal(a.stage_means, b.stage_means)
        assert a.total_waiting_mean() == b.total_waiting_mean()

    def test_different_seeds_differ(self):
        a = run(NetworkConfig(k=2, n_stages=3, p=0.5, seed=1), cycles=3_000, warmup=300)
        b = run(NetworkConfig(k=2, n_stages=3, p=0.5, seed=2), cycles=3_000, warmup=300)
        assert not np.array_equal(a.stage_means, b.stage_means)


class TestResultSurface:
    def test_summary_renders(self):
        res = run(NetworkConfig(k=2, n_stages=3, p=0.5, seed=3), cycles=3_000, warmup=300)
        text = res.summary()
        assert "stage" in text
        assert "rho=0.500" in text

    def test_traffic_intensity_property(self):
        cfg = NetworkConfig(k=2, n_stages=2, p=0.125, message_size=4)
        assert cfg.traffic_intensity == pytest.approx(0.5)
        cfg = NetworkConfig(k=2, n_stages=2, p=0.25, bulk_size=2)
        assert cfg.traffic_intensity == pytest.approx(0.5)

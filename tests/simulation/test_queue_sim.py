"""Lindley single-queue simulator vs the exact Theorem 1 analysis."""

import numpy as np
import pytest

from repro.arrivals import BulkUniformTraffic, FavoriteOutputTraffic, UniformTraffic
from repro.core.first_stage import FirstStageQueue
from repro.errors import SimulationError
from repro.service import DeterministicService, GeometricService, MultiSizeService
from repro.simulation.queue_sim import (
    lindley_unfinished_work,
    simulate_first_stage_queue,
)


class TestLindleyKernel:
    def test_matches_naive_recursion(self):
        rng = np.random.default_rng(3)
        work = rng.integers(0, 4, size=500)
        fast = lindley_unfinished_work(work)
        s = 0
        for n, c in enumerate(work):
            s = max(0, s + c - 1)
            assert fast[n] == s

    def test_idle_system_stays_empty(self):
        assert (lindley_unfinished_work(np.zeros(10, dtype=int)) == 0).all()

    def test_saturated_system_grows_linearly(self):
        out = lindley_unfinished_work(np.full(10, 3))
        assert (out == 2 * np.arange(1, 11)).all()


class TestAgainstExactAnalysis:
    CASES = [
        ("uniform", UniformTraffic(k=2, p=0.5), DeterministicService(1)),
        ("bulk", BulkUniformTraffic(k=2, p=0.15, b=3), DeterministicService(1)),
        ("favorite", FavoriteOutputTraffic(k=2, p=0.5, q=0.5), DeterministicService(1)),
        ("constant-m", UniformTraffic(k=2, p=0.125), DeterministicService(4)),
        ("geometric", UniformTraffic(k=2, p=0.25), GeometricService(0.5)),
        ("multisize", UniformTraffic(k=2, p=0.0625), MultiSizeService([4, 8], [0.5, 0.5])),
    ]

    @pytest.mark.parametrize(
        "seed,name,arr,srv",
        [(i, *case) for i, case in enumerate(CASES)],
        ids=[c[0] for c in CASES],
    )
    def test_mean_and_variance(self, seed, name, arr, srv):
        # deterministic seeds: str hash() is randomised per process
        rng = np.random.default_rng(1234 + seed)
        res = simulate_first_stage_queue(arr, srv, n_cycles=600_000, rng=rng)
        exact = FirstStageQueue(arr, srv)
        mean, var = float(exact.waiting_mean()), float(exact.waiting_variance())
        assert res.mean() == pytest.approx(mean, rel=0.05, abs=0.01)
        # variance estimates mix slowly for heavy-tailed service mixes
        assert res.variance() == pytest.approx(var, rel=0.15, abs=0.02)

    def test_full_distribution_uniform(self):
        """Bin-by-bin agreement of the simulated pmf with Theorem 1."""
        arr, srv = UniformTraffic(k=2, p=0.5), DeterministicService(1)
        res = simulate_first_stage_queue(arr, srv, 800_000, rng=np.random.default_rng(7))
        exact = FirstStageQueue(arr, srv).waiting_pmf(12)
        sim = res.pmf(12)
        assert np.abs(sim - exact).max() < 5e-3

    def test_decomposition_components(self):
        """The s and w' components match their own transforms."""
        arr, srv = BulkUniformTraffic(k=2, p=0.2, b=2), DeterministicService(1)
        res = simulate_first_stage_queue(arr, srv, 400_000, rng=np.random.default_rng(11))
        q = FirstStageQueue(arr, srv)
        assert res.unfinished_work.mean() == pytest.approx(
            float(q.moments().work_mean), rel=0.05, abs=0.01
        )
        assert res.predecessor_service.mean() == pytest.approx(
            float(q.moments().predecessor_mean), rel=0.05, abs=0.01
        )

    def test_waits_are_work_plus_predecessors(self):
        arr, srv = UniformTraffic(k=4, p=0.6), DeterministicService(1)
        res = simulate_first_stage_queue(arr, srv, 50_000, rng=np.random.default_rng(2))
        assert (res.waits == res.unfinished_work + res.predecessor_service).all()


class TestValidation:
    def test_too_few_cycles(self):
        with pytest.raises(SimulationError):
            simulate_first_stage_queue(
                UniformTraffic(k=2, p=0.5), DeterministicService(1), 1
            )

    def test_bad_warmup(self):
        with pytest.raises(SimulationError):
            simulate_first_stage_queue(
                UniformTraffic(k=2, p=0.5), DeterministicService(1), 100, warmup=100
            )

    def test_zero_traffic(self):
        with pytest.raises(SimulationError):
            simulate_first_stage_queue(
                UniformTraffic(k=2, p=0), DeterministicService(1), 1000
            )

"""Topology tests: permutations, self-routing, conflict-free identity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.simulation.topology import (
    BaselineTopology,
    ButterflyTopology,
    OmegaTopology,
    RandomRoutingTopology,
    int_log,
    is_power_of,
    perfect_shuffle,
    routability_matrix,
    trace_path,
)

BANYANS = [OmegaTopology, ButterflyTopology, BaselineTopology]
SHAPES = [(2, 3), (2, 4), (4, 2), (3, 2), (2, 1)]


class TestHelpers:
    def test_is_power_of(self):
        assert is_power_of(8, 2)
        assert is_power_of(1, 2)
        assert not is_power_of(12, 2)
        assert not is_power_of(0, 2)

    def test_int_log(self):
        assert int_log(64, 4) == 3
        with pytest.raises(TopologyError):
            int_log(12, 2)

    def test_perfect_shuffle_rotates_digits(self):
        # width 8, k=2: sigma(i) rotates the 3-bit string left
        sigma = perfect_shuffle(8, 2)
        for i in range(8):
            b = f"{i:03b}"
            assert sigma[i] == int(b[1:] + b[0], 2)

    def test_perfect_shuffle_is_permutation(self):
        sigma = perfect_shuffle(81, 3)
        assert sorted(sigma) == list(range(81))


@pytest.mark.parametrize("cls", BANYANS, ids=lambda c: c.__name__)
@pytest.mark.parametrize("k,n", SHAPES)
class TestBanyanCorrectness:
    def test_wirings_are_permutations(self, cls, k, n):
        t = cls(k, n)
        for s in range(n):
            assert sorted(t.input_wiring(s).tolist()) == list(range(t.width))

    def test_full_self_routing(self, cls, k, n):
        t = cls(k, n)
        reached = routability_matrix(t)
        assert (reached == np.arange(t.width)[None, :]).all()

    def test_trace_path_consistent(self, cls, k, n):
        t = cls(k, n)
        path = trace_path(t, source=0, dest=t.width - 1)
        assert len(path) == n
        assert path[-1] == t.width - 1

    def test_identity_is_conflict_free(self, cls, k, n):
        """Every input routing to its own index: at each stage all
        messages occupy distinct queues (needed by the favourite-output
        traffic model).  Omega and butterfly realize the identity
        conflict-free; the baseline network famously does not (it is
        topologically equivalent but not functionally identical), which
        is why the favourite-output experiments use omega wiring."""
        if cls is BaselineTopology:
            pytest.skip("baseline does not route the identity conflict-free")
        t = cls(k, n)
        src = np.arange(t.width)
        q = t.entry_queue(src, src)
        assert len(set(q.tolist())) == t.width
        for s in range(1, n):
            q = t.next_queue(q, src, s)
            assert len(set(q.tolist())) == t.width

    def test_uniform_traffic_port_loads_balanced(self, cls, k, n):
        """Uniform destinations spread evenly over every stage's queues
        for all three wirings (the statistical property the analysis
        actually relies on)."""
        t = cls(k, n)
        rng = np.random.default_rng(5)
        src = rng.integers(0, t.width, size=20_000)
        dst = rng.integers(0, t.width, size=20_000)
        q = t.entry_queue(src, dst)
        for s in range(n):
            counts = np.bincount(q, minlength=t.width)
            assert counts.std() / counts.mean() < 0.25
            if s + 1 < n:
                q = t.next_queue(q, dst, s + 1)


class TestValidation:
    def test_bad_degree(self):
        with pytest.raises(TopologyError):
            OmegaTopology(1, 3)

    def test_bad_stage_count(self):
        with pytest.raises(TopologyError):
            OmegaTopology(2, 0)

    def test_width_must_match_for_banyans(self):
        with pytest.raises(TopologyError):
            OmegaTopology(2, 3, width=16)

    def test_random_topology_requires_power_width(self):
        with pytest.raises(TopologyError):
            RandomRoutingTopology(2, 5, width=12)

    def test_random_topology_rejects_destination_tracing(self):
        t = RandomRoutingTopology(2, 5, width=16)
        assert not t.supports_destinations
        with pytest.raises(TopologyError):
            trace_path(t, 0, 3)

class TestRandomRoutingTopology:
    def test_decoupled_depth(self):
        t = RandomRoutingTopology(2, 12, width=32)
        assert t.n_stages == 12
        assert t.width == 32
        assert t.destination_space == 2 ** 12

    def test_digits_uniform_per_stage(self):
        t = RandomRoutingTopology(4, 3, width=64)
        rng = np.random.default_rng(0)
        dests = rng.integers(0, t.destination_space, size=40_000)
        for stage in range(3):
            digits = t.routing_digits(dests, stage)
            freq = np.bincount(digits, minlength=4) / 40_000
            assert np.abs(freq - 0.25).max() < 0.02

    def test_digits_deterministic_per_destination(self):
        """Bulk siblings share a virtual destination, hence a path."""
        t = RandomRoutingTopology(2, 6, width=16)
        dests = np.array([37, 37, 11])
        d0 = t.routing_digits(dests, 2)
        assert d0[0] == d0[1]

    def test_overflow_guard(self):
        with pytest.raises(TopologyError):
            RandomRoutingTopology(2, 70, width=16)


class TestNetworkxExport:
    def test_graph_shape(self):
        nx = pytest.importorskip("networkx")
        t = OmegaTopology(2, 3)
        g = t.to_networkx()
        # 8 ins + 8 outs + 3 stages x 4 switches
        assert g.number_of_nodes() == 8 + 8 + 12
        # every input reaches every output
        reach = nx.descendants(g, ("in", 0))
        assert all(("out", i) in reach for i in range(8))


class TestPropertyBased:
    @given(
        k=st.sampled_from([2, 3, 4]),
        n=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_pair_routes_correctly(self, k, n, data):
        t = OmegaTopology(k, n)
        src = data.draw(st.integers(min_value=0, max_value=t.width - 1))
        dst = data.draw(st.integers(min_value=0, max_value=t.width - 1))
        assert trace_path(t, src, dst)[-1] == dst

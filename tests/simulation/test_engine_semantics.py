"""Timing-semantics tests for the clocked engine.

These pin the cycle-level contract the analysis relies on, using
single-message scenarios where every event time is known in closed
form.
"""

import numpy as np

from repro.simulation.engine import ClockedEngine
from repro.simulation.topology import OmegaTopology
from repro.simulation.trace import MessageTracer
from repro.simulation.traffic import CycleArrivals


class OneShotTraffic:
    """Injects a fixed set of messages at chosen cycles, then silence."""

    def __init__(self, width, schedule):
        self.width = width
        self.schedule = dict(schedule)  # cycle -> (sources, dests, services)
        self.cycle = 0
        self.injected = 0

    def generate(self):
        entry = self.schedule.get(self.cycle)
        self.cycle += 1
        if entry is None:
            empty = np.empty(0, dtype=np.int64)
            return CycleArrivals(empty, empty, empty)
        sources, dests, services = (np.asarray(x, dtype=np.int64) for x in entry)
        self.injected += sources.size
        return CycleArrivals(sources, dests, services)


def run_single(service, transfer, n_stages=3, inject_at=0):
    topo = OmegaTopology(2, n_stages)
    traffic = OneShotTraffic(
        topo.width, {inject_at: ([0], [topo.width - 1], [service])}
    )
    tracer = MessageTracer(limit=8)
    engine = ClockedEngine(topo, traffic, transfer=transfer, observer=tracer)
    engine.run(40, warmup=0)
    return engine, tracer.journey(0)


class TestCutThroughTiming:
    def test_unit_service_one_stage_per_cycle(self):
        engine, j = run_single(service=1, transfer="cut_through")
        cycles = [e.cycle for e in sorted(j.events, key=lambda e: e.stage)]
        assert cycles == [0, 1, 2]
        assert j.total_wait == 0
        assert engine.completed == 1

    def test_multipacket_head_still_pipelines(self):
        """m = 4 in an empty network: head crosses one stage per cycle;
        total service is n + m - 1 from the last port's perspective."""
        engine, j = run_single(service=4, transfer="cut_through")
        cycles = [e.cycle for e in sorted(j.events, key=lambda e: e.stage)]
        assert cycles == [0, 1, 2]
        assert j.total_wait == 0
        # last-stage port busy until cycle 2 + 4 = 6 exclusive: tail
        # leaves the network at n + m - 1 = 6
        last_port_busy_until = cycles[-1] + 4
        assert last_port_busy_until == 3 + 4 - 1

    def test_back_to_back_messages_spaced_by_service(self):
        """Two m=3 messages to the same first-stage queue: the second
        starts service exactly m cycles after the first."""
        topo = OmegaTopology(2, 1)
        traffic = OneShotTraffic(
            topo.width, {0: ([0, 1], [0, 0], [3, 3])}
        )
        tracer = MessageTracer(limit=4)
        engine = ClockedEngine(topo, traffic, observer=tracer)
        engine.run(20, warmup=0)
        starts = sorted(
            j.events[0].cycle for j in [tracer.journey(0), tracer.journey(1)]
        )
        assert starts[1] - starts[0] == 3
        waits = sorted(
            j.events[0].wait for j in [tracer.journey(0), tracer.journey(1)]
        )
        assert waits == [0, 3]


class TestStoreForwardTiming:
    def test_stage_crossing_takes_full_service(self):
        engine, j = run_single(service=4, transfer="store_forward")
        cycles = [e.cycle for e in sorted(j.events, key=lambda e: e.stage)]
        # service starts at 0, 4, 8: each hop waits for the full message
        assert cycles == [0, 4, 8]
        assert j.total_wait == 0

    def test_unit_service_equals_cut_through(self):
        a, ja = run_single(service=1, transfer="cut_through")
        b, jb = run_single(service=1, transfer="store_forward")
        assert [e.cycle for e in ja.events] == [e.cycle for e in jb.events]


class TestArrivalCycleService:
    def test_message_served_in_arrival_cycle_when_idle(self):
        """The analysis's convention: zero wait is possible."""
        engine, j = run_single(service=1, transfer="cut_through", inject_at=7)
        first = min(j.events, key=lambda e: e.stage)
        assert first.cycle == 7
        assert first.wait == 0

"""Compute-backend equivalence: the pre-drawn loop vs the reference.

The determinism contract (``docs/backends.md``) says backends are
**bit-identical**, not statistically equivalent.  Two layers enforce it:

* **always-on** -- the pre-drawn kernel algorithm is an ordinary Python
  function (:func:`~repro.simulation.backends.jit.cycle_loop_kernel`);
  driving :class:`NumbaBackend` with it interpreted validates the whole
  pre-draw + linked-list-FIFO design in every environment, numba or not;
* **with numba** -- the same cases re-run through the ``@njit``-compiled
  loop (``pytest.importorskip``-guarded), proving compilation changes
  nothing.

Every anchor the batched engine already has -- the seven config
variants, heterogeneous stacked rows, R=1 vs the serial engine -- is
re-asserted here per backend.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.backends import (
    BACKEND_CHOICES,
    DEFAULT_BACKEND,
    NumbaBackend,
    NumpyBackend,
    available_backends,
    numba_available,
    resolve_backend,
)
from repro.simulation.backends.jit import cycle_loop_kernel
from repro.simulation.batched import run_batched, run_stacked
from repro.simulation.network import NetworkConfig, NetworkSimulator

from tests.simulation.test_batched import assert_results_identical

#: every way this suite can drive the pre-drawn loop: interpreted
#: always, compiled when numba is importable
KERNEL_BACKENDS = [pytest.param(lambda: NumbaBackend(kernel=cycle_loop_kernel),
                                id="interpreted-kernel")]
if numba_available():
    KERNEL_BACKENDS.append(pytest.param(lambda: NumbaBackend(), id="njit"))

ANCHOR_VARIANTS = [
    dict(k=2, n_stages=3, p=0.5, topology="omega"),
    dict(k=2, n_stages=6, p=0.7, topology="random", width=8),
    dict(k=2, n_stages=3, p=0.4, topology="butterfly", bulk_size=2),
    dict(k=2, n_stages=3, p=0.5, topology="baseline", q=0.3),
    dict(k=2, n_stages=3, p=0.3, message_size=3, transfer="store_forward"),
    dict(k=2, n_stages=3, p=0.4, sizes=(1, 3), probabilities=(0.5, 0.5)),
    dict(k=4, n_stages=2, p=0.6, topology="omega"),
]
ANCHOR_IDS = ["omega", "random-deep", "bulk", "favourite", "store-forward",
              "multisize", "k4"]


# ----------------------------------------------------------------------
# registry / resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_choices_and_default(self):
        assert BACKEND_CHOICES == ("numpy", "numba", "auto")
        assert DEFAULT_BACKEND == "auto"
        assert "numpy" in available_backends()

    def test_auto_degrades_cleanly_without_numba(self):
        config = NetworkConfig(k=2, n_stages=3, p=0.5, seed=1)
        [result] = run_stacked([config], 800, warmup=0, backend="auto")
        expected = "numba" if numba_available() else "numpy"
        assert result.backend == expected

    def test_explicit_numpy_always_works(self):
        config = NetworkConfig(k=2, n_stages=3, p=0.5, seed=1)
        [result] = run_stacked([config], 800, warmup=0, backend="numpy")
        assert result.backend == "numpy"

    def test_unknown_backend_name_raises(self):
        config = NetworkConfig(k=2, n_stages=3, p=0.5, seed=1)
        with pytest.raises(SimulationError, match="unknown compute backend"):
            run_stacked([config], 800, warmup=0, backend="cupy")

    @pytest.mark.skipif(numba_available(), reason="needs an env without numba")
    def test_explicit_numba_without_numba_raises_with_reason(self):
        config = NetworkConfig(k=2, n_stages=3, p=0.5, seed=1)
        with pytest.raises(SimulationError, match="not installed"):
            run_stacked([config], 800, warmup=0, backend="numba")

    def test_backend_instance_passes_through(self):
        config = NetworkConfig(k=2, n_stages=3, p=0.5, seed=1)
        [result] = run_stacked(
            [config], 800, warmup=0, backend=NumbaBackend(kernel=cycle_loop_kernel)
        )
        assert result.backend == "numba"

    def test_numpy_backend_reports_supported_everywhere(self):
        assert NumpyBackend.is_available()
        assert NumpyBackend.unsupported_reason(object()) is None

    def test_resolve_rejects_unsupported_instance(self):
        """An engine mid-run cannot take the pre-drawn loop."""
        from repro.simulation.batched import _build_stacked_engine

        engine = _build_stacked_engine(
            [NetworkConfig(k=2, n_stages=3, p=0.5, seed=1)]
        )
        engine.run(100, backend="numpy")
        with pytest.raises(SimulationError, match="fresh engine"):
            resolve_backend(NumbaBackend(kernel=cycle_loop_kernel), engine)


# ----------------------------------------------------------------------
# bit-identity anchors, per available kernel backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make_backend", KERNEL_BACKENDS)
class TestKernelEquivalence:
    @pytest.mark.parametrize("kwargs", ANCHOR_VARIANTS, ids=ANCHOR_IDS)
    def test_anchor_variants_bit_identical(self, make_backend, kwargs):
        config = NetworkConfig(seed=42, **kwargs)
        [ref] = run_batched(config, [42], 1_500, backend="numpy")
        [jit] = run_batched(config, [42], 1_500, backend=make_backend())
        assert_results_identical(ref, jit)
        assert ref.backend == "numpy" and jit.backend == "numba"

    def test_replica_stack_bit_identical(self, make_backend):
        config = NetworkConfig(k=2, n_stages=4, p=0.6, topology="random", width=16)
        seeds = [11, 12, 13, 14]
        ref = run_batched(config, seeds, 2_000, backend="numpy")
        jit = run_batched(config, seeds, 2_000, backend=make_backend())
        for a, b in zip(ref, jit, strict=True):
            assert_results_identical(a, b)

    def test_heterogeneous_stack_bit_identical(self, make_backend):
        """Scenario-stacked rows differing in load/bulk/seed."""
        from dataclasses import replace

        base = NetworkConfig(k=2, n_stages=3, p=0.2, topology="random", width=16)
        configs = [
            replace(base, p=p, bulk_size=b, seed=s)
            for (p, b, s) in [(0.2, 1, 9), (0.9, 1, 10), (0.4, 2, 11)]
        ]
        ref = run_stacked(configs, 2_000, backend="numpy")
        jit = run_stacked(configs, 2_000, backend=make_backend())
        for a, b in zip(ref, jit, strict=True):
            assert_results_identical(a, b)
            assert a.config == b.config

    def test_r1_bit_identical_to_serial_engine(self, make_backend):
        """The chain closes: serial engine == numpy backend == kernel."""
        config = NetworkConfig(k=2, n_stages=3, p=0.5, topology="omega", seed=42)
        serial = NetworkSimulator(config).run(n_cycles=1_500)
        [jit] = run_stacked([config], 1_500, backend=make_backend())
        assert_results_identical(serial, jit)

    def test_warmup_discards_identically(self, make_backend):
        config = NetworkConfig(k=2, n_stages=3, p=0.7, seed=5)
        [ref] = run_stacked([config], 1_200, warmup=400, backend="numpy")
        [jit] = run_stacked([config], 1_200, warmup=400, backend=make_backend())
        assert_results_identical(ref, jit)
        assert ref.warmup == jit.warmup == 400

    def test_finalized_engine_refuses_further_use(self, make_backend):
        from repro.simulation.batched import _build_stacked_engine

        config = NetworkConfig(k=2, n_stages=3, p=0.5, seed=1)
        engine = _build_stacked_engine([config])
        engine.run(300, backend=make_backend())
        assert engine.now == 300
        assert engine.in_flight >= 0  # honest override, not ring-buffer state
        with pytest.raises(SimulationError, match="fresh engine"):
            engine.run(100)
        with pytest.raises(SimulationError, match="fresh engine"):
            engine.step()


# ----------------------------------------------------------------------
# selection is an execution detail
# ----------------------------------------------------------------------
class TestBackendIsNotIdentity:
    def test_result_backend_label_only_differs(self):
        config = NetworkConfig(k=2, n_stages=3, p=0.5, seed=3)
        [a] = run_stacked([config], 800, backend="numpy")
        [b] = run_stacked(
            [config], 800, backend=NumbaBackend(kernel=cycle_loop_kernel)
        )
        assert a.backend != b.backend
        assert_results_identical(a, b)

    def test_timers_label_their_backend(self):
        from repro.simulation.batched import _build_stacked_engine

        config = NetworkConfig(k=2, n_stages=3, p=0.5, seed=3)
        engine = _build_stacked_engine([config])
        engine.enable_profiling()
        engine.run(300, backend=NumbaBackend(kernel=cycle_loop_kernel))
        timings = engine.timers.as_dict()
        assert timings["predraw"]["backend"] == "numba"
        assert timings["kernel"]["backend"] == "numba"

        engine = _build_stacked_engine([config])
        engine.enable_profiling()
        engine.run(300, backend="numpy")
        timings = engine.timers.as_dict()
        for phase in ("inject", "serve", "tick"):
            assert timings[phase]["backend"] == "numpy"

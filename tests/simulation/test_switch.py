"""Ring-buffer queue tests, including the FIFO and growth invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation.switch import RingBufferQueues


def make(n=4, cap=4, finite=False):
    return RingBufferQueues(n, {"val": np.int64}, capacity=cap, finite=finite)


class TestBasics:
    def test_push_pop_roundtrip(self):
        q = make()
        q.push_batch(np.array([0, 1]), val=np.array([10, 20]))
        out = q.pop(np.array([0, 1]))
        assert out["val"].tolist() == [10, 20]
        assert q.total_occupancy() == 0

    def test_fifo_order_within_queue(self):
        q = make()
        q.push_batch(np.array([2, 2, 2]), val=np.array([1, 2, 3]))
        assert q.pop(np.array([2]))["val"][0] == 1
        assert q.pop(np.array([2]))["val"][0] == 2
        assert q.pop(np.array([2]))["val"][0] == 3

    def test_same_cycle_multi_queue_interleaved(self):
        q = make()
        q.push_batch(np.array([0, 1, 0, 1]), val=np.array([1, 2, 3, 4]))
        assert q.counts.tolist() == [2, 2, 0, 0]
        out = q.pop(np.array([0, 1]))
        assert out["val"].tolist() == [1, 2]

    def test_peek_does_not_consume(self):
        q = make()
        q.push_batch(np.array([3]), val=np.array([9]))
        assert q.peek(np.array([3]), "val")[0] == 9
        assert q.counts[3] == 1

    def test_pop_empty_raises(self):
        q = make()
        with pytest.raises(SimulationError):
            q.pop(np.array([0]))

    def test_push_requires_all_fields(self):
        q = RingBufferQueues(2, {"a": np.int64, "b": np.int64})
        with pytest.raises(SimulationError):
            q.push_batch(np.array([0]), a=np.array([1]))

    def test_empty_push_is_noop(self):
        q = make()
        assert q.push_batch(np.array([], dtype=int), val=np.array([], dtype=int)) == 0


class TestGrowth:
    def test_grows_past_capacity(self):
        q = make(n=2, cap=2)
        q.push_batch(np.array([0] * 10), val=np.arange(10))
        assert q.counts[0] == 10
        got = [q.pop(np.array([0]))["val"][0] for _ in range(10)]
        assert got == list(range(10))

    def test_growth_preserves_ring_wrap(self):
        q = make(n=1, cap=4)
        # advance the ring: push 3, pop 2, then force growth
        q.push_batch(np.array([0, 0, 0]), val=np.array([1, 2, 3]))
        q.pop(np.array([0]))
        q.pop(np.array([0]))
        q.push_batch(np.array([0] * 6), val=np.array([4, 5, 6, 7, 8, 9]))
        got = [q.pop(np.array([0]))["val"][0] for _ in range(7)]
        assert got == [3, 4, 5, 6, 7, 8, 9]

    def test_max_occupancy_tracked(self):
        q = make(n=2, cap=8)
        q.push_batch(np.array([0] * 5), val=np.arange(5))
        assert q.max_occupancy == 5


class TestFiniteMode:
    def test_overflow_dropped_and_counted(self):
        q = make(n=1, cap=3, finite=True)
        stored = q.push_batch(np.array([0] * 5), val=np.arange(5))
        assert stored == 3
        assert q.dropped == 2
        assert q.counts[0] == 3
        # FIFO kept the earliest messages
        assert q.pop(np.array([0]))["val"][0] == 0

    def test_drops_only_overflowing_queue(self):
        q = make(n=2, cap=2, finite=True)
        q.push_batch(np.array([0, 0, 0, 1]), val=np.array([1, 2, 3, 4]))
        assert q.dropped == 1
        assert q.counts.tolist() == [2, 1]


class TestValidation:
    def test_bad_sizes(self):
        with pytest.raises(SimulationError):
            RingBufferQueues(0, {"v": np.int64})
        with pytest.raises(SimulationError):
            RingBufferQueues(1, {"v": np.int64}, capacity=0)


class TestPropertyBased:
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),  # queue id
                st.integers(min_value=1, max_value=5),  # how many to push
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_fifo_against_reference_model(self, ops):
        """Push/pop against plain Python lists as the reference."""
        q = RingBufferQueues(3, {"v": np.int64}, capacity=2)
        model = {0: [], 1: [], 2: []}
        counter = 0
        for queue_id, count in ops:
            vals = np.arange(counter, counter + count)
            counter += count
            q.push_batch(np.full(count, queue_id), v=vals)
            model[queue_id].extend(vals.tolist())
            # drain one from every non-empty queue, like the engine does
            ready = [qq for qq in range(3) if model[qq]]
            if ready:
                out = q.pop(np.array(ready))
                expect = [model[qq].pop(0) for qq in ready]
                assert out["v"].tolist() == expect
        assert q.total_occupancy() == sum(len(v) for v in model.values())


class TestPopValidation:
    def test_pop_empty_leaves_state_intact(self):
        """A bad pop must raise *before* mutating head/count (regression:
        the old code decremented first, corrupting the queues)."""
        q = make()
        q.push_batch(np.array([0, 0]), val=np.array([1, 2]))
        before = q.counts.copy()
        with pytest.raises(SimulationError):
            q.pop(np.array([0, 3]))  # queue 3 is empty
        assert q.counts.tolist() == before.tolist()
        # the untouched queue still pops in FIFO order
        assert q.pop(np.array([0]))["val"][0] == 1
        assert q.pop(np.array([0]))["val"][0] == 2


class TestAppearanceRanks:
    def test_high_multiplicity_fifo(self):
        """Many same-cycle messages to one queue keep appearance order
        through the peel-loop rank path."""
        q = make(n=2, cap=2)
        queues = np.array([0, 1, 0, 0, 1, 0, 0])
        q.push_batch(queues, val=np.arange(7))
        assert q.pop(np.array([0]))["val"][0] == 0
        assert q.pop(np.array([0]))["val"][0] == 2
        assert q.pop(np.array([0]))["val"][0] == 3
        assert q.pop(np.array([1]))["val"][0] == 1

    def test_rank_matches_argsort_reference(self):
        rng = np.random.default_rng(3)
        q = make(n=8, cap=64)
        for _ in range(25):
            n = int(rng.integers(1, 30))
            queues = rng.integers(0, 8, size=n)
            # reference: stable-argsort grouped cumcount
            order = np.argsort(queues, kind="stable")
            sorted_q = queues[order]
            first = np.concatenate(([True], sorted_q[1:] != sorted_q[:-1]))
            start = np.maximum.accumulate(np.where(first, np.arange(n), 0))
            expected = np.empty(n, dtype=np.int64)
            expected[order] = np.arange(n) - start
            binc = np.bincount(queues, minlength=8)
            got = q._appearance_ranks(queues, binc)
            assert np.array_equal(got, expected)


class TestHighWater:
    def test_high_water_survives_pops(self):
        q = make()
        q.push_batch(np.array([1, 1, 1]), val=np.array([1, 2, 3]))
        q.pop(np.array([1]))
        q.pop(np.array([1]))
        assert q.max_occupancy == 3
        assert q.high_water().tolist() == [0, 3, 0, 0]

    def test_high_water_per_queue(self):
        q = make()
        q.push_batch(np.array([0, 0, 2]), val=np.array([1, 2, 3]))
        q.pop(np.array([0]))
        q.push_batch(np.array([2, 2]), val=np.array([4, 5]))
        assert q.high_water().tolist() == [2, 0, 3, 0]
        assert q.max_occupancy == 3

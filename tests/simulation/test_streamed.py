"""Streamed engine: shard invariance, backend equivalence, summary mode."""

import numpy as np
import pytest

from repro.errors import ModelError, SimulationError
from repro.simulation.backends.jit import cycle_loop_kernel
from repro.simulation.batched import run_stacked
from repro.simulation.network import NetworkConfig, NetworkSimulator
from repro.simulation.stats import StreamingTotals
from repro.simulation.streamed import run_streamed

N_CYCLES = 400
WARMUP = 50


def configs(n=6, *, track_limit=200_000, **kw):
    base = dict(k=2, n_stages=3, p=0.6)
    base.update(kw)
    return [
        NetworkConfig(seed=100 + i, track_limit=track_limit, **base)
        for i in range(n)
    ]


def assert_results_identical(a, b):
    assert np.array_equal(a.stage_means, b.stage_means)
    assert np.array_equal(a.stage_variances, b.stage_variances)
    assert np.array_equal(a.stage_counts, b.stage_counts)
    assert np.array_equal(a.tracked.complete_rows(), b.tracked.complete_rows())
    assert a.injected == b.injected
    assert a.completed == b.completed
    assert a.max_occupancy == b.max_occupancy


class TestBackendEquivalence:
    """NumPy per-cycle path == pre-drawn kernel, bit for bit."""

    def test_basic_stack(self):
        cfgs = configs()
        a = run_streamed(cfgs, N_CYCLES, warmup=WARMUP, backend="numpy")
        b = run_streamed(cfgs, N_CYCLES, warmup=WARMUP, backend=cycle_loop_kernel)
        for ra, rb in zip(a.results, b.results, strict=True):
            assert_results_identical(ra, rb)
        assert b.results[0].backend == "numba"
        assert a.results[0].backend == "numpy"

    @pytest.mark.parametrize(
        "kw",
        [
            dict(k=2, n_stages=2, p=0.4, bulk_size=3),
            dict(k=2, n_stages=2, p=0.4, sizes=(1, 3), probabilities=(0.5, 0.5)),
            dict(k=2, n_stages=3, p=0.5, q=0.3),
            dict(k=2, n_stages=2, p=0.4, message_size=2, transfer="store_forward"),
            dict(k=2, n_stages=4, p=0.7, topology="butterfly"),
        ],
        ids=["bulk", "multisize", "favourite", "store_forward", "butterfly"],
    )
    def test_variants(self, kw):
        cfgs = [NetworkConfig(seed=7 + i, **kw) for i in range(3)]
        a = run_streamed(cfgs, 300, warmup=40, backend="numpy")
        b = run_streamed(cfgs, 300, warmup=40, backend=cycle_loop_kernel)
        for ra, rb in zip(a.results, b.results, strict=True):
            assert_results_identical(ra, rb)

    def test_streaming_mode_equivalence(self):
        cfgs = configs(track_limit=0)
        a = run_streamed(cfgs, N_CYCLES, warmup=WARMUP, backend="numpy")
        b = run_streamed(cfgs, N_CYCLES, warmup=WARMUP, backend=cycle_loop_kernel)
        assert a.totals is not None and b.totals is not None
        assert a.totals.count == b.totals.count
        assert a.totals.mean == b.totals.mean
        assert a.totals.variance == b.totals.variance
        assert np.array_equal(a.totals.tail, b.totals.tail)


class TestShardInvariance:
    """A replica's result is independent of its shard-mates."""

    @pytest.mark.parametrize("cuts", [[1, 5], [2, 4], [3], [1, 2, 3, 4, 5]])
    def test_tracked_results_bit_identical(self, cuts):
        cfgs = configs()
        mono = run_streamed(cfgs, N_CYCLES, warmup=WARMUP).results
        bounds = [0, *cuts, len(cfgs)]
        sharded = [
            r
            for lo, hi in zip(bounds[:-1], bounds[1:], strict=True)
            for r in run_streamed(cfgs[lo:hi], N_CYCLES, warmup=WARMUP).results
        ]
        for a, b in zip(mono, sharded, strict=True):
            assert_results_identical(a, b)

    def test_streaming_totals_merge_bit_identical(self):
        cfgs = configs(track_limit=0)
        mono = run_streamed(cfgs, N_CYCLES, warmup=WARMUP).totals
        parts = [
            run_streamed(cfgs[lo:hi], N_CYCLES, warmup=WARMUP).totals
            for lo, hi in [(0, 1), (1, 4), (4, 6)]
        ]
        merged = StreamingTotals.concat(parts)
        assert merged.count == mono.count
        assert merged.mean == mono.mean
        assert merged.variance == mono.variance
        assert np.array_equal(merged.tail, mono.tail)
        assert np.array_equal(merged.replica_means(), mono.replica_means())

    def test_singleton_equals_batch_member(self):
        cfgs = configs(3)
        batch = run_streamed(cfgs, N_CYCLES, warmup=WARMUP).results
        solo = run_streamed([cfgs[1]], N_CYCLES, warmup=WARMUP).results[0]
        assert_results_identical(batch[1], solo)


class TestStreamingSummary:
    """track_limit=0 keeps exact moments without per-message storage."""

    def test_matches_tracked_totals_exactly(self):
        tracked = run_streamed(configs(), N_CYCLES, warmup=WARMUP).results
        stream = run_streamed(configs(track_limit=0), N_CYCLES, warmup=WARMUP)
        exact = np.concatenate([r.total_waits() for r in tracked])
        assert stream.totals.count == exact.size
        assert np.isclose(stream.totals.mean, exact.mean(), rtol=1e-14)
        assert np.isclose(stream.totals.variance, exact.var(ddof=1), rtol=1e-12)
        # per-stage statistics are mode-independent
        for a, b in zip(tracked, stream.results, strict=True):
            assert np.array_equal(a.stage_means, b.stage_means)
            assert np.array_equal(a.stage_variances, b.stage_variances)

    def test_quantile_sketch_brackets_exact(self):
        tracked = run_streamed(configs(), N_CYCLES, warmup=WARMUP).results
        stream = run_streamed(configs(track_limit=0), N_CYCLES, warmup=WARMUP)
        exact = np.sort(np.concatenate([r.total_waits() for r in tracked]))
        grid = stream.totals.sketch.probs
        for q in (0.5, 0.9, 0.99):
            i = np.searchsorted(grid, q)
            lo = np.quantile(exact, grid[max(i - 1, 0)])
            hi = np.quantile(exact, grid[min(i, grid.size - 1)])
            # one grid step in probability plus one unit of interpolation
            # smoothing on integer-valued waits
            assert lo - 1.0 <= stream.totals.quantile(q) <= hi + 1.0

    def test_result_summary_fallbacks(self):
        stream = run_streamed(configs(track_limit=0), N_CYCLES, warmup=WARMUP)
        r = stream.results[0]
        assert r.totals_summary is not None
        assert r.total_waiting_mean() == stream.totals.replica_summary(0).mean
        assert r.total_waiting_variance() == stream.totals.replica_summary(0).variance
        with pytest.raises(SimulationError, match="streaming summary"):
            r.total_waits()

    def test_tracked_mode_has_no_summary(self):
        r = run_streamed(configs(1), N_CYCLES, warmup=WARMUP).results[0]
        assert r.totals_summary is None
        assert r.total_waits().size > 0


class TestRefusals:
    def test_serial_simulator_refuses_streaming_mode(self):
        with pytest.raises(SimulationError, match="streamed engine"):
            NetworkSimulator(NetworkConfig(k=2, n_stages=2, p=0.4, track_limit=0))

    def test_stacked_engine_refuses_streaming_mode(self):
        cfgs = [NetworkConfig(k=2, n_stages=2, p=0.4, seed=1, track_limit=0)]
        with pytest.raises(SimulationError, match="streamed engine"):
            run_stacked(cfgs, n_cycles=100, warmup=10)

    def test_negative_track_limit_refused(self):
        with pytest.raises(ModelError, match="track_limit"):
            NetworkConfig(k=2, n_stages=2, p=0.4, track_limit=-1)

    def test_empty_batch_refused(self):
        with pytest.raises(SimulationError, match="at least one"):
            run_streamed([], 100)

    def test_auto_warmup_refused(self):
        with pytest.raises(SimulationError, match="explicit warm-up"):
            run_streamed(configs(1), 100, warmup="auto")

    def test_finite_buffers_refused(self):
        cfgs = [NetworkConfig(k=2, n_stages=2, p=0.4, buffer_capacity=4, seed=1)]
        with pytest.raises(SimulationError, match="infinite buffers"):
            run_streamed(cfgs, 100)

    def test_shape_mismatch_refused(self):
        cfgs = [
            NetworkConfig(k=2, n_stages=2, p=0.4, seed=1),
            NetworkConfig(k=2, n_stages=3, p=0.4, seed=2),
        ]
        with pytest.raises(SimulationError, match="identical array shapes"):
            run_streamed(cfgs, 100)

    def test_unknown_backend_refused(self):
        with pytest.raises(SimulationError, match="unknown streamed backend"):
            run_streamed(configs(1), 100, warmup=10, backend="cuda")


class TestDefaults:
    def test_warmup_default_matches_stacked(self):
        batch = run_streamed(configs(1), 6000)
        assert batch.results[0].warmup == 600
        batch = run_streamed(configs(1), 1000)
        assert batch.results[0].warmup == 500

    def test_heterogeneous_loads_stack(self):
        cfgs = [
            NetworkConfig(k=2, n_stages=3, p=p, seed=s)
            for s, p in enumerate([0.2, 0.5, 0.8], start=40)
        ]
        mono = run_streamed(cfgs, N_CYCLES, warmup=WARMUP).results
        for cfg, res in zip(cfgs, mono, strict=True):
            solo = run_streamed([cfg], N_CYCLES, warmup=WARMUP).results[0]
            assert_results_identical(res, solo)

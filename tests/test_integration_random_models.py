"""Integration property test: analysis == simulation for *random* models.

Hypothesis generates arbitrary (small-support) arrival and service
distributions; the exact Theorem 1 mean must match the Lindley
simulation within statistical tolerance.  This is the strongest
evidence the library offers that the analysis layer and the sampling
layer agree on *every* model a user can construct, not just the
paper's named families.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.arrivals import CustomArrivals
from repro.core.first_stage import FirstStageQueue
from repro.service import GeneralService
from repro.simulation.queue_sim import simulate_first_stage_queue


@st.composite
def arrival_pmfs(draw):
    """Random pmf on {0..3} with enough idle mass to keep rho < 1."""
    weights = draw(
        st.tuples(
            st.integers(min_value=5, max_value=20),  # strong mass at 0
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=1),
        )
    )
    assume(sum(weights[1:]) > 0)
    total = sum(weights)
    return [Fraction(w, total) for w in weights]


@st.composite
def service_pmfs(draw):
    """Random pmf on {1, 2, 3} (no zero-cycle service)."""
    weights = draw(
        st.tuples(
            st.integers(min_value=1, max_value=10),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=2),
        )
    )
    total = sum(weights)
    return [Fraction(0), *(Fraction(w, total) for w in weights)]


class TestRandomModelAgreement:
    @given(arr_pmf=arrival_pmfs(), srv_pmf=service_pmfs(), seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_mean_agreement(self, arr_pmf, srv_pmf, seed):
        arrivals = CustomArrivals(arr_pmf)
        service = GeneralService(srv_pmf)
        rho = arrivals.rate * service.mean
        # heavy loads mix too slowly for a bounded-length run: the
        # waiting-time autocorrelation time grows like (1 - rho)^-2,
        # shrinking the effective sample size far below the nominal one
        assume(rho < Fraction(3, 4))

        exact = FirstStageQueue(arrivals, service)
        mean = float(exact.waiting_mean())
        var = float(exact.waiting_variance())

        sim = simulate_first_stage_queue(
            arrivals, service, 150_000, rng=np.random.default_rng(seed)
        )
        # i.i.d. sigma inflated by a crude autocorrelation-time factor
        sigma = (var / sim.waits.size) ** 0.5 / (1.0 - float(rho))
        tol = max(6 * sigma, 0.08 * (mean + 0.05))
        assert abs(sim.mean() - mean) < tol + 0.02, (
            f"rho={float(rho):.3f}: sim {sim.mean():.4f} vs exact {mean:.4f}"
        )

    @given(arr_pmf=arrival_pmfs(), seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_variance_agreement_unit_service(self, arr_pmf, seed):
        arrivals = CustomArrivals(arr_pmf)
        service = GeneralService([0, 1])
        rho = arrivals.rate
        assume(rho < Fraction(4, 5))

        exact = FirstStageQueue(arrivals, service)
        var = float(exact.waiting_variance())
        sim = simulate_first_stage_queue(
            arrivals, service, 200_000, rng=np.random.default_rng(seed)
        )
        assert sim.variance() == pytest.approx(var, rel=0.2, abs=0.02)

"""The text, JSON and SARIF reporters; output schemas are pinned here."""

import json

from repro.lint import (
    REPORT_SCHEMA_VERSION,
    RULE_CODES,
    render_json,
    render_sarif,
    render_text,
)


def test_json_schema_is_pinned(lint_tree):
    result = lint_tree({"mod.py": "import random\n"})
    doc = json.loads(render_json(result))
    assert set(doc) == {
        "schema_version",
        "tool",
        "files_checked",
        "findings",
        "counts",
        "suppressed",
        "ok",
    }
    assert doc["schema_version"] == REPORT_SCHEMA_VERSION
    assert doc["tool"] == "repro.lint"
    assert doc["ok"] is False
    assert doc["files_checked"] == 1
    assert doc["counts"] == {"RPR001": 1}
    (finding,) = doc["findings"]
    assert set(finding) == {"path", "line", "col", "rule", "message"}
    assert finding["rule"] == "RPR001"
    assert finding["line"] == 1


def test_json_clean_run(lint_tree):
    result = lint_tree({"mod.py": "x = 1\n"})
    doc = json.loads(render_json(result))
    assert doc["ok"] is True
    assert doc["findings"] == []
    assert doc["counts"] == {}


def test_text_report_lines_and_summary(lint_tree):
    result = lint_tree({"mod.py": "import random\nprint(1)\n"})
    text = render_text(result)
    lines = text.splitlines()
    assert len(lines) == 3  # two findings + summary
    assert lines[0].endswith(result.findings[0].message)
    assert ":1:1: RPR001" in lines[0]
    assert "2 finding(s)" in lines[-1]
    assert "RPR001: 1" in lines[-1] and "RPR004: 1" in lines[-1]


def test_text_report_clean_summary(lint_tree):
    result = lint_tree(
        {"mod.py": "import random  # repro: lint-ok RPR001 -- fixture\n"}
    )
    text = render_text(result)
    assert text == "clean: 1 file(s), 0 findings, 1 suppressed"


def test_sarif_log_structure(lint_tree):
    """SARIF 2.1.0 shape: one run, full rule catalogue, one result per
    finding with a physical location CI annotators can pin to a line."""
    result = lint_tree({"mod.py": "import random\n"})
    doc = json.loads(render_sarif(result))
    assert doc["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in doc["$schema"]
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.lint"
    catalogue = [rule["id"] for rule in driver["rules"]]
    # every registered rule plus the two engine pseudo-codes, sorted
    assert catalogue == sorted(set(RULE_CODES) | {"RPR000", "RPR009"})
    (res,) = run["results"]
    assert res["ruleId"] == "RPR001"
    assert res["level"] == "error"
    (loc,) = res["locations"]
    physical = loc["physicalLocation"]
    assert physical["artifactLocation"]["uri"].endswith("mod.py")
    assert physical["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    assert physical["region"] == {"startLine": 1, "startColumn": 1}


def test_sarif_clean_run_has_empty_results(lint_tree):
    result = lint_tree({"mod.py": "x = 1\n"})
    doc = json.loads(render_sarif(result))
    assert doc["runs"][0]["results"] == []

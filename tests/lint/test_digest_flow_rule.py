"""RPR006: kernel-reachable config reads must be in the digest partition.

Mirrors :mod:`tests.lint.test_digest_rule` in structure, but mutates the
*dataflow* side of the invariant: RPR002 proves declared fields are
classified; these fixtures prove a *kernel read* of an unclassified
field is caught even when the declaration drifts out of the lists.
The rule runs in isolation (``rules=[DigestFlowRule()]``) so the
partition mutations do not also trip RPR002.
"""

from repro.lint.rules.digest_flow import DigestFlowRule
from tests.lint.helpers import codes

NETWORK = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkConfig:
    k: int = 2
    n_stages: int = 3
    p: float = 0.5
    bulk_size: int = 1
    seed: int = 19880101
"""

SPEC_LISTS = 'STACKABLE_CONFIG_FIELDS = ("p", "bulk_size")\n'

BATCHED_LISTS = 'STACK_SHAPE_FIELDS = ("k", "n_stages")\n'

ENGINE = """\
class ClockedEngine:
    def __init__(self, config):
        self.config = config

    def run(self, n_cycles):
        for _ in range(n_cycles):
            self.step()

    def step(self):
        inject(self.config)


def inject(config):
    return config.p * config.bulk_size
"""

EXPERIMENT_SPEC = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentSpec:
    config: object = None
    n_cycles: int = 0
    warmup: int = 0
    label: str = ""

    def identity(self):
        return {
            "config": self.config,
            "n_cycles": self.n_cycles,
            "warmup": self.warmup,
        }
"""


def tree(engine=ENGINE, spec_lists=SPEC_LISTS, **extra):
    files = {
        "simulation/network.py": NETWORK,
        "exec/spec.py": spec_lists,
        "simulation/batched.py": BATCHED_LISTS,
        "simulation/engine.py": engine,
    }
    files.update(extra)
    return files


def lint(lint_tree, files):
    return lint_tree(files, rules=[DigestFlowRule()])


class TestConfigLeg:
    def test_partitioned_reads_are_quiet(self, lint_tree):
        result = lint(lint_tree, tree())
        assert result.ok, result.findings

    def test_kernel_read_of_unpartitioned_field_fires(self, lint_tree):
        """THE invariant: drop a kernel-read field from the lists and
        the read -- two call-graph hops below the entry point -- is
        caught."""
        result = lint(
            lint_tree, tree(spec_lists='STACKABLE_CONFIG_FIELDS = ("p",)\n')
        )
        assert codes(result) == ["RPR006"]
        finding = result.findings[0]
        assert "bulk_size" in finding.message
        assert "inject" in finding.message
        assert "digest partition" in finding.message

    def test_unreachable_read_is_quiet(self, lint_tree):
        """A read in dead code never runs, so it cannot poison caches."""
        dead = ENGINE.replace(
            "def inject(config):\n    return config.p * config.bulk_size",
            "def inject(config):\n    return config.p\n\n\n"
            "def orphan(config):\n    return config.bulk_size",
        )
        result = lint(
            lint_tree,
            tree(engine=dead, spec_lists='STACKABLE_CONFIG_FIELDS = ("p",)\n'),
        )
        assert result.ok, result.findings

    def test_undeclared_attribute_is_quiet(self, lint_tree):
        """Only declared NetworkConfig fields count as config reads --
        a stray local named ``config`` holding another object must not
        drown the rule in noise."""
        noisy = ENGINE.replace(
            "return config.p * config.bulk_size",
            "return config.p * config.not_a_field",
        )
        result = lint(lint_tree, tree(engine=noisy))
        assert result.ok, result.findings

    def test_seed_read_is_quiet(self, lint_tree):
        """``seed`` partitions the config by fiat (RPR002's contract)."""
        seeded = ENGINE.replace(
            "return config.p * config.bulk_size",
            "return config.p + config.seed",
        )
        result = lint(lint_tree, tree(engine=seeded))
        assert result.ok, result.findings

    def test_partial_tree_is_quiet(self, lint_tree):
        """No partition anchors in scope -> nothing to check against."""
        result = lint(
            lint_tree,
            {"simulation/engine.py": ENGINE, "simulation/network.py": NETWORK},
        )
        assert result.ok, result.findings


class TestSpecLeg:
    def test_kernel_read_of_non_identity_spec_field_fires(self, lint_tree):
        kernel = (
            "def stream_totals(spec):\n"
            "    return helper(spec)\n"
            "\n"
            "\n"
            "def helper(spec):\n"
            "    return spec.label\n"
        )
        result = lint(
            lint_tree,
            tree(**{
                "exec/experiment.py": EXPERIMENT_SPEC,
                "simulation/streamed.py": kernel,
            }),
        )
        assert codes(result) == ["RPR006"]
        finding = result.findings[0]
        assert "label" in finding.message
        assert "identity()" in finding.message

    def test_display_layer_label_read_is_quiet(self, lint_tree):
        """Reporting layers legitimately read non-identity metadata;
        only reads inside the kernel directories are hazards."""
        kernel = "def stream_totals(spec):\n    return render(spec)\n"
        display = "def render(spec):\n    return spec.label\n"
        result = lint(
            lint_tree,
            tree(**{
                "exec/experiment.py": EXPERIMENT_SPEC,
                "simulation/streamed.py": kernel,
                "api/report.py": display,
            }),
        )
        assert result.ok, result.findings

    def test_identity_field_read_is_quiet(self, lint_tree):
        kernel = "def stream_totals(spec):\n    return spec.n_cycles\n"
        result = lint(
            lint_tree,
            tree(**{
                "exec/experiment.py": EXPERIMENT_SPEC,
                "simulation/streamed.py": kernel,
            }),
        )
        assert result.ok, result.findings

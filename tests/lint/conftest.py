"""Shared fixtures for the :mod:`repro.lint` self-tests.

Every test builds a throwaway fixture tree in ``tmp_path`` from inline
source strings -- no committed fixture ``.py`` files, so the repo's own
lint/ruff gates never see deliberately-broken code.
"""

import textwrap

import pytest

from repro.lint import lint_paths


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relative_path: source}`` into ``tmp_path`` and lint it.

    Returns the :class:`~repro.lint.LintResult`; keyword arguments are
    forwarded to :func:`~repro.lint.lint_paths`.
    """

    def _lint(files, **kwargs):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return lint_paths([tmp_path], **kwargs)

    return _lint

"""Small assertion helpers shared by the lint self-tests."""


def codes(result):
    """The rule codes of a result's findings, in report order."""
    return [f.rule for f in result.findings]

"""RPR007: RNG stream discipline -- construction, sharing, parity.

The mutation each fixture seeds is one the equivalence tests only catch
*after* results diverge; the rule must catch the source pattern
statically.  Runs in isolation (``rules=[RngStreamRule()]``) so the
fixtures stay focused on stream discipline.
"""

from repro.lint.rules.rng_streams import RngStreamRule
from tests.lint.helpers import codes


def lint(lint_tree, files):
    return lint_tree(files, rules=[RngStreamRule()])


class TestConstructionPoint:
    def test_constructor_in_kernel_dir_fires(self, lint_tree):
        result = lint(
            lint_tree,
            {
                "simulation/traffic.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def make(seed):\n"
                    "    return np.random.default_rng(seed)\n"
                )
            },
        )
        assert codes(result) == ["RPR007"]
        assert "default_rng" in result.findings[0].message
        assert "simulation/rng.py" in result.findings[0].message

    def test_seed_sequence_constructor_fires(self, lint_tree):
        result = lint(
            lint_tree,
            {
                "core/sampler.py": (
                    "from numpy.random import SeedSequence\n"
                    "\n"
                    "\n"
                    "def split(seed):\n"
                    "    return SeedSequence(seed).spawn(2)\n"
                )
            },
        )
        assert codes(result) == ["RPR007"]

    def test_rng_module_itself_is_exempt(self, lint_tree):
        """``simulation/rng.py`` IS the sanctioned construction point."""
        result = lint(
            lint_tree,
            {
                "simulation/rng.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def make_rng(seed):\n"
                    "    return np.random.default_rng(np.random.SeedSequence(seed))\n"
                )
            },
        )
        assert result.ok, result.findings

    def test_non_kernel_dirs_out_of_scope(self, lint_tree):
        result = lint(
            lint_tree,
            {
                "analysis/bootstrap.py": (
                    "import numpy as np\n"
                    "rng = np.random.default_rng(0)\n"
                )
            },
        )
        assert result.ok, result.findings


class TestStreamSharing:
    def test_generator_shared_across_two_kernels_fires(self, lint_tree):
        """THE invariant: one stream feeding two kernel entry points
        couples their draw sequences."""
        result = lint(
            lint_tree,
            {
                "simulation/engine.py": (
                    "def run(traffic_rng):\n"
                    "    inject(traffic_rng)\n"
                    "    route(traffic_rng)\n"
                )
            },
        )
        assert codes(result) == ["RPR007"]
        finding = result.findings[0]
        assert "traffic_rng" in finding.message
        assert "inject" in finding.message and "route" in finding.message

    def test_single_consumer_is_quiet(self, lint_tree):
        result = lint(
            lint_tree,
            {
                "simulation/engine.py": (
                    "def run(traffic_rng, routing_rng):\n"
                    "    inject(traffic_rng)\n"
                    "    route(routing_rng)\n"
                )
            },
        )
        assert result.ok, result.findings

    def test_sanctioned_factory_does_not_count_as_consumer(self, lint_tree):
        """Passing a stream through ``spawn_rngs`` derives children; it
        is not a second kernel consumer."""
        result = lint(
            lint_tree,
            {
                "simulation/engine.py": (
                    "def run(rng):\n"
                    "    child_rng = spawn_rngs(rng, 2)\n"
                    "    inject(child_rng)\n"
                )
            },
        )
        assert result.ok, result.findings


class TestBackendParity:
    REFERENCE_TWO_DRAWS = (
        "def _inject(engine, t):\n"
        "    arrivals = engine.traffic.generate_batch()\n"
        "    lines = engine.topology.entry_queue(arrivals, engine.routing_rng)\n"
    )

    def test_matching_draw_sites_are_quiet(self, lint_tree):
        predraw = (
            "def _predraw(engine, n):\n"
            "    a = engine.traffic.generate_batch()\n"
            "    d = traffic_rng.integers(0, 2, size=n)\n"
        )
        result = lint(
            lint_tree,
            {
                "simulation/backends/reference.py": self.REFERENCE_TWO_DRAWS,
                "simulation/backends/jit.py": predraw,
            },
        )
        assert result.ok, result.findings

    def test_draw_site_mismatch_fires(self, lint_tree):
        """Dropping one pre-draw desynchronises the JIT stream from the
        reference -- a bug only visible as a statistical drift at run
        time, caught here as a count mismatch."""
        predraw = (
            "def _predraw(engine, n):\n"
            "    a = engine.traffic.generate_batch()\n"
        )
        result = lint(
            lint_tree,
            {
                "simulation/backends/reference.py": self.REFERENCE_TWO_DRAWS,
                "simulation/backends/jit.py": predraw,
            },
        )
        assert codes(result) == ["RPR007"]
        finding = result.findings[0]
        assert "mismatch" in finding.message
        assert "2 draw sites" in finding.message

    def test_single_backend_is_quiet(self, lint_tree):
        """Partial tree: parity needs both halves of the pair."""
        result = lint(
            lint_tree,
            {"simulation/backends/reference.py": self.REFERENCE_TWO_DRAWS},
        )
        assert result.ok, result.findings

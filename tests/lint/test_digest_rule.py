"""RPR002: the stacking field lists must partition ``NetworkConfig``.

The fixtures model the real anchor layout (``NetworkConfig`` dataclass
in one module, ``STACKABLE_CONFIG_FIELDS`` and ``STACK_SHAPE_FIELDS``
in two others) so the mutation tests prove exactly the failure the
rule exists for: adding a config field without classifying it.
"""

from tests.lint.helpers import codes

NETWORK = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkConfig:
    k: int = 2
    n_stages: int = 6
    p: float = 0.5
    message_size: int = 1
    seed: int = 19880101
"""

SPEC = 'STACKABLE_CONFIG_FIELDS = ("p", "message_size")\n'

BATCHED = 'STACK_SHAPE_FIELDS = ("k", "n_stages")\n'

CONTEXT = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class ExecutionContext:
    workers: int = 1
    shard_mem: int = 0
    stream: bool = False
"""


def tree(network=NETWORK, spec=SPEC, batched=BATCHED, context=CONTEXT):
    return {
        "simulation/network.py": network,
        "exec/spec.py": spec,
        "simulation/batched.py": batched,
        "exec/context.py": context,
    }


class TestPartition:
    def test_exact_partition_is_quiet(self, lint_tree):
        result = lint_tree(tree())
        assert result.ok, result.findings

    def test_new_config_field_without_classification_fires(self, lint_tree):
        """THE invariant: add a field, forget the lists, lint fails."""
        mutated = NETWORK.replace(
            "seed: int = 19880101",
            "seed: int = 19880101\n    bulk_size: int = 1",
        )
        result = lint_tree(tree(network=mutated))
        assert codes(result) == ["RPR002"]
        assert "bulk_size" in result.findings[0].message
        assert "neither" in result.findings[0].message

    def test_backend_field_on_config_fires(self, lint_tree):
        """Backend selection is an execution detail: were anyone to
        promote it onto NetworkConfig it would enter digests and cache
        keys, and the partition check must catch the attempt."""
        mutated = NETWORK.replace(
            "seed: int = 19880101",
            'seed: int = 19880101\n    backend: str = "numpy"',
        )
        result = lint_tree(tree(network=mutated))
        assert codes(result) == ["RPR002"]
        assert "backend" in result.findings[0].message

    def test_field_in_both_lists_fires(self, lint_tree):
        result = lint_tree(
            tree(batched='STACK_SHAPE_FIELDS = ("k", "n_stages", "p")\n')
        )
        assert codes(result) == ["RPR002"]
        assert "both" in result.findings[0].message

    def test_seed_in_a_list_fires(self, lint_tree):
        result = lint_tree(
            tree(spec='STACKABLE_CONFIG_FIELDS = ("p", "message_size", "seed")\n')
        )
        assert codes(result) == ["RPR002"]
        assert "seed" in result.findings[0].message

    def test_stale_name_fires(self, lint_tree):
        result = lint_tree(
            tree(spec='STACKABLE_CONFIG_FIELDS = ("p", "message_size", "msg_len")\n')
        )
        assert codes(result) == ["RPR002"]
        assert "msg_len" in result.findings[0].message

    def test_computed_list_fires(self, lint_tree):
        """A non-literal field list cannot be verified statically."""
        result = lint_tree(
            tree(spec='STACKABLE_CONFIG_FIELDS = tuple(sorted(["p"]))\n')
        )
        assert codes(result) == ["RPR002"]
        assert "literal tuple" in result.findings[0].message

    def test_exec_knob_colliding_with_config_field_fires(self, lint_tree):
        """Execution knobs (shard size, worker counts) must never share
        a name with a digest-bearing config field -- the collision is
        the first step toward an execution detail entering digests."""
        mutated = CONTEXT.replace(
            "stream: bool = False",
            "stream: bool = False\n    p: float = 0.5",
        )
        result = lint_tree(tree(context=mutated))
        assert codes(result) == ["RPR002"]
        assert "p" in result.findings[0].message
        assert "disjoint" in result.findings[0].message

    def test_missing_execution_context_is_quiet(self, lint_tree):
        """The three original anchors suffice; ExecutionContext is an
        optional fourth (subtrees without exec/ still lint clean)."""
        files = tree()
        del files["exec/context.py"]
        result = lint_tree(files)
        assert result.ok, result.findings

    def test_partial_tree_without_anchors_is_quiet(self, lint_tree):
        """Linting a subtree missing an anchor must not fire."""
        result = lint_tree({"simulation/network.py": NETWORK})
        assert result.ok, result.findings

    def test_real_codebase_partition_holds(self):
        """The shipped sources satisfy the partition (anchored check)."""
        from pathlib import Path

        import repro
        from repro.lint import LintConfig, lint_paths

        pkg = Path(repro.__file__).parent
        result = lint_paths(
            [pkg / "simulation", pkg / "exec"],
            config=LintConfig(select=frozenset({"RPR002"})),
        )
        assert result.ok, result.findings

"""RPR003 (silent failure), RPR004 (library purity), RPR005 (mutable
defaults): fire and quiet cases for the file-local hygiene rules."""

from tests.lint.helpers import codes


class TestSilentExcept:
    def test_swallowed_broad_except_fires(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": """\
                def f():
                    try:
                        risky()
                    except Exception:
                        pass
                """
            }
        )
        assert codes(result) == ["RPR003"]

    def test_bare_except_fires(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": """\
                def f():
                    try:
                        risky()
                    except:
                        result = None
                """
            }
        )
        assert codes(result) == ["RPR003"]

    def test_broad_except_in_tuple_fires(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": """\
                def f():
                    try:
                        risky()
                    except (ValueError, BaseException):
                        pass
                """
            }
        )
        assert codes(result) == ["RPR003"]

    def test_reraise_is_quiet(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": """\
                def f():
                    try:
                        risky()
                    except Exception:
                        cleanup()
                        raise
                """
            }
        )
        assert result.ok, result.findings

    def test_using_bound_name_is_quiet(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": """\
                def f(log):
                    try:
                        risky()
                    except Exception as exc:
                        log.append(str(exc))
                """
            }
        )
        assert result.ok, result.findings

    def test_traceback_report_is_quiet(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": """\
                import traceback


                def f(sink):
                    try:
                        risky()
                    except Exception:
                        sink.write(traceback.format_exc())
                """
            }
        )
        assert result.ok, result.findings

    def test_logger_exception_is_quiet(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": """\
                def f(logger):
                    try:
                        risky()
                    except Exception:
                        logger.exception("boom")
                """
            }
        )
        assert result.ok, result.findings

    def test_narrow_except_is_quiet(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": """\
                def f():
                    try:
                        risky()
                    except (TypeError, ValueError):
                        pass
                """
            }
        )
        assert result.ok, result.findings


class TestLibraryPurity:
    def test_print_fires(self, lint_tree):
        result = lint_tree({"analysis/mod.py": 'print("hi")\n'})
        assert codes(result) == ["RPR004"]

    def test_sys_exit_fires(self, lint_tree):
        result = lint_tree(
            {"analysis/mod.py": "import sys\nsys.exit(1)\n"}
        )
        assert codes(result) == ["RPR004"]

    def test_cli_module_is_exempt(self, lint_tree):
        result = lint_tree(
            {"cli.py": 'import sys\nprint("hi")\nsys.exit(0)\n'}
        )
        assert result.ok, result.findings

    def test_locally_rebound_print_is_quiet(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": """\
                def f(rows, print):
                    print(rows)
                """
            }
        )
        assert result.ok, result.findings


class TestMutableDefaults:
    def test_list_default_fires(self, lint_tree):
        result = lint_tree(
            {"mod.py": "def f(items=[]):\n    return items\n"}
        )
        assert codes(result) == ["RPR005"]

    def test_dict_call_default_fires(self, lint_tree):
        result = lint_tree(
            {"mod.py": "def f(opts=dict()):\n    return opts\n"}
        )
        assert codes(result) == ["RPR005"]

    def test_kwonly_set_default_fires(self, lint_tree):
        result = lint_tree(
            {"mod.py": "def f(*, seen={1}):\n    return seen\n"}
        )
        assert codes(result) == ["RPR005"]

    def test_lambda_default_fires(self, lint_tree):
        result = lint_tree(
            {"mod.py": "g = lambda xs=[]: xs\n"}
        )
        assert codes(result) == ["RPR005"]

    def test_immutable_defaults_are_quiet(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": """\
                def f(a=(), b=None, c=0, d="x", e=frozenset()):
                    return a, b, c, d, e
                """
            }
        )
        assert result.ok, result.findings

"""The repo's own gates, as tests: ``repro.lint`` and mypy self-checks.

These are the acceptance criteria of the static-analysis subsystem --
the shipped sources must pass their own linter with zero findings, and
(where mypy is installed, e.g. in CI) type-check cleanly.
"""

import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.lint import lint_paths

PACKAGE = Path(repro.__file__).parent


def test_shipped_sources_lint_clean():
    result = lint_paths([PACKAGE])
    assert result.ok, "\n".join(f.render() for f in result.findings)
    # sanity: the run actually covered the package, not an empty dir
    assert result.files_checked > 50


def test_deliberate_waivers_are_reasoned_and_in_use():
    """Every suppression in the shipped sources carries a reason and
    waives a live finding (stale ones would surface as RPR009)."""
    result = lint_paths([PACKAGE])
    assert result.ok
    assert result.suppressed >= 5  # the audited wall-clock/except waivers


def test_mypy_self_check():
    pytest.importorskip("mypy", reason="mypy not installed (CI-only gate)")
    repo_root = Path(__file__).resolve().parents[2]
    if not (repo_root / "pyproject.toml").is_file():
        pytest.skip("not running from a source checkout")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro"],
        cwd=repo_root,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr

"""``python -m repro lint``: exit codes and output formats."""

import json
import textwrap

from repro.cli import main


def write(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


class TestExitCodes:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write(tmp_path, "import random\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        write(tmp_path, "x = 1\n")
        assert main(["lint", str(tmp_path), "--select", "RPR999"]) == 2
        err = capsys.readouterr().err
        assert "RPR999" in err and "known rules" in err


class TestOptions:
    def test_json_format(self, tmp_path, capsys):
        write(tmp_path, "import random\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro.lint"
        assert doc["counts"] == {"RPR001": 1}

    def test_select_limits_rules(self, tmp_path, capsys):
        write(tmp_path, "import random\nprint(1)\n")
        assert main(["lint", str(tmp_path), "--select", "RPR004"]) == 1
        out = capsys.readouterr().out
        assert "RPR004" in out and "RPR001" not in out

    def test_ignore_drops_rules(self, tmp_path, capsys):
        write(tmp_path, "import random\n")
        assert main(["lint", str(tmp_path), "--ignore", "RPR001"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_explicit_file_target(self, tmp_path, capsys):
        path = write(tmp_path, "import random\n")
        assert main(["lint", str(path)]) == 1
        capsys.readouterr()

    def test_sarif_format(self, tmp_path, capsys):
        write(tmp_path, "import random\n")
        assert main(["lint", str(tmp_path), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "RPR001"

    def test_sarif_clean_run_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "x = 1\n")
        assert main(["lint", str(tmp_path), "--format", "sarif"]) == 0
        assert json.loads(capsys.readouterr().out)["runs"][0]["results"] == []


class TestListWaivers:
    def test_inventory_lists_path_codes_expiry_and_reason(self, tmp_path, capsys):
        write(
            tmp_path,
            "import random  # repro: lint-ok RPR001 until=2099-01-01 -- fixture waiver\n",
        )
        assert main(["lint", str(tmp_path), "--list-waivers"]) == 0
        out = capsys.readouterr().out
        assert "mod.py:1:" in out
        assert "RPR001" in out
        assert "until=2099-01-01" in out
        assert "fixture waiver" in out
        assert "1 waiver(s)" in out

    def test_waiverless_tree(self, tmp_path, capsys):
        write(tmp_path, "x = 1\n")
        assert main(["lint", str(tmp_path), "--list-waivers"]) == 0
        assert "0 waiver(s)" in capsys.readouterr().out


def test_default_target_is_the_installed_package(capsys):
    """Bare ``python -m repro lint`` lints the shipped sources -- and
    they are clean (the acceptance gate for the whole subsystem)."""
    assert main(["lint"]) == 0
    assert "clean" in capsys.readouterr().out

"""Engine invariants: suppressions, pseudo-codes, ordering, config."""

from datetime import date

import pytest

from repro.errors import LintError
from repro.lint import (
    PARSE_ERROR_CODE,
    RULE_CODES,
    UNUSED_SUPPRESSION_CODE,
    LintConfig,
    collect_waivers,
    iter_python_files,
    lint_paths,
)
from tests.lint.helpers import codes


class TestSuppressions:
    def test_same_line_comment_suppresses(self, lint_tree):
        result = lint_tree(
            {"mod.py": "import random  # repro: lint-ok RPR001 -- fixture only\n"}
        )
        assert result.ok, result.findings
        assert result.suppressed == 1

    def test_line_above_comment_suppresses(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": (
                    "# repro: lint-ok RPR001 -- fixture only\n"
                    "import random\n"
                )
            }
        )
        assert result.ok, result.findings
        assert result.suppressed == 1

    def test_two_lines_above_does_not_cover(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": (
                    "# repro: lint-ok RPR001 -- fixture only\n"
                    "x = 1\n"
                    "import random\n"
                )
            }
        )
        # sorted by line: the stale comment (line 1) precedes the import
        assert codes(result) == [UNUSED_SUPPRESSION_CODE, "RPR001"]

    def test_wrong_code_does_not_cover(self, lint_tree):
        result = lint_tree(
            {"mod.py": "import random  # repro: lint-ok RPR003 -- wrong code\n"}
        )
        assert codes(result) == ["RPR001", UNUSED_SUPPRESSION_CODE]

    def test_reasonless_suppression_covers_nothing_and_is_flagged(self, lint_tree):
        """A waiver must say why; without a reason the finding stands."""
        result = lint_tree(
            {"mod.py": "import random  # repro: lint-ok RPR001\n"}
        )
        assert codes(result) == ["RPR001", UNUSED_SUPPRESSION_CODE]
        flagged = result.findings[1]
        assert "reason" in flagged.message

    def test_unused_suppression_is_flagged(self, lint_tree):
        result = lint_tree(
            {"mod.py": "x = 1  # repro: lint-ok RPR001 -- nothing here anymore\n"}
        )
        assert codes(result) == [UNUSED_SUPPRESSION_CODE]
        assert "stale" in result.findings[0].message

    def test_multi_code_comment_covers_both_rules(self, lint_tree):
        result = lint_tree(
            {
                "analysis/mod.py": (
                    "import sys\n"
                    "# repro: lint-ok RPR003, RPR004 -- fixture: deliberate swallow + exit\n"
                    "sys.exit(1)\n"
                )
            }
        )
        # the comment covers the sys.exit on the next line (RPR004);
        # RPR003 never fires, but the comment is "used", so no RPR009
        assert result.ok, result.findings
        assert result.suppressed == 1

    def test_suppression_inside_string_literal_is_inert(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": (
                    's = "# repro: lint-ok RPR001 -- not a comment"\n'
                    "import random\n"
                )
            }
        )
        assert codes(result) == ["RPR001"]

    def test_unused_suppression_quiet_when_its_rule_is_disabled(self, lint_tree):
        result = lint_tree(
            {"mod.py": "x = 1  # repro: lint-ok RPR001 -- waived\n"},
            config=LintConfig(select=frozenset({"RPR004"})),
        )
        assert result.ok, result.findings


class TestExpiringWaivers:
    WAIVED = "import random  # repro: lint-ok RPR001 until=2026-06-30 -- migration window\n"

    def test_unexpired_waiver_covers(self, lint_tree):
        result = lint_tree({"mod.py": self.WAIVED}, today=date(2026, 6, 1))
        assert result.ok, result.findings
        assert result.suppressed == 1

    def test_expiry_day_itself_still_covers(self, lint_tree):
        result = lint_tree({"mod.py": self.WAIVED}, today=date(2026, 6, 30))
        assert result.ok, result.findings

    def test_expired_waiver_exposes_finding_and_is_flagged(self, lint_tree):
        """Past the date the waiver is void: the original finding comes
        back AND the stale waiver itself is reported."""
        result = lint_tree({"mod.py": self.WAIVED}, today=date(2026, 7, 1))
        assert codes(result) == ["RPR001", UNUSED_SUPPRESSION_CODE]
        stale = result.findings[1]
        assert "expired on 2026-06-30" in stale.message
        assert "renew" in stale.message

    def test_malformed_date_never_expires(self, lint_tree):
        """An unparseable until= clause degrades to an unexpiring
        waiver rather than silently voiding the suppression."""
        result = lint_tree(
            {
                "mod.py": (
                    "import random"
                    "  # repro: lint-ok RPR001 until=2026-13-99 -- bad date\n"
                )
            },
            today=date(2030, 1, 1),
        )
        assert result.ok, result.findings

    def test_collect_waivers_inventories_the_tree(self, tmp_path):
        (tmp_path / "a.py").write_text(self.WAIVED)
        (tmp_path / "b.py").write_text(
            "x = 1  # repro: lint-ok RPR004 -- fixture\n"
        )
        waivers = collect_waivers([tmp_path])
        assert [(p.rsplit("/", 1)[-1], s.line) for p, s in waivers] == [
            ("a.py", 1),
            ("b.py", 1),
        ]
        assert waivers[0][1].until == date(2026, 6, 30)
        assert waivers[0][1].reason == "migration window"
        assert waivers[1][1].until is None


class TestUnreadableFiles:
    def test_non_utf8_file_is_a_finding_not_a_crash(self, tmp_path):
        """An unreadable file cannot be proven clean; surfacing it as a
        pinned RPR000 finding keeps 'exit 0' meaning 'whole tree
        checked'."""
        (tmp_path / "latin.py").write_bytes(b"# caf\xe9\nx = 1\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        result = lint_paths([tmp_path])
        assert codes(result) == [PARSE_ERROR_CODE]
        finding = result.findings[0]
        assert "cannot read file" in finding.message
        assert finding.line == 1 and finding.col == 1
        assert result.files_checked == 2
        assert not result.ok

    def test_read_error_respects_rule_selection(self, tmp_path):
        (tmp_path / "latin.py").write_bytes(b"# caf\xe9\n")
        result = lint_paths(
            [tmp_path], config=LintConfig(select=frozenset({"RPR001"}))
        )
        assert result.ok, result.findings


class TestEngine:
    def test_syntax_error_is_a_finding_not_a_crash(self, lint_tree):
        result = lint_tree(
            {"broken.py": "def f(:\n", "ok.py": "import random\n"}
        )
        assert sorted(codes(result)) == [PARSE_ERROR_CODE, "RPR001"]

    def test_findings_are_sorted_by_location(self, lint_tree):
        result = lint_tree(
            {
                "b.py": "import random\n",
                "a.py": "print(1)\nimport random\n",
            }
        )
        keys = [(f.path, f.line, f.col, f.rule) for f in result.findings]
        assert keys == sorted(keys)
        assert len(keys) == 3

    def test_files_checked_counts_every_python_file(self, lint_tree):
        result = lint_tree({"a.py": "x = 1\n", "sub/b.py": "y = 2\n"})
        assert result.files_checked == 2
        assert result.ok

    def test_missing_target_raises_lint_error(self, tmp_path):
        with pytest.raises(LintError, match="does not exist"):
            lint_paths([tmp_path / "nowhere"])

    def test_pycache_is_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("import random\n")
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert iter_python_files([tmp_path]) == [tmp_path / "mod.py"]


class TestConfig:
    def test_unknown_rule_code_raises(self):
        with pytest.raises(LintError, match="RPR999"):
            LintConfig.from_options(select=["RPR999"], known=RULE_CODES)

    def test_select_restricts_rules(self, lint_tree):
        result = lint_tree(
            {"mod.py": "import random\nprint(1)\n"},
            config=LintConfig(select=frozenset({"RPR004"})),
        )
        assert codes(result) == ["RPR004"]

    def test_ignore_drops_rules(self, lint_tree):
        result = lint_tree(
            {"mod.py": "import random\nprint(1)\n"},
            config=LintConfig(ignore=frozenset({"RPR004"})),
        )
        assert codes(result) == ["RPR001"]

    def test_comma_joined_options_parse(self):
        config = LintConfig.from_options(
            select=["RPR001,RPR004"], known=RULE_CODES
        )
        assert config.select == frozenset({"RPR001", "RPR004"})

"""RPR001: global-RNG ban (everywhere) + wall-clock ban (kernels only)."""

from tests.lint.helpers import codes


class TestGlobalRng:
    def test_stdlib_random_import_fires(self, lint_tree):
        result = lint_tree({"mod.py": "import random\n"})
        assert codes(result) == ["RPR001"]
        assert "process-global" in result.findings[0].message

    def test_stdlib_random_from_import_fires(self, lint_tree):
        result = lint_tree({"mod.py": "from random import shuffle\n"})
        assert codes(result) == ["RPR001"]

    def test_np_random_module_call_fires(self, lint_tree):
        result = lint_tree(
            {"mod.py": "import numpy as np\nx = np.random.rand(4)\n"}
        )
        assert codes(result) == ["RPR001"]
        assert "legacy" in result.findings[0].message

    def test_np_random_seed_fires(self, lint_tree):
        result = lint_tree(
            {"mod.py": "import numpy\nnumpy.random.seed(0)\n"}
        )
        assert codes(result) == ["RPR001"]

    def test_from_numpy_import_random_alias_tracked(self, lint_tree):
        result = lint_tree(
            {"mod.py": "from numpy import random as npr\nx = npr.normal()\n"}
        )
        assert codes(result) == ["RPR001"]

    def test_argless_default_rng_fires(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": """\
                from numpy.random import default_rng
                rng = default_rng()
                """
            }
        )
        assert codes(result) == ["RPR001"]
        assert "OS" in result.findings[0].message

    def test_seeded_default_rng_is_quiet(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": """\
                import numpy as np
                rng = np.random.default_rng(19880101)
                seq = np.random.SeedSequence(7)
                x = rng.normal(size=3)
                """
            }
        )
        assert result.ok, result.findings

    def test_local_random_package_is_quiet(self, lint_tree):
        """A *relative* ``random`` module is not the stdlib one."""
        result = lint_tree(
            {"pkg/mod.py": "from .random import helper\n"}
        )
        assert result.ok, result.findings


class TestWallClock:
    KERNEL = "simulation/kernel_mod.py"
    LAYER = "exec/runner_mod.py"

    def test_time_import_in_kernel_fires(self, lint_tree):
        result = lint_tree({self.KERNEL: "import time\n"})
        assert codes(result) == ["RPR001"]
        assert "wall-clock" in result.findings[0].message

    def test_perf_counter_from_import_in_kernel_fires(self, lint_tree):
        result = lint_tree(
            {self.KERNEL: "from time import perf_counter\n"}
        )
        assert codes(result) == ["RPR001"]

    def test_datetime_now_import_in_kernel_fires(self, lint_tree):
        result = lint_tree(
            {self.KERNEL: "from datetime import datetime\n"}
        )
        assert codes(result) == ["RPR001"]

    def test_time_outside_kernel_is_quiet(self, lint_tree):
        result = lint_tree(
            {self.LAYER: "from time import perf_counter\n"}
        )
        assert result.ok, result.findings

    def test_non_timing_from_time_is_quiet(self, lint_tree):
        result = lint_tree({self.KERNEL: "from time import sleep\n"})
        assert result.ok, result.findings

    def test_reasoned_suppression_waives_kernel_import(self, lint_tree):
        result = lint_tree(
            {
                self.KERNEL: """\
                # repro: lint-ok RPR001 -- profiling only; never enters results
                from time import perf_counter
                """
            }
        )
        assert result.ok, result.findings
        assert result.suppressed == 1

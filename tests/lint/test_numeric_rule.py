"""RPR008: numeric safety in kernel code.

PR 9's ``StageAccumulator`` drift bug is the motivating instance: each
fixture seeds one member of that bug class (naive accumulation, aliased
in-place ops, NaN-promoting comparisons) and asserts the rule catches
it, plus the deliberate exemptions that keep the real tree quiet.
Runs in isolation (``rules=[NumericSafetyRule()]``).
"""

from repro.lint.rules.numeric import NumericSafetyRule
from tests.lint.helpers import codes


def lint(lint_tree, files):
    return lint_tree(files, rules=[NumericSafetyRule()])


def kernel(source):
    return {"simulation/kernel.py": source}


class TestAccumulation:
    def test_naive_float_sum_in_loop_fires(self, lint_tree):
        """THE invariant: the exact shape of PR 9's moment-drift bug."""
        result = lint(
            lint_tree,
            kernel(
                "def total_wait(waits):\n"
                "    total = 0.0\n"
                "    for w in waits:\n"
                "        total += w\n"
                "    return total\n"
            ),
        )
        assert codes(result) == ["RPR008"]
        assert "naive float accumulation" in result.findings[0].message
        assert "'total'" in result.findings[0].message

    def test_integer_accumulator_is_quiet(self, lint_tree):
        """Int sums are exact; only float-literal seeds fire."""
        result = lint(
            lint_tree,
            kernel(
                "def count(items):\n"
                "    n = 0\n"
                "    for item in items:\n"
                "        n += 1\n"
                "    return n\n"
            ),
        )
        assert result.ok, result.findings

    def test_loop_free_float_add_is_quiet(self, lint_tree):
        result = lint(
            lint_tree,
            kernel(
                "def shift(x):\n"
                "    total = 0.0\n"
                "    total += x\n"
                "    return total\n"
            ),
        )
        assert result.ok, result.findings


class TestAliasing:
    def test_inplace_op_reading_its_own_target_fires(self, lint_tree):
        result = lint(
            lint_tree,
            kernel(
                "def smear(a):\n"
                "    a[1:] += a[:-1]\n"
            ),
        )
        assert codes(result) == ["RPR008"]
        assert "partially-updated" in result.findings[0].message

    def test_inplace_op_from_other_buffer_is_quiet(self, lint_tree):
        result = lint(
            lint_tree,
            kernel(
                "def add(a, b, idx):\n"
                "    a[idx] += b[idx]\n"
            ),
        )
        assert result.ok, result.findings


class TestComparisons:
    def test_direct_nan_compare_fires(self, lint_tree):
        result = lint(
            lint_tree,
            kernel(
                "import numpy as np\n"
                "\n"
                "\n"
                "def poisoned(x):\n"
                "    return x == np.nan\n"
            ),
        )
        assert codes(result) == ["RPR008"]
        assert "np.isnan" in result.findings[0].message

    def test_float_call_nan_compare_fires(self, lint_tree):
        result = lint(
            lint_tree,
            kernel(
                "def poisoned(x):\n"
                '    return x != float("nan")\n'
            ),
        )
        assert codes(result) == ["RPR008"]

    def test_chained_float_compare_fires(self, lint_tree):
        result = lint(
            lint_tree,
            kernel(
                "def in_band(x, i):\n"
                "    return 0.0 <= x[i] < 1.0\n"
            ),
        )
        assert codes(result) == ["RPR008"]
        assert "chained comparison" in result.findings[0].message

    def test_integer_bound_chain_is_quiet(self, lint_tree):
        """``0 <= warmup < n_cycles`` is the idiomatic bound check."""
        result = lint(
            lint_tree,
            kernel(
                "def check(warmup, n_cycles):\n"
                "    return 0 <= warmup < n_cycles\n"
            ),
        )
        assert result.ok, result.findings

    def test_negated_rejection_guard_is_exempt(self, lint_tree):
        """``if not lo <= p <= hi: raise`` sends NaN to the raise
        branch -- exactly the desired handling."""
        result = lint(
            lint_tree,
            kernel(
                "def validate(p):\n"
                "    if not 0.0 <= p <= 1.0:\n"
                '        raise ValueError("p out of range")\n'
            ),
        )
        assert result.ok, result.findings

    def test_analysis_layer_out_of_scope(self, lint_tree):
        result = lint(
            lint_tree,
            {
                "analysis/report.py": (
                    "def total(waits):\n"
                    "    total = 0.0\n"
                    "    for w in waits:\n"
                    "        total += w\n"
                    "    return total\n"
                )
            },
        )
        assert result.ok, result.findings

"""The ``python -m repro db`` command family, end to end."""

import json

import pytest

from repro.cli import build_parser, main
from repro.exec.runner import execute_spec, run_many
from repro.exec.spec import ExperimentSpec
from repro.expdb.db import ExperimentDB
from repro.expdb.ingest import ingest_batch
from repro.obs.manifest import build_manifest
from repro.simulation.network import NetworkConfig


def _spec(p=0.5, seed=100):
    # matches the smoke-first-stage-p0.5 / smoke-throughput-p0.5 selectors
    return ExperimentSpec(
        config=NetworkConfig(
            k=2, n_stages=3, p=p, topology="random", width=32, seed=seed
        ),
        n_cycles=1500,
        label=f"cli-p{p}",
    )


@pytest.fixture()
def seeded_db(tmp_path):
    """A ledger holding one completed smoke-matching run."""
    path = tmp_path / "ledger.sqlite"
    db = ExperimentDB(path)
    ingest_batch(db, run_many([_spec()], workers=1), created_unix=50.0)
    db.close()
    return path


class TestParser:
    def test_db_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["db"])

    def test_expectations_flags(self):
        args = build_parser().parse_args(
            ["db", "--path", "x.sqlite", "expectations", "--report", "r.md"]
        )
        assert args.command == "db"
        assert args.db_command == "expectations"
        assert args.path == "x.sqlite"
        assert args.report == "r.md"

    def test_batch_accepts_db_flag(self):
        args = build_parser().parse_args(["batch", "--db", "x.sqlite"])
        assert args.db == "x.sqlite"


class TestIngest:
    def test_nothing_to_do_is_an_error(self, tmp_path, capsys):
        assert main(["db", "--path", str(tmp_path / "x.sqlite"), "ingest"]) == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_manifests_and_bench(self, tmp_path, capsys):
        session = tmp_path / "session"
        session.mkdir()
        manifest = build_manifest(execute_spec(_spec()), run_id="run-0001")
        (session / "run-0001.manifest.json").write_text(json.dumps(manifest))
        bench = tmp_path / "BENCH_replicas.json"
        bench.write_text(
            json.dumps({"serial_seconds": 2.0, "batched_seconds": 0.3, "speedup": 6.7})
        )
        code = main(
            ["db", "--path", str(tmp_path / "x.sqlite"), "ingest",
             "--manifests", str(session), "--bench", str(bench)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 manifest(s) ingested" in out
        assert "series ['replicas']" in out


class TestQuery:
    def test_lists_runs(self, seeded_db, capsys):
        assert main(["db", "--path", str(seeded_db), "query"]) == 0
        out = capsys.readouterr().out
        assert "1 run(s)" in out
        assert "cli-p0.5" in out
        assert "completed" in out


class TestExpectations:
    def test_scorecard_renders_and_succeeds(self, seeded_db, capsys):
        assert main(["db", "--path", str(seeded_db), "expectations"]) == 0
        out = capsys.readouterr().out
        assert "Reproduction scorecard" in out
        assert "smoke-first-stage-p0.5" in out
        assert "| success" in out

    def test_report_file_and_eval_history(self, seeded_db, tmp_path):
        report = tmp_path / "scorecard.md"
        assert main(
            ["db", "--path", str(seeded_db), "expectations",
             "--report", str(report)]
        ) == 0
        assert "Reproduction scorecard" in report.read_text()
        db = ExperimentDB(seeded_db)
        assert db.counts()["expectation_evals"] > 0

    def test_regression_exits_nonzero(self, seeded_db, capsys):
        assert main(["db", "--path", str(seeded_db), "expectations"]) == 0
        # corrupt the measured value so a previously-met target fails
        db = ExperimentDB(seeded_db)
        db._conn.execute("UPDATE runs SET stage_means = '[9.0, 9.0, 9.0]'")
        db._conn.commit()
        db.close()
        capsys.readouterr()
        assert main(["db", "--path", str(seeded_db), "expectations"]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_strict_fails_on_outright_failure(self, seeded_db, capsys):
        db = ExperimentDB(seeded_db)
        db._conn.execute("UPDATE runs SET stage_means = '[9.0, 9.0, 9.0]'")
        db._conn.commit()
        db.close()
        # no prior success history -> not a regression, but --strict trips
        assert main(["db", "--path", str(seeded_db), "expectations"]) == 0
        capsys.readouterr()
        assert main(
            ["db", "--path", str(seeded_db), "expectations", "--strict"]
        ) == 1
        assert "--strict" in capsys.readouterr().err


class TestPerf:
    def _ingest_bench(self, path, speedup):
        db = ExperimentDB(path)
        from repro.expdb.ingest import bench_record_from_artifact

        db.record_bench(
            bench_record_from_artifact(
                "replicas",
                {"serial_seconds": 2.0, "batched_seconds": 0.4, "speedup": speedup},
                created_unix=60.0,
            )
        )
        db.close()

    def test_trajectory_renders(self, tmp_path, capsys):
        path = tmp_path / "x.sqlite"
        self._ingest_bench(path, speedup=6.7)
        assert main(["db", "--path", str(path), "perf"]) == 0
        out = capsys.readouterr().out
        assert "Performance trajectory" in out
        assert "6.70x" in out

    def test_fail_on_regression(self, tmp_path, capsys):
        path = tmp_path / "x.sqlite"
        self._ingest_bench(path, speedup=1.2)  # below the 5x replicas floor
        assert main(
            ["db", "--path", str(path), "perf", "--fail-on-regression"]
        ) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err


class TestExportAndBatch:
    def test_export_is_deterministic_json(self, seeded_db, capsys):
        assert main(["db", "--path", str(seeded_db), "export"]) == 0
        first = capsys.readouterr().out
        doc = json.loads(first)
        assert doc["schema_version"] == 1
        assert len(doc["runs"]) == 1
        assert main(["db", "--path", str(seeded_db), "export"]) == 0
        assert capsys.readouterr().out == first

    def test_export_to_file(self, seeded_db, tmp_path):
        out = tmp_path / "export.json"
        assert main(
            ["db", "--path", str(seeded_db), "export", "--out", str(out)]
        ) == 0
        assert json.loads(out.read_text())["schema_version"] == 1

    def test_batch_records_into_ledger_and_prints_summary(self, tmp_path, capsys):
        path = tmp_path / "ledger.sqlite"
        code = main(
            ["batch", "--cycles", "1500", "--no-cache", "--db", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch summary:" in out
        assert "cache hit(s)" in out
        assert f"ledger {path}" in out
        db = ExperimentDB(path)
        assert db.counts()["runs"] == 8  # the smoke scenario set

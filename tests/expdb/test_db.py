"""Ledger core: schema versioning, self-healing open, idempotent upserts."""

import sqlite3

import pytest

from repro.errors import ExperimentDBError
from repro.expdb.db import (
    EXPDB_SCHEMA_VERSION,
    BenchRecord,
    EvalRecord,
    ExperimentDB,
    RunRecord,
)


def _run(digest="d" * 64, **overrides):
    base = dict(
        digest=digest,
        status="completed",
        engine="serial",
        source="exec",
        n_cycles=1000,
        config_json="{}",
        label="unit",
        k=2,
        n_stages=3,
        p=0.5,
        stage_means="[0.25, 0.3, 0.31]",
        throughput=16.0,
        created_unix=100.0,
    )
    base.update(overrides)
    return RunRecord(**base)


class TestSchema:
    def test_fresh_file_is_created_at_current_version(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        assert db.schema_version == EXPDB_SCHEMA_VERSION
        assert (tmp_path / "x.sqlite").exists()

    def test_reopen_keeps_rows_and_version(self, tmp_path):
        path = tmp_path / "x.sqlite"
        db = ExperimentDB(path)
        db.record_run(_run())
        db.close()
        again = ExperimentDB(path)
        assert again.schema_version == EXPDB_SCHEMA_VERSION
        assert again.counts()["runs"] == 1

    def test_newer_schema_is_refused(self, tmp_path):
        path = tmp_path / "x.sqlite"
        db = ExperimentDB(path)
        db._conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(EXPDB_SCHEMA_VERSION + 1),),
        )
        db._conn.commit()
        db.close()
        with pytest.raises(ExperimentDBError, match="newer"):
            ExperimentDB(path)

    def test_foreign_sqlite_database_is_refused(self, tmp_path):
        path = tmp_path / "x.sqlite"
        conn = sqlite3.connect(str(path))
        conn.execute("CREATE TABLE unrelated (x INTEGER)")
        conn.commit()
        conn.close()
        with pytest.raises(ExperimentDBError, match="not an experiment ledger"):
            ExperimentDB(path)

    def test_corrupt_file_is_moved_aside_and_recreated(self, tmp_path):
        path = tmp_path / "x.sqlite"
        path.write_bytes(b"this is not a sqlite database at all" * 10)
        db = ExperimentDB(path)
        # fresh and usable, with the old bytes kept for forensics
        assert db.schema_version == EXPDB_SCHEMA_VERSION
        assert db.counts()["runs"] == 0
        backup = tmp_path / "x.sqlite.corrupt"
        assert backup.exists()
        assert b"not a sqlite database" in backup.read_bytes()


class TestUpserts:
    def test_run_reingest_updates_not_duplicates(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        db.record_run(_run(throughput=16.0))
        db.record_run(_run(throughput=17.0))
        rows = db.runs()
        assert len(rows) == 1
        assert rows[0]["throughput"] == 17.0

    def test_created_unix_is_first_write_wins(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        db.record_run(_run(created_unix=100.0))
        db.record_run(_run(created_unix=999.0))
        (row,) = db.runs()
        assert row["created_unix"] == 100.0

    def test_bench_reingest_is_idempotent(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        record = BenchRecord(
            fingerprint="f" * 64,
            name="replicas",
            detail_json="{}",
            speedup=6.0,
            created_unix=5.0,
        )
        db.record_bench(record)
        db.record_bench(record)
        assert db.counts()["benchmarks"] == 1
        assert db.bench_names() == ["replicas"]

    def test_evals_append_as_history(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        for classification in ("success", "partial"):
            db.record_eval(
                EvalRecord(
                    expectation_id="e1",
                    expectations_version=1,
                    expected=0.25,
                    classification=classification,
                )
            )
        assert db.counts()["expectation_evals"] == 2
        assert db.latest_evals()["e1"]["classification"] == "partial"


class TestQueries:
    def test_match_run_selects_newest_usable(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        db.record_run(_run(digest="a" * 64, p=0.5, throughput=15.0))
        db.record_run(_run(digest="b" * 64, p=0.5, throughput=16.0))
        db.record_run(_run(digest="c" * 64, p=0.5, status="failed"))
        row = db.match_run({"k": 2, "p": 0.5})
        assert row is not None
        assert row["digest"] == "b" * 64  # newest completed, failed skipped

    def test_match_run_float_tolerance_and_misses(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        db.record_run(_run(p=0.35))
        assert db.match_run({"p": 0.35000000001}) is not None
        assert db.match_run({"p": 0.36}) is None

    def test_match_run_rejects_unknown_column(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        with pytest.raises(ExperimentDBError, match="unknown run selector"):
            db.match_run({"nonsense": 1})

    def test_runs_filters(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        db.record_run(_run(digest="a" * 64, label="one"))
        db.record_run(_run(digest="b" * 64, label="two", status="failed"))
        assert [r["label"] for r in db.runs(status="failed")] == ["two"]
        assert [r["label"] for r in db.runs(label="one")] == ["one"]
        assert len(db.runs(limit=1)) == 1


class TestExport:
    def test_export_is_order_independent(self, tmp_path):
        first = ExperimentDB(tmp_path / "a.sqlite")
        second = ExperimentDB(tmp_path / "b.sqlite")
        records = [_run(digest="a" * 64), _run(digest="b" * 64, label="other")]
        for record in records:
            first.record_run(record)
        for record in reversed(records):
            second.record_run(record)
        assert first.export() == second.export()

    def test_export_drops_rowids(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        db.record_run(_run())
        assert '"id"' not in db.export()

"""Ingestion bridges: run_many batches, manifests, BENCH artifacts."""

import dataclasses
import json

import pytest

from repro.errors import ExperimentDBError
from repro.exec.runner import execute_spec, run_many
from repro.exec.spec import ExperimentSpec
from repro.expdb.db import ExperimentDB
from repro.expdb.ingest import (
    bench_record_from_artifact,
    engine_kind,
    ingest_batch,
    ingest_bench_file,
    ingest_manifest,
    ingest_session_dir,
    provenance,
)
from repro.obs.manifest import build_manifest
from repro.simulation.network import NetworkConfig


def make_specs(n=3, n_cycles=600):
    return [
        ExperimentSpec(
            config=NetworkConfig(
                k=2, n_stages=3, p=0.2 + 0.1 * i, topology="random",
                width=16, seed=100 + i,
            ),
            n_cycles=n_cycles,
            warmup=100,
            label=f"load-{i}",
        )
        for i in range(n)
    ]


def _boom(spec):
    raise RuntimeError("injected failure")


class TestBatchIngestion:
    def test_every_outcome_lands_in_the_ledger(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        batch = run_many(make_specs(), workers=1)
        assert ingest_batch(db, batch, created_unix=10.0) == 3
        rows = db.runs()
        assert len(rows) == 3
        by_label = {row["label"]: row for row in rows}
        assert set(by_label) == {"load-0", "load-1", "load-2"}
        row = by_label["load-0"]
        assert row["status"] == "completed"
        assert row["engine"] == "serial"
        assert row["k"] == 2 and row["n_stages"] == 3 and row["width"] == 16
        assert row["digest"] == batch.outcomes[0].spec.digest
        assert len(json.loads(row["stage_means"])) == 3
        assert row["throughput"] > 0
        assert row["created_unix"] == 10.0
        assert row["repro_version"] and row["platform"] and row["numpy_version"]

    def test_failed_outcomes_are_recorded_with_error(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        batch = run_many(make_specs(n=1), workers=1, retries=0, task_fn=_boom)
        ingest_batch(db, batch)
        (row,) = db.runs()
        assert row["status"] == "failed"
        assert "injected failure" in row["error"]
        assert row["stage_means"] is None

    def test_run_many_db_hook_ingests(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        run_many(make_specs(), workers=1, db=db)
        assert db.counts()["runs"] == 3

    def test_db_hook_is_a_batch_noop(self, tmp_path):
        """Acceptance: the BatchResult is identical with and without a DB."""
        specs = make_specs()
        plain = run_many(specs, workers=1)
        db = ExperimentDB(tmp_path / "x.sqlite")
        recorded = run_many(specs, workers=1, db=db)
        assert db.counts()["runs"] == len(specs)
        assert plain.n_tasks == recorded.n_tasks
        for a, b in zip(plain.outcomes, recorded.outcomes, strict=True):
            assert a.spec.digest == b.spec.digest
            assert a.status == b.status
            assert a.attempts == b.attempts
            assert (a.result.stage_means == b.result.stage_means).all()
            assert a.result.completed == b.result.completed
        summary_a, summary_b = plain.summary(), recorded.summary()
        summary_a.pop("elapsed_seconds"), summary_b.pop("elapsed_seconds")
        assert summary_a == summary_b

    def test_broken_ledger_does_not_fail_the_batch(self, tmp_path, capsys):
        db = ExperimentDB(tmp_path / "x.sqlite")
        db.close()  # writes on a closed handle raise
        batch = run_many(make_specs(n=1), workers=1, db=db)
        assert batch.n_simulated == 1
        assert "experiment-db ingestion failed" in capsys.readouterr().err

    def test_double_ingest_exports_byte_identically(self, tmp_path):
        """Acceptance: re-ingesting a batch never changes the export."""
        db = ExperimentDB(tmp_path / "x.sqlite")
        batch = run_many(make_specs(), workers=1)
        ingest_batch(db, batch, created_unix=10.0)
        first = db.export()
        ingest_batch(db, batch, created_unix=99.0)
        assert db.export() == first

    def test_engine_kind_from_batch_marker(self):
        (spec,) = make_specs(n=1)
        assert engine_kind(spec) == "serial"
        replicas = dataclasses.replace(spec, batch_marker=(2, 0, (101, 102)))
        assert engine_kind(replicas) == "replica-batched"
        stacked = dataclasses.replace(
            spec, batch_marker=(2, 0, ('{"seed":101}', '{"seed":102}'))
        )
        assert engine_kind(stacked) == "scenario-batched"

    def test_provenance_fields_are_populated(self):
        prov = provenance()
        assert prov["repro_version"]
        assert prov["platform"]
        assert prov["numpy_version"]


class TestManifestIngestion:
    def _manifest(self, spec):
        result = execute_spec(spec)
        return build_manifest(result, run_id="run-0001", elapsed_seconds=1.5)

    def test_manifest_round_trip(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        (spec,) = make_specs(n=1)
        manifest = self._manifest(spec)
        digest = ingest_manifest(db, manifest)
        (row,) = db.runs()
        assert row["digest"] == digest
        assert row["source"] == "manifest"
        assert row["label"] == "run-0001"
        assert row["status"] == "completed"
        assert row["platform"] == manifest["platform"]
        assert row["numpy_version"] == manifest["numpy_version"]
        assert json.loads(row["stage_means"]) == manifest["stage_means"]

    def test_non_run_document_is_rejected(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        with pytest.raises(ExperimentDBError, match="not a run manifest"):
            ingest_manifest(db, {"kind": "replication-batch"})

    def test_session_dir_ingests_runs_and_skips_the_rest(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        (spec,) = make_specs(n=1)
        session = tmp_path / "session"
        session.mkdir()
        (session / "run-0001.manifest.json").write_text(
            json.dumps(self._manifest(spec))
        )
        (session / "batch-0001.json").write_text(json.dumps({"kind": "exec-batch"}))
        (session / "broken.json").write_text("{not json")
        ingested, skipped = ingest_session_dir(db, session)
        assert (ingested, skipped) == (1, 2)
        assert db.counts()["runs"] == 1

    def test_missing_directory_raises(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        with pytest.raises(ExperimentDBError, match="not a directory"):
            ingest_session_dir(db, tmp_path / "nope")


class TestBenchIngestion:
    REPLICAS = {
        "scenario": "k=2 n_stages=6 width=8 p=0.5",
        "n_replicas": 32,
        "n_cycles": 512,
        "serial_seconds": 2.1,
        "batched_seconds": 0.3,
        "speedup": 7.0,
    }
    SWEEP = {
        "scenario": "load sweep",
        "n_points": 6,
        "per_load_batched_seconds": 1.2,
        "stacked_seconds": 0.35,
        "speedup": 3.4,
    }
    EXEC = {
        "scenario": "8 load points",
        "n_tasks": 8,
        "workers": 4,
        "serial_seconds": 8.0,
        "parallel_seconds": 3.1,
        "speedup": 2.58,
    }
    BACKEND = {
        "scenario": "k=2 n_stages=6 width=8 p=0.5",
        "n_replicas": 64,
        "n_cycles": 5000,
        "numpy_seconds": 4.2,
        "numba_seconds": 0.9,
        "speedup": 4.67,
        "usable_cpus": 8,
    }

    @pytest.mark.parametrize(
        "filename,artifact,baseline,measured",
        [
            ("BENCH_replicas.json", REPLICAS, 2.1, 0.3),
            ("BENCH_sweep.json", SWEEP, 1.2, 0.35),
            ("BENCH_exec.json", EXEC, 8.0, 3.1),
            ("BENCH_backend.json", BACKEND, 4.2, 0.9),
        ],
    )
    def test_all_shipped_formats(
        self, tmp_path, filename, artifact, baseline, measured
    ):
        db = ExperimentDB(tmp_path / "x.sqlite")
        path = tmp_path / filename
        path.write_text(json.dumps(artifact))
        (series,) = ingest_bench_file(db, path, created_unix=3.0)
        assert series == filename[len("BENCH_"):-len(".json")]
        (point,) = db.bench_series(series)
        assert point["baseline_seconds"] == baseline
        assert point["measured_seconds"] == measured
        assert point["speedup"] == artifact["speedup"]
        assert json.loads(point["detail_json"]) == artifact

    def test_reingest_is_idempotent(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        path = tmp_path / "BENCH_replicas.json"
        path.write_text(json.dumps(self.REPLICAS))
        ingest_bench_file(db, path, created_unix=3.0)
        ingest_bench_file(db, path, created_unix=4.0)
        assert db.counts()["benchmarks"] == 1

    def test_artifact_without_speedup_is_rejected(self):
        with pytest.raises(ExperimentDBError, match="no 'speedup'"):
            bench_record_from_artifact("replicas", {"serial_seconds": 1.0})

    def test_unreadable_file_is_rejected(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        with pytest.raises(ExperimentDBError, match="cannot read"):
            ingest_bench_file(db, bad)

    def test_json_list_ingests_every_point(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        path = tmp_path / "BENCH_replicas.json"
        second = dict(self.REPLICAS, speedup=6.5, batched_seconds=0.32)
        path.write_text(json.dumps([self.REPLICAS, second]))
        assert ingest_bench_file(db, path) == ["replicas", "replicas"]
        assert db.counts()["benchmarks"] == 2

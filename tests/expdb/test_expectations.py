"""Expectations engine: classification boundaries, evaluation, regression."""

import pytest

from repro.errors import ExperimentDBError
from repro.expdb.db import EvalRecord, ExperimentDB, RunRecord
from repro.expdb.expectations import (
    EXPECTATIONS_VERSION,
    PAPER_EXPECTATIONS,
    Expectation,
    classify,
    evaluate_expectations,
    extract_metric,
    find_regressions,
    record_evaluations,
)


def _expectation(**overrides):
    base = dict(
        id="unit-target",
        source="unit",
        description="a synthetic target",
        metric="stage_mean",
        stage=0,
        select={"k": 2, "p": 0.5},
        # binary-exact values so "exactly at tolerance" is well-defined:
        # tol = 0.125 * 0.25 = 0.03125, partial bound = 0.0625
        expected=0.25,
        rtol=0.125,
        atol=0.0,
        partial_factor=2.0,
    )
    base.update(overrides)
    return Expectation(**base)


def _seed_run(db, stage_means="[0.25]", **overrides):
    base = dict(
        digest="a" * 64,
        status="completed",
        engine="serial",
        source="exec",
        n_cycles=1000,
        config_json="{}",
        label="unit",
        k=2,
        p=0.5,
        stage_means=stage_means,
        throughput=16.0,
        total_mean=1.7,
    )
    base.update(overrides)
    db.record_run(RunRecord(**base))


class TestClassify:
    """tol = atol + rtol*|expected| = 0.03125 exactly for the unit target."""

    def test_exactly_at_tolerance_is_success(self):
        e = _expectation()
        assert classify(e, 0.25 + 0.03125) == "success"
        assert classify(e, 0.25 - 0.03125) == "success"

    def test_just_past_tolerance_is_partial(self):
        assert classify(_expectation(), 0.25 + 0.0313) == "partial"

    def test_exactly_at_partial_bound_is_partial(self):
        # partial_factor=2.0 -> partial bound at err = 0.0625, inclusive
        assert classify(_expectation(), 0.3125) == "partial"

    def test_past_partial_bound_is_failure(self):
        assert classify(_expectation(), 0.3126) == "failure"

    def test_atol_floors_relative_tolerance(self):
        e = _expectation(expected=0.0, rtol=0.5, atol=0.01)
        assert classify(e, 0.01) == "success"
        assert classify(e, 0.011) == "partial"


class TestExtractMetric:
    def test_stage_mean_supports_negative_index(self):
        run = {"stage_means": "[0.1, 0.2, 0.3]"}
        assert extract_metric(_expectation(stage=-1), run) == 0.3

    def test_stage_index_out_of_range_is_none(self):
        assert extract_metric(_expectation(stage=7), {"stage_means": "[0.1]"}) is None

    def test_scalar_metrics(self):
        run = {"throughput": 16.0, "total_mean": 1.7}
        assert extract_metric(_expectation(metric="throughput"), run) == 16.0
        assert extract_metric(_expectation(metric="total_mean"), run) == 1.7

    def test_unknown_metric_raises(self):
        with pytest.raises(ExperimentDBError, match="unknown expectation metric"):
            extract_metric(_expectation(metric="entropy"), {})


class TestEvaluate:
    def test_no_matching_run_is_missing(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        (result,) = evaluate_expectations(db, [_expectation()])
        assert result.classification == "missing"
        assert result.measured is None

    def test_matching_run_is_classified_and_attributed(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        _seed_run(db, stage_means="[0.26]")
        (result,) = evaluate_expectations(db, [_expectation()])
        assert result.classification == "success"
        assert result.measured == 0.26
        assert result.run_digest == "a" * 64
        assert result.run_label == "unit"

    def test_default_set_is_the_paper_expectations(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        results = evaluate_expectations(db)
        assert len(results) == len(PAPER_EXPECTATIONS)
        assert all(r.classification == "missing" for r in results)

    def test_shipped_expectation_ids_are_unique(self):
        ids = [e.id for e in PAPER_EXPECTATIONS]
        assert len(ids) == len(set(ids))


class TestRegression:
    def test_success_to_partial_is_a_regression(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        _seed_run(db, stage_means="[0.25]")
        results = evaluate_expectations(db, [_expectation()])
        record_evaluations(db, results, created_unix=1.0)
        # the run drifts out of the success band
        _seed_run(db, stage_means="[0.29]")
        worse = evaluate_expectations(db, [_expectation()])
        assert worse[0].classification == "partial"
        regressed = find_regressions(db, worse)
        assert [r.expectation.id for r in regressed] == ["unit-target"]

    def test_no_history_never_regresses(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        _seed_run(db, stage_means="[0.9]")  # outright failure
        results = evaluate_expectations(db, [_expectation()])
        assert results[0].classification == "failure"
        assert find_regressions(db, results) == []

    def test_missing_never_regresses(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        db.record_eval(
            EvalRecord(
                expectation_id="unit-target",
                expectations_version=EXPECTATIONS_VERSION,
                expected=0.25,
                classification="success",
            )
        )
        results = evaluate_expectations(db, [_expectation()])
        assert results[0].classification == "missing"
        assert find_regressions(db, results) == []

    def test_record_evaluations_appends_history(self, tmp_path):
        db = ExperimentDB(tmp_path / "x.sqlite")
        _seed_run(db)
        results = evaluate_expectations(db, [_expectation()])
        assert record_evaluations(db, results, created_unix=2.0) == 1
        latest = db.latest_evals()["unit-target"]
        assert latest["classification"] == "success"
        assert latest["expectations_version"] == EXPECTATIONS_VERSION
        assert latest["created_unix"] == 2.0

"""Unit tests for the dense polynomial substrate."""

from fractions import Fraction

import pytest

from repro.errors import SeriesError
from repro.series.polynomial import Polynomial, as_exact, binomial_coefficient


class TestConstruction:
    def test_trailing_zeros_stripped(self):
        assert Polynomial([1, 2, 0, 0]).coefficients == (1, 2)

    def test_zero_polynomial(self):
        p = Polynomial([0, 0])
        assert p.is_zero()
        assert p.degree == -1

    def test_constant_and_identity(self):
        assert Polynomial.constant(5)(17) == 5
        assert Polynomial.identity()(17) == 17

    def test_monomial(self):
        p = Polynomial.monomial(3, 2)
        assert p(2) == 16
        assert p.degree == 3

    def test_monomial_negative_degree_rejected(self):
        with pytest.raises(SeriesError):
            Polynomial.monomial(-1)


class TestArithmetic:
    def test_addition(self):
        assert (Polynomial([1, 2]) + Polynomial([3, 4, 5])).coefficients == (4, 6, 5)

    def test_addition_with_scalar(self):
        assert (Polynomial([1, 2]) + 3).coefficients == (4, 2)
        assert (3 + Polynomial([1, 2])).coefficients == (4, 2)

    def test_addition_cancels_to_zero(self):
        p = Polynomial([1, -1])
        assert (p + Polynomial([-1, 1])).is_zero()

    def test_subtraction(self):
        assert (Polynomial([5, 5]) - Polynomial([2, 3])).coefficients == (3, 2)

    def test_rsub(self):
        assert (1 - Polynomial([0, 1])).coefficients == (1, -1)

    def test_multiplication(self):
        # (1+x)(1-x) = 1 - x^2
        assert (Polynomial([1, 1]) * Polynomial([1, -1])).coefficients == (1, 0, -1)

    def test_scalar_multiplication(self):
        assert (Polynomial([1, 2]) * 3).coefficients == (3, 6)
        assert (3 * Polynomial([1, 2])).coefficients == (3, 6)

    def test_multiplication_by_zero(self):
        assert (Polynomial([1, 2]) * Polynomial.zero()).is_zero()

    def test_power(self):
        # (1+x)^4 binomial coefficients
        p = Polynomial([1, 1]) ** 4
        assert p.coefficients == (1, 4, 6, 4, 1)

    def test_power_zero(self):
        assert (Polynomial([2, 3]) ** 0) == Polynomial.one()

    def test_negative_power_rejected(self):
        with pytest.raises(SeriesError):
            Polynomial([1, 1]) ** -1


class TestCalculus:
    def test_derivative(self):
        # d/dx (1 + 2x + 3x^2) = 2 + 6x
        assert Polynomial([1, 2, 3]).derivative().coefficients == (2, 6)

    def test_higher_derivative(self):
        assert Polynomial([0, 0, 0, 1]).derivative(3).coefficients == (6,)

    def test_derivative_order_zero(self):
        p = Polynomial([1, 2, 3])
        assert p.derivative(0) == p

    def test_evaluation_horner(self):
        p = Polynomial([1, -3, 2])  # (2x-1)(x-1)
        assert p(1) == 0
        assert p(Fraction(1, 2)) == 0

    def test_composition(self):
        # p(x) = x^2, q(x) = x + 1 -> p(q) = x^2 + 2x + 1
        p = Polynomial([0, 0, 1])
        q = Polynomial([1, 1])
        assert p.compose(q).coefficients == (1, 2, 1)

    def test_shift_reexpansion(self):
        # p(x) = x^2 about 1: (1+e)^2 = 1 + 2e + e^2
        p = Polynomial([0, 0, 1]).shift(1)
        assert p.coefficients == (1, 2, 1)

    def test_shift_roundtrip_evaluation(self):
        p = Polynomial([3, -2, 5, 1])
        q = p.shift(Fraction(7, 3))
        for e in [0, 1, Fraction(-1, 2)]:
            assert q(e) == p(Fraction(7, 3) + e)

    def test_truncate(self):
        assert Polynomial([1, 2, 3, 4]).truncate(1).coefficients == (1, 2)

    def test_valuation(self):
        assert Polynomial([0, 0, 5]).valuation() == 2
        assert Polynomial.zero().valuation() == 0


class TestExactConversion:
    def test_as_exact_decimal_float(self):
        assert as_exact(0.2) == Fraction(1, 5)
        assert as_exact(0.125) == Fraction(1, 8)

    def test_as_exact_int_and_fraction(self):
        assert as_exact(3) == Fraction(3)
        assert as_exact(Fraction(2, 7)) == Fraction(2, 7)

    def test_as_exact_rejects_nan(self):
        with pytest.raises(SeriesError):
            as_exact(float("nan"))

    def test_as_exact_rejects_inf(self):
        with pytest.raises(SeriesError):
            as_exact(float("inf"))

    def test_to_exact_and_to_float(self):
        p = Polynomial([0.5, 0.25]).to_exact()
        assert p.coefficients == (Fraction(1, 2), Fraction(1, 4))
        assert p.to_float().coefficients == (0.5, 0.25)


class TestPlumbing:
    def test_equality_with_scalar(self):
        assert Polynomial([5]) == 5
        assert Polynomial.zero() == 0

    def test_hashable(self):
        assert len({Polynomial([1, 2]), Polynomial([1, 2])}) == 1

    def test_str_rendering(self):
        assert str(Polynomial([1, 0, 2])) == "1 + 2*z^2"
        assert str(Polynomial.zero()) == "0"

    def test_binomial_coefficient(self):
        assert binomial_coefficient(5, 2) == 10
        assert binomial_coefficient(5, 6) == 0
        assert binomial_coefficient(5, -1) == 0

"""Unit and property-based tests for the PGF layer."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotAProbabilityError, SeriesError
from repro.series.pgf import PGF
from repro.series.polynomial import Polynomial
from repro.series.rational import RationalFunction


class TestConstruction:
    def test_from_pmf(self):
        g = PGF.from_pmf([0.25, 0.5, 0.25])
        assert g.mean() == Fraction(1)
        assert g.variance() == Fraction(1, 2)

    def test_from_pmf_rejects_negative(self):
        with pytest.raises(NotAProbabilityError):
            PGF.from_pmf([0.5, -0.5, 1.0])

    def test_from_pmf_rejects_bad_total(self):
        with pytest.raises(NotAProbabilityError):
            PGF.from_pmf([0.5, 0.4])

    def test_validation_at_one(self):
        with pytest.raises(NotAProbabilityError):
            PGF(RationalFunction(Polynomial([2])))

    def test_degenerate(self):
        g = PGF.degenerate(4)
        assert g.mean() == 4
        assert g.variance() == 0
        assert g.evaluate(Fraction(1, 2)) == Fraction(1, 16)

    def test_degenerate_negative_rejected(self):
        with pytest.raises(NotAProbabilityError):
            PGF.degenerate(-1)


class TestStandardFamilies:
    def test_bernoulli(self):
        g = PGF.bernoulli(Fraction(1, 3))
        assert g.mean() == Fraction(1, 3)
        assert g.variance() == Fraction(2, 9)

    def test_binomial_moments(self):
        n, p = 5, Fraction(1, 4)
        g = PGF.binomial(n, p)
        assert g.mean() == n * p
        assert g.variance() == n * p * (1 - p)

    def test_binomial_pmf(self):
        g = PGF.binomial(2, Fraction(1, 2))
        assert g.pmf(3, exact=True) == [Fraction(1, 4), Fraction(1, 2), Fraction(1, 4)]

    def test_geometric_support_starts_at_one(self):
        g = PGF.geometric(Fraction(1, 2))
        pmf = g.pmf(4, exact=True)
        assert pmf[0] == 0
        assert pmf[1] == Fraction(1, 2)
        assert pmf[2] == Fraction(1, 4)

    def test_geometric_moments(self):
        mu = Fraction(1, 3)
        g = PGF.geometric(mu)
        assert g.mean() == 3  # 1/mu
        assert g.variance() == (1 - mu) / mu ** 2

    def test_shifted_geometric(self):
        g = PGF.shifted_geometric(Fraction(1, 2))
        assert g.pmf(3, exact=True) == [Fraction(1, 2), Fraction(1, 4), Fraction(1, 8)]
        assert g.mean() == 1

    def test_parameter_validation(self):
        for bad in [-0.1, 1.5]:
            with pytest.raises(NotAProbabilityError):
                PGF.bernoulli(bad)
        with pytest.raises(NotAProbabilityError):
            PGF.geometric(0)

    def test_mixture(self):
        g = PGF.mixture([PGF.degenerate(4), PGF.degenerate(8)], [0.5, 0.5])
        assert g.mean() == 6
        assert g.variance() == 4

    def test_mixture_validation(self):
        with pytest.raises(NotAProbabilityError):
            PGF.mixture([PGF.degenerate(1)], [0.9])
        with pytest.raises(NotAProbabilityError):
            PGF.mixture([PGF.degenerate(1), PGF.degenerate(2)], [0.9])


class TestMoments:
    def test_factorial_moment_matches_derivative(self):
        g = PGF.binomial(4, Fraction(1, 2))
        # E[X(X-1)] = n(n-1)p^2 = 3
        assert g.factorial_moment(2) == 3
        assert g.derivative_at_one(2) == 3

    def test_negative_order_rejected(self):
        with pytest.raises(SeriesError):
            PGF.degenerate(1).factorial_moment(-1)

    def test_central_moment_third(self):
        # Bernoulli(p): mu3 = p(1-p)(1-2p)
        p = Fraction(1, 4)
        g = PGF.bernoulli(p)
        assert g.central_moment(3) == p * (1 - p) * (1 - 2 * p)

    def test_skewness_degenerate_rejected(self):
        with pytest.raises(SeriesError):
            PGF.degenerate(2).skewness()

    def test_skewness_sign(self):
        assert PGF.bernoulli(0.1).skewness() > 0
        assert PGF.bernoulli(0.9).skewness() < 0


class TestDistribution:
    def test_pmf_float_mode(self):
        g = PGF.geometric(0.5)
        pmf = g.pmf(5)
        assert isinstance(pmf, np.ndarray)
        assert pmf == pytest.approx([0, 0.5, 0.25, 0.125, 0.0625])

    def test_pmf_invalid_terms(self):
        with pytest.raises(SeriesError):
            PGF.degenerate(1).pmf(0)

    def test_cdf_and_tail(self):
        g = PGF.from_pmf([0.5, 0.5])
        assert g.cdf(2) == pytest.approx([0.5, 1.0])
        assert g.tail(2) == pytest.approx([0.5, 0.0])

    def test_quantile(self):
        g = PGF.geometric(0.5)  # P(X<=n) = 1 - 2^-n
        assert g.quantile(0.5) == 1
        assert g.quantile(0.9) == 4  # 1 - 1/16 = 0.9375 >= 0.9

    def test_quantile_validation(self):
        with pytest.raises(SeriesError):
            PGF.degenerate(1).quantile(1.0)


class TestAlgebra:
    def test_sum_of_independent(self):
        g = PGF.bernoulli(Fraction(1, 2))
        s = g + g
        assert s.pmf(3, exact=True) == [Fraction(1, 4), Fraction(1, 2), Fraction(1, 4)]

    def test_iid_sum_matches_binomial(self):
        assert 5 * PGF.bernoulli(Fraction(1, 3)) == PGF.binomial(5, Fraction(1, 3))

    def test_compound_matches_paper_construction(self):
        """R(U(z)) with R=Binomial(k, p), U=z^m: mean k p m."""
        R = PGF.binomial(3, Fraction(1, 2))
        U = PGF.degenerate(4)
        work = U.compound(R)
        assert work.mean() == 6
        assert work.variance() == 16 * R.variance()

    def test_thinning(self):
        g = PGF.binomial(10, Fraction(1, 2)).thin(Fraction(1, 5))
        assert g == PGF.binomial(10, Fraction(1, 10))

    def test_thinning_validation(self):
        with pytest.raises(NotAProbabilityError):
            PGF.degenerate(1).thin(1.5)


@st.composite
def small_pmfs(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    weights = draw(
        st.lists(st.integers(min_value=0, max_value=10), min_size=n, max_size=n).filter(
            lambda ws: sum(ws) > 0
        )
    )
    total = sum(weights)
    return [Fraction(w, total) for w in weights]


class TestProperties:
    @given(small_pmfs())
    @settings(max_examples=60, deadline=None)
    def test_pmf_roundtrip(self, pmf):
        g = PGF.from_pmf(pmf)
        extracted = g.pmf(len(pmf), exact=True)
        assert extracted == list(pmf)

    @given(small_pmfs())
    @settings(max_examples=60, deadline=None)
    def test_mean_matches_definition(self, pmf):
        g = PGF.from_pmf(pmf)
        assert g.mean() == sum(j * p for j, p in enumerate(pmf))

    @given(small_pmfs(), small_pmfs())
    @settings(max_examples=40, deadline=None)
    def test_convolution_adds_means_and_variances(self, pmf_a, pmf_b):
        a, b = PGF.from_pmf(pmf_a), PGF.from_pmf(pmf_b)
        s = a + b
        assert s.mean() == a.mean() + b.mean()
        assert s.variance() == a.variance() + b.variance()

    @given(small_pmfs(), small_pmfs())
    @settings(max_examples=40, deadline=None)
    def test_compound_mean_wald(self, count_pmf, summand_pmf):
        """Wald's identity: E[sum] = E[N] E[X]."""
        count = PGF.from_pmf(count_pmf)
        summand = PGF.from_pmf(summand_pmf)
        total = summand.compound(count)
        assert total.mean() == count.mean() * summand.mean()

    @given(small_pmfs(), small_pmfs())
    @settings(max_examples=40, deadline=None)
    def test_compound_variance_formula(self, count_pmf, summand_pmf):
        """Var[sum] = E[N] Var[X] + Var[N] E[X]^2."""
        count = PGF.from_pmf(count_pmf)
        summand = PGF.from_pmf(summand_pmf)
        total = summand.compound(count)
        expected = count.mean() * summand.variance() + count.variance() * summand.mean() ** 2
        assert total.variance() == expected


class TestFloatSeriesMemoization:
    """pmf/cdf/quantile share one per-instance float expansion."""

    def test_float_pmf_prefixes_are_slices_of_one_expansion(self):
        g = PGF.geometric(Fraction(1, 10))
        long = g.pmf(200)
        short = g.pmf(80)
        assert np.array_equal(short, long[:80])
        fresh = PGF.geometric(Fraction(1, 10)).pmf(200)
        assert np.array_equal(long, fresh)

    def test_warm_calls_do_not_recompute_the_series(self, monkeypatch):
        g = PGF.geometric(Fraction(1, 10))
        g.pmf(256)
        calls = []
        original = RationalFunction.series

        def counting(self, order):
            calls.append(order)
            return original(self, order)

        monkeypatch.setattr(RationalFunction, "series", counting)
        g.pmf(256)
        g.pmf(100)
        g.cdf(200)
        assert calls == []
        g.pmf(300)  # longer than the cache: exactly one recompute
        assert calls == [299]

    def test_quantile_resumes_from_memoized_expansion(self, monkeypatch):
        g = PGF.geometric(Fraction(1, 10))
        expected = PGF.geometric(Fraction(1, 10)).quantile(0.999)
        g.pmf(256)  # long enough to bracket the 99.9% quantile
        calls = []
        original = RationalFunction.series

        def counting(self, order):
            calls.append(order)
            return original(self, order)

        monkeypatch.setattr(RationalFunction, "series", counting)
        assert g.quantile(0.999) == expected
        assert calls == []

    def test_quantile_agrees_with_cold_instance_after_any_history(self):
        warm = PGF.geometric(Fraction(1, 3))
        warm.pmf(10)
        warm.quantile(0.5)
        for q in (0.1, 0.9, 0.99):
            assert warm.quantile(q) == PGF.geometric(Fraction(1, 3)).quantile(q)

    def test_exact_mode_is_unmemoized_and_unchanged(self):
        g = PGF.from_pmf([Fraction(1, 4), Fraction(1, 2), Fraction(1, 4)])
        exact = g.pmf(3, exact=True)
        assert exact == [Fraction(1, 4), Fraction(1, 2), Fraction(1, 4)]
        assert isinstance(g.pmf(3), np.ndarray)

    def test_max_terms_below_start_still_raises(self):
        g = PGF.geometric(Fraction(1, 10))
        g.pmf(256)
        with pytest.raises(SeriesError, match="not reached"):
            g.quantile(0.999999999999, max_terms=32)

"""Unit tests for the truncated-series kernels and moment conversions."""

from fractions import Fraction

import pytest

from repro.errors import PoleError, SeriesError
from repro.series.taylor import (
    central_from_raw,
    factorial_from_taylor,
    moments_from_taylor,
    raw_from_factorial,
    series_compose,
    series_div,
    series_mul,
    series_pow,
    stirling2,
)


class TestSeriesMul:
    def test_basic_product(self):
        # (1+x)(1+x) = 1+2x+x^2
        assert series_mul([1, 1], [1, 1], 3) == [1, 2, 1, 0]

    def test_truncation(self):
        assert series_mul([1, 1, 1], [1, 1, 1], 1) == [1, 2]


class TestSeriesDiv:
    def test_geometric_series(self):
        # 1 / (1 - x) = 1 + x + x^2 + ...
        assert series_div([1], [1, -1], 4) == [1, 1, 1, 1, 1]

    def test_exact_fractions(self):
        # 1 / (1 - x/2)
        out = series_div([Fraction(1)], [Fraction(1), Fraction(-1, 2)], 3)
        assert out == [1, Fraction(1, 2), Fraction(1, 4), Fraction(1, 8)]

    def test_int_division_stays_exact(self):
        out = series_div([1], [2], 2)
        assert out == [Fraction(1, 2), 0, 0]
        assert isinstance(out[0], Fraction)

    def test_removable_singularity(self):
        # (x + x^2) / x = 1 + x
        assert series_div([0, 1, 1], [0, 1], 2) == [1, 1, 0]

    def test_removable_singularity_higher_order(self):
        # x^2 / x^2 = 1
        assert series_div([0, 0, 1], [0, 0, 1], 2) == [1, 0, 0]

    def test_pole_detected(self):
        with pytest.raises(PoleError):
            series_div([1], [0, 1], 2)

    def test_zero_denominator_rejected(self):
        with pytest.raises(SeriesError):
            series_div([1], [0, 0], 2)

    def test_div_inverts_mul(self):
        a = [Fraction(2), Fraction(1), Fraction(3), Fraction(-1)]
        b = [Fraction(1), Fraction(-1, 3), Fraction(1, 7)]
        prod = series_mul(a, b, 5)
        assert series_div(prod, b, 3)[:4] == a


class TestSeriesCompose:
    def test_compose_polynomial(self):
        # outer(y) = 1 + y^2, inner(x) = x + x^2
        # -> 1 + (x+x^2)^2 = 1 + x^2 + 2x^3 + x^4
        out = series_compose([1, 0, 1], [0, 1, 1], 4)
        assert out == [1, 0, 1, 2, 1]

    def test_nonzero_constant_term_rejected(self):
        with pytest.raises(SeriesError):
            series_compose([1, 1], [1, 1], 2)

    def test_compose_identity(self):
        assert series_compose([3, 1, 4], [0, 1], 2) == [3, 1, 4]


class TestSeriesPow:
    def test_square(self):
        assert series_pow([1, 1], 2, 2) == [1, 2, 1]

    def test_power_zero(self):
        assert series_pow([5, 5], 0, 2) == [1, 0, 0]

    def test_negative_rejected(self):
        with pytest.raises(SeriesError):
            series_pow([1, 1], -1, 2)


class TestStirling:
    def test_small_table(self):
        # S(3,1)=1, S(3,2)=3, S(3,3)=1; S(4,2)=7
        assert stirling2(3, 1) == 1
        assert stirling2(3, 2) == 3
        assert stirling2(3, 3) == 1
        assert stirling2(4, 2) == 7

    def test_boundaries(self):
        assert stirling2(0, 0) == 1
        assert stirling2(5, 0) == 0
        assert stirling2(2, 3) == 0


class TestMomentConversion:
    def test_poisson_like_moments(self):
        """Bernoulli(1/2): t(1+e) = 1 + e/2, all higher terms zero."""
        taylor = [Fraction(1), Fraction(1, 2), Fraction(0)]
        fac = factorial_from_taylor(taylor)
        assert fac == [1, Fraction(1, 2), 0]
        raw = raw_from_factorial(fac)
        # E X = 1/2, E X^2 = 1/2 for an indicator
        assert raw == [1, Fraction(1, 2), Fraction(1, 2)]
        central = central_from_raw(raw)
        assert central[2] == Fraction(1, 4)  # Var = p(1-p)

    def test_deterministic_moments(self):
        """X = 3 constant: t(z) = z^3, t(1+e) = 1 + 3e + 3e^2 + e^3."""
        taylor = [1, 3, 3, 1]
        raw = raw_from_factorial(factorial_from_taylor(taylor))
        assert raw[1] == 3
        assert raw[2] == 9
        assert raw[3] == 27
        central = central_from_raw(raw)
        assert central[2] == 0
        assert central[3] == 0

    def test_moments_from_taylor_bundle(self):
        bundle = moments_from_taylor([1, 3, 3, 1])
        assert bundle["raw"][1] == 3
        assert bundle["central"][2] == 0
        assert bundle["factorial"][2] == 6  # E[X(X-1)] = 6 for X=3

"""Unit tests for rational-function algebra."""

from fractions import Fraction

import pytest

from repro.errors import PoleError, SeriesError
from repro.series.polynomial import Polynomial
from repro.series.rational import RationalFunction


def frac(a, b=1):
    return Fraction(a, b)


class TestConstruction:
    def test_zero_denominator_rejected(self):
        with pytest.raises(SeriesError):
            RationalFunction([1], [0])

    def test_polynomial_wrapping(self):
        r = RationalFunction(Polynomial([1, 2]))
        assert r.is_polynomial()
        assert r.evaluate(2) == 5

    def test_identity_and_constant(self):
        assert RationalFunction.identity().evaluate(7) == 7
        assert RationalFunction.constant(4).evaluate(100) == 4


class TestFieldArithmetic:
    def test_add(self):
        # 1/(1-z) + 1/(1+z) = 2/(1-z^2)
        a = RationalFunction([1], [1, -1])
        b = RationalFunction([1], [1, 1])
        c = a + b
        assert c == RationalFunction([2], [1, 0, -1])

    def test_sub_and_neg(self):
        a = RationalFunction([1], [1, -1])
        assert (a - a).is_zero()

    def test_mul(self):
        a = RationalFunction([1], [1, -1])
        assert a * a == RationalFunction([1], [1, -2, 1])

    def test_div(self):
        z = RationalFunction.identity()
        assert (z / z) == RationalFunction.constant(1)

    def test_div_by_zero_rejected(self):
        with pytest.raises(SeriesError):
            RationalFunction.identity() / RationalFunction.constant(0)

    def test_pow_and_negative_pow(self):
        z = RationalFunction.identity()
        assert (z ** 3).evaluate(2) == 8
        assert ((1 + z) ** -2).evaluate(1) == frac(1, 4)

    def test_scalar_mixing(self):
        z = RationalFunction.identity()
        r = 1 - 2 * z + z / 2
        assert r.evaluate(2) == 1 - 4 + 1


class TestCalculus:
    def test_derivative_of_geometric(self):
        # d/dz 1/(1-z) = 1/(1-z)^2
        g = RationalFunction([1], [1, -1])
        assert g.derivative().evaluate(0) == 1
        assert g.derivative().evaluate(frac(1, 2)) == 4

    def test_second_derivative(self):
        g = RationalFunction([1], [1, -1])
        assert g.derivative(2).evaluate(0) == 2

    def test_derivative_matches_taylor(self):
        r = RationalFunction([1, 2, 3], [2, -1])
        center = frac(1, 3)
        taylor = r.taylor(center, 3)
        for k in range(4):
            from math import factorial
            assert r.derivative(k).evaluate(center) == taylor[k] * factorial(k)


class TestComposition:
    def test_polynomial_in_rational(self):
        # R(y) = y^2, U(z) = z/(1-z):  R(U) = z^2/(1-z)^2
        R = RationalFunction([0, 0, 1])
        U = RationalFunction([0, 1], [1, -1])
        comp = R.compose(U)
        assert comp == RationalFunction([0, 0, 1], [1, -2, 1])

    def test_rational_in_rational(self):
        # f(y) = 1/(1-y), g(z) = z/2 -> f(g) = 2/(2-z)
        f = RationalFunction([1], [1, -1])
        g = RationalFunction([0, frac(1, 2)])
        assert f.compose(g) == RationalFunction([2], [2, -1])

    def test_call_dispatches_composition(self):
        f = RationalFunction([0, 1])  # identity
        g = RationalFunction([1, 1])
        assert f(g) == g

    def test_composition_preserves_evaluation(self):
        f = RationalFunction([1, -1, 2], [3, 1])
        g = RationalFunction([0, 2], [1, 1])
        h = f.compose(g)
        for x in [0, frac(1, 2), 2]:
            assert h.evaluate(x) == f.evaluate(g.evaluate(x))


class TestEvaluation:
    def test_pole_raises(self):
        g = RationalFunction([1], [1, -1])
        with pytest.raises(PoleError):
            g.evaluate(1)

    def test_removable_singularity_limit(self):
        # (1 - z^2)/(1 - z) -> 2 at z = 1
        r = RationalFunction([1, 0, -1], [1, -1])
        assert r.evaluate(1) == 2

    def test_exact_fraction_result(self):
        r = RationalFunction([1], [3])
        assert r.evaluate(1) == frac(1, 3)
        assert isinstance(r.evaluate(1), Fraction)


class TestExpansions:
    def test_maclaurin_of_geometric(self):
        g = RationalFunction([1], [1, -1])
        assert g.series(4) == [1, 1, 1, 1, 1]

    def test_taylor_about_one_with_removable_singularity(self):
        # (1-z^3)/(1-z) = 1 + z + z^2; about z=1: 3 + 3e + e^2
        r = RationalFunction([1, 0, 0, -1], [1, -1])
        assert r.taylor(1, 3) == [3, 3, 1, 0]

    def test_taylor_pole_raises(self):
        r = RationalFunction([1], [1, -1])
        with pytest.raises(PoleError):
            r.taylor(1, 2)

    def test_series_of_rational_pgf(self):
        # p z/(1-(1-p)z) with p=1/2: pmf (0, 1/2, 1/4, 1/8, ...)
        p = frac(1, 2)
        g = RationalFunction([0, p], [1, -(1 - p)])
        assert g.series(3) == [0, frac(1, 2), frac(1, 4), frac(1, 8)]


class TestPlumbing:
    def test_equality_cross_multiplied(self):
        a = RationalFunction([1, 1], [2, 2])
        b = RationalFunction([1], [2])
        assert a == b

    def test_equality_with_scalar(self):
        assert RationalFunction([3], [3]) == 1

    def test_float_mode(self):
        r = RationalFunction([frac(1, 2)], [1, frac(-1, 2)]).to_float()
        out = r.series(2)
        assert out == pytest.approx([0.5, 0.25, 0.125])

"""Run manifest + JSONL export + observation session tests."""

import json

import pytest

from repro._version import __version__
from repro.errors import SimulationError
from repro.obs.manifest import (
    MANIFEST_REQUIRED_FIELDS,
    MANIFEST_SCHEMA_VERSION,
    MANIFEST_V2_FIELDS,
    MANIFEST_V3_FIELDS,
    build_manifest,
    config_to_jsonable,
    validate_manifest,
    validate_metrics_record,
    write_manifest,
    write_metrics_jsonl,
)
from repro.obs.metrics import MetricsCollector
from repro.obs.session import current_session, session
from repro.simulation.network import NetworkConfig, NetworkSimulator
from repro.simulation.replication import replicate


def run_with_metrics(n_cycles=300, **config_kwargs):
    cfg = NetworkConfig(k=2, n_stages=3, p=0.4, seed=7, **config_kwargs)
    sim = NetworkSimulator(cfg)
    collector = MetricsCollector(stride=4)
    sim.attach_metrics(collector)
    result = sim.run(n_cycles, warmup=0)
    return result, collector


class TestManifest:
    def test_build_covers_required_fields(self):
        result, _ = run_with_metrics()
        manifest = build_manifest(result, run_id="run-0001", elapsed_seconds=1.5)
        for field in MANIFEST_REQUIRED_FIELDS:
            assert field in manifest
        validate_manifest(manifest)
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert manifest["repro_version"] == __version__
        assert manifest["config"]["seed"] == 7
        assert manifest["counts"]["completed"] == result.completed
        assert len(manifest["stage_means"]) == 3

    def test_config_serialises_service_model_by_repr(self):
        from repro.service import GeometricService

        cfg = NetworkConfig(
            k=2, n_stages=3, p=0.3, service=GeometricService(0.5), seed=1
        )
        as_json = config_to_jsonable(cfg)
        json.dumps(as_json)  # round-trips through the json encoder
        assert "Geometric" in as_json["service"]

    def test_write_and_reload(self, tmp_path):
        result, _ = run_with_metrics()
        manifest = build_manifest(result, run_id="run-0001")
        path = write_manifest(tmp_path / "m.json", manifest)
        reloaded = json.loads(path.read_text())
        validate_manifest(reloaded)
        assert reloaded["n_cycles"] == 300

    def test_provenance_fields_are_populated(self):
        result, _ = run_with_metrics()
        manifest = build_manifest(result, run_id="run-0001")
        assert manifest["schema_version"] == 3
        assert manifest["platform"]  # e.g. "Linux-..."
        assert manifest["python_version"].count(".") == 2
        assert manifest["numpy_version"]
        assert manifest["backend"] == "numpy"  # serial runs: reference backend

    def test_validate_accepts_v1_documents(self):
        """Manifests written before the provenance block must still load."""
        result, _ = run_with_metrics()
        manifest = build_manifest(result, run_id="run-0001")
        manifest["schema_version"] = 1
        for field in (*MANIFEST_V2_FIELDS, *MANIFEST_V3_FIELDS):
            del manifest[field]
        validate_manifest(manifest)  # no error

    def test_validate_accepts_v2_documents(self):
        """v2 manifests (pre-backend) must still load without v3 fields."""
        result, _ = run_with_metrics()
        manifest = build_manifest(result, run_id="run-0001")
        manifest["schema_version"] = 2
        for field in MANIFEST_V3_FIELDS:
            del manifest[field]
        validate_manifest(manifest)  # no error

    def test_validate_rejects_v1_claiming_v2(self):
        """A v2 document is held to the v2 field set."""
        result, _ = run_with_metrics()
        manifest = build_manifest(result, run_id="run-0001")
        manifest["schema_version"] = 2
        del manifest["backend"]  # v2 documents need no backend field
        del manifest["platform"]
        with pytest.raises(SimulationError, match="missing required"):
            validate_manifest(manifest)

    def test_validate_rejects_v3_missing_backend(self):
        """A current document is held to the full v3 field set."""
        result, _ = run_with_metrics()
        manifest = build_manifest(result, run_id="run-0001")
        del manifest["backend"]
        with pytest.raises(SimulationError, match="missing required"):
            validate_manifest(manifest)

    def test_validate_rejects_newer_schema(self):
        result, _ = run_with_metrics()
        manifest = build_manifest(result, run_id="run-0001")
        manifest["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        with pytest.raises(SimulationError, match="schema_version"):
            validate_manifest(manifest)

    def test_validate_rejects_missing_fields(self):
        with pytest.raises(SimulationError):
            validate_manifest({"schema_version": MANIFEST_SCHEMA_VERSION})

    def test_write_rejects_invalid_manifest(self, tmp_path):
        with pytest.raises(SimulationError):
            write_manifest(tmp_path / "bad.json", {"kind": "run"})


class TestMetricsJsonl:
    def test_header_plus_records(self, tmp_path):
        result, collector = run_with_metrics()
        path = write_metrics_jsonl(tmp_path / "m.jsonl", collector)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "metrics_header"
        assert header["samples"] == collector.n_samples
        assert len(lines) == 1 + collector.n_samples
        for line in lines[1:]:
            validate_metrics_record(json.loads(line), n_stages=3)

    def test_records_strictly_standard_json(self, tmp_path):
        result, collector = run_with_metrics()
        path = write_metrics_jsonl(tmp_path / "m.jsonl", collector)
        for line in path.read_text().splitlines():
            json.loads(line)  # raises on NaN/Infinity tokens


class TestObservationSession:
    def test_simulator_auto_instruments_inside_session(self, tmp_path):
        with session(tmp_path, stride=8) as sess:
            assert current_session() is sess
            sim = NetworkSimulator(NetworkConfig(k=2, n_stages=3, p=0.4, seed=9))
            assert sim.metrics is not None
            result = sim.run(300, warmup=0)
        assert current_session() is None
        assert result.manifest_path is not None
        manifest = json.loads((tmp_path / "run-0001.manifest.json").read_text())
        validate_manifest(manifest)
        assert manifest["metrics_file"] == "run-0001.metrics.jsonl"
        assert (tmp_path / "run-0001.metrics.jsonl").exists()
        assert manifest["timings"]  # session enables phase timers

    def test_run_ids_increment(self, tmp_path):
        with session(tmp_path) as sess:
            for seed in (1, 2):
                NetworkSimulator(
                    NetworkConfig(k=2, n_stages=3, p=0.4, seed=seed)
                ).run(200, warmup=0)
            assert [p.name for p in sess.manifests] == [
                "run-0001.manifest.json",
                "run-0002.manifest.json",
            ]

    def test_sessions_restore_previous_on_exit(self, tmp_path):
        with session(tmp_path / "outer") as outer:
            with session(tmp_path / "inner"):
                assert current_session() is not outer
            assert current_session() is outer

    def test_outside_session_no_artifacts(self, tmp_path):
        result = NetworkSimulator(
            NetworkConfig(k=2, n_stages=3, p=0.4, seed=9)
        ).run(200, warmup=0)
        assert result.manifest_path is None
        assert list(tmp_path.iterdir()) == []

    def test_replication_batch_record(self, tmp_path):
        cfg = NetworkConfig(k=2, n_stages=3, p=0.4)
        with session(tmp_path):
            results = replicate(cfg, n_replications=3, n_cycles=300, warmup=0)
        batch = json.loads((tmp_path / "batch-0001.json").read_text())
        assert batch["kind"] == "replication_batch"
        assert batch["n_replications"] == 3
        assert len(batch["run_manifests"]) == 3
        assert len(batch["seeds"]) == len(set(batch["seeds"])) == 3
        for name in batch["run_manifests"]:
            validate_manifest(json.loads((tmp_path / name).read_text()))
        assert len(results) == 3

"""Observer protocol / multiplexer tests."""

import pytest

from repro.errors import SimulationError
from repro.obs.base import OBSERVER_EVENTS, EngineObserver, ObserverSet
from repro.simulation.network import NetworkConfig, NetworkSimulator
from repro.simulation.trace import MessageTracer


class CountingObserver(EngineObserver):
    """Counts every callback it receives."""

    def __init__(self):
        self.attached = None
        self.injects = 0
        self.services = 0
        self.cycles = 0

    def on_attach(self, engine):
        self.attached = engine

    def on_inject(self, t, sources, entry_lines, track_ids):
        self.injects += 1

    def on_service_start(self, t, ports, stages, waits, track_ids):
        self.services += 1

    def on_cycle_end(self, t):
        self.cycles += 1


class CycleOnlyObserver(EngineObserver):
    def __init__(self):
        self.cycles = 0

    def on_cycle_end(self, t):
        self.cycles += 1


class DuckObserver:
    """Never subclassed the base -- the legacy duck-typed shape."""

    def __init__(self):
        self.injects = 0

    def on_inject(self, t, sources, entry_lines, track_ids):
        self.injects += 1


def small_sim(**kwargs):
    return NetworkSimulator(NetworkConfig(k=2, n_stages=3, p=0.4, seed=5, **kwargs))


class TestObserverSet:
    def test_noop_callbacks_not_dispatched(self):
        s = ObserverSet()
        s.add(EngineObserver())
        assert s.inject == [] and s.service_start == [] and s.cycle_end == []

    def test_overridden_callbacks_dispatched(self):
        s = ObserverSet()
        obs = CycleOnlyObserver()
        s.add(obs)
        assert s.inject == [] and len(s.cycle_end) == 1

    def test_duck_typed_observer_dispatched(self):
        s = ObserverSet()
        duck = DuckObserver()
        s.add(duck)
        assert len(s.inject) == 1
        s.inject[0](0, [], [], [])
        assert duck.injects == 1

    def test_add_is_idempotent(self):
        s = ObserverSet()
        obs = CountingObserver()
        s.add(obs)
        s.add(obs)
        assert len(s) == 1 and len(s.cycle_end) == 1

    def test_remove_rebuilds_dispatch(self):
        s = ObserverSet()
        obs = CountingObserver()
        s.add(obs)
        s.remove(obs)
        assert len(s) == 0 and s.cycle_end == []
        s.remove(obs)  # absent: no-op

    def test_event_names_cover_dispatch_lists(self):
        assert OBSERVER_EVENTS == ("on_inject", "on_service_start", "on_cycle_end")


class TestEngineRegistry:
    def test_multiple_observers_all_notified(self):
        sim = small_sim()
        a, b = CountingObserver(), CycleOnlyObserver()
        sim.engine.add_observer(a)
        sim.engine.add_observer(b)
        sim.run(100, warmup=0)
        assert a.cycles == 100 and b.cycles == 100
        assert a.injects > 0 and a.services > 0

    def test_on_attach_receives_engine(self):
        sim = small_sim()
        obs = CountingObserver()
        sim.engine.add_observer(obs)
        assert obs.attached is sim.engine

    def test_legacy_observer_slot_still_works(self):
        sim = small_sim()
        tracer = MessageTracer(limit=10)
        sim.engine.observer = tracer
        assert sim.engine.observer is tracer
        sim.run(100, warmup=0)
        assert tracer.traced > 0

    def test_legacy_slot_assignment_replaces(self):
        sim = small_sim()
        first, second = CountingObserver(), CountingObserver()
        sim.engine.observer = first
        sim.engine.observer = second
        assert sim.engine.observer is second
        assert first not in sim.engine.observers

    def test_legacy_slot_none_clears(self):
        sim = small_sim()
        sim.engine.observer = CountingObserver()
        sim.engine.observer = None
        assert sim.engine.observer is None
        assert len(sim.engine.observers) == 0

    def test_constructor_observer_attached(self):
        from repro.simulation.engine import ClockedEngine

        sim = small_sim()
        obs = CountingObserver()
        engine = ClockedEngine(sim.topology, sim.traffic, observer=obs)
        assert obs.attached is engine

    def test_remove_observer_stops_notifications(self):
        sim = small_sim()
        obs = CountingObserver()
        sim.engine.add_observer(obs)
        sim.run(50, warmup=0)
        seen = obs.cycles
        sim.engine.remove_observer(obs)
        sim.engine.run(50, warmup=0)
        assert obs.cycles == seen


class TestProfiling:
    def test_phase_timers_accumulate(self):
        sim = small_sim()
        timers = sim.engine.enable_profiling()
        sim.run(200, warmup=0)
        assert set(timers.seconds) == {"inject", "serve", "tick"}
        assert timers.calls["inject"] == 200
        assert all(v >= 0 for v in timers.seconds.values())
        d = timers.as_dict()
        assert d["serve"]["calls"] == 200

    def test_enable_profiling_idempotent(self):
        sim = small_sim()
        t1 = sim.engine.enable_profiling()
        t2 = sim.engine.enable_profiling()
        assert t1 is t2

    def test_profiled_decorator_gated(self):
        from repro.obs.profiling import (
            GLOBAL_TIMERS,
            disable_profiling,
            enable_profiling,
            profiled,
        )

        @profiled("test.fn")
        def fn():
            return 42

        disable_profiling(reset=True)
        fn()
        assert "test.fn" not in GLOBAL_TIMERS.seconds
        enable_profiling()
        try:
            assert fn() == 42
            assert GLOBAL_TIMERS.calls["test.fn"] == 1
        finally:
            disable_profiling(reset=True)

    def test_metrics_collector_requires_attach(self):
        from repro.obs.metrics import MetricsCollector

        with pytest.raises(SimulationError):
            MetricsCollector().series()

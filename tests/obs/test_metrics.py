"""MetricsCollector tests: sampling, bounding, schema, non-perturbation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.obs.manifest import validate_metrics_record
from repro.obs.metrics import METRICS_RECORD_FIELDS, MetricsCollector
from repro.simulation.network import NetworkConfig, NetworkSimulator
from repro.simulation.trace import MessageTracer


def metered_run(n_cycles=400, stride=4, capacity=4096, **config_kwargs):
    cfg = NetworkConfig(k=2, n_stages=3, p=0.4, seed=3, **config_kwargs)
    sim = NetworkSimulator(cfg)
    collector = MetricsCollector(stride=stride, capacity=capacity)
    sim.attach_metrics(collector)
    result = sim.run(n_cycles, warmup=0)
    return sim, collector, result


class TestSampling:
    def test_stride_controls_sample_count(self):
        _, collector, _ = metered_run(n_cycles=400, stride=4)
        # cycles 0, 4, ..., 396
        assert collector.n_samples == 100
        cycles = collector.series()["cycle"]
        assert cycles[0] == 0 and cycles[-1] == 396
        assert np.all(np.diff(cycles) == 4)

    def test_stride_one_samples_every_cycle(self):
        _, collector, _ = metered_run(n_cycles=50, stride=1)
        assert collector.n_samples == 50

    def test_validation(self):
        with pytest.raises(SimulationError):
            MetricsCollector(stride=0)
        with pytest.raises(SimulationError):
            MetricsCollector(capacity=0)


class TestRingBounding:
    def test_memory_bounded_by_capacity(self):
        _, collector, _ = metered_run(n_cycles=400, stride=2, capacity=16)
        assert collector.samples_taken == 200
        assert collector.n_samples == 16
        assert collector.samples_overwritten == 200 - 16

    def test_wraparound_keeps_newest_chronologically(self):
        _, collector, _ = metered_run(n_cycles=400, stride=2, capacity=16)
        cycles = collector.series()["cycle"]
        assert cycles.size == 16
        assert np.all(np.diff(cycles) > 0)
        assert cycles[-1] == 398  # newest survives; oldest evicted

    def test_per_stage_arrays_follow_ring_order(self):
        _, collector, _ = metered_run(n_cycles=400, stride=2, capacity=16)
        s = collector.series()
        # cumulative counters never decrease in chronological order
        assert np.all(np.diff(s["injected"]) >= 0)
        assert np.all(np.diff(s["completed"]) >= 0)
        assert np.all(np.diff(s["wait_count"], axis=0) >= 0)


class TestSeries:
    def test_utilization_in_unit_interval(self):
        _, collector, _ = metered_run()
        util = collector.series()["utilization"]
        assert np.all(util >= 0) and np.all(util <= 1)

    def test_utilization_tracks_offered_load(self):
        # at rho=0.4 with unit service, each stage transmits ~p of cycles
        _, collector, _ = metered_run(n_cycles=2_000)
        util = collector.series()["utilization"].mean(axis=0)
        assert np.allclose(util, 0.4, atol=0.05)

    def test_wait_moments_match_engine_stats(self):
        # stride=1 so the final sample coincides with the final cycle
        sim, collector, result = metered_run(stride=1)
        s = collector.series()
        assert np.array_equal(s["wait_count"][-1], result.stage_counts)
        means = collector.stage_wait_means()
        assert np.allclose(means, result.stage_means)

    def test_summary_digest(self):
        # stride=1 so the final sample coincides with the final cycle
        _, collector, result = metered_run(stride=1)
        summary = collector.summary()
        assert summary["samples"] == collector.n_samples
        assert summary["completed"] == result.completed
        assert len(summary["mean_queue_depth"]) == 3
        assert summary["window_throughput"] > 0

    def test_empty_summary(self):
        collector = MetricsCollector()
        sim = NetworkSimulator(NetworkConfig(k=2, n_stages=3, p=0.4, seed=3))
        sim.attach_metrics(collector)
        assert collector.summary() == {"samples": 0}


class TestRecordSchema:
    def test_records_match_documented_schema(self):
        _, collector, _ = metered_run()
        n = 0
        for record in collector.records():
            validate_metrics_record(record, n_stages=3)
            n += 1
        assert n == collector.n_samples

    def test_schema_fields_frozen(self):
        assert set(METRICS_RECORD_FIELDS) == {
            "cycle",
            "queue_depth",
            "busy_ports",
            "utilization",
            "wait_count",
            "wait_sum",
            "wait_sumsq",
            "injected",
            "completed",
            "dropped",
            "in_flight",
        }

    def test_validate_rejects_missing_field(self):
        _, collector, _ = metered_run()
        record = next(collector.records())
        record.pop("cycle")
        with pytest.raises(SimulationError):
            validate_metrics_record(record)

    def test_validate_rejects_wrong_stage_count(self):
        _, collector, _ = metered_run()
        record = next(collector.records())
        with pytest.raises(SimulationError):
            validate_metrics_record(record, n_stages=7)


class TestNonPerturbation:
    """Observers must not change what the simulation computes."""

    def unobserved(self, **config_kwargs):
        cfg = NetworkConfig(k=2, n_stages=3, p=0.4, seed=3, **config_kwargs)
        return NetworkSimulator(cfg).run(400, warmup=0)

    def test_metrics_and_tracer_leave_statistics_identical(self):
        base = self.unobserved()
        cfg = NetworkConfig(k=2, n_stages=3, p=0.4, seed=3)
        sim = NetworkSimulator(cfg)
        sim.attach_metrics(MetricsCollector(stride=4))
        sim.engine.add_observer(MessageTracer(limit=50))
        observed = sim.run(400, warmup=0)
        assert np.array_equal(base.stage_means, observed.stage_means)
        assert np.array_equal(base.stage_variances, observed.stage_variances)
        assert np.array_equal(base.stage_counts, observed.stage_counts)
        assert base.injected == observed.injected
        assert base.completed == observed.completed

    def test_composition_identical_under_finite_buffer_drops(self):
        base = self.unobserved(buffer_capacity=2)
        assert base.dropped > 0  # the scenario genuinely drops
        cfg = NetworkConfig(k=2, n_stages=3, p=0.4, seed=3, buffer_capacity=2)
        sim = NetworkSimulator(cfg)
        sim.attach_metrics(MetricsCollector(stride=4))
        sim.engine.add_observer(MessageTracer(limit=50))
        observed = sim.run(400, warmup=0)
        assert np.array_equal(base.stage_means, observed.stage_means)
        assert base.dropped == observed.dropped
        assert base.completed == observed.completed

    def test_profiling_leaves_statistics_identical(self):
        base = self.unobserved()
        cfg = NetworkConfig(k=2, n_stages=3, p=0.4, seed=3)
        sim = NetworkSimulator(cfg)
        sim.engine.enable_profiling()
        observed = sim.run(400, warmup=0)
        assert np.array_equal(base.stage_means, observed.stage_means)
        assert observed.timings is not None

"""Examples stay importable and syntactically healthy.

Full runs take minutes (they use paper-grade simulation lengths), so
the unit suite only compiles them and checks each defines a ``main``;
the quickstart -- the one a new user runs first -- is executed for real
with its output spot-checked.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 4  # quickstart + three domain studies


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / (path.name + "c")), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_defines_main(path):
    source = path.read_text()
    assert "def main(" in source
    assert '__name__ == "__main__"' in source


def test_quickstart_runs_end_to_end():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    assert "E[w]   = 1/4" in out
    assert "simulated" in out

"""CLI surface tests (fast cycle counts)."""

import json

import pytest

from repro.cli import _run_table, build_parser, main


class TestParser:
    def test_table_command(self):
        args = build_parser().parse_args(["table", "I", "--cycles", "2500"])
        assert args.command == "table"
        assert args.id == "I"
        assert args.cycles == 2500

    def test_figure_command(self):
        args = build_parser().parse_args(["figure", "5", "--stages", "3"])
        assert args.id == 5
        assert args.stages == 3

    def test_unknown_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "XIII"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_table_I_runs(self, capsys):
        assert main(["table", "I", "--cycles", "2500"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "ESTIMATE" in out

    def test_totals_table_runs(self, capsys):
        assert main(["table", "VII", "--cycles", "2500"]) == 0
        out = capsys.readouterr().out
        assert "TABLE VII" in out

    def test_figure_runs(self, capsys):
        assert main(["figure", "3", "--stages", "3", "--cycles", "2500"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_seed_override(self, capsys):
        assert main(["table", "VI", "--cycles", "2500", "--seed", "9"]) == 0
        assert "TABLE VI" in capsys.readouterr().out

    def test_sweep_runs(self, capsys):
        assert main(["sweep", "load", "--cycles", "3000"]) == 0
        out = capsys.readouterr().out
        assert "load sweep" in out
        assert "p=0.2" in out

    def test_sweep_kind_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "bogus"])


class TestCyclesOverride:
    def test_explicit_cycles_zero_not_ignored(self, monkeypatch):
        """`--cycles 0` must reach the generator, not fall back silently."""
        import repro.analysis.tables as tables

        captured = {}

        class FakeTable:
            def to_text(self):
                return "TABLE I (fake)"

        def fake_table_I(**kwargs):
            captured.update(kwargs)
            return FakeTable()

        monkeypatch.setattr(tables, "table_I", fake_table_I)
        _run_table("I", 0, None)
        assert captured == {"n_cycles": 0}

    def test_omitted_cycles_leaves_default(self, monkeypatch):
        import repro.analysis.tables as tables

        captured = {}

        class FakeTable:
            def to_text(self):
                return "TABLE I (fake)"

        def fake_table_I(**kwargs):
            captured.update(kwargs)
            return FakeTable()

        monkeypatch.setattr(tables, "table_I", fake_table_I)
        _run_table("I", None, None)
        assert "n_cycles" not in captured


class TestBatchCommand:
    @staticmethod
    def write_spec_file(path, n=2):
        from repro.exec import ExperimentSpec
        from repro.simulation.network import NetworkConfig

        specs = [
            ExperimentSpec(
                NetworkConfig(
                    k=2, n_stages=3, p=0.3 + 0.2 * i, topology="random",
                    width=16, seed=50 + i,
                ),
                n_cycles=800,
                label=f"cli-{i}",
            )
            for i in range(n)
        ]
        path.write_text(json.dumps([s.to_jsonable() for s in specs]))

    def test_parser_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.scenarios == "smoke"
        assert args.retries == 1
        assert not args.no_cache and not args.require_cached

    def test_cache_action_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "bogus"])

    def test_batch_then_cached_repeat(self, tmp_path, capsys):
        spec_file = tmp_path / "specs.json"
        self.write_spec_file(spec_file)
        cache_dir = str(tmp_path / "cache")
        argv = ["batch", "--scenarios", str(spec_file), "--cache", cache_dir]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 simulated, 0 cached, 0 failed" in out
        # identical repeat must be served entirely from the cache
        assert main([*argv, "--require-cached"]) == 0
        out = capsys.readouterr().out
        assert "0 simulated, 2 cached, 0 failed" in out

    def test_require_cached_fails_on_cold_cache(self, tmp_path, capsys):
        spec_file = tmp_path / "specs.json"
        self.write_spec_file(spec_file, n=1)
        code = main(
            ["batch", "--scenarios", str(spec_file),
             "--cache", str(tmp_path / "cache"), "--require-cached"]
        )
        assert code == 1

    def test_no_cache_flag(self, tmp_path, capsys):
        spec_file = tmp_path / "specs.json"
        self.write_spec_file(spec_file, n=1)
        assert main(["batch", "--scenarios", str(spec_file), "--no-cache"]) == 0
        assert "cache=off" in capsys.readouterr().out
        assert not (tmp_path / ".repro-cache").exists()

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        spec_file = tmp_path / "specs.json"
        self.write_spec_file(spec_file, n=1)
        cache_dir = str(tmp_path / "cache")
        main(["batch", "--scenarios", str(spec_file), "--cache", cache_dir])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", cache_dir]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache", cache_dir]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache", cache_dir]) == 0
        assert "0 entries" in capsys.readouterr().out


class TestMetricsCommand:
    def test_metrics_run(self, capsys):
        assert main(["metrics", "--stages", "3", "--p", "0.4", "--cycles", "1500"]) == 0
        out = capsys.readouterr().out
        assert "instrumented run" in out
        assert "phase timings" in out
        assert "utilization" in out

    def test_metrics_finite_buffer(self, capsys):
        code = main(
            ["metrics", "--stages", "3", "--p", "0.6", "--cycles", "1500",
             "--buffer", "2"]
        )
        assert code == 0
        assert "dropped" in capsys.readouterr().out


class TestMetricsOut:
    def test_table_smoke_emits_manifest_and_jsonl(self, tmp_path, capsys):
        """The acceptance smoke run: table I with --metrics-out."""
        from repro.obs.manifest import validate_manifest, validate_metrics_record

        out_dir = tmp_path / "artifacts"
        assert main(
            ["table", "I", "--cycles", "2000", "--metrics-out", str(out_dir)]
        ) == 0
        assert "TABLE I" in capsys.readouterr().out
        manifests = sorted(out_dir.glob("*.manifest.json"))
        metrics = sorted(out_dir.glob("*.metrics.jsonl"))
        assert manifests and metrics
        for path in manifests:
            manifest = json.loads(path.read_text())
            validate_manifest(manifest)
            assert manifest["n_cycles"] == 2000
            assert manifest["config"]["k"] == 2
            assert manifest["throughput"] >= 0
        lines = metrics[0].read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "metrics_header"
        n_stages = None
        for line in lines[1:]:
            record = json.loads(line)
            if n_stages is None:
                n_stages = len(record["queue_depth"])
            validate_metrics_record(record, n_stages=n_stages)

    def test_session_not_left_installed(self, tmp_path):
        from repro.obs.session import current_session

        main(["table", "VI", "--cycles", "2500", "--metrics-out", str(tmp_path)])
        assert current_session() is None

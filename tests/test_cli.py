"""CLI surface tests (fast cycle counts)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_command(self):
        args = build_parser().parse_args(["table", "I", "--cycles", "2500"])
        assert args.command == "table"
        assert args.id == "I"
        assert args.cycles == 2500

    def test_figure_command(self):
        args = build_parser().parse_args(["figure", "5", "--stages", "3"])
        assert args.id == 5
        assert args.stages == 3

    def test_unknown_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "XIII"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_table_I_runs(self, capsys):
        assert main(["table", "I", "--cycles", "2500"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "ESTIMATE" in out

    def test_totals_table_runs(self, capsys):
        assert main(["table", "VII", "--cycles", "2500"]) == 0
        out = capsys.readouterr().out
        assert "TABLE VII" in out

    def test_figure_runs(self, capsys):
        assert main(["figure", "3", "--stages", "3", "--cycles", "2500"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_seed_override(self, capsys):
        assert main(["table", "VI", "--cycles", "2500", "--seed", "9"]) == 0
        assert "TABLE VI" in capsys.readouterr().out

    def test_sweep_runs(self, capsys):
        assert main(["sweep", "load", "--cycles", "3000"]) == 0
        out = capsys.readouterr().out
        assert "load sweep" in out
        assert "p=0.2" in out

    def test_sweep_kind_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "bogus"])

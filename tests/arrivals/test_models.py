"""Unit + statistical tests for the arrival-process models."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import (
    BulkUniformTraffic,
    CustomArrivals,
    FavoriteOutputTraffic,
    RandomBulkTraffic,
    UniformTraffic,
)
from repro.errors import ModelError
from repro.series.pgf import PGF


def rng():
    return np.random.default_rng(1234)


class TestUniformTraffic:
    def test_rate_is_kp_over_s(self):
        t = UniformTraffic(k=4, p=Fraction(1, 2), s=8)
        assert t.rate == Fraction(1, 4)

    def test_s_defaults_to_k(self):
        t = UniformTraffic(k=2, p=0.5)
        assert t.s == 2
        assert t.rate == Fraction(1, 2)

    def test_paper_factorial_moments(self):
        """R''(1) = lambda^2 (1-1/k), R'''(1) = lambda^3 (1-1/k)(1-2/k)."""
        k, p = 4, Fraction(2, 5)
        t = UniformTraffic(k=k, p=p)
        lam = t.rate
        assert t.factorial_moment(2) == lam ** 2 * (1 - Fraction(1, k))
        assert t.factorial_moment(3) == lam ** 3 * (1 - Fraction(1, k)) * (1 - Fraction(2, k))

    def test_pgf_is_binomial(self):
        t = UniformTraffic(k=3, p=Fraction(1, 2))
        assert t.pgf() == PGF.binomial(3, Fraction(1, 6))

    def test_sampler_matches_pgf(self):
        t = UniformTraffic(k=2, p=0.5)
        assert t.empirical_pgf_check(rng(), n_samples=100_000, max_count=4) < 0.01

    def test_validation(self):
        with pytest.raises(ModelError):
            UniformTraffic(k=0, p=0.5)
        with pytest.raises(ModelError):
            UniformTraffic(k=2, p=1.5)


class TestBulkUniformTraffic:
    def test_rate_scales_with_bulk(self):
        t = BulkUniformTraffic(k=2, p=Fraction(1, 4), b=3)
        assert t.rate == 2 * Fraction(1, 8) * 3

    def test_reduces_to_uniform_for_b1(self):
        a = BulkUniformTraffic(k=2, p=Fraction(1, 3), b=1)
        b = UniformTraffic(k=2, p=Fraction(1, 3))
        assert a.pgf() == b.pgf()

    def test_paper_r2(self):
        """R''(1) = lambda (b - 1 + (1-1/k) lambda)."""
        k, p, b = 2, Fraction(1, 5), 4
        t = BulkUniformTraffic(k=k, p=p, b=b)
        lam = t.rate
        assert t.factorial_moment(2) == lam * (b - 1 + (1 - Fraction(1, k)) * lam)

    def test_support_is_multiples_of_b(self):
        t = BulkUniformTraffic(k=2, p=0.5, b=3)
        pmf = t.pgf().pmf(7, exact=True)
        assert pmf[1] == pmf[2] == pmf[4] == pmf[5] == 0
        assert pmf[3] > 0

    def test_sampler_matches_pgf(self):
        t = BulkUniformTraffic(k=2, p=0.5, b=2)
        assert t.empirical_pgf_check(rng(), n_samples=100_000, max_count=6) < 0.01

    def test_validation(self):
        with pytest.raises(ModelError):
            BulkUniformTraffic(k=2, p=0.5, b=0)


class TestRandomBulkTraffic:
    def test_constant_bulk_recovers_bulk_model(self):
        a = RandomBulkTraffic(k=2, p=Fraction(1, 4), bulk=PGF.degenerate(3))
        b = BulkUniformTraffic(k=2, p=Fraction(1, 4), b=3)
        assert a.pgf() == b.pgf()

    def test_mixture_bulk_rate(self):
        bulk = PGF.mixture([PGF.degenerate(1), PGF.degenerate(3)], [0.5, 0.5])
        t = RandomBulkTraffic(k=2, p=Fraction(1, 2), bulk=bulk)
        assert t.rate == 2 * Fraction(1, 4) * 2  # k * p/s * E[bulk]

    def test_sampler_matches_pgf(self):
        bulk = PGF.mixture([PGF.degenerate(1), PGF.degenerate(2)], [0.5, 0.5])
        t = RandomBulkTraffic(k=2, p=0.5, bulk=bulk)
        assert t.empirical_pgf_check(rng(), n_samples=100_000, max_count=6) < 0.01

    def test_rejects_mass_at_zero(self):
        bulk = PGF.mixture([PGF.degenerate(0), PGF.degenerate(2)], [0.5, 0.5])
        with pytest.raises(ModelError):
            RandomBulkTraffic(k=2, p=0.5, bulk=bulk)


class TestFavoriteOutputTraffic:
    def test_rate_independent_of_bias(self):
        """lambda = p b for every q: bias moves traffic, conserving it."""
        for q in [0, Fraction(1, 4), Fraction(1, 2), 1]:
            t = FavoriteOutputTraffic(k=2, p=Fraction(1, 2), q=q)
            assert t.rate == Fraction(1, 2)

    def test_reduces_to_uniform_at_q0(self):
        a = FavoriteOutputTraffic(k=4, p=Fraction(1, 3), q=0)
        b = UniformTraffic(k=4, p=Fraction(1, 3))
        assert a.pgf() == b.pgf()

    def test_q1_is_pure_bernoulli(self):
        t = FavoriteOutputTraffic(k=4, p=Fraction(1, 3), q=1)
        assert t.pgf() == PGF.bernoulli(Fraction(1, 3))

    def test_bulk_variant(self):
        t = FavoriteOutputTraffic(k=2, p=Fraction(1, 2), q=Fraction(1, 2), b=2)
        assert t.rate == 1
        pmf = t.pgf().pmf(3, exact=True)
        assert pmf[1] == 0  # arrivals come in pairs

    def test_sampler_matches_pgf(self):
        t = FavoriteOutputTraffic(k=2, p=0.5, q=0.3)
        assert t.empirical_pgf_check(rng(), n_samples=100_000, max_count=5) < 0.01

    def test_validation(self):
        with pytest.raises(ModelError):
            FavoriteOutputTraffic(k=2, p=0.5, q=1.5)


class TestCustomArrivals:
    def test_from_pmf(self):
        t = CustomArrivals([0.5, 0.25, 0.25])
        assert t.rate == Fraction(3, 4)

    def test_from_pgf(self):
        t = CustomArrivals(PGF.binomial(3, Fraction(1, 3)))
        assert t.rate == 1

    def test_sampler_matches_pgf(self):
        t = CustomArrivals([0.3, 0.4, 0.2, 0.1])
        assert t.empirical_pgf_check(rng(), n_samples=100_000, max_count=5) < 0.01

    def test_rejects_garbage(self):
        with pytest.raises(ModelError):
            CustomArrivals(object())


class TestCrossModelProperties:
    @given(
        k=st.integers(min_value=1, max_value=6),
        p_num=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_uniform_mean_formula(self, k, p_num):
        p = Fraction(p_num, 10)
        t = UniformTraffic(k=k, p=p)
        assert t.rate == k * p / k
        assert t.variance() == k * (p / k) * (1 - p / k)

    @given(
        q_num=st.integers(min_value=0, max_value=10),
        b=st.integers(min_value=1, max_value=4),
        k=st.sampled_from([2, 3, 4]),
    )
    @settings(max_examples=30, deadline=None)
    def test_favorite_moments_match_exclusive_sum(self, q_num, b, k):
        """Sum of k-1 unmatched Bernoulli bulks + one matched bulk."""
        q = Fraction(q_num, 10)
        p = Fraction(2, 5)
        t = FavoriteOutputTraffic(k=k, p=p, q=q, b=b)
        # mean = p*b always: bias moves traffic, conserving it
        assert t.rate == p * b
        a = p * (1 - q) / k
        f = p * (q + (1 - q) / Fraction(k))
        expected_var = b * b * ((k - 1) * a * (1 - a) + f * (1 - f))
        assert t.variance() == expected_var

"""MMBP arrival model: marginals, correlation, and the i.i.d. gap."""

from fractions import Fraction

import numpy as np
import pytest

from repro.arrivals.markov import MarkovModulatedTraffic
from repro.arrivals.bernoulli import UniformTraffic
from repro.core.first_stage import FirstStageQueue
from repro.errors import ModelError
from repro.service import DeterministicService
from repro.simulation.queue_sim import simulate_first_stage_queue


def bursty(flip=Fraction(1, 20)):
    # marginal mean rate (0.1 + 0.4)/2 * 2 = 0.5 messages/cycle
    return MarkovModulatedTraffic(k=2, rates=(Fraction(1, 10), Fraction(2, 5)), flip=flip)


class TestMarginal:
    def test_rate_is_mixture_mean(self):
        t = bursty()
        assert t.rate == Fraction(1, 2)

    def test_flip_half_matches_iid_mixture_marginal(self):
        t = bursty(flip=Fraction(1, 2))
        rng = np.random.default_rng(0)
        assert t.empirical_pgf_check(rng, n_samples=100_000, max_count=4) < 0.01

    def test_sampler_marginal_matches_pgf_even_when_bursty(self):
        t = bursty(flip=Fraction(1, 50))
        rng = np.random.default_rng(1)
        assert t.empirical_pgf_check(rng, n_samples=400_000, max_count=4) < 0.02


class TestCorrelation:
    def test_exact_autocorrelation_matches_sample(self):
        t = bursty(flip=Fraction(1, 10))
        rng = np.random.default_rng(2)
        x = t.sample_counts(rng, 400_000).astype(float)
        x -= x.mean()
        for lag in (1, 3):
            sample = float((x[:-lag] * x[lag:]).mean() / (x * x).mean())
            assert sample == pytest.approx(t.autocorrelation(lag), abs=0.02)

    def test_flip_half_is_uncorrelated(self):
        t = bursty(flip=Fraction(1, 2))
        assert t.autocorrelation(1) == 0.0
        assert t.autocorrelation(5) == 0.0

    def test_burst_length(self):
        assert bursty(flip=Fraction(1, 20)).burst_length == 20


class TestIIDGap:
    def test_burstiness_inflates_waiting_beyond_iid_prediction(self):
        """The boundary of Theorem 1: same marginal, higher waits."""
        t = bursty(flip=Fraction(1, 50))
        srv = DeterministicService(1)
        iid_prediction = float(FirstStageQueue(t, srv).waiting_mean())
        sim = simulate_first_stage_queue(t, srv, 400_000, rng=np.random.default_rng(3))
        assert sim.mean() > 1.5 * iid_prediction

    def test_no_burstiness_matches_iid_prediction(self):
        t = bursty(flip=Fraction(1, 2))
        srv = DeterministicService(1)
        iid_prediction = float(FirstStageQueue(t, srv).waiting_mean())
        sim = simulate_first_stage_queue(t, srv, 400_000, rng=np.random.default_rng(4))
        assert sim.mean() == pytest.approx(iid_prediction, rel=0.05)

    def test_network_port_marginal_comparison(self):
        """Sanity: the uniform-traffic port and a flip=1/2 MMBP with the
        same mean rate produce different marginals (mixture vs binomial),
        hence different i.i.d. waits -- shape, not just burstiness."""
        mmbp = bursty(flip=Fraction(1, 2))
        uni = UniformTraffic(k=2, p=Fraction(1, 2))
        srv = DeterministicService(1)
        assert mmbp.rate == uni.rate
        w_mmbp = FirstStageQueue(mmbp, srv).waiting_mean()
        w_uni = FirstStageQueue(uni, srv).waiting_mean()
        assert w_mmbp != w_uni


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ModelError):
            MarkovModulatedTraffic(k=0, rates=(0.1, 0.2), flip=0.5)
        with pytest.raises(ModelError):
            MarkovModulatedTraffic(k=2, rates=(0.1, 1.2), flip=0.5)
        with pytest.raises(ModelError):
            MarkovModulatedTraffic(k=2, rates=(0.1, 0.2), flip=0)
        with pytest.raises(ModelError):
            MarkovModulatedTraffic(k=2, rates=(0.1, 0.2, 0.3), flip=0.5)

    def test_lag_validation(self):
        with pytest.raises(ModelError):
            bursty().autocorrelation(-1)

"""Calibration machinery tests (fast cycle counts; the statistical
verification of the constants lives in the A2 ablation benchmark)."""

import pytest

from repro.core.calibration import (
    LimitEstimate,
    calibrate_mean_slope,
    estimate_limit_statistics,
    _deep_uniform_config,
)
from repro.errors import CalibrationError


class TestLimitEstimate:
    def test_ratios(self):
        est = LimitEstimate(
            mean=0.3, variance=0.34, first_stage_mean=0.25,
            first_stage_variance=0.25, samples=1000,
        )
        assert est.mean_ratio == pytest.approx(1.2)
        assert est.variance_ratio == pytest.approx(1.36)


class TestEstimation:
    def test_requires_enough_stages(self):
        cfg = _deep_uniform_config(2, 0.5, 1, seed=1, n_stages=3)
        with pytest.raises(CalibrationError):
            estimate_limit_statistics(cfg, n_cycles=2_000, tail_stages=3)

    def test_estimate_sane_at_half_load(self):
        cfg = _deep_uniform_config(2, 0.5, 1, seed=2, n_stages=7)
        est = estimate_limit_statistics(cfg, n_cycles=6_000)
        assert 0.27 < est.mean < 0.33          # w_inf ~ 0.30
        assert 0.23 < est.first_stage_mean < 0.27  # w1 = 0.25
        assert est.samples > 10_000


class TestMeanSlope:
    def test_short_run_lands_near_paper_value(self):
        a = calibrate_mean_slope(k=2, n_cycles=8_000, seed=3)
        assert 0.3 < a < 0.5  # paper: 2/5

"""Stochastic-ordering properties of the exact first-stage analysis.

These are sanity laws any queueing model must satisfy; violating one
would indicate a transform bug no point-value test might catch.
"""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import BulkUniformTraffic, UniformTraffic
from repro.core.first_stage import FirstStageQueue
from repro.service import DeterministicService


def tail(k, p, m=1, n=64):
    q = FirstStageQueue(UniformTraffic(k=k, p=p), DeterministicService(m))
    return q.waiting_tail(n)


class TestLoadMonotonicity:
    @given(p_num=st.integers(min_value=1, max_value=7))
    @settings(max_examples=7, deadline=None)
    def test_tail_increases_with_load(self, p_num):
        """First-order stochastic dominance in p: heavier load shifts
        the whole waiting distribution up."""
        lo = tail(2, Fraction(p_num, 10))
        hi = tail(2, Fraction(p_num + 2, 10))
        assert (hi >= lo - 1e-12).all()
        assert hi.sum() > lo.sum()

    def test_variance_increases_with_load(self):
        variances = [
            FirstStageQueue(
                UniformTraffic(k=2, p=Fraction(p, 10)), DeterministicService(1)
            ).waiting_variance()
            for p in range(1, 10)
        ]
        assert all(a < b for a, b in zip(variances, variances[1:], strict=False))


class TestSizeMonotonicity:
    def test_tail_increases_with_message_size_at_fixed_p(self):
        """Longer messages at the same arrival probability: more work,
        stochastically larger waits."""
        lo = tail(2, Fraction(1, 10), m=2)
        hi = tail(2, Fraction(1, 10), m=6)
        assert (hi >= lo - 1e-12).all()

    def test_bulk_size_dominance(self):
        """Same packet rate, bigger bulks: burstier, larger waits."""
        lam = Fraction(2, 5)
        means = []
        for b in (1, 2, 4):
            p = lam / b  # keep lambda = k p b / k fixed
            q = FirstStageQueue(BulkUniformTraffic(k=2, p=p, b=b), DeterministicService(1))
            assert q.lam == lam
            means.append(q.waiting_mean())
        assert means[0] < means[1] < means[2]


class TestSwitchSizeMonotonicity:
    def test_mean_increases_with_k_at_fixed_load(self):
        """More inputs per port at equal per-input load: Eq. (6)'s
        (1 - 1/k) factor, saturating toward the Poisson-like limit."""
        means = [
            FirstStageQueue(
                UniformTraffic(k=k, p=Fraction(1, 2)), DeterministicService(1)
            ).waiting_mean()
            for k in (2, 4, 8, 16)
        ]
        assert all(a < b for a, b in zip(means, means[1:], strict=False))
        # bounded by the k -> infinity value lambda/(2(1-lambda)) = 1/2
        assert means[-1] < Fraction(1, 2)

    def test_tail_dominance_in_k(self):
        lo = tail(2, Fraction(1, 2))
        hi = tail(8, Fraction(1, 2))
        assert (hi >= lo - 1e-12).all()


class TestConvexity:
    def test_mean_convex_in_load(self):
        """E w ~ rho/(1-rho): second differences positive."""
        ps = [Fraction(p, 20) for p in range(2, 19)]
        means = [
            float(
                FirstStageQueue(
                    UniformTraffic(k=2, p=p), DeterministicService(1)
                ).waiting_mean()
            )
            for p in ps
        ]
        second = np.diff(means, 2)
        assert (second > 0).all()

"""Section III-C / IV-B continuous limits of the discrete queue."""

from fractions import Fraction

import pytest

from repro.core import limits
from repro.errors import UnstableQueueError


class TestReferenceFormulas:
    def test_mm1_known_values(self):
        """rho=1/2, m=1: E W = 1, Var W = 3."""
        out = limits.mm1_waiting_moments(Fraction(1, 2))
        assert out.mean == 1
        assert out.variance == 3

    def test_md1_half_of_mm1_mean(self):
        """M/D/1 mean wait is half the M/M/1 mean wait at equal rho."""
        rho = Fraction(2, 5)
        assert limits.md1_waiting_moments(rho).mean == limits.mm1_waiting_moments(rho).mean / 2

    def test_mg1_reduces_to_md1(self):
        rho, m = Fraction(1, 3), 2
        a = limits.mg1_waiting_moments(rho / m, m, m * m, m ** 3)
        b = limits.md1_waiting_moments(rho, m)
        assert a == b

    def test_saturation_rejected(self):
        with pytest.raises(UnstableQueueError):
            limits.mm1_waiting_moments(1)


class TestDiscreteToContinuousConvergence:
    """The paper's Section III-C computation, done numerically: scale the
    clock by n and watch the discrete moments converge to M/M/1."""

    def test_geometric_scaling_converges_to_mm1(self):
        k, p, mu = 2, Fraction(1, 4), Fraction(1, 2)
        rho = (k * p / k) / mu  # lambda / mu = 1/2
        target = limits.mm1_waiting_moments(rho, service_mean=1 / mu)
        errs = []
        for n in (1, 4, 16, 64):
            q = limits.scaled_geometric_queue(k, p, mu, n)
            mean_scaled = q.waiting_mean() / n  # unscaled time units
            errs.append(abs(float(mean_scaled - target.mean)))
        assert errs[-1] < errs[0]
        assert errs[-1] < 0.02 * float(target.mean)

    def test_geometric_scaling_variance_converges(self):
        k, p, mu = 2, Fraction(1, 4), Fraction(1, 2)
        rho = (k * p / k) / mu
        target = limits.mm1_waiting_moments(rho, service_mean=1 / mu)
        q = limits.scaled_geometric_queue(k, p, mu, 64)
        var_scaled = q.waiting_variance() / 64 ** 2
        assert float(var_scaled) == pytest.approx(float(target.variance), rel=0.05)

    def test_deterministic_scaling_converges_to_md1(self):
        k, p, m = 2, Fraction(1, 4), 2
        rho = k * p * m / k
        target = limits.md1_waiting_moments(rho, m)
        q = limits.scaled_deterministic_queue(k, p, m, 64)
        mean_scaled = q.waiting_mean() / 64
        assert float(mean_scaled) == pytest.approx(float(target.mean), rel=0.05)

    def test_scale_validation(self):
        with pytest.raises(UnstableQueueError):
            limits.scaled_geometric_queue(2, Fraction(1, 4), Fraction(1, 2), 0)


class TestLightTrafficInterior:
    def test_two_thirds_ratio(self):
        """The paper's 2/3: light-traffic interior variance over the
        scaled first-stage light-traffic variance."""
        k, m = 2, 4
        rho = Fraction(1, 100)
        v_interior = limits.light_traffic_interior_variance(k, rho, m)
        # first-stage light-traffic variance ~ (1-1/k) rho m^2 / 2
        v_first_light = (1 - Fraction(1, k)) * rho * m * m / 2
        assert v_interior / v_first_light == Fraction(2, 3)

    def test_mean_matches_md1_light(self):
        k, m = 2, 4
        rho = Fraction(1, 50)
        w = limits.light_traffic_interior_mean(k, rho, m)
        # M/D/1 with thinned rate: lam' m^2/2 = (1-1/k) rho m / 2
        assert w == (1 - Fraction(1, k)) * rho * m / 2

"""Section III closed forms vs. the exact transform -- zero tolerance."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import BulkUniformTraffic, FavoriteOutputTraffic, UniformTraffic
from repro.core import formulas
from repro.core.first_stage import FirstStageQueue
from repro.errors import ModelError, UnstableQueueError
from repro.service import DeterministicService, GeometricService, MultiSizeService


class TestUniformUnit:
    """Eqs. (6)/(7)."""

    @pytest.mark.parametrize("k", [2, 4, 8])
    @pytest.mark.parametrize("p_num", [1, 3, 5, 8])
    def test_against_transform(self, k, p_num):
        p = Fraction(p_num, 10)
        q = FirstStageQueue(UniformTraffic(k=k, p=p), DeterministicService(1))
        assert formulas.uniform_unit_mean(k, p) == q.waiting_mean()
        assert formulas.uniform_unit_variance(k, p) == q.waiting_variance()

    def test_explicit_eq7_shape(self):
        """Literal transcription of Eq. (7) as recovered in moments.py."""
        k, lam = 2, Fraction(1, 2)
        expected = (
            (1 - Fraction(1, k))
            * lam
            * (6 - 5 * lam * (1 + Fraction(1, k)) + 2 * lam ** 2 * (1 + Fraction(1, k)))
            / (12 * (1 - lam) ** 2)
        )
        assert formulas.uniform_unit_variance(k, lam) == expected

    def test_kxs_rectangular(self):
        q = FirstStageQueue(UniformTraffic(k=4, p=Fraction(1, 2), s=8), DeterministicService(1))
        assert formulas.uniform_unit_mean(4, Fraction(1, 2), s=8) == q.waiting_mean()
        assert formulas.uniform_unit_variance(4, Fraction(1, 2), s=8) == q.waiting_variance()

    def test_saturated_rejected(self):
        with pytest.raises(UnstableQueueError):
            formulas.uniform_unit_mean(2, 1)


class TestBulk:
    @pytest.mark.parametrize("b", [1, 2, 4, 7])
    def test_against_transform(self, b):
        p = Fraction(1, 10)
        q = FirstStageQueue(BulkUniformTraffic(k=2, p=p, b=b), DeterministicService(1))
        assert formulas.bulk_mean(2, p, b) == q.waiting_mean()
        assert formulas.bulk_variance(2, p, b) == q.waiting_variance()

    def test_b1_reduces_to_uniform(self):
        p = Fraction(3, 10)
        assert formulas.bulk_mean(2, p, 1) == formulas.uniform_unit_mean(2, p)
        assert formulas.bulk_variance(2, p, 1) == formulas.uniform_unit_variance(2, p)

    def test_paper_mean_shape(self):
        """E w = (b - 1 + (1-1/k) lambda) / (2 (1-lambda))."""
        k, p, b = 2, Fraction(1, 10), 4
        lam = k * p / k * b
        expected = (b - 1 + (1 - Fraction(1, k)) * lam) / (2 * (1 - lam))
        assert formulas.bulk_mean(k, p, b) == expected


class TestNonuniform:
    @pytest.mark.parametrize("q_num", [0, 2, 5, 9, 10])
    def test_against_transform(self, q_num):
        q = Fraction(q_num, 10)
        p = Fraction(1, 2)
        queue = FirstStageQueue(FavoriteOutputTraffic(k=2, p=p, q=q), DeterministicService(1))
        assert formulas.nonuniform_mean(2, p, q) == queue.waiting_mean()
        assert formulas.nonuniform_variance(2, p, q) == queue.waiting_variance()

    def test_bulk_variant_against_transform(self):
        p, q, b = Fraction(1, 5), Fraction(1, 2), 2
        queue = FirstStageQueue(FavoriteOutputTraffic(k=2, p=p, q=q, b=b), DeterministicService(1))
        assert formulas.nonuniform_mean(2, p, q, b) == queue.waiting_mean()
        assert formulas.nonuniform_variance(2, p, q, b) == queue.waiting_variance()

    def test_paper_limit_q1_zero_wait(self):
        """'for q = 1, we get E(w) = 0' (unit bulks)."""
        assert formulas.nonuniform_mean(2, Fraction(1, 2), 1) == 0

    def test_paper_limit_q0_uniform(self):
        """'for q = 0 we obtain the same formula as in Section III-A-1'."""
        p = Fraction(2, 5)
        assert formulas.nonuniform_mean(4, p, 0) == formulas.uniform_unit_mean(4, p)

    def test_mean_monotone_decreasing_in_q(self):
        """For k = 2: E w = p (1 - q^2)/(4(1-p)) -- bias only relieves
        the tagged port, since its matched input can send it at most
        one message either way."""
        p = Fraction(1, 2)
        waits = [formulas.nonuniform_mean(2, p, Fraction(j, 4)) for j in range(5)]
        assert all(a > b for a, b in zip(waits, waits[1:], strict=False))
        assert waits[2] == p * (1 - Fraction(1, 4)) / (4 * (1 - p))


class TestGeometricService:
    @pytest.mark.parametrize("mu_num", [2, 5, 10])
    def test_against_transform(self, mu_num):
        mu = Fraction(mu_num, 10)
        p = Fraction(1, 10)
        queue = FirstStageQueue(UniformTraffic(k=2, p=p), GeometricService(mu))
        assert formulas.geometric_mean(2, p, mu) == queue.waiting_mean()
        assert formulas.geometric_variance(2, p, mu) == queue.waiting_variance()

    def test_mu1_reduces_to_unit_service(self):
        """'These reduce to the equations in Section III-A-1 when mu = 1.'"""
        p = Fraction(2, 5)
        assert formulas.geometric_mean(2, p, 1) == formulas.uniform_unit_mean(2, p)
        assert formulas.geometric_variance(2, p, 1) == formulas.uniform_unit_variance(2, p)

    def test_validation(self):
        with pytest.raises(ModelError):
            formulas.geometric_mean(2, Fraction(1, 10), 0)


class TestConstantService:
    @pytest.mark.parametrize("m", [1, 2, 4, 8])
    def test_against_transform(self, m):
        p = Fraction(1, 20)
        queue = FirstStageQueue(UniformTraffic(k=2, p=p), DeterministicService(m))
        assert formulas.constant_service_mean(2, p, m) == queue.waiting_mean()
        assert formulas.constant_service_variance(2, p, m) == queue.waiting_variance()

    def test_eq8_shape(self):
        """E w = rho (m - 1/k) / (2 (1 - rho))."""
        k, p, m = 2, Fraction(1, 8), 4
        rho = Fraction(k * p * m, k)
        assert formulas.constant_service_mean(k, p, m) == rho * (m - Fraction(1, k)) / (2 * (1 - rho))

    def test_m1_coincides_with_unit(self):
        """'These coincide, for m = 1, with the equations of Section III-A-1.'"""
        p = Fraction(3, 10)
        assert formulas.constant_service_mean(2, p, 1) == formulas.uniform_unit_mean(2, p)
        assert formulas.constant_service_variance(2, p, 1) == formulas.uniform_unit_variance(2, p)


class TestMultiSize:
    def test_against_transform(self):
        p = Fraction(1, 16)
        sizes, probs = [4, 8], [Fraction(1, 2), Fraction(1, 2)]
        queue = FirstStageQueue(UniformTraffic(k=2, p=p), MultiSizeService(sizes, probs))
        assert formulas.multisize_mean(2, p, sizes, probs) == queue.waiting_mean()
        assert formulas.multisize_variance(2, p, sizes, probs) == queue.waiting_variance()

    def test_degenerate_mixture_is_constant(self):
        p = Fraction(1, 16)
        assert formulas.multisize_mean(2, p, [4], [1]) == formulas.constant_service_mean(2, p, 4)

    def test_validation(self):
        with pytest.raises(ModelError):
            formulas.multisize_mean(2, Fraction(1, 16), [4, 8], [Fraction(1, 2)])
        with pytest.raises(ModelError):
            formulas.multisize_mean(2, Fraction(1, 16), [4, 8], [Fraction(1, 2), Fraction(1, 4)])


class TestPropertyBased:
    @given(
        k=st.sampled_from([2, 4, 8]),
        p_num=st.integers(min_value=1, max_value=9),
        b=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_bulk_formula_matches_transform_everywhere(self, k, p_num, b):
        p = Fraction(p_num, 10 * b)  # keep rho = k p b / k < 1
        if k * p * b / k >= 1:
            return
        queue = FirstStageQueue(BulkUniformTraffic(k=k, p=p, b=b), DeterministicService(1))
        assert formulas.bulk_mean(k, p, b) == queue.waiting_mean()
        assert formulas.bulk_variance(k, p, b) == queue.waiting_variance()

    @given(p_num=st.integers(min_value=1, max_value=9))
    @settings(max_examples=15, deadline=None)
    def test_mean_increases_with_load(self, p_num):
        p_lo = Fraction(p_num, 10)
        p_hi = p_lo + Fraction(1, 20)
        assert formulas.uniform_unit_mean(2, p_hi) > formulas.uniform_unit_mean(2, p_lo)

    @given(m=st.integers(min_value=1, max_value=12))
    @settings(max_examples=15, deadline=None)
    def test_waiting_linear_in_m_at_fixed_rho(self, m):
        """Section VI: 'the average waiting time increases linearly in m'
        for fixed traffic intensity."""
        rho = Fraction(1, 2)
        p = rho / m
        w = formulas.constant_service_mean(2, p, m)
        # E w = rho (m - 1/2) / (2(1-rho)) -- exactly linear in m
        assert w == rho * (m - Fraction(1, 2)) / (2 * (1 - rho))

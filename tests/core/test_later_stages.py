"""Section IV later-stage approximation structure and pinned values."""

from fractions import Fraction

import pytest

from repro.core.later_stages import InterpolationConstants, LaterStageModel, PAPER_CONSTANTS
from repro.errors import ModelError


class TestPaperPinnedValues:
    def test_w_inf_at_half_load(self):
        """Table I/V anchor: w_inf = 1.2 * 0.25 = 0.3 at k=2, p=1/2."""
        model = LaterStageModel(k=2, p=Fraction(1, 2))
        assert model.limit_mean() == Fraction(3, 10)

    def test_v_inf_at_half_load(self):
        """Table V anchor: v_inf = 1.375 * 0.25 = 0.34375."""
        model = LaterStageModel(k=2, p=Fraction(1, 2))
        assert model.limit_variance() == Fraction(11, 32)

    def test_stage1_is_exact(self):
        model = LaterStageModel(k=2, p=Fraction(1, 2))
        assert model.stage_mean(1) == Fraction(1, 4)
        assert model.stage_variance(1) == Fraction(1, 4)

    def test_eq15_multipacket_limit(self):
        """Table III ESTIMATE: w_inf = 0.3 m at rho=1/2, k=2."""
        for m in (2, 4, 8, 16):
            model = LaterStageModel(k=2, p=Fraction(1, 2) / m, m=m)
            assert model.limit_mean() == Fraction(3, 10) * m

    def test_eq16_multipacket_variance_pin(self):
        """Table III ESTIMATE: v_inf = (7/6) m^2 v1_unit at rho=1/2."""
        for m in (2, 4):
            model = LaterStageModel(k=2, p=Fraction(1, 2) / m, m=m)
            assert model.limit_variance() == Fraction(7, 6) * m * m * Fraction(1, 4)

    def test_table_v_estimate_row(self):
        """The decoded Table V ESTIMATE: (1.2 - 0.2q) and (1.375 - 0.375q)
        times the exact first stage."""
        # exact values; the paper's printed row is these rounded to 4
        # digits (0.20625 appears there as 0.2063)
        expected = [
            (0, Fraction(3, 10), Fraction(11, 32)),
            (1, Fraction(2695312500, 10 ** 10), Fraction(3002929688, 10 ** 10)),
            (2, Fraction(20625, 10 ** 5), Fraction(2226562500, 10 ** 10)),
            (3, Fraction(1148437500, 10 ** 10), Fraction(1196289062, 10 ** 10)),
        ]
        for q_num, want_w, want_v in expected:
            q = Fraction(q_num, 4)
            model = LaterStageModel(k=2, p=Fraction(1, 2), q=q)
            assert abs(model.limit_mean() - want_w) < Fraction(1, 10 ** 7)
            assert abs(model.limit_variance() - want_v) < Fraction(1, 10 ** 7)


class TestStageInterpolation:
    def test_geometric_approach_to_limit(self):
        """w_i increases monotonically to w_inf with ratio alpha."""
        model = LaterStageModel(k=2, p=Fraction(1, 2))
        w = [model.stage_mean(i) for i in range(1, 8)]
        w_inf = model.limit_mean()
        gaps = [w_inf - wi for wi in w]
        assert all(a > b > 0 for a, b in zip(gaps, gaps[1:], strict=False))
        for a, b in zip(gaps, gaps[1:], strict=False):
            assert b / a == PAPER_CONSTANTS.alpha

    def test_variance_same_structure(self):
        model = LaterStageModel(k=2, p=Fraction(1, 2))
        v = [model.stage_variance(i) for i in range(1, 6)]
        v_inf = model.limit_variance()
        assert all(a < b for a, b in zip(v, v[1:], strict=False))
        assert v[-1] < v_inf

    def test_k_dependence(self):
        """Larger switches converge to a smaller inflation (a ~ 4/5k)."""
        r2 = LaterStageModel(k=2, p=Fraction(1, 2))
        r8 = LaterStageModel(k=8, p=Fraction(1, 2))
        infl2 = r2.limit_mean() / r2.stage_mean(1)
        infl8 = r8.limit_mean() / r8.stage_mean(1)
        assert infl2 == Fraction(6, 5)
        assert infl8 == Fraction(21, 20)
        assert infl8 < infl2


class TestMultiSize:
    def test_ratio_correction_reduces_to_constant(self):
        """A single-size 'mixture' must agree with the constant-m path."""
        a = LaterStageModel(k=2, p=Fraction(1, 8), m=4)
        b = LaterStageModel(k=2, p=Fraction(1, 8), sizes=[4], probabilities=[1])
        assert a.limit_mean() == b.limit_mean()
        assert a.limit_variance() == b.limit_variance()

    def test_mixture_above_average_size_model(self):
        """Size variability adds waiting beyond the mean-size system
        (the Section IV-C correction is a ratio > 1)."""
        sizes, probs = [4, 8], [Fraction(1, 2), Fraction(1, 2)]
        mix = LaterStageModel(k=2, p=Fraction(1, 12), sizes=sizes, probabilities=probs)
        assert mix.limit_mean() > LaterStageModel(k=2, p=Fraction(1, 12), m=6).limit_mean()


class TestValidation:
    def test_stage_index(self):
        model = LaterStageModel(k=2, p=Fraction(1, 2))
        with pytest.raises(ModelError):
            model.stage_mean(0)
        with pytest.raises(ModelError):
            model.stage_variance(-1)

    def test_exclusive_options(self):
        with pytest.raises(ModelError):
            LaterStageModel(k=2, p=0.1, m=2, sizes=[2], probabilities=[1])
        with pytest.raises(ModelError):
            LaterStageModel(k=2, p=0.1, sizes=[2])
        with pytest.raises(ModelError):
            LaterStageModel(k=2, p=0.1, q=0.5, m=2)

    def test_with_constants(self):
        tweaked = InterpolationConstants(mean_slope=Fraction(1))
        model = LaterStageModel(k=2, p=Fraction(1, 2)).with_constants(tweaked)
        # inflation = 1 + mean_slope * rho / k = 1 + 1/4
        assert model.limit_mean() == Fraction(1, 4) * Fraction(5, 4)

    def test_damping_validation(self):
        with pytest.raises(ModelError):
            PAPER_CONSTANTS.mean_inflation(2, Fraction(1, 2), stage=0)

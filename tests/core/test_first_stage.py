"""Theorem 1 tests: the exact first-stage waiting-time transform.

The central consistency claim of the library: the *closed-form* moments
(paper Eqs. 2/3, re-derived in :mod:`repro.core.moments`) agree with the
moments extracted from the *transform itself* (Theorem 1, expanded by
exact series algebra) with **zero tolerance**, across every traffic and
service model of Section III.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import (
    BulkUniformTraffic,
    CustomArrivals,
    FavoriteOutputTraffic,
    UniformTraffic,
)
from repro.core.first_stage import FirstStageQueue
from repro.errors import UnstableQueueError
from repro.service import (
    DeterministicService,
    GeneralService,
    GeometricService,
    MultiSizeService,
)

SCENARIOS = [
    ("uniform-unit", UniformTraffic(k=2, p=Fraction(1, 2)), DeterministicService(1)),
    ("uniform-k4", UniformTraffic(k=4, p=Fraction(3, 10)), DeterministicService(1)),
    ("uniform-kxs", UniformTraffic(k=4, p=Fraction(1, 2), s=8), DeterministicService(1)),
    ("bulk", BulkUniformTraffic(k=2, p=Fraction(1, 10), b=4), DeterministicService(1)),
    ("nonuniform", FavoriteOutputTraffic(k=2, p=Fraction(1, 2), q=Fraction(3, 10)), DeterministicService(1)),
    ("nonuniform-bulk", FavoriteOutputTraffic(k=2, p=Fraction(1, 5), q=Fraction(1, 2), b=2), DeterministicService(1)),
    ("constant-m4", UniformTraffic(k=2, p=Fraction(1, 8)), DeterministicService(4)),
    ("geometric", UniformTraffic(k=2, p=Fraction(1, 4)), GeometricService(Fraction(1, 2))),
    ("multisize", UniformTraffic(k=2, p=Fraction(1, 16)), MultiSizeService([4, 8], [Fraction(1, 2), Fraction(1, 2)])),
    ("general-service", UniformTraffic(k=2, p=Fraction(2, 5)), GeneralService([0, Fraction(1, 2), Fraction(1, 4), Fraction(1, 4)])),
    ("custom-arrivals", CustomArrivals([Fraction(1, 2), Fraction(1, 4), Fraction(1, 4)]), DeterministicService(1)),
]


@pytest.mark.parametrize("name,arr,srv", SCENARIOS, ids=[s[0] for s in SCENARIOS])
class TestClosedFormsAgainstTransform:
    def test_mean_exact_match(self, name, arr, srv):
        q = FirstStageQueue(arr, srv)
        assert q.waiting_mean() == q.waiting_moment_exact(1)

    def test_variance_exact_match(self, name, arr, srv):
        q = FirstStageQueue(arr, srv)
        raw = q.waiting_transform.raw_moments(2)
        assert q.waiting_variance() == raw[2] - raw[1] ** 2

    def test_transform_is_pgf(self, name, arr, srv):
        q = FirstStageQueue(arr, srv)
        assert q.waiting_transform.evaluate(1) == 1
        pmf = q.waiting_pmf(64)
        assert (pmf >= 0).all()

    def test_decomposition_moments_add(self, name, arr, srv):
        """E[w] = E[s] + E[w'], Var[w] = Var[s] + Var[w'] (independence)."""
        q = FirstStageQueue(arr, srv)
        mom = q.moments()
        assert mom.mean == mom.work_mean + mom.predecessor_mean
        assert mom.variance == mom.work_variance + mom.predecessor_variance

    def test_delay_adds_service(self, name, arr, srv):
        q = FirstStageQueue(arr, srv)
        assert q.delay_mean() == q.waiting_mean() + srv.mean
        assert q.delay_variance() == q.waiting_variance() + srv.variance()


class TestPaperAnchors:
    """Point values quoted or implied by the paper's tables."""

    def test_table1_first_stage(self):
        """k=2, p=1/2, m=1: w1 = 1/4 and v1 = 1/4 (Table I ANALYSIS row)."""
        q = FirstStageQueue(UniformTraffic(k=2, p=Fraction(1, 2)), DeterministicService(1))
        assert q.waiting_mean() == Fraction(1, 4)
        assert q.waiting_variance() == Fraction(1, 4)

    def test_eq8_value(self):
        """k=2, p=1/8, m=4: rho=1/2, E w = rho(m - 1/k)/2(1-rho) = 7/4."""
        q = FirstStageQueue(UniformTraffic(k=2, p=Fraction(1, 8)), DeterministicService(4))
        assert q.waiting_mean() == Fraction(7, 4)

    def test_zero_load_degenerate(self):
        q = FirstStageQueue(UniformTraffic(k=2, p=0), DeterministicService(3))
        assert q.waiting_mean() == 0
        assert q.waiting_variance() == 0

    def test_q1_no_contention(self):
        """Pure favourite traffic with unit bulks never queues."""
        q = FirstStageQueue(
            FavoriteOutputTraffic(k=2, p=Fraction(1, 2), q=1), DeterministicService(1)
        )
        assert q.waiting_mean() == 0

    def test_saturation_rejected(self):
        with pytest.raises(UnstableQueueError):
            FirstStageQueue(UniformTraffic(k=2, p=Fraction(1, 2)), DeterministicService(2))
        with pytest.raises(UnstableQueueError):
            FirstStageQueue(UniformTraffic(k=2, p=1), DeterministicService(1))


class TestDistribution:
    def test_pmf_mass_at_zero(self):
        """P(w=0) for unit service: t(0) = Psi(0) phi(U(0)) computable directly."""
        q = FirstStageQueue(UniformTraffic(k=2, p=Fraction(1, 2)), DeterministicService(1))
        pmf = q.waiting_pmf(2, exact=True)
        assert pmf[0] == q.waiting_transform.evaluate(0)

    def test_pmf_sums_to_one(self):
        q = FirstStageQueue(UniformTraffic(k=2, p=Fraction(1, 2)), DeterministicService(1))
        assert q.waiting_pmf(400).sum() == pytest.approx(1.0, abs=1e-9)

    def test_pmf_mean_consistency(self):
        q = FirstStageQueue(UniformTraffic(k=2, p=Fraction(2, 5)), DeterministicService(2))
        pmf = q.waiting_pmf(600)
        mean_from_pmf = (np.arange(600) * pmf).sum()
        assert mean_from_pmf == pytest.approx(float(q.waiting_mean()), abs=1e-6)

    def test_geometric_tail_rate(self):
        """log P(w > n) decays linearly (geometric tail) for stable queues."""
        q = FirstStageQueue(UniformTraffic(k=2, p=Fraction(1, 2)), DeterministicService(1))
        tail = q.waiting_tail(12)
        ratios = tail[4:10] / tail[3:9]
        assert np.allclose(ratios, ratios[0], atol=1e-3)

    def test_quantiles_monotone(self):
        q = FirstStageQueue(UniformTraffic(k=2, p=Fraction(4, 5)), DeterministicService(1))
        qs = [q.waiting_quantile(x) for x in (0.5, 0.9, 0.99)]
        assert qs[0] <= qs[1] <= qs[2]

    def test_delay_pmf_shifted_by_service(self):
        """Unit service: delay = waiting + 1 exactly."""
        q = FirstStageQueue(UniformTraffic(k=2, p=Fraction(1, 2)), DeterministicService(1))
        w = q.waiting_pmf(32, exact=True)
        d = q.delay_pmf(33, exact=True)
        assert d[0] == 0
        assert d[1:] == w


class TestHigherMoments:
    """The paper stops at the variance -- 'six applications of L'Hospital's
    rule ... took Macsyma all night'; the exact series route goes further."""

    def test_third_moment_available(self):
        q = FirstStageQueue(UniformTraffic(k=2, p=Fraction(1, 2)), DeterministicService(1))
        m3 = q.waiting_moment_exact(3)
        # cross-check against the pmf
        pmf = q.waiting_pmf(800)
        approx = (np.arange(800, dtype=float) ** 3 * pmf).sum()
        assert approx == pytest.approx(float(m3), rel=1e-9)

    @given(p_num=st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_moment_ordering(self, p_num):
        """Jensen: E[w^2] >= (E[w])^2 for every stable load."""
        p = Fraction(p_num, 10)
        q = FirstStageQueue(UniformTraffic(k=2, p=p), DeterministicService(1))
        raw = q.waiting_transform.raw_moments(2)
        assert raw[2] >= raw[1] ** 2

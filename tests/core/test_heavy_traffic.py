"""Heavy-traffic asymptotics tests."""

from fractions import Fraction

import numpy as np
import pytest

from repro.arrivals import UniformTraffic
from repro.core import formulas
from repro.core.first_stage import FirstStageQueue
from repro.core.heavy_traffic import (
    ExponentialApproximation,
    heavy_traffic_coefficient,
    heavy_traffic_waiting,
    uniform_unit_heavy_coefficient,
)
from repro.errors import AnalysisError
from repro.service import DeterministicService


class TestCoefficient:
    def test_uniform_unit_limit(self):
        """(1-rho) E w -> (1-1/k)/2 as rho -> 1."""
        k = 2
        target = uniform_unit_heavy_coefficient(k)
        for p_num in (90, 99, 999):
            denom = 100 if p_num < 100 else 1000
            p = Fraction(p_num, denom)
            scaled = (1 - p) * formulas.uniform_unit_mean(k, p)
            assert abs(scaled - target) < Fraction(1, 10)
        p = Fraction(9999, 10000)
        scaled = (1 - p) * formulas.uniform_unit_mean(k, p)
        assert abs(scaled - target) < Fraction(1, 1000)

    def test_coefficient_function_matches_eq2(self):
        arr = UniformTraffic(k=2, p=Fraction(9, 10))
        srv = DeterministicService(1)
        q = FirstStageQueue(arr, srv)
        coeff = heavy_traffic_coefficient(arr, srv)
        assert coeff == (1 - q.rho) * q.waiting_mean()

    def test_validation(self):
        with pytest.raises(AnalysisError):
            heavy_traffic_coefficient(UniformTraffic(k=2, p=0), DeterministicService(1))
        with pytest.raises(AnalysisError):
            uniform_unit_heavy_coefficient(0)


class TestExponentialApproximation:
    def test_quantile_inverts_sf(self):
        e = ExponentialApproximation(mean=2.0)
        x = e.quantile(0.9)
        assert e.sf(x) == pytest.approx(0.1)

    def test_tail_error_shrinks_with_load(self):
        """The exponential model of P(w > x) improves toward saturation."""
        errors = []
        for p_num in (5, 8, 95):
            p = Fraction(p_num, 10) if p_num < 10 else Fraction(95, 100)
            q = FirstStageQueue(UniformTraffic(k=2, p=p), DeterministicService(1))
            approx = heavy_traffic_waiting(q)
            n = max(32, q.waiting_quantile(0.999))
            exact_tail = q.waiting_tail(n)
            xs = np.arange(n)
            usable = exact_tail > 1e-9
            rel = np.abs(approx.sf(xs)[usable] - exact_tail[usable]) / exact_tail[usable]
            errors.append(float(np.median(rel)))
        assert errors[2] < errors[0]

    def test_validation(self):
        q = FirstStageQueue(UniformTraffic(k=2, p=0), DeterministicService(1))
        with pytest.raises(AnalysisError):
            heavy_traffic_waiting(q)
        with pytest.raises(AnalysisError):
            ExponentialApproximation(mean=1.0).quantile(1.0)

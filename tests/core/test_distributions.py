"""Gamma / truncated-normal approximant tests."""

import numpy as np
import pytest

from repro.core.distributions import GammaApproximant, TruncatedNormalApproximant
from repro.errors import AnalysisError


class TestGamma:
    def test_moment_matching(self):
        g = GammaApproximant(mean=3.0, variance=2.0)
        dist = g.frozen
        assert dist.mean() == pytest.approx(3.0)
        assert dist.var() == pytest.approx(2.0)

    def test_shape_scale(self):
        g = GammaApproximant(mean=4.0, variance=8.0)
        assert g.shape == pytest.approx(2.0)
        assert g.scale == pytest.approx(2.0)

    def test_quantile_inverts_cdf(self):
        g = GammaApproximant(mean=2.0, variance=1.5)
        x = g.quantile(0.9)
        assert g.cdf(x) == pytest.approx(0.9, abs=1e-9)

    def test_sf_complements_cdf(self):
        g = GammaApproximant(mean=2.0, variance=1.5)
        assert g.sf(3.0) == pytest.approx(1.0 - g.cdf(3.0))

    def test_integer_bins(self):
        g = GammaApproximant(mean=5.0, variance=5.0)
        bins = g.integer_bin_probabilities(100)
        assert bins.sum() == pytest.approx(1.0, abs=1e-8)
        # mean of the discretised distribution stays close
        mean = (np.arange(100) * bins).sum()
        assert mean == pytest.approx(5.0, abs=0.1)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            GammaApproximant(mean=0.0, variance=1.0)
        with pytest.raises(AnalysisError):
            GammaApproximant(mean=1.0, variance=-1.0)
        with pytest.raises(AnalysisError):
            GammaApproximant(mean=1.0, variance=1.0).integer_bin_probabilities(0)


class TestTruncatedNormal:
    def test_negligible_truncation_matches_normal(self):
        t = TruncatedNormalApproximant(mean=50.0, variance=4.0)
        assert t.clipped_mass < 1e-10
        assert t.frozen.mean() == pytest.approx(50.0, rel=1e-6)

    def test_heavy_truncation_reported(self):
        t = TruncatedNormalApproximant(mean=0.5, variance=4.0)
        assert t.clipped_mass > 0.3

    def test_support_nonnegative(self):
        t = TruncatedNormalApproximant(mean=1.0, variance=1.0)
        assert t.cdf(0.0) == pytest.approx(0.0, abs=1e-12)
        assert t.pdf(-0.5) == 0.0

    def test_integer_bins_sum(self):
        t = TruncatedNormalApproximant(mean=6.0, variance=3.0)
        assert t.integer_bin_probabilities(60).sum() == pytest.approx(1.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            TruncatedNormalApproximant(mean=1.0, variance=0.0)


class TestGammaVsNormalTails:
    def test_gamma_right_tail_heavier_for_skewed_fit(self):
        """Small shape (skewed totals, few stages): gamma puts more mass
        in the far right tail than the matched normal -- the reason the
        paper prefers gamma for small networks."""
        mean, var = 2.0, 4.0  # shape = 1: strongly skewed
        g = GammaApproximant(mean, var)
        t = TruncatedNormalApproximant(mean, var)
        x = mean + 4 * var ** 0.5
        assert g.sf(x) > 1.0 - t.cdf(x)

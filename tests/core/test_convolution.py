"""Convolution total-delay model tests."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.convolution import ConvolutionTotalModel, excess_delay_pmf, stage_pmf
from repro.core.later_stages import LaterStageModel
from repro.core.total_delay import NetworkDelayModel
from repro.errors import AnalysisError, ModelError


def model(p=Fraction(1, 2)):
    return LaterStageModel(k=2, p=p)


class TestExcessDelay:
    def test_moments_matched(self):
        for M, V in [(0.05, 0.09), (0.3, 0.5), (0.01, 0.2)]:
            pmf = excess_delay_pmf(M, V, 512)
            xs = np.arange(512)
            mean = (xs * pmf).sum()
            var = ((xs - mean) ** 2 * pmf).sum()
            assert mean == pytest.approx(M, rel=1e-9)
            assert var == pytest.approx(V, rel=1e-6)

    def test_zero_mean_is_degenerate(self):
        pmf = excess_delay_pmf(0, 0, 8)
        assert pmf[0] == 1.0
        assert pmf[1:].sum() == 0.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            excess_delay_pmf(-0.1, 0.1, 16)
        with pytest.raises(AnalysisError):
            excess_delay_pmf(0.5, 0.01, 16)  # under-dispersed


class TestStagePmf:
    def test_stage1_is_exact(self):
        m = model()
        assert np.allclose(stage_pmf(m, 1, 64), m.first_stage.waiting_pmf(64))

    def test_stage_moments_match_section_iv(self):
        m = model()
        for stage in (2, 4, 8):
            pmf = stage_pmf(m, stage, 512)
            xs = np.arange(512)
            mean = (xs * pmf).sum()
            var = ((xs - mean) ** 2 * pmf).sum()
            assert mean == pytest.approx(float(m.stage_mean(stage)), rel=1e-4)
            assert var == pytest.approx(float(m.stage_variance(stage)), rel=1e-3)

    def test_unsupported_scenarios_rejected(self):
        with pytest.raises(ModelError):
            stage_pmf(LaterStageModel(k=2, p=Fraction(1, 8), m=4), 2, 64)
        with pytest.raises(ModelError):
            stage_pmf(LaterStageModel(k=2, p=Fraction(1, 2), q=Fraction(1, 2)), 2, 64)


class TestConvolutionModel:
    def test_moments_match_section_v_mean(self):
        m = model()
        conv = ConvolutionTotalModel(stages=6, model=m)
        net = NetworkDelayModel(stages=6, model=m)
        assert conv.mean() == pytest.approx(float(net.total_waiting_mean()), rel=1e-4)
        # variance: independence -> matches the 'independent' method
        assert conv.variance() == pytest.approx(
            float(net.total_waiting_variance("independent")), rel=1e-3
        )

    def test_pmf_normalised(self):
        conv = ConvolutionTotalModel(stages=3, model=model())
        assert conv.pmf.sum() == pytest.approx(1.0)
        assert (conv.pmf >= 0).all()

    def test_tail_monotone(self):
        conv = ConvolutionTotalModel(stages=3, model=model())
        tails = [conv.tail(x) for x in range(10)]
        assert all(a >= b for a, b in zip(tails, tails[1:], strict=False))
        assert conv.tail(-1) == 1.0
        assert conv.tail(10 ** 6) == 0.0

    def test_single_stage_equals_first_stage(self):
        m = model()
        conv = ConvolutionTotalModel(stages=1, model=m)
        exact = m.first_stage.waiting_pmf(conv.pmf.size)
        assert np.abs(conv.pmf - exact).max() < 1e-9

    def test_validation(self):
        with pytest.raises(ModelError):
            ConvolutionTotalModel(stages=0, model=model())

    def test_tv_helper(self):
        conv = ConvolutionTotalModel(stages=2, model=model())
        assert conv.total_variation_to(conv.pmf) == pytest.approx(0.0, abs=1e-12)
        assert conv.total_variation_to(np.array([1.0])) > 0.3


class TestAgainstGamma:
    def test_convolution_beats_gamma_for_short_networks(self):
        """Distribution-level comparison against simulation: at 3 stages
        the discrete convolution (exact atom at zero, exact stage-1
        skew) should out-approximate the 2-parameter gamma."""
        from repro.simulation.network import NetworkConfig, NetworkSimulator

        m = model()
        stages = 3
        cfg = NetworkConfig(
            k=2, n_stages=stages, p=0.5, topology="random", width=128, seed=88
        )
        sim = NetworkSimulator(cfg).run(15_000)
        totals = sim.total_waits().astype(np.int64)
        hist = np.bincount(totals) / totals.size

        conv = ConvolutionTotalModel(stages=stages, model=m)
        tv_conv = conv.total_variation_to(hist)

        net = NetworkDelayModel(stages=stages, model=m)
        gamma_bins = net.gamma_approximation().integer_bin_probabilities(len(hist))
        tv_gamma = 0.5 * np.abs(gamma_bins - hist).sum()

        assert tv_conv < tv_gamma
        # residual TV is the neglected inter-stage correlation (the
        # independence conjecture's price), a few percent at rho = 1/2
        assert tv_conv < 0.06

"""Exact MMBP/D/1 analysis tests (the [12] direction, done numerically)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.arrivals.markov import MarkovModulatedTraffic
from repro.core.markov_queue import MMBPQueueAnalysis
from repro.errors import AnalysisError, UnstableQueueError
from repro.service import DeterministicService
from repro.simulation.queue_sim import simulate_first_stage_queue


def source(flip, lo=Fraction(1, 10), hi=Fraction(2, 5), k=2):
    return MarkovModulatedTraffic(k=k, rates=(lo, hi), flip=flip)


class TestConsistency:
    def test_uncorrelated_matches_theorem1(self):
        """flip = 1/2: the chain forgets its phase each cycle, so the
        exact analysis must reproduce the i.i.d. Theorem 1 value."""
        a = MMBPQueueAnalysis(source(Fraction(1, 2)), max_level=256)
        assert a.waiting_mean() == pytest.approx(a.iid_waiting_mean(), rel=1e-9)
        assert a.burstiness_penalty() == pytest.approx(1.0, rel=1e-9)

    def test_stationary_distribution_normalised(self):
        a = MMBPQueueAnalysis(source(Fraction(1, 10)), max_level=256)
        assert a.level_distribution.sum() == pytest.approx(1.0, abs=1e-12)
        assert (a.level_distribution >= 0).all()
        # symmetric chain: phases equally likely
        assert a._pi.sum(axis=0) == pytest.approx([0.5, 0.5], abs=1e-9)

    def test_truncation_insensitive(self):
        lo = MMBPQueueAnalysis(source(Fraction(1, 20)), max_level=128)
        hi = MMBPQueueAnalysis(source(Fraction(1, 20)), max_level=1024)
        assert lo.waiting_mean() == pytest.approx(hi.waiting_mean(), rel=1e-8)


class TestAgainstSimulation:
    @pytest.mark.parametrize("flip", [Fraction(1, 5), Fraction(1, 25)])
    def test_mean_waiting(self, flip):
        traffic = source(flip)
        a = MMBPQueueAnalysis(traffic, max_level=512)
        sim = simulate_first_stage_queue(
            traffic, DeterministicService(1), 600_000,
            rng=np.random.default_rng(int(1 / flip)),
        )
        assert sim.mean() == pytest.approx(a.waiting_mean(), rel=0.05)


class TestBurstinessStructure:
    def test_penalty_grows_with_burst_length(self):
        penalties = [
            MMBPQueueAnalysis(source(Fraction(1, b)), max_level=512).burstiness_penalty()
            for b in (2, 10, 50)
        ]
        assert penalties[0] == pytest.approx(1.0, rel=1e-9)
        assert penalties[0] < penalties[1] < penalties[2]

    def test_equal_rates_have_no_penalty(self):
        """No modulation contrast => the phase is irrelevant."""
        a = MMBPQueueAnalysis(
            source(Fraction(1, 50), lo=Fraction(1, 4), hi=Fraction(1, 4)),
            max_level=256,
        )
        assert a.burstiness_penalty() == pytest.approx(1.0, rel=1e-9)

    def test_queue_mean_grows_with_bursts(self):
        q = [
            MMBPQueueAnalysis(source(Fraction(1, b)), max_level=512).queue_mean()
            for b in (2, 20)
        ]
        assert q[1] > q[0]


class TestValidation:
    def test_saturation_rejected(self):
        t = MarkovModulatedTraffic(
            k=2, rates=(Fraction(1, 2), Fraction(1, 2)), flip=Fraction(1, 10)
        )
        with pytest.raises(UnstableQueueError):
            MMBPQueueAnalysis(t)

    def test_truncation_guard(self):
        """Near saturation a tiny cap must be refused, not silently wrong."""
        t = source(Fraction(1, 100), lo=Fraction(2, 5), hi=Fraction(19, 40))
        with pytest.raises(AnalysisError):
            MMBPQueueAnalysis(t, max_level=16)

    def test_max_level_floor(self):
        with pytest.raises(AnalysisError):
            MMBPQueueAnalysis(source(Fraction(1, 2)), max_level=4)

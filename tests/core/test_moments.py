"""Closed-form moment helpers (paper Eqs. 2/3) in isolation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import moments as mom
from repro.errors import UnstableQueueError


class TestStability:
    def test_rho_returned(self):
        assert mom.check_stability(Fraction(1, 4), 2) == Fraction(1, 2)

    def test_saturation_rejected(self):
        with pytest.raises(UnstableQueueError):
            mom.check_stability(Fraction(1, 2), 2)
        with pytest.raises(UnstableQueueError):
            mom.check_stability(Fraction(3, 4), 2)

    def test_negative_rate_rejected(self):
        with pytest.raises(UnstableQueueError):
            mom.check_stability(-1, Fraction(1, 4))


class TestEquationTwo:
    def test_mm1_like_special_case(self):
        """Poisson-ish moments: r2 = lam^2 gives the discrete P-K shape
        E w = lam E[S(S-1)+S] / (2(1-rho)) = lam E[S^2] / (2(1-rho))."""
        lam, m, u2 = Fraction(1, 4), 2, 2
        r2 = lam * lam
        second_moment = u2 + m  # E[S^2] = E[S(S-1)] + E[S]
        expected = lam * second_moment / (2 * (1 - lam * m))
        assert mom.waiting_time_mean(lam, m, r2, u2) == expected

    def test_zero_arrivals(self):
        assert mom.waiting_time_mean(0, 1, 0, 0) == 0
        assert mom.waiting_time_variance(0, 1, 0, 0, 0, 0) == 0

    def test_decomposition_identity(self):
        """Eq. (2) == E s + E w' algebraically (the derivation check)."""
        lam, m, r2, u2 = Fraction(2, 5), 2, Fraction(3, 25), Fraction(1, 2)
        total = mom.waiting_time_mean(lam, m, r2, u2)
        parts = mom.unfinished_work_mean(lam, m, r2, u2) + mom.predecessor_delay_mean(
            lam, m, r2
        )
        assert total == parts


class TestQueueMomentsBundle:
    def test_bundle_consistent(self):
        b = mom.queue_moments(Fraction(1, 4), 2, Fraction(1, 16), Fraction(1, 64), 2, 0)
        assert b.mean == b.work_mean + b.predecessor_mean
        assert b.variance == b.work_variance + b.predecessor_variance
        assert b.traffic_intensity == Fraction(1, 2)

    def test_zero_load_bundle(self):
        b = mom.queue_moments(0, 3, 0, 0, 6, 6)
        assert b.mean == 0 and b.variance == 0


class TestPropertyBased:
    @given(
        lam_num=st.integers(min_value=1, max_value=9),
        m=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_variance_nonnegative_for_binomialish_traffic(self, lam_num, m):
        lam = Fraction(lam_num, 10 * m)
        if lam * m >= 1:
            return
        # binomial k=2 moments
        r2 = lam * lam / 2
        r3 = Fraction(0)
        u2 = m * (m - 1)
        u3 = m * (m - 1) * (m - 2)
        assert mom.waiting_time_variance(lam, m, r2, r3, u2, u3) >= 0

    @given(lam_num=st.integers(min_value=1, max_value=9))
    @settings(max_examples=20, deadline=None)
    def test_mean_blows_up_near_saturation(self, lam_num):
        """E w ~ 1/(1-rho): doubling (1 - rho) halves-ish the wait."""
        lam = Fraction(lam_num, 10)
        r2 = lam * lam / 2
        near = mom.waiting_time_mean(Fraction(99, 100), 1, Fraction(9801, 20000), 0)
        far = mom.waiting_time_mean(lam, 1, r2, 0)
        assert near > far

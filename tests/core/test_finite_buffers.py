"""Finite-buffer approximation tests (the Section VI future-work item)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.arrivals import UniformTraffic
from repro.core.finite_buffers import (
    overflow_probability,
    suggested_capacity,
    work_tail,
)
from repro.core.first_stage import FirstStageQueue
from repro.errors import AnalysisError
from repro.service import DeterministicService
from repro.simulation.network import NetworkConfig, NetworkSimulator


def queue(p=Fraction(1, 2), m=1, k=2):
    return FirstStageQueue(UniformTraffic(k=k, p=p), DeterministicService(m))


class TestWorkTail:
    def test_tail_monotone_decreasing(self):
        t = work_tail(queue())
        usable = t.tail[t.tail > 1e-12]
        assert (np.diff(usable) <= 1e-15).all()

    def test_decay_matches_theory_k2_half_load(self):
        """k=2, p=1/2 unit service: the work tail decays by 1/9 per unit
        (dominant root of R(z) - z ... = 9)."""
        t = work_tail(queue())
        assert t.decay == pytest.approx(1 / 9, rel=1e-3)

    def test_extrapolation_continuous(self):
        t = work_tail(queue(), n_terms=64)
        inside = t.probability(30)
        outside = t.probability(80)
        assert outside < inside
        # extrapolated values follow the geometric law
        assert t.probability(81) == pytest.approx(t.probability(80) * t.decay, rel=1e-9)

    def test_zero_load(self):
        t = work_tail(queue(p=0))
        assert t.probability(0) == 0.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            work_tail(queue(), n_terms=4)
        with pytest.raises(AnalysisError):
            overflow_probability(queue(), -1)


class TestCapacitySizing:
    def test_capacity_meets_target(self):
        q = queue(p=Fraction(4, 5))
        for target in (1e-3, 1e-6, 1e-9):
            cap = suggested_capacity(q, target)
            assert overflow_probability(q, cap) <= target
            if cap > 0:
                assert overflow_probability(q, cap - 1) > target

    def test_capacity_grows_with_load(self):
        caps = [
            suggested_capacity(queue(p=Fraction(p, 10)), 1e-6) for p in (3, 5, 8, 9)
        ]
        assert all(a <= b for a, b in zip(caps, caps[1:], strict=False))
        assert caps[-1] > caps[0]

    def test_deep_target_uses_extrapolation(self):
        q = queue(p=Fraction(1, 2))
        t = work_tail(q, n_terms=32)
        cap = suggested_capacity(q, 1e-30, n_terms=32)
        assert cap > t.anchor  # beyond the trusted prefix
        assert overflow_probability(q, cap, n_terms=32) <= 1e-30
        # and the sizing is tight: one unit less would miss the target
        assert t.probability(cap - 1) > 1e-30

    def test_target_validation(self):
        with pytest.raises(AnalysisError):
            suggested_capacity(queue(), 0.0)
        with pytest.raises(AnalysisError):
            suggested_capacity(queue(), 1.0)


class TestAgainstSimulation:
    def test_predicted_loss_tracks_simulated_drops(self):
        """Order-of-magnitude agreement of the tail approximation with
        actual finite-buffer drop rates at moderate load."""
        p, cap = 0.7, 6
        q = queue(p=Fraction(7, 10))
        predicted = overflow_probability(q, cap)
        cfg = NetworkConfig(
            k=2, n_stages=2, p=p, buffer_capacity=cap,
            topology="random", width=128, seed=77,
        )
        sim = NetworkSimulator(cfg).run(20_000, warmup=2_000)
        observed = sim.dropped / sim.injected
        assert observed > 0
        # tail heuristic: right order of magnitude
        assert predicted / 10 < observed < predicted * 10

    def test_safe_capacity_produces_no_drops(self):
        """Size for 1e-10 loss, plus k-1 slack because the engine
        enqueues a cycle's arrivals before serving (transient occupancy
        can exceed the end-of-cycle work by the batch size)."""
        q = queue(p=Fraction(1, 2))
        cap = suggested_capacity(q, 1e-10) + 1
        cfg = NetworkConfig(
            k=2, n_stages=2, p=0.5, buffer_capacity=cap,
            topology="random", width=128, seed=78,
        )
        sim = NetworkSimulator(cfg).run(10_000, warmup=1_000)
        assert sim.dropped == 0

"""Section V totals: sums, covariance chain, gamma approximation."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.later_stages import LaterStageModel
from repro.core.total_delay import (
    NetworkDelayModel,
    covariance_chain_constants,
    covariance_matrix,
)
from repro.errors import ModelError


def model(p=Fraction(1, 2), m=1, k=2):
    return LaterStageModel(k=k, p=p, m=m)


class TestChainConstants:
    def test_paper_table_vi_values(self):
        """k=2, rho=1/2, m=1: a = 0.12 and ab = 0.048 -- exactly the
        correlations Table VI reports at lags 1 and 2."""
        a, b = covariance_chain_constants(2, Fraction(1, 2))
        assert a == Fraction(12, 100)
        assert a * b == Fraction(48, 1000)

    def test_decay_with_k(self):
        a2, b2 = covariance_chain_constants(2, Fraction(1, 2))
        a8, b8 = covariance_chain_constants(8, Fraction(1, 2))
        assert a8 < a2 and b8 < b2

    def test_matrix_shape(self):
        m = covariance_matrix([1.0, 2.0, 4.0], 0.1, 0.5)
        assert m.shape == (3, 3)
        assert m[0, 0] == 1.0
        assert m[0, 1] == pytest.approx(0.1)
        assert m[0, 2] == pytest.approx(0.05)
        assert np.allclose(m, m.T)


class TestTotals:
    def test_mean_is_sum_of_stages(self):
        net = NetworkDelayModel(stages=6, model=model())
        assert net.total_waiting_mean() == sum(net.stage_means())

    def test_covariance_exceeds_independent(self):
        net = NetworkDelayModel(stages=6, model=model())
        assert net.total_waiting_variance("covariance") > net.total_waiting_variance(
            "independent"
        )

    def test_single_stage_no_chain(self):
        net = NetworkDelayModel(stages=1, model=model())
        assert net.total_waiting_variance("covariance") == net.total_waiting_variance(
            "independent"
        )
        assert net.total_waiting_mean() == model().stage_mean(1)

    def test_unknown_method_rejected(self):
        net = NetworkDelayModel(stages=2, model=model())
        with pytest.raises(ModelError):
            net.total_waiting_variance("bogus")

    def test_stage_count_validation(self):
        with pytest.raises(ModelError):
            NetworkDelayModel(stages=0, model=model())


class TestServiceAndDelay:
    def test_cut_through_service(self):
        """n + m - 1 for consecutive-packet transmission (Section V)."""
        net = NetworkDelayModel(stages=6, model=model(p=Fraction(1, 8), m=4))
        assert net.total_service_time(cut_through=True) == 9
        assert net.total_service_time(cut_through=False) == 24

    def test_delay_mean_adds_service(self):
        net = NetworkDelayModel(stages=6, model=model())
        assert net.total_delay_mean() == net.total_waiting_mean() + 6

    def test_constant_size_delay_variance_is_waiting_variance(self):
        """'If the service times are constant ... the variance of the
        total delay is exactly the variance of the total waiting time.'"""
        net = NetworkDelayModel(stages=4, model=model(p=Fraction(1, 8), m=4))
        assert net.total_delay_variance() == net.total_waiting_variance()

    def test_multisize_delay_variance_adds_service_terms(self):
        m = LaterStageModel(
            k=2, p=Fraction(1, 16), sizes=[4, 8], probabilities=[Fraction(1, 2), Fraction(1, 2)]
        )
        net = NetworkDelayModel(stages=4, model=m)
        assert net.total_delay_variance() == net.total_waiting_variance() + 4 * 4


class TestApproximants:
    def test_gamma_moments_match(self):
        net = NetworkDelayModel(stages=6, model=model())
        g = net.gamma_approximation()
        assert g.mean == pytest.approx(float(net.total_waiting_mean()))
        assert g.variance == pytest.approx(float(net.total_waiting_variance()))

    def test_normal_moments_match(self):
        net = NetworkDelayModel(stages=12, model=model())
        n = net.normal_approximation()
        assert n.mean == pytest.approx(float(net.total_waiting_mean()))

    def test_gamma_integer_bins_sum_to_near_one(self):
        net = NetworkDelayModel(stages=6, model=model())
        bins = net.gamma_approximation().integer_bin_probabilities(200)
        assert bins.sum() == pytest.approx(1.0, abs=1e-6)


class TestDelayQuantiles:
    def test_quantile_shifted_by_service(self):
        net = NetworkDelayModel(stages=6, model=model(p=Fraction(1, 8), m=4))
        w99 = net.gamma_approximation().quantile(0.99)
        assert net.delay_quantile(0.99) == pytest.approx(w99 + 9)  # n + m - 1
        assert net.delay_quantile(0.99, cut_through=False) == pytest.approx(w99 + 24)

    def test_tail_complements(self):
        net = NetworkDelayModel(stages=6, model=model())
        x = net.delay_quantile(0.9)
        assert net.delay_tail(x) == pytest.approx(0.1, abs=1e-6)

    def test_tail_below_service_floor_is_one(self):
        net = NetworkDelayModel(stages=6, model=model())
        assert net.delay_tail(0.0) == pytest.approx(1.0)


class TestScalingLaws:
    def test_mean_scales_linearly_in_stages(self):
        """Deep networks: total mean ~ n * w_inf."""
        m = model()
        n12 = NetworkDelayModel(stages=12, model=m).total_waiting_mean()
        n24 = NetworkDelayModel(stages=24, model=m).total_waiting_mean()
        per_stage_tail = (n24 - n12) / 12
        assert per_stage_tail == pytest.approx(float(m.limit_mean()), rel=1e-6)

    def test_message_size_headline(self):
        """Section VI: at fixed rho, total waiting mean grows ~linearly
        and variance ~quadratically in m."""
        rho = Fraction(1, 2)
        means, variances = [], []
        for m_size in (2, 4, 8):
            mod = LaterStageModel(k=2, p=rho / m_size, m=m_size)
            net = NetworkDelayModel(stages=6, model=mod)
            means.append(float(net.total_waiting_mean()))
            variances.append(float(net.total_waiting_variance()))
        assert means[1] / means[0] == pytest.approx(2.0, rel=0.15)
        assert variances[1] / variances[0] == pytest.approx(4.0, rel=0.2)
        assert variances[2] / variances[1] == pytest.approx(4.0, rel=0.2)

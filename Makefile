# Convenience targets for development.

PYTHON ?= python
WORKERS ?= 4
CACHE ?= .repro-cache

.PHONY: install test bench bench-full scale-bench coverage tables tables-parallel sweeps-fast figures report db-report serve calibrate clean lint lint-sarif lint-waivers test-sanitized typecheck

PORT ?= 8765

DB ?= experiments.sqlite

install:
	$(PYTHON) -m pip install -e .[test]

# Domain invariants (determinism, digest hygiene, RNG discipline,
# numeric safety); pure stdlib -- see docs/static-analysis.md.
lint:
	$(PYTHON) -m repro lint src/repro

# The same run as a SARIF 2.1.0 log (what CI uploads as an artifact).
lint-sarif:
	$(PYTHON) -m repro lint src/repro --format sarif > lint.sarif

# Inventory of active `repro: lint-ok` waivers and their expiry dates.
lint-waivers:
	$(PYTHON) -m repro lint src/repro --list-waivers

# The simulation suite with the runtime sanitizer armed (every cycle
# invariant-checked; see docs/static-analysis.md, "Runtime sanitizer").
test-sanitized:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest tests/simulation -q

# Strict typing gate (requires mypy; pinned and enforced in CI).
typecheck:
	$(PYTHON) -m mypy src/repro

test:
	$(PYTHON) -m pytest tests/

test-fast:
	REPRO_SIM_CYCLES=3000 $(PYTHON) -m pytest tests/ -x -q

bench:
	REPRO_BENCH_CYCLES=5000 $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_CYCLES=30000 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# The million-replica scale benchmark alone: peak-RSS bound at R=1e5
# plus the sharded >= 2x speedup (CPU-gated); emits BENCH_scale.json
# (see docs/scaling.md).
scale-bench:
	REPRO_BENCH_CYCLES=3000 $(PYTHON) -m pytest benchmarks/test_perf_scale.py --benchmark-only

tables:
	for t in I II III IV V VI VII VIII IX X XI XII; do \
		$(PYTHON) -m repro table $$t; echo; \
	done

# All twelve tables through the repro.exec process pool + result cache
# (bit-identical to `make tables`; repeats are served from $(CACHE)).
tables-parallel:
	for t in I II III IV V VI VII VIII IX X XI XII; do \
		$(PYTHON) -m repro table $$t --workers $(WORKERS) --cache $(CACHE); echo; \
	done

# The load sweep with scenario stacking: every load point rides one
# fused engine run (see docs/execution.md, "Parameter stacking").
sweeps-fast:
	$(PYTHON) -m repro sweep load --cycles 8000 --vectorize-replicas

figures:
	for f in 3 4 5 6 7 8; do \
		for s in 3 6 9 12; do \
			$(PYTHON) -m repro figure $$f --stages $$s; echo; \
		done; \
	done

report:
	$(PYTHON) -m repro report --cycles 20000 > EXPERIMENTS.md

# Ledger-backed reports: run the smoke batch into $(DB), evaluate the
# paper's machine-checkable targets, and render both markdown reports
# (see docs/experiments-db.md).
db-report:
	$(PYTHON) -m repro batch --cycles 2000 --no-cache --db $(DB)
	$(PYTHON) -m repro db --path $(DB) expectations --report SCORECARD.md
	$(PYTHON) -m repro db --path $(DB) perf --report PERF_TRAJECTORY.md

# The simulation service: HTTP submissions, SSE progress, digest-keyed
# dedup onto $(CACHE) (see docs/api-service.md).  Ctrl-C to stop;
# `python -m repro submit --wait` talks to it.
serve:
	$(PYTHON) -m repro serve --port $(PORT) --cache $(CACHE)

calibrate:
	$(PYTHON) -m repro calibrate

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache build dist *.egg-info src/*.egg-info

"""Bulk (batch) arrivals (paper Section III-A-2).

"In many systems, the size of a message exceeds the size of a
transmission packet; a message is transmitted in several packets.  These
packets arrive at the first stage of the network in one bulk."

With probability ``p`` per cycle an input port receives a *bulk*; the
whole bulk is routed to one uniformly-chosen output port.  For a
constant bulk of ``b`` packets the tagged output port sees

.. math:: R(z) = \\left(1 - \\frac{p}{s} + \\frac{p}{s} z^b\\right)^k,

so ``lambda = kpb/s`` and (writing ``beta = kp/s`` for the bulk rate)

.. math::

    R''(1) &= \\beta\\,b(b-1) + \\beta^2 b^2 (1 - 1/k), \\\\

which reduces to Section III-A-1 when ``b = 1``.
:class:`RandomBulkTraffic` generalises to a random bulk-size
distribution ``B(z)``: ``R(z) = (1 - p/s + (p/s) B(z))^k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.errors import ModelError
from repro.series.pgf import PGF
from repro.series.polynomial import Polynomial, as_exact
from repro.series.rational import RationalFunction

__all__ = ["BulkUniformTraffic", "RandomBulkTraffic"]


@dataclass(frozen=True)
class BulkUniformTraffic(ArrivalProcess):
    """Constant-size bulks under uniform traffic.

    Parameters
    ----------
    k, p, s:
        As in :class:`~repro.arrivals.bernoulli.UniformTraffic`.
    b:
        Bulk size (packets per message batch), ``b >= 1``.
    """

    k: int
    p: Fraction
    b: int
    s: int | None = None

    def __post_init__(self) -> None:
        s = self.k if self.s is None else self.s
        object.__setattr__(self, "s", s)
        object.__setattr__(self, "p", as_exact(self.p))
        if self.k < 1 or s < 1:
            raise ModelError(f"switch dimensions must be positive, got {self.k}x{s}")
        if not 0 <= self.p <= 1:
            raise ModelError(f"input load p={self.p} outside [0, 1]")
        if self.b < 1:
            raise ModelError(f"bulk size must be >= 1, got {self.b}")

    def pgf(self) -> PGF:
        a = self.p / self.s
        # (1 - a + a z^b)^k
        base = Polynomial([1 - a, *([0] * (self.b - 1)), a])
        return PGF(RationalFunction(base ** self.k), validate=False)

    def sample_counts(self, rng: np.random.Generator, size: int) -> np.ndarray:
        bulks = rng.binomial(self.k, float(self.p / self.s), size=size)
        return bulks * self.b

    def __str__(self) -> str:
        return f"BulkUniformTraffic(k={self.k}, s={self.s}, p={self.p}, b={self.b})"


@dataclass(frozen=True)
class RandomBulkTraffic(ArrivalProcess):
    """Random bulk sizes under uniform traffic.

    Parameters
    ----------
    k, p, s:
        As in :class:`~repro.arrivals.bernoulli.UniformTraffic`.
    bulk:
        PGF of the bulk size (support must be finite and start at 1 --
        an "arrival" of zero packets is a non-event and should be folded
        into ``p`` instead).
    bulk_support_limit:
        Safety cap used when tabulating the bulk pmf for sampling.
    """

    k: int
    p: Fraction
    bulk: PGF
    s: int | None = None
    bulk_support_limit: int = 4096
    _bulk_pmf: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        s = self.k if self.s is None else self.s
        object.__setattr__(self, "s", s)
        object.__setattr__(self, "p", as_exact(self.p))
        if self.k < 1 or s < 1:
            raise ModelError(f"switch dimensions must be positive, got {self.k}x{s}")
        if not 0 <= self.p <= 1:
            raise ModelError(f"input load p={self.p} outside [0, 1]")
        pmf = np.asarray(self.bulk.pmf(self.bulk_support_limit), dtype=float)
        if pmf[0] > 1e-12:
            raise ModelError("bulk-size distribution must not put mass at 0")
        if abs(pmf.sum() - 1.0) > 1e-9:
            raise ModelError(
                "bulk-size distribution support exceeds bulk_support_limit "
                f"(captured mass {pmf.sum():.6f})"
            )
        object.__setattr__(self, "_bulk_pmf", pmf / pmf.sum())
        from repro.simulation.sampling import AliasSampler

        object.__setattr__(self, "_bulk_sampler", AliasSampler(self._bulk_pmf))

    def pgf(self) -> PGF:
        a = self.p / self.s
        # (1 - a + a B(z))^k  ==  thinned-count compound of the bulk PGF
        count = PGF.binomial(self.k, a)
        return self.bulk.compound(count)

    def sample_counts(self, rng: np.random.Generator, size: int) -> np.ndarray:
        n_bulks = rng.binomial(self.k, float(self.p / self.s), size=size)
        total_bulks = int(n_bulks.sum())
        if total_bulks == 0:
            return np.zeros(size, dtype=np.int64)
        sizes = self._bulk_sampler.sample_indices(rng, total_bulks)
        # scatter the per-bulk sizes back onto the cycles that drew them
        out = np.zeros(size, dtype=np.int64)
        cycle_of_bulk = np.repeat(np.arange(size), n_bulks)
        np.add.at(out, cycle_of_bulk, sizes)
        return out

    def __str__(self) -> str:
        return f"RandomBulkTraffic(k={self.k}, s={self.s}, p={self.p})"

"""Arrival-process models: everything the paper plugs in for ``R(z)``.

``R(z)`` is the probability generating function of the number of
*messages arriving in one clock cycle* at a tagged output port of a
first-stage ``k x s`` switch.  The paper's probabilistic assumption (1)
is that these per-cycle counts are i.i.d.; the subpackage provides the
standard cases of Section III plus fully general compound arrivals:

================================  =====================================
model                             paper section
================================  =====================================
:class:`UniformTraffic`           III-A-1 (uniform, single arrivals)
:class:`BulkUniformTraffic`       III-A-2 (constant batch size ``b``)
:class:`RandomBulkTraffic`        III-A-2 generalised (random batches)
:class:`FavoriteOutputTraffic`    III-A-3 (nonuniform, bias ``q``)
:class:`CustomArrivals`           Section II in full generality
:class:`MarkovModulatedTraffic`   beyond Section II: bursty arrivals
                                  (simulation-first; see its docs)
================================  =====================================

Every model exposes the same dual interface:

* the **exact** side -- :meth:`~ArrivalProcess.pgf` and factorial
  moments (``R'(1) = lambda``, ``R''(1)``, ``R'''(1)``) used by the
  analytic layer;
* the **sampling** side -- :meth:`~ArrivalProcess.sample_counts`, a
  vectorised NumPy generator of per-cycle counts used by the
  single-queue simulator to validate the analysis.

The two sides are tested against each other (sampled moments converge
to the exact ones), which is the library's guarantee that simulation
and analysis speak about the same traffic.
"""

from __future__ import annotations

from repro.arrivals.base import ArrivalProcess
from repro.arrivals.bernoulli import UniformTraffic
from repro.arrivals.bulk import BulkUniformTraffic, RandomBulkTraffic
from repro.arrivals.nonuniform import FavoriteOutputTraffic
from repro.arrivals.compound import CustomArrivals
from repro.arrivals.markov import MarkovModulatedTraffic

__all__ = [
    "ArrivalProcess",
    "UniformTraffic",
    "BulkUniformTraffic",
    "RandomBulkTraffic",
    "FavoriteOutputTraffic",
    "CustomArrivals",
    "MarkovModulatedTraffic",
]

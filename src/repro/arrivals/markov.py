"""Markov-modulated arrivals: where the Theorem 1 assumptions end.

The paper's later stages cannot be analysed exactly because "the inputs
at successive cycles are not independent" -- and its earlier companion
[12] tried (and abandoned) modelling a queue's output as a Markov
process.  This model makes that boundary *testable*: a two-state
Markov-modulated Bernoulli process (MMBP) with the same *marginal*
per-cycle distribution as a uniform-traffic port but positive burst
correlation.

Feeding it to the single-queue simulator and comparing against the
i.i.d. Theorem 1 prediction (which sees only the marginal) quantifies
how much waiting time the temporal correlation adds -- the effect the
Section IV inflation factors absorb empirically.

The model is *simulation-first*: :meth:`pgf` returns the stationary
marginal (what an i.i.d. analysis would assume), clearly documented as
such, so ``FirstStageQueue(MarkovModulatedTraffic(...), ...)`` computes
exactly the "wrong" i.i.d. prediction one wants to compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.errors import ModelError
from repro.series.pgf import PGF
from repro.series.polynomial import as_exact

__all__ = ["MarkovModulatedTraffic"]


@dataclass(frozen=True)
class MarkovModulatedTraffic(ArrivalProcess):
    """Two-state MMBP arrivals at one output port.

    In state ``i`` the per-cycle arrival count is Binomial(``k``,
    ``rates[i]``); the state flips with probability ``flip`` per cycle
    (symmetric chain, stationary distribution 1/2-1/2).  Small ``flip``
    means long bursts; ``flip = 1/2`` recovers i.i.d. sampling of the
    marginal.

    Parameters
    ----------
    k:
        Switch degree (inputs feeding the port).
    rates:
        Per-input hit probabilities ``(low, high)`` in the two states.
    flip:
        Per-cycle state-flip probability, in ``(0, 1]``.
    """

    k: int
    rates: tuple
    flip: Fraction

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ModelError(f"switch degree must be >= 1, got {self.k}")
        rates = tuple(as_exact(r) for r in self.rates)
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "flip", as_exact(self.flip))
        if len(rates) != 2:
            raise ModelError("exactly two modulation states are supported")
        if any(not 0 <= r <= 1 for r in rates):
            raise ModelError(f"state rates {rates} outside [0, 1]")
        if not 0 < self.flip <= 1:
            raise ModelError(f"flip probability {self.flip} outside (0, 1]")

    @property
    def burst_length(self) -> Fraction:
        """Mean sojourn in one state: ``1 / flip`` cycles."""
        return 1 / self.flip

    def pgf(self) -> PGF:
        """The *stationary marginal* count distribution.

        This is what an i.i.d. analysis sees; it deliberately ignores
        the temporal correlation (see module docstring).
        """
        lo = PGF.binomial(self.k, self.rates[0])
        hi = PGF.binomial(self.k, self.rates[1])
        return PGF.mixture([lo, hi], [Fraction(1, 2), Fraction(1, 2)])

    def sample_counts(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Correlated per-cycle counts along one modulated sample path."""
        flips = rng.random(size) < float(self.flip)
        # state path: start from stationarity, then XOR-accumulate flips
        start = rng.integers(0, 2)
        state = (start + np.cumsum(flips)) % 2
        rates = np.asarray([float(r) for r in self.rates])
        return rng.binomial(self.k, rates[state], size=size)

    def autocorrelation(self, lag: int) -> float:
        """Exact lag-``lag`` autocorrelation of the count process.

        For the symmetric chain the modulating correlation is
        ``(1 - 2 flip)^lag``; scaled by the between/within variance
        split of the binomial mixture.
        """
        if lag < 0:
            raise ModelError(f"lag must be >= 0, got {lag}")
        if lag == 0:
            return 1.0
        lo, hi = (float(r) for r in self.rates)
        k = self.k
        between = (k * (hi - lo) / 2) ** 2
        within = k * (lo * (1 - lo) + hi * (1 - hi)) / 2
        total = between + within
        if total == 0:
            return 0.0
        return (1 - 2 * float(self.flip)) ** lag * between / total

    def __str__(self) -> str:
        return (
            f"MarkovModulatedTraffic(k={self.k}, rates={self.rates}, "
            f"flip={self.flip})"
        )

"""Nonuniform "favourite output" traffic (paper Section III-A-3).

"In many practical situations, each input is likely to have a distinct
favorite output port (e.g., the output port connecting a processor to
its private memory)."

Model (``k = s``; the paper notes the generalisation is routine but
lengthy): each input port sends an arriving bulk to its favourite output
with probability ``q`` and with probability ``(1-q)/k`` to each output
port *including* its favourite.  Favourites form a perfect matching, so
each output port is the favourite of exactly one input.  Since an input
contributes at most one bulk per cycle, the tagged port's arrival count
is a sum of ``k`` *independent-across-inputs but per-input exclusive*
Bernoulli bulks:

* from each of the ``k - 1`` unmatched inputs, a bulk with probability
  ``a = p(1-q)/k``;
* from the matched input, a bulk with probability
  ``f = p(q + (1-q)/k)``;

.. math::

   R(z) = \\bigl(1 + f(z^b-1)\\bigr)
          \\Bigl(1 + a(z^b - 1)\\Bigr)^{k-1}.

(The favoured and uniform routes of one input are mutually exclusive
events of the same message, so they must *not* be modelled as
independent factors -- the distinction is invisible in the mean but not
in ``R''(1)``.)  Note ``lambda = pb`` independently of ``q``: bias
moves traffic around but conserves it.  For ``q = 1`` every queue is
fed by a single input and (with unit bulks) the waiting time vanishes;
for ``q = 0`` the model reduces to Section III-A-2 with ``k = s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.errors import ModelError
from repro.series.pgf import PGF
from repro.series.polynomial import Polynomial, as_exact
from repro.series.rational import RationalFunction

__all__ = ["FavoriteOutputTraffic"]


@dataclass(frozen=True)
class FavoriteOutputTraffic(ArrivalProcess):
    """Favourite-output biased traffic at one output port (``k = s``).

    Parameters
    ----------
    k:
        Switch degree (inputs = outputs).
    p:
        Probability an input receives a bulk per cycle.
    q:
        Bias: probability a bulk is sent to the input's favourite port.
    b:
        Bulk size (default 1).
    """

    k: int
    p: Fraction
    q: Fraction
    b: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "p", as_exact(self.p))
        object.__setattr__(self, "q", as_exact(self.q))
        if self.k < 1:
            raise ModelError(f"switch degree must be positive, got {self.k}")
        if not 0 <= self.p <= 1:
            raise ModelError(f"input load p={self.p} outside [0, 1]")
        if not 0 <= self.q <= 1:
            raise ModelError(f"bias q={self.q} outside [0, 1]")
        if self.b < 1:
            raise ModelError(f"bulk size must be >= 1, got {self.b}")

    @property
    def normal_hit_probability(self) -> Fraction:
        """Probability an *unmatched* input's bulk hits the tagged port."""
        return self.p * (1 - self.q) / self.k

    @property
    def favored_hit_probability(self) -> Fraction:
        """Probability the *matched* input's bulk hits the tagged port.

        Its message arrives with probability ``p`` and lands here either
        as a favourite (``q``) or by the uniform route (``(1-q)/k``).
        """
        return self.p * (self.q + (1 - self.q) / self.k)

    def pgf(self) -> PGF:
        a = self.normal_hit_probability
        f = self.favored_hit_probability
        normal = Polynomial([1 - a, *([0] * (self.b - 1)), a]) ** (self.k - 1)
        favored = Polynomial([1 - f, *([0] * (self.b - 1)), f])
        return PGF(RationalFunction(normal * favored), validate=False)

    def sample_counts(self, rng: np.random.Generator, size: int) -> np.ndarray:
        normal = rng.binomial(self.k - 1, float(self.normal_hit_probability), size=size)
        favored = rng.random(size) < float(self.favored_hit_probability)
        return (normal + favored) * self.b

    def __str__(self) -> str:
        return (
            f"FavoriteOutputTraffic(k={self.k}, p={self.p}, q={self.q}, b={self.b})"
        )

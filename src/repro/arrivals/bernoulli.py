"""Uniform traffic with single arrivals (paper Section III-A-1).

Each of the ``k`` input ports of a first-stage switch receives a message
with probability ``p`` per cycle, and each message is routed uniformly at
random to one of the ``s`` output ports.  The tagged output port then
sees a Binomial(``k``, ``p/s``) number of arrivals per cycle:

.. math:: R(z) = \\left(1 - \\frac{p}{s} + \\frac{p}{s} z\\right)^k,

with the factorial moments the paper uses throughout:

.. math::

    R'(1) &= \\lambda = \\frac{kp}{s}, \\\\
    R''(1) &= \\lambda^2 (1 - 1/k), \\\\
    R'''(1) &= \\lambda^3 (1 - 1/k)(1 - 2/k).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.errors import ModelError
from repro.series.pgf import PGF
from repro.series.polynomial import as_exact

__all__ = ["UniformTraffic"]


@dataclass(frozen=True)
class UniformTraffic(ArrivalProcess):
    """Binomial arrivals at one output port of a ``k x s`` switch.

    Parameters
    ----------
    k:
        Number of switch input ports.
    p:
        Probability that an input port receives a message in a cycle.
    s:
        Number of switch output ports (defaults to ``k``).
    """

    k: int
    p: Fraction
    s: int | None = None

    def __post_init__(self) -> None:
        s = self.k if self.s is None else self.s
        object.__setattr__(self, "s", s)
        object.__setattr__(self, "p", as_exact(self.p))
        if self.k < 1 or s < 1:
            raise ModelError(f"switch dimensions must be positive, got {self.k}x{s}")
        if not 0 <= self.p <= 1:
            raise ModelError(f"input load p={self.p} outside [0, 1]")

    @property
    def per_port_probability(self) -> Fraction:
        """Probability ``p/s`` that a given input sends to the tagged output."""
        return self.p / self.s

    def pgf(self) -> PGF:
        return PGF.binomial(self.k, self.per_port_probability)

    def sample_counts(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.binomial(self.k, float(self.per_port_probability), size=size)

    def __str__(self) -> str:
        return f"UniformTraffic(k={self.k}, s={self.s}, p={self.p})"

"""Abstract interface shared by every arrival-process model."""

from __future__ import annotations

import abc
from fractions import Fraction

import numpy as np

from repro.series.pgf import PGF

__all__ = ["ArrivalProcess"]


class ArrivalProcess(abc.ABC):
    """Number of messages arriving per clock cycle at one output port.

    Subclasses must provide the exact generating function
    (:meth:`pgf`) and a vectorised sampler (:meth:`sample_counts`); the
    moment helpers (:attr:`rate`, :meth:`factorial_moment`) are derived
    from the PGF and cached, since the PGF itself is immutable.
    """

    @abc.abstractmethod
    def pgf(self) -> PGF:
        """The exact PGF ``R(z)`` of the per-cycle arrival count."""

    @abc.abstractmethod
    def sample_counts(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` i.i.d. per-cycle arrival counts (int array)."""

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def rate(self) -> Fraction:
        """The mean arrival rate ``lambda = R'(1)`` (messages per cycle)."""
        return self._cached_pgf().mean()

    def factorial_moment(self, order: int):
        """``R^{(order)}(1)``, the paper's ``R''(1)``, ``R'''(1)``, ..."""
        return self._cached_pgf().factorial_moment(order)

    def variance(self):
        """Variance of the per-cycle arrival count."""
        return self._cached_pgf().variance()

    def _cached_pgf(self) -> PGF:
        cached = getattr(self, "_pgf_cache", None)
        if cached is None:
            cached = self.pgf()
            # object.__setattr__ so frozen dataclass subclasses can cache too
            object.__setattr__(self, "_pgf_cache", cached)
        return cached

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def empirical_pgf_check(
        self,
        rng: np.random.Generator,
        n_samples: int = 200_000,
        max_count: int = 32,
    ) -> float:
        """Max absolute deviation between sampled and exact pmf prefix.

        A self-test hook: returns ``max_j |phat_j - p_j|`` over
        ``j < max_count``.  Used by the test-suite to certify that the
        sampler and the transform describe the same process.
        """
        counts = self.sample_counts(rng, n_samples)
        hist = np.bincount(counts, minlength=max_count)[:max_count] / n_samples
        exact = np.asarray(self._cached_pgf().pmf(max_count), dtype=float)
        return float(np.abs(hist - exact).max())

"""Fully general per-cycle arrival counts (paper Section II).

The analysis of Theorem 1 only needs the per-cycle arrival counts to be
i.i.d. with *some* PGF ``R(z)``; :class:`CustomArrivals` lets a user
supply that distribution directly, either as a finite pmf or as an
arbitrary (rational) :class:`~repro.series.pgf.PGF`.  This is the
extension hook for traffic not covered by the named models -- e.g.
measured arrival histograms from a trace, or correlated-source
approximations collapsed to a per-cycle marginal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.errors import ModelError
from repro.series.pgf import PGF

__all__ = ["CustomArrivals"]


@dataclass(frozen=True)
class CustomArrivals(ArrivalProcess):
    """Arrivals with an explicitly given per-cycle count distribution.

    Parameters
    ----------
    distribution:
        Either a finite pmf sequence (``distribution[j] = P(j arrivals)``)
        or a :class:`~repro.series.pgf.PGF`.
    support_limit:
        Cap used to tabulate the pmf for the sampler when a rational
        PGF with unbounded support is supplied.
    """

    distribution: object
    support_limit: int = 4096
    _pgf: PGF = field(init=False, repr=False, compare=False, default=None)
    _pmf: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        dist = self.distribution
        if isinstance(dist, PGF):
            g = dist
        elif isinstance(dist, Sequence) or isinstance(dist, np.ndarray):
            g = PGF.from_pmf(list(dist))
        else:
            raise ModelError(
                "distribution must be a pmf sequence or a PGF, got "
                f"{type(dist).__name__}"
            )
        pmf = np.asarray(g.pmf(self.support_limit), dtype=float)
        if abs(pmf.sum() - 1.0) > 1e-9:
            raise ModelError(
                f"arrival distribution support exceeds support_limit="
                f"{self.support_limit} (captured mass {pmf.sum():.6f})"
            )
        object.__setattr__(self, "_pgf", g)
        object.__setattr__(self, "_pmf", pmf / pmf.sum())
        from repro.simulation.sampling import AliasSampler

        object.__setattr__(self, "_sampler", AliasSampler(self._pmf))

    def pgf(self) -> PGF:
        return self._pgf

    def sample_counts(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self._sampler.sample_indices(rng, size)

    def __str__(self) -> str:
        return f"CustomArrivals(mean={float(self.rate):.4g})"

"""The versioned on-disk scenario library (``scenarios/*.yaml``).

Named scenario sets used by ``python -m repro batch``, the simulation
service (:mod:`repro.api`), and CI live as YAML documents under the
repository-level ``scenarios/`` directory (override with the
``REPRO_SCENARIOS_DIR`` environment variable).  Each file is one set::

    version: 1
    name: smoke
    description: CI workhorse -- eight small, diverse scenarios.
    defaults:
      n_cycles: 2000
    scenarios:
      - label: load-p0.2
        digest: 3f9a...        # optional pin, checked at load time
        config:
          k: 2
          n_stages: 3
          p: 0.2
          topology: random
          width: 32
          seed: 41

The loader (:func:`parse_strict_yaml`) accepts a deliberately *strict
subset* of YAML -- block mappings, block lists, and plain scalars
(int / float / bool / null / quoted or bare strings), two-space
indentation, ``#`` comments -- and nothing else: no anchors, no flow
collections, no multi-line strings, no implicit type surprises.  The
subset is small enough to parse with the stdlib, and every scenario
file in the library round-trips through it.

Versioning is explicit at three levels: the file format carries
``version`` (validated against :data:`SCENARIO_SCHEMA_VERSION`), specs
hash through the spec schema version as always, and a scenario may pin
its expected content ``digest`` -- the loader recomputes the digest
from the parsed document and refuses to serve a set whose content has
drifted from its pins (the pin is skipped when the caller overrides
``n_cycles``, which legitimately changes the digest).

The ``smoke`` set is the CI workhorse: eight small, structurally
diverse scenarios (load sweep, multi-packet messages, a wider switch,
favourite-output bias) whose digests are byte-identical to the
previously hard-coded Python set, so warm caches stay warm.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ExecutionError
from repro.exec.spec import ExperimentSpec, spec_from_jsonable, specs_from_file

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "ScenarioSet",
    "available_scenario_sets",
    "list_scenario_files",
    "load_scenario_file",
    "load_scenarios",
    "parse_strict_yaml",
    "scenario_dir",
    "scenario_specs",
]

#: Bumped when the scenario-file schema below changes meaning.
SCENARIO_SCHEMA_VERSION = 1

#: Environment variable overriding the library location.
SCENARIO_DIR_ENV = "REPRO_SCENARIOS_DIR"

#: Keys allowed at the top level of a scenario file.
_SET_KEYS = frozenset({"version", "name", "description", "defaults", "scenarios"})
#: Keys allowed per scenario entry.
_ENTRY_KEYS = frozenset({"label", "digest", "config", "n_cycles", "warmup"})
#: Keys allowed under ``defaults``.
_DEFAULT_KEYS = frozenset({"n_cycles", "warmup"})

_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+[eE][+-]?\d+|\d+\.\d*[eE][+-]?\d+)$")
_KEY_RE = re.compile(r"^[A-Za-z0-9_.-]+$")


# ----------------------------------------------------------------------
# strict YAML subset
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _Line:
    indent: int
    content: str
    number: int


def _yaml_error(source: str, number: int, message: str) -> ExecutionError:
    return ExecutionError(f"{source}:{number}: {message}")


def _strip_comment(text: str) -> str:
    """Drop a ``#`` comment that is outside quotes (needs a space before)."""
    quote: Optional[str] = None
    for i, ch in enumerate(text):
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == "#" and (i == 0 or text[i - 1] in (" ", "\t")):
            return text[:i].rstrip()
    return text.rstrip()


def _tokenize(text: str, source: str) -> List[_Line]:
    lines: List[_Line] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise _yaml_error(source, number, "tabs are not allowed in indentation")
        stripped = _strip_comment(raw)
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append(_Line(indent, stripped.strip(), number))
    return lines


def _parse_scalar(token: str, source: str, number: int) -> Any:
    token = token.strip()
    if token.startswith(("[", "{", "&", "*", "|", ">")):
        raise _yaml_error(
            source, number,
            f"unsupported YAML syntax {token[0]!r} (flow collections, anchors "
            "and block scalars are outside the strict subset)",
        )
    if token.startswith('"'):
        try:
            value = json.loads(token)
        except json.JSONDecodeError as exc:
            raise _yaml_error(source, number, f"bad double-quoted string: {exc}") from exc
        if not isinstance(value, str):
            raise _yaml_error(source, number, "bad double-quoted string")
        return value
    if token.startswith("'"):
        if len(token) < 2 or not token.endswith("'"):
            raise _yaml_error(source, number, "unterminated single-quoted string")
        return token[1:-1].replace("''", "'")
    if token in ("null", "~"):
        return None
    if token == "true":
        return True
    if token == "false":
        return False
    if _INT_RE.match(token):
        return int(token)
    if _FLOAT_RE.match(token):
        return float(token)
    return token


class _Parser:
    def __init__(self, lines: List[_Line], source: str) -> None:
        self.lines = lines
        self.source = source
        self.i = 0

    def parse_value(self, indent: int) -> Any:
        line = self.lines[self.i]
        if line.content.startswith("- ") or line.content == "-":
            return self.parse_list(indent)
        if self._split_key(line) is not None:
            return self.parse_mapping(indent)
        # a lone scalar block (e.g. ``key:`` followed by one scalar line)
        self.i += 1
        return _parse_scalar(line.content, self.source, line.number)

    def parse_mapping(self, indent: int) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        while self.i < len(self.lines):
            line = self.lines[self.i]
            if line.indent < indent:
                break
            if line.indent > indent:
                raise _yaml_error(
                    self.source, line.number,
                    f"unexpected indent {line.indent} (expected {indent})",
                )
            if line.content.startswith("- ") or line.content == "-":
                break
            pair = self._split_key(line)
            if pair is None:
                raise _yaml_error(
                    self.source, line.number,
                    f"expected 'key: value', got {line.content!r}",
                )
            key, rest = pair
            if key in out:
                raise _yaml_error(self.source, line.number, f"duplicate key {key!r}")
            self.i += 1
            if rest:
                out[key] = _parse_scalar(rest, self.source, line.number)
            elif (
                self.i < len(self.lines)
                and self.lines[self.i].indent > indent
            ):
                out[key] = self.parse_value(self.lines[self.i].indent)
            elif (
                self.i < len(self.lines)
                and self.lines[self.i].indent == indent
                and self.lines[self.i].content.startswith("- ")
            ):
                # lists may sit at the same indent as their key
                out[key] = self.parse_list(indent)
            else:
                out[key] = None
        return out

    def parse_list(self, indent: int) -> List[Any]:
        out: List[Any] = []
        while self.i < len(self.lines):
            line = self.lines[self.i]
            if line.indent != indent or not (
                line.content.startswith("- ") or line.content == "-"
            ):
                if line.indent > indent:
                    raise _yaml_error(
                        self.source, line.number,
                        f"unexpected indent {line.indent} in list (expected {indent})",
                    )
                break
            rest = line.content[2:].strip() if line.content != "-" else ""
            if not rest:
                raise _yaml_error(
                    self.source, line.number, "empty list items are not supported"
                )
            # an item is either a scalar or an inline-starting mapping;
            # re-enter the parser with the item's first line re-indented
            # past the dash so continuation lines line up naturally
            self.lines[self.i] = _Line(indent + 2, rest, line.number)
            out.append(self.parse_value(indent + 2))
        return out

    def _split_key(self, line: _Line) -> Optional[Tuple[str, str]]:
        """``key: rest`` / ``key:`` -> (key, rest); None if not a pair."""
        content = line.content
        if content.startswith(("'", '"')):
            return None
        head, sep, rest = content.partition(":")
        if not sep:
            return None
        if rest and not rest.startswith(" "):
            return None  # e.g. a bare "http://..." scalar
        key = head.strip()
        if not _KEY_RE.match(key):
            return None
        return key, rest.strip()


def parse_strict_yaml(text: str, *, source: str = "<yaml>") -> Any:
    """Parse the strict YAML subset described in the module docstring.

    Raises :class:`~repro.errors.ExecutionError` with ``source:line``
    context for anything outside the subset.
    """
    lines = _tokenize(text, source)
    if not lines:
        raise _yaml_error(source, 1, "empty document")
    parser = _Parser(lines, source)
    value = parser.parse_value(lines[0].indent)
    if parser.i < len(lines):
        stray = lines[parser.i]
        raise _yaml_error(
            source, stray.number,
            f"trailing content {stray.content!r} outside the document "
            f"(indent {stray.indent})",
        )
    return value


# ----------------------------------------------------------------------
# scenario sets
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSet:
    """One named, versioned scenario set loaded from the library."""

    name: str
    version: int
    description: str
    path: Optional[Path]
    specs: Tuple[ExperimentSpec, ...]

    def to_jsonable(self) -> Dict[str, Any]:
        """Catalogue document (served by ``GET /v1/scenarios``)."""
        return {
            "name": self.name,
            "version": self.version,
            "description": self.description,
            "n_scenarios": len(self.specs),
            "scenarios": [
                {
                    "label": spec.label,
                    "digest": spec.digest,
                    "n_cycles": spec.n_cycles,
                }
                for spec in self.specs
            ],
        }


def scenario_dir() -> Path:
    """The library directory: ``$REPRO_SCENARIOS_DIR`` or ``scenarios/``.

    The default resolves relative to the repository root (three levels
    above this file in the ``src`` layout), so any working directory --
    and any ``pip install -e`` checkout -- finds the same library.
    """
    env = os.environ.get(SCENARIO_DIR_ENV)
    if env:
        return Path(env)
    repo_root = Path(__file__).resolve().parents[3]
    packaged = repo_root / "scenarios"
    if packaged.is_dir():
        return packaged
    return Path("scenarios")


def list_scenario_files(directory: Union[str, Path, None] = None) -> Dict[str, Path]:
    """Map set name -> YAML path for every file in the library."""
    base = Path(directory) if directory is not None else scenario_dir()
    if not base.is_dir():
        return {}
    out: Dict[str, Path] = {}
    for path in sorted(base.glob("*.yaml")) + sorted(base.glob("*.yml")):
        out.setdefault(path.stem, path)
    return out


def available_scenario_sets(directory: Union[str, Path, None] = None) -> List[str]:
    """Sorted names of every set the library currently provides."""
    return sorted(list_scenario_files(directory))


def _require(doc: Dict[str, Any], key: str, kind: type, source: str) -> Any:
    if key not in doc:
        raise ExecutionError(f"{source}: missing required key {key!r}")
    value = doc[key]
    if kind is int and isinstance(value, bool):
        raise ExecutionError(f"{source}: key {key!r} must be an int, got {value!r}")
    if not isinstance(value, kind):
        raise ExecutionError(
            f"{source}: key {key!r} must be {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _scenario_entry_to_spec(
    entry: Any,
    defaults: Dict[str, Any],
    n_cycles: Optional[int],
    source: str,
    position: int,
) -> Tuple[ExperimentSpec, Optional[str]]:
    where = f"{source}: scenario #{position}"
    if not isinstance(entry, dict):
        raise ExecutionError(f"{where} must be a mapping, got {type(entry).__name__}")
    unknown = set(entry) - _ENTRY_KEYS
    if unknown:
        raise ExecutionError(f"{where}: unknown keys {sorted(unknown)}")
    label = _require(entry, "label", str, where)
    if not label:
        raise ExecutionError(f"{where}: label must be non-empty")
    config = _require(entry, "config", dict, where)
    cycles = entry.get("n_cycles", defaults.get("n_cycles"))
    if n_cycles is not None:
        cycles = n_cycles
    warmup = entry.get("warmup", defaults.get("warmup"))
    if cycles is None:
        raise ExecutionError(
            f"{where}: no n_cycles (set it on the entry, in defaults, or "
            "pass --cycles)"
        )
    if isinstance(cycles, bool) or not isinstance(cycles, int):
        raise ExecutionError(f"{where}: n_cycles must be an int, got {cycles!r}")
    if warmup is not None and (isinstance(warmup, bool) or not isinstance(warmup, int)):
        raise ExecutionError(f"{where}: warmup must be an int, got {warmup!r}")
    spec = spec_from_jsonable(
        {
            "config": config,
            "n_cycles": cycles,
            "warmup": warmup,
            "label": label,
        }
    )
    pin = entry.get("digest")
    if pin is not None and not isinstance(pin, str):
        raise ExecutionError(f"{where}: digest pin must be a string")
    return spec, pin


def load_scenario_file(
    path: Union[str, Path], n_cycles: Optional[int] = None
) -> ScenarioSet:
    """Load and validate one scenario file.

    ``n_cycles`` overrides every entry's cycle budget (digest pins are
    skipped in that case -- an override legitimately changes digests).
    """
    path = Path(path)
    source = str(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ExecutionError(f"cannot read scenario file {path}: {exc}") from exc
    doc = parse_strict_yaml(text, source=source)
    if not isinstance(doc, dict):
        raise ExecutionError(f"{source}: top level must be a mapping")
    unknown = set(doc) - _SET_KEYS
    if unknown:
        raise ExecutionError(f"{source}: unknown top-level keys {sorted(unknown)}")
    version = _require(doc, "version", int, source)
    if version != SCENARIO_SCHEMA_VERSION:
        raise ExecutionError(
            f"{source}: scenario schema version {version} is not supported "
            f"(this package understands version {SCENARIO_SCHEMA_VERSION})"
        )
    name = _require(doc, "name", str, source)
    if name != path.stem:
        raise ExecutionError(
            f"{source}: set name {name!r} must match the file name {path.stem!r}"
        )
    description = doc.get("description") or ""
    if not isinstance(description, str):
        raise ExecutionError(f"{source}: description must be a string")
    defaults = doc.get("defaults") or {}
    if not isinstance(defaults, dict):
        raise ExecutionError(f"{source}: defaults must be a mapping")
    unknown = set(defaults) - _DEFAULT_KEYS
    if unknown:
        raise ExecutionError(f"{source}: unknown defaults keys {sorted(unknown)}")
    entries = _require(doc, "scenarios", list, source)
    if not entries:
        raise ExecutionError(f"{source}: scenarios list must be non-empty")

    specs: List[ExperimentSpec] = []
    seen: Dict[str, int] = {}
    for position, entry in enumerate(entries, start=1):
        spec, pin = _scenario_entry_to_spec(entry, defaults, n_cycles, source, position)
        if spec.label in seen:
            raise ExecutionError(
                f"{source}: duplicate label {spec.label!r} "
                f"(scenarios #{seen[spec.label]} and #{position})"
            )
        seen[spec.label] = position
        if pin is not None and n_cycles is None and spec.digest != pin:
            raise ExecutionError(
                f"{source}: scenario {spec.label!r} digest {spec.digest[:12]}... "
                f"does not match its pin {pin[:12]}... -- the file content "
                "drifted from its pinned identity (recompute the pin if the "
                "change is intentional)"
            )
        specs.append(spec)
    return ScenarioSet(
        name=name,
        version=version,
        description=description,
        path=path,
        specs=tuple(specs),
    )


def scenario_specs(
    name: str, n_cycles: Optional[int] = None
) -> List[ExperimentSpec]:
    """Specs of one named library set."""
    files = list_scenario_files()
    try:
        path = files[name]
    except KeyError:
        known = ", ".join(available_scenario_sets()) or "<empty library>"
        raise ExecutionError(
            f"unknown scenario set {name!r}; pick from [{known}] "
            f"(library: {scenario_dir()}) or pass a spec-file path"
        ) from None
    return list(load_scenario_file(path, n_cycles=n_cycles).specs)


def load_scenarios(
    source: str, n_cycles: Optional[int] = None
) -> List[ExperimentSpec]:
    """Resolve a named set or a spec-file path (``.json``/``.yaml``).

    ``n_cycles`` overrides the cycle budget of named sets and YAML
    files; JSON spec files carry their own budgets and are not
    overridden.
    """
    if source.endswith(".json"):
        return specs_from_file(source)
    if source.endswith((".yaml", ".yml")):
        return list(load_scenario_file(source, n_cycles=n_cycles).specs)
    return scenario_specs(source, n_cycles)

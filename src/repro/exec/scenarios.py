"""Named scenario sets for ``python -m repro batch``.

The ``smoke`` set is the CI workhorse: eight small, structurally
diverse scenarios (load sweep, multi-packet messages, a wider switch,
favourite-output bias) that exercise every traffic/service path of the
simulator in seconds.  All seeds are pinned so repeated batches are
served entirely from the result cache.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ExecutionError
from repro.exec.spec import ExperimentSpec, specs_from_file
from repro.simulation.network import NetworkConfig

__all__ = ["SCENARIO_SETS", "scenario_specs", "load_scenarios"]

#: Default cycle budget for named sets (override with ``--cycles``).
_DEFAULT_CYCLES = 2_000


def smoke_specs(n_cycles: Optional[int] = None) -> List[ExperimentSpec]:
    """Eight fast, structurally diverse scenarios (k, p, m, q coverage)."""
    n = _DEFAULT_CYCLES if n_cycles is None else n_cycles
    specs = []
    for i, p in enumerate((0.2, 0.35, 0.5, 0.65)):
        specs.append(
            ExperimentSpec(
                NetworkConfig(
                    k=2, n_stages=3, p=p, topology="random", width=32, seed=41 + i
                ),
                n_cycles=n,
                label=f"load-p{p}",
            )
        )
    for j, m in enumerate((2, 4)):
        specs.append(
            ExperimentSpec(
                NetworkConfig(
                    k=2, n_stages=3, p=0.5 / m, message_size=m,
                    topology="random", width=32, seed=61 + j,
                ),
                n_cycles=n,
                label=f"message-m{m}",
            )
        )
    specs.append(
        ExperimentSpec(
            NetworkConfig(k=4, n_stages=2, p=0.5, topology="random", width=64, seed=71),
            n_cycles=n,
            label="switch-k4",
        )
    )
    specs.append(
        ExperimentSpec(
            NetworkConfig(k=2, n_stages=3, p=0.5, q=0.25, seed=81),
            n_cycles=n,
            label="favourite-q0.25",
        )
    )
    return specs


SCENARIO_SETS = {"smoke": smoke_specs}


def scenario_specs(name: str, n_cycles: Optional[int] = None) -> List[ExperimentSpec]:
    """Specs of one named set."""
    try:
        factory = SCENARIO_SETS[name]
    except KeyError:
        raise ExecutionError(
            f"unknown scenario set {name!r}; pick from {sorted(SCENARIO_SETS)} "
            "or pass a JSON spec file path"
        ) from None
    return factory(n_cycles)


def load_scenarios(source: str, n_cycles: Optional[int] = None) -> List[ExperimentSpec]:
    """Resolve a named set or a ``.json`` spec-file path.

    ``n_cycles`` overrides the cycle budget of named sets; spec files
    carry their own budgets and are not overridden.
    """
    if source.endswith(".json"):
        return specs_from_file(source)
    return scenario_specs(source, n_cycles)

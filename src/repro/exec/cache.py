"""Content-addressed on-disk cache of simulation results.

Layout (under the cache root, default ``.repro-cache/``)::

    .repro-cache/
      v1/                      # CACHE_SCHEMA_VERSION directory
        3f/                    # first two hex chars of the digest
          3f9a...e2.json       # metadata + scalar payload
          3f9a...e2.npz        # array payload (stage moments, cohort)

Entries are keyed by :attr:`ExperimentSpec.digest
<repro.exec.spec.ExperimentSpec.digest>`, so any change to the config,
cycle budget, or warm-up policy is automatically a miss.  Bumping
:data:`CACHE_SCHEMA_VERSION` moves the layout to a fresh ``v{N}/``
directory *and* is re-checked inside each metadata document, so stale
entries can never be served after a format change.

What is cached is the *payload* -- exactly the information a worker
process ships back to the parent (:func:`result_to_payload`):
per-stage moment arrays, network-wide counters, and the completed
tracked cohort.  Rehydration (:func:`payload_to_result`) is therefore
identical for "fresh from a worker" and "read from disk", which is what
makes cached, serial, and parallel runs bit-for-bit interchangeable.

Writes go through a temp file + :func:`os.replace`, so concurrent
writers of the same digest race benignly (same content either way).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro._version import __version__
from repro.simulation.network import NetworkConfig, NetworkResult
from repro.simulation.stats import TotalsSummary, TrackedMessages

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "InFlight",
    "ResultCache",
    "result_to_payload",
    "payload_to_result",
]

CACHE_SCHEMA_VERSION = 1

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Scalar payload fields (stored in the JSON metadata document).
_SCALARS = (
    "n_cycles",
    "warmup",
    "injected",
    "completed",
    "dropped",
    "max_occupancy",
    "elapsed_seconds",
)

#: Array payload fields (stored in the NPZ sidecar) and their dtypes.
_ARRAYS = {
    "stage_means": np.float64,
    "stage_variances": np.float64,
    "stage_counts": np.int64,
    "tracked_rows": np.float32,
}

#: Optional scalar fields carried only by streaming-summary results
#: (``track_limit=0``): the five :class:`TotalsSummary` scalars.  Old
#: cache entries simply lack them; new tracked-mode entries omit them,
#: so the on-disk format is unchanged for every pre-existing workload.
_TOTALS_SCALARS = (
    "totals_count",
    "totals_mean",
    "totals_m2",
    "totals_min",
    "totals_max",
)


def result_to_payload(result: NetworkResult) -> dict:
    """Flatten a result into plain scalars + arrays (IPC / disk form).

    The tracked cohort keeps only *complete* rows, in float32 exactly
    as the tracker stores them -- rehydrating through
    :meth:`TrackedMessages.from_rows` then reproduces ``totals()`` and
    ``stage_correlations()`` bit-for-bit.
    """
    rows = result.tracked.complete_rows().astype(np.float32)
    payload = {
        "n_cycles": int(result.n_cycles),
        "warmup": int(result.warmup),
        "injected": int(result.injected),
        "completed": int(result.completed),
        "dropped": int(result.dropped),
        "max_occupancy": int(result.max_occupancy),
        "elapsed_seconds": float(result.elapsed_seconds),
        "stage_means": np.asarray(result.stage_means, dtype=np.float64),
        "stage_variances": np.asarray(result.stage_variances, dtype=np.float64),
        "stage_counts": np.asarray(result.stage_counts, dtype=np.int64),
        "tracked_rows": rows,
    }
    summary = result.totals_summary
    if summary is not None:
        payload["totals_count"] = int(summary.count)
        payload["totals_mean"] = float(summary.mean)
        payload["totals_m2"] = float(summary.m2)
        payload["totals_min"] = float(summary.minimum)
        payload["totals_max"] = float(summary.maximum)
    return payload


def payload_to_result(payload: dict, config: NetworkConfig) -> NetworkResult:
    """Rebuild a :class:`NetworkResult` from its payload form."""
    stage_means = np.asarray(payload["stage_means"], dtype=np.float64)
    n_stages = stage_means.shape[0]
    tracked = TrackedMessages.from_rows(payload["tracked_rows"], n_stages)
    summary = None
    if "totals_count" in payload:
        summary = TotalsSummary(
            count=int(payload["totals_count"]),
            mean=float(payload["totals_mean"]),
            m2=float(payload["totals_m2"]),
            minimum=float(payload["totals_min"]),
            maximum=float(payload["totals_max"]),
        )
    return NetworkResult(
        config=config,
        n_cycles=int(payload["n_cycles"]),
        warmup=int(payload["warmup"]),
        stage_means=stage_means,
        stage_variances=np.asarray(payload["stage_variances"], dtype=np.float64),
        stage_counts=np.asarray(payload["stage_counts"], dtype=np.int64),
        tracked=tracked,
        injected=int(payload["injected"]),
        completed=int(payload["completed"]),
        dropped=int(payload["dropped"]),
        max_occupancy=int(payload["max_occupancy"]),
        elapsed_seconds=float(payload["elapsed_seconds"]),
        totals_summary=summary,
    )


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of cache contents plus this process's hit counters."""

    root: str
    schema_version: int
    entries: int
    total_bytes: int
    hits: int
    misses: int

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "schema_version": self.schema_version,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
        }

    def to_text(self) -> str:
        mib = self.total_bytes / (1024 * 1024)
        return (
            f"cache {self.root} (schema v{self.schema_version}): "
            f"{self.entries} entries, {mib:.2f} MiB; "
            f"this process: {self.hits} hit(s), {self.misses} miss(es)"
        )


@dataclass(frozen=True)
class InFlight:
    """A claim on an in-progress computation (see ``get_or_begin``).

    ``leader`` is ``True`` for exactly one concurrent claimant per
    digest: that thread computes and must call
    :meth:`ResultCache.finish` (in a ``finally``) after storing the
    result.  Followers ``event.wait(timeout)`` and then re-``get``.
    """

    digest: str
    event: threading.Event
    leader: bool


class ResultCache:
    """Digest-keyed result store under one root directory.

    ``get``/``put`` never raise on cache trouble: a corrupt, partial,
    or stale entry is simply a miss (and a run is never *wrong* because
    of the cache -- at worst it is re-simulated).
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        #: process-local counters, reported by :meth:`stats`
        self.hits = 0
        self.misses = 0
        #: in-process in-flight registry: digest -> completion event
        self._inflight: Dict[str, threading.Event] = {}
        self._inflight_lock = threading.Lock()

    def _entry_paths(self, digest: str) -> tuple:
        base = self.root / f"v{CACHE_SCHEMA_VERSION}" / digest[:2]
        return base / f"{digest}.json", base / f"{digest}.npz"

    # ------------------------------------------------------------------
    def get(self, spec) -> Optional[NetworkResult]:
        """The cached result for ``spec``, or ``None`` on any miss."""
        digest = spec.digest
        meta_path, npz_path = self._entry_paths(digest)
        try:
            meta = json.loads(meta_path.read_text())
            if (
                meta.get("schema_version") != CACHE_SCHEMA_VERSION
                or meta.get("digest") != digest
            ):
                raise ValueError("stale or mismatched cache entry")
            payload = dict(meta["payload"])
            with np.load(npz_path) as data:
                for name, dtype in _ARRAYS.items():
                    payload[name] = np.asarray(data[name], dtype=dtype)
            result = payload_to_result(payload, spec.config)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def get_or_begin(self, spec) -> Tuple[Optional[NetworkResult], Optional[InFlight]]:
        """Cache lookup that deduplicates concurrent identical misses.

        Returns ``(result, None)`` on a hit.  On a miss, exactly one
        concurrent caller per digest receives a *leader* token
        (``InFlight.leader`` true) and should compute, :meth:`put`, and
        :meth:`finish` -- ``finish`` in a ``finally``, so a crashed
        leader releases its claim.  Every other concurrent caller
        receives a *follower* token: ``token.event.wait(timeout)`` then
        re-:meth:`get` (a miss after the wait means the leader failed;
        the follower should compute for itself).

        The registry is in-process (``threading.Event`` keyed by
        digest): it serves threaded callers such as the
        :mod:`repro.api` job manager, not separate processes -- those
        still race benignly through the atomic on-disk writes.
        """
        result = self.get(spec)
        if result is not None:
            return result, None
        digest = spec.digest
        with self._inflight_lock:
            event = self._inflight.get(digest)
            if event is not None:
                return None, InFlight(digest=digest, event=event, leader=False)
            event = threading.Event()
            self._inflight[digest] = event
            return None, InFlight(digest=digest, event=event, leader=True)

    def finish(self, spec) -> None:
        """Release a leader claim taken by :meth:`get_or_begin`.

        Wakes every follower waiting on the digest.  Idempotent; a
        digest with no claim is a no-op.
        """
        with self._inflight_lock:
            event = self._inflight.pop(spec.digest, None)
        if event is not None:
            event.set()

    def put(self, spec, result: Union[NetworkResult, dict]) -> None:
        """Store a result (or its payload form) under ``spec``'s digest."""
        payload = result_to_payload(result) if isinstance(result, NetworkResult) else result
        digest = spec.digest
        meta_path, npz_path = self._entry_paths(digest)
        meta_path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "digest": digest,
            "created_unix": time.time(),
            "repro_version": __version__,
            "spec": spec.to_jsonable(),
            "payload": {
                k: payload[k]
                for k in (*_SCALARS, *_TOTALS_SCALARS)
                if k in payload or k in _SCALARS
            },
        }
        arrays = {k: np.asarray(payload[k], dtype=dtype) for k, dtype in _ARRAYS.items()}
        self._atomic_write(npz_path, lambda fh: np.savez_compressed(fh, **arrays))
        self._atomic_write(
            meta_path, lambda fh: fh.write(json.dumps(meta, indent=2).encode() + b"\n")
        )

    @staticmethod
    def _atomic_write(path: Path, writer) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                writer(fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def entries(self) -> list:
        """Metadata paths of every entry (any schema version) on disk."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("v*/*/*.json"))

    def stats(self) -> CacheStats:
        """Count entries and bytes on disk (all schema versions)."""
        entries = self.entries()
        total = 0
        for meta_path in entries:
            for path in (meta_path, meta_path.with_suffix(".npz")):
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return CacheStats(
            root=str(self.root),
            schema_version=CACHE_SCHEMA_VERSION,
            entries=len(entries),
            total_bytes=total,
            hits=self.hits,
            misses=self.misses,
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = len(self.entries())
        if self.root.is_dir():
            shutil.rmtree(self.root, ignore_errors=True)
        return n

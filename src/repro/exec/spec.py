"""Declarative, hashable experiment specifications.

An :class:`ExperimentSpec` names one simulation completely: the
:class:`~repro.simulation.network.NetworkConfig`, the cycle budget, and
the warm-up policy.  Its :attr:`~ExperimentSpec.digest` is a SHA-256
over a canonical JSON rendering of exactly those fields (plus a spec
schema version), so two specs collide iff they would produce the same
:class:`~repro.simulation.network.NetworkResult` -- the key property
behind the content-addressed result cache (:mod:`repro.exec.cache`).

The presentation-only ``label`` is deliberately excluded from the
digest: renaming a scenario must not invalidate its cached result.

Seed discipline
---------------
Specs whose config carries ``seed=None`` are given concrete seeds by
:func:`resolve_seeds` *before* dispatch, derived per batch *position*
via ``numpy.random.SeedSequence.spawn`` from one base seed.  Because
derivation depends only on the position in the batch -- never on which
worker runs the task or in what order tasks complete -- a parallel run
is bit-identical to a serial run of the same batch.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.obs.manifest import config_to_jsonable
from repro.simulation.network import NetworkConfig
from repro.simulation.rng import DEFAULT_SEED

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "STACKABLE_CONFIG_FIELDS",
    "STREAM_MARKER",
    "ExperimentSpec",
    "group_for_stream",
    "group_for_vectorize",
    "resolve_seeds",
    "spec_from_jsonable",
    "specs_from_file",
]

#: Bumped whenever the identity document below changes meaning; part of
#: every digest, so old cache entries can never alias new semantics.
SPEC_SCHEMA_VERSION = 1

#: ``batch_marker`` for specs that run on the streamed engine
#: (:mod:`repro.simulation.streamed`).  Deliberately composition-free:
#: streamed replicas are seeded independently, so the same spec yields
#: the same result in any shard of any batch -- one digest (and one
#: cache entry) serves them all.  Shard size is an execution knob and
#: must never appear here.
STREAM_MARKER = ("stream",)


def _canonical_json(doc) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-specified simulation scenario.

    Parameters
    ----------
    config:
        The network scenario.  A ``seed=None`` config is acceptable
        only if the spec goes through :func:`resolve_seeds` (which
        :func:`repro.exec.runner.run_many` always does) before its
        digest is used as a cache key.
    n_cycles:
        Simulated cycles (``>= 1``).
    warmup:
        Discarded warm-up cycles; ``None`` uses the simulator default
        ``max(500, n_cycles // 10)``.  The MSER-5 ``"auto"`` mode is
        not spec-able -- it doubles the work with a pilot twin, which
        defeats the point of a shared cache.
    label:
        Presentation-only name for progress output and manifests;
        **not** part of the digest.
    batch_marker:
        ``None`` for serial execution (the default -- digests are
        unchanged from earlier spec versions).  Set by
        :func:`group_for_vectorize` to ``(n_replicas, replica_index,
        batch_rows)`` when the spec will run on the replica-batched
        engine as part of a multi-replica batch: a replica's sample
        path then depends on the whole ordered batch composition
        (shared RNG stream), so the marker enters the digest and
        batched results can never alias serial ones in the cache.
        ``batch_rows`` is a tuple of ints (the per-replica seeds) for a
        *homogeneous* batch -- replicas identical but for the seed,
        digest format unchanged from earlier spec versions -- or a
        tuple of canonical-JSON strings (one per replica, seed plus
        every stackable parameter) for a *heterogeneous*
        scenario-stacked batch, so the two batch kinds can never alias
        each other either.  One-replica batches are bit-identical to
        serial runs and stay unmarked.  The :data:`STREAM_MARKER`
        1-tuple ``("stream",)`` instead marks execution on the streamed
        engine (:func:`group_for_stream`): independent per-replica
        seeding makes streamed results composition-free, so the marker
        carries no batch information and one digest covers every
        sharding.
    """

    config: NetworkConfig
    n_cycles: int
    warmup: Optional[int] = None
    label: str = ""
    batch_marker: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.batch_marker is not None:
            marker = tuple(self.batch_marker)
            if marker == STREAM_MARKER:
                # streamed engine: a replica's sample path is a pure
                # function of its own (config, n_cycles, warmup) -- no
                # batch composition enters the digest, so one digest
                # serves every sharding of the same spec
                object.__setattr__(self, "batch_marker", STREAM_MARKER)
            elif (
                len(marker) != 3
                or not isinstance(marker[0], int)
                or not isinstance(marker[1], int)
                or not isinstance(marker[2], tuple)
                or marker[0] < 2
                or not 0 <= marker[1] < marker[0]
                or len(marker[2]) != marker[0]
                or not (
                    all(isinstance(r, int) for r in marker[2])
                    or all(isinstance(r, str) for r in marker[2])
                )
            ):
                raise ExecutionError(
                    "batch_marker must be ('stream',) or (n_replicas, "
                    "replica_index, batch_rows) with n_replicas >= 2 and "
                    f"rows all ints (seeds) or all strings (scenario rows), "
                    f"got {self.batch_marker!r}"
                )
            object.__setattr__(self, "batch_marker", marker)
        if not isinstance(self.config, NetworkConfig):
            raise ExecutionError(
                f"spec config must be a NetworkConfig, got {type(self.config).__name__}"
            )
        if not isinstance(self.n_cycles, int) or self.n_cycles < 1:
            raise ExecutionError(f"n_cycles must be a positive int, got {self.n_cycles!r}")
        if self.warmup is not None:
            if not isinstance(self.warmup, int) or self.warmup < 0:
                raise ExecutionError(
                    f"warmup must be None or a non-negative int, got {self.warmup!r}"
                )
            if self.warmup >= self.n_cycles:
                raise ExecutionError(
                    f"warmup {self.warmup} >= n_cycles {self.n_cycles}"
                )

    # ------------------------------------------------------------------
    def identity(self) -> dict:
        """The exact document hashed into :attr:`digest`.

        The ``engine`` key appears *only* for batch-marked specs, so
        every pre-existing serial digest (and cache entry) is
        untouched.
        """
        doc = {
            "spec_version": SPEC_SCHEMA_VERSION,
            "config": config_to_jsonable(self.config),
            "n_cycles": int(self.n_cycles),
            "warmup": self.warmup,
        }
        if self.batch_marker == STREAM_MARKER:
            # no batch composition: streamed replicas are independent,
            # so the digest is shard-configuration-free by construction
            doc["engine"] = {"kind": "stream"}
        elif self.batch_marker is not None:
            n_replicas, replica, rows = self.batch_marker
            if rows and isinstance(rows[0], str):
                # heterogeneous scenario stack: a distinct kind + key so
                # these digests can never collide with homogeneous
                # "replica-batched" entries of the same seed list
                doc["engine"] = {
                    "kind": "scenario-batched",
                    "n_replicas": n_replicas,
                    "replica": replica,
                    "batch_rows": list(rows),
                }
            else:
                doc["engine"] = {
                    "kind": "replica-batched",
                    "n_replicas": n_replicas,
                    "replica": replica,
                    "batch_seeds": list(rows),
                }
        return doc

    @property
    def digest(self) -> str:
        """Stable SHA-256 content digest (hex, 64 chars)."""
        blob = _canonical_json(self.identity())
        if " at 0x" in blob:
            # the repr fallback of config_to_jsonable leaked a memory
            # address (e.g. a service model without a stable __repr__)
            raise ExecutionError(
                "config contains an object without a value-based repr; "
                "its digest would differ between processes"
            )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_jsonable(self) -> dict:
        """JSON-ready record (identity fields + label + digest)."""
        doc = self.identity()
        doc["label"] = self.label
        doc["digest"] = self.digest
        return doc


def resolve_seeds(
    specs: Iterable[ExperimentSpec], base_seed: int = DEFAULT_SEED
) -> List[ExperimentSpec]:
    """Give every un-seeded spec a concrete, position-derived seed.

    Seeds come from ``SeedSequence(base_seed).spawn(n)[i]`` -- a pure
    function of ``(base_seed, i)`` -- so the assignment is identical no
    matter how many workers later execute the batch.  Specs that
    already carry a seed pass through untouched.
    """
    specs = list(specs)
    children = np.random.SeedSequence(base_seed).spawn(len(specs))
    resolved = []
    for spec, child in zip(specs, children, strict=True):
        if spec.config.seed is None:
            seed = int(child.generate_state(1, dtype=np.uint64)[0])
            config = dataclasses.replace(spec.config, seed=seed)
            resolved.append(dataclasses.replace(spec, config=config))
        else:
            resolved.append(spec)
    return resolved


#: NetworkConfig fields the stacked engine lets vary *within* one batch
#: (see ``repro.simulation.batched.STACK_SHAPE_FIELDS`` for the fields
#: that must agree).  The seed is handled separately.
STACKABLE_CONFIG_FIELDS = (
    "p",
    "message_size",
    "sizes",
    "probabilities",
    "service",
    "bulk_size",
    "q",
)


def group_for_vectorize(specs: Iterable[ExperimentSpec]):
    """Partition a seed-resolved batch into replica-batchable groups.

    Two specs share a group iff they agree on everything that fixes the
    stacked engine's array shapes: topology, ``k``, stages, width,
    transfer mode, buffers, track limit, cycle budget, and warm-up.
    The *stackable* parameters -- seed plus
    :data:`STACKABLE_CONFIG_FIELDS` (``p``, ``message_size``,
    ``sizes``/``probabilities``, ``service``, ``bulk_size``, ``q``) --
    may differ within a group: a whole load or traffic sweep becomes
    one scenario-stacked engine run.

    Groups of two or more specs with infinite buffers are *marked*:
    each member gets a :attr:`ExperimentSpec.batch_marker` recording
    ``(n_replicas, replica_index, batch_rows)``, which enters its
    digest.  A group whose rows are identical except for the seed keeps
    the homogeneous marker format (``batch_rows`` = the int seed
    tuple, digests unchanged from earlier spec versions, so existing
    cache entries stay valid); a heterogeneous group records one
    canonical-JSON row per replica (seed + stackable parameters), so
    serial, homogeneous-batched, and scenario-stacked results occupy
    disjoint cache keys.  Singleton groups and finite-buffer groups
    stay unmarked (they will run on the serial engine, so their digests
    must keep matching serial cache entries).

    Returns ``(marked_specs, groups)`` where ``groups`` is a list of
    ``(indices, batchable)`` covering every spec.  Grouping is a pure
    function of the ordered spec list -- never of cache state -- so a
    batch's results are deterministic regardless of what happens to be
    cached.
    """
    specs = list(specs)
    by_shape: dict = {}
    rows: List[dict] = []
    for i, spec in enumerate(specs):
        if spec.batch_marker is not None:
            raise ExecutionError(
                f"spec {i} ({spec.label or spec.digest[:12]}) is already "
                "batch-marked; pass unmarked specs to the runner"
            )
        if spec.config.seed is None:
            raise ExecutionError("group_for_vectorize needs seed-resolved specs")
        ident = spec.identity()
        config_doc = dict(ident["config"])
        row = {"seed": config_doc.pop("seed", None)}
        for name in STACKABLE_CONFIG_FIELDS:
            row[name] = config_doc.pop(name, None)
        ident["config"] = config_doc
        rows.append(row)
        by_shape.setdefault(_canonical_json(ident), []).append(i)

    marked = list(specs)
    groups = []
    for indices in by_shape.values():
        batchable = (
            len(indices) >= 2
            and specs[indices[0]].config.buffer_capacity is None
        )
        if batchable:
            group_rows = [rows[i] for i in indices]
            scenario0 = {k: v for k, v in group_rows[0].items() if k != "seed"}
            homogeneous = all(
                {k: v for k, v in r.items() if k != "seed"} == scenario0
                for r in group_rows[1:]
            )
            if homogeneous:
                marker_rows = tuple(int(specs[i].config.seed) for i in indices)
            else:
                marker_rows = tuple(_canonical_json(r) for r in group_rows)
            for pos, i in enumerate(indices):
                marked[i] = dataclasses.replace(
                    specs[i], batch_marker=(len(indices), pos, marker_rows)
                )
        groups.append((indices, batchable))
    return marked, groups


def group_for_stream(specs: Iterable[ExperimentSpec]):
    """Partition a seed-resolved batch into streamed-engine groups.

    The streamed sibling of :func:`group_for_vectorize`: two specs share
    a group iff they agree on the shape-fixing fields (so one
    :func:`~repro.simulation.streamed.run_streamed` call can stack
    them), and **every** spec -- including singletons -- is marked with
    :data:`STREAM_MARKER`, because the streamed engine's per-replica
    draw order differs from the serial engine's and the two must never
    alias in the cache.

    Unlike batched groups, a streamed group is *not* execution-atomic:
    replicas are independent, so the runner may execute any subset of a
    group (cached members are genuinely skipped, pending ones sharded
    freely) and still reproduce the monolithic results bit for bit.

    Finite-buffer specs are refused -- the streamed engine cannot drop
    messages from pre-drawn queues.

    Returns ``(marked_specs, groups)``; ``groups`` entries are
    ``(indices, True)`` (the boolean kept for dispatcher symmetry).
    """
    specs = list(specs)
    by_shape: dict = {}
    for i, spec in enumerate(specs):
        if spec.batch_marker is not None:
            raise ExecutionError(
                f"spec {i} ({spec.label or spec.digest[:12]}) is already "
                "batch-marked; pass unmarked specs to the runner"
            )
        if spec.config.seed is None:
            raise ExecutionError("group_for_stream needs seed-resolved specs")
        if spec.config.buffer_capacity is not None:
            raise ExecutionError(
                f"spec {i} ({spec.label or spec.digest[:12]}) has finite "
                "buffers; the streamed engine supports infinite buffers "
                "only -- run it without stream=True"
            )
        ident = spec.identity()
        config_doc = dict(ident["config"])
        config_doc.pop("seed", None)
        for name in STACKABLE_CONFIG_FIELDS:
            config_doc.pop(name, None)
        ident["config"] = config_doc
        by_shape.setdefault(_canonical_json(ident), []).append(i)

    marked = [
        dataclasses.replace(spec, batch_marker=STREAM_MARKER) for spec in specs
    ]
    groups = [(indices, True) for indices in by_shape.values()]
    return marked, groups


#: NetworkConfig fields a JSON spec file may set (plain values only;
#: explicit ServiceProcess models cannot round-trip through JSON).
_CONFIG_FIELDS = frozenset(
    f.name for f in dataclasses.fields(NetworkConfig) if f.name != "service"
)


def spec_from_jsonable(doc: dict) -> ExperimentSpec:
    """Rebuild a spec from :meth:`ExperimentSpec.to_jsonable` output.

    Accepts the same shape in hand-written spec files (``digest`` and
    ``spec_version`` keys are ignored when present).
    """
    if not isinstance(doc, dict) or "config" not in doc:
        raise ExecutionError("spec document must be a dict with a 'config' key")
    raw = dict(doc["config"])
    if raw.get("service") not in (None, "None"):
        raise ExecutionError(
            "spec files cannot carry explicit service models; "
            "use message_size / sizes+probabilities instead"
        )
    raw.pop("service", None)
    unknown = set(raw) - _CONFIG_FIELDS
    if unknown:
        raise ExecutionError(f"unknown config fields in spec file: {sorted(unknown)}")
    for key in ("sizes", "probabilities"):
        if raw.get(key) is not None:
            raw[key] = tuple(raw[key])
    try:
        config = NetworkConfig(**raw)
    except TypeError as exc:
        raise ExecutionError(f"bad config in spec file: {exc}") from exc
    warmup = doc.get("warmup")
    return ExperimentSpec(
        config=config,
        n_cycles=int(doc.get("n_cycles", 0) or 0),
        warmup=int(warmup) if warmup is not None else None,
        label=str(doc.get("label", "")),
    )


def specs_from_file(path) -> List[ExperimentSpec]:
    """Load a JSON spec file: a list of spec documents."""
    from pathlib import Path

    text = Path(path).read_text()
    try:
        docs = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ExecutionError(f"spec file {path} is not valid JSON: {exc}") from exc
    if not isinstance(docs, list) or not docs:
        raise ExecutionError(f"spec file {path} must hold a non-empty JSON list")
    return [spec_from_jsonable(doc) for doc in docs]

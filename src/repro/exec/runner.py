"""Parallel experiment runner: process pool, retries, partial results.

:func:`run_many` takes a batch of :class:`~repro.exec.spec.ExperimentSpec`
and produces a :class:`BatchResult` holding one :class:`TaskOutcome`
per spec, in spec order.  The contract:

* **Determinism** -- seeds are resolved per batch position before any
  dispatch (:func:`~repro.exec.spec.resolve_seeds`), every task is
  simulated from only its spec, and both the in-process and the
  worker-process paths ship results through the same payload
  round-trip (:mod:`repro.exec.cache`).  ``workers=N`` is therefore
  bit-identical to ``workers=1`` for any ``N``.
* **Caching** -- with a :class:`~repro.exec.cache.ResultCache`, hits
  skip simulation entirely (outcome status ``"cached"``) and fresh
  completions are written back.
* **Robustness** -- a task that raises is retried up to ``retries``
  times; a task that exhausts its retries is reported as ``"failed"``
  (with the worker traceback) while every other task still completes.
  A batch never aborts because one scenario is sick.
* **Observability** -- each outcome fires the optional ``progress``
  callback, and an active :func:`repro.obs.session` records an
  ``exec-batch-NNNN.json`` manifest for the whole batch.

Timeout semantics: ``timeout`` bounds how long the parent waits per
dispatched chunk (``timeout * chunk_len`` seconds from dispatch).  An
expired chunk is treated as one failure of each of its tasks and
retried under the same bound.  CPython cannot preempt a worker mid-
simulation, so a genuinely hung worker still occupies its process slot
until pool shutdown -- the timeout bounds *batch bookkeeping*, not
worker CPU time.
"""

from __future__ import annotations

import traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from functools import partial
from time import perf_counter
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.errors import ExecutionError
from repro.exec.cache import ResultCache, payload_to_result, result_to_payload
from repro.exec.spec import (
    ExperimentSpec,
    group_for_stream,
    group_for_vectorize,
    resolve_seeds,
)
from repro.obs.session import current_session
from repro.simulation.network import NetworkResult, NetworkSimulator
from repro.simulation.rng import DEFAULT_SEED

if TYPE_CHECKING:  # pragma: no cover - typing only, expdb imports lazily
    from repro.expdb.db import ExperimentDB

__all__ = ["TaskOutcome", "BatchResult", "LocalPool", "run_many", "execute_spec"]


def execute_spec(spec: ExperimentSpec) -> NetworkResult:
    """Run one spec to completion (the default task function)."""
    return NetworkSimulator(spec.config).run(spec.n_cycles, warmup=spec.warmup)


def _worker_init() -> None:
    """Pool-worker start-up: drop the inherited observation session.

    Run manifests carry process-local sequence numbers; several forked
    workers writing ``run-NNNN`` into one directory would silently
    overwrite each other.  A pooled batch is recorded by the parent's
    ``exec-batch`` manifest instead.
    """
    import importlib

    # attribute access would find the session() contextmanager that
    # repro.obs re-exports, not the submodule
    importlib.import_module("repro.obs.session")._deactivate()


def _run_chunk(specs: List[ExperimentSpec], task_fn) -> List[tuple]:
    """Worker-side chunk executor: one ``("ok"|"err", ...)`` per spec.

    Results travel as payload dicts (see :mod:`repro.exec.cache`), not
    full :class:`NetworkResult` objects, so the IPC cost is the moment
    arrays plus the completed cohort -- never the full tracking matrix.
    """
    fn = task_fn or execute_spec
    out = []
    for spec in specs:
        started = perf_counter()
        try:
            result = fn(spec)
            payload = result if isinstance(result, dict) else result_to_payload(result)
            payload.setdefault("elapsed_seconds", perf_counter() - started)
            out.append(("ok", payload))
        except Exception:
            out.append(("err", traceback.format_exc(limit=20)))
    return out


def _run_batched_group(specs: List[ExperimentSpec], backend: str = "auto") -> List[tuple]:
    """Worker-side batched executor: one stacked run, one payload per spec.

    The specs must share everything that fixes the engine's array
    shapes (guaranteed by :func:`~repro.exec.spec.group_for_vectorize`);
    stackable parameters -- seed, load, bulk, bias, service model -- may
    differ per spec and ride the scenario axis of
    :func:`~repro.simulation.batched.run_stacked`.  ``backend`` selects
    the compute backend of the stacked cycle loop (an execution detail:
    results and cache keys are backend-independent).  Failure is
    atomic -- a stacked run cannot partially succeed -- so an exception
    reports every spec of the group as one failed attempt.
    """
    started = perf_counter()
    try:
        from repro.simulation.batched import run_stacked

        results = run_stacked(
            [s.config for s in specs],
            specs[0].n_cycles,
            warmup=specs[0].warmup,
            backend=backend,
        )
        elapsed = perf_counter() - started
        out = []
        for result in results:
            payload = result_to_payload(result)
            payload["elapsed_seconds"] = elapsed / len(specs)
            out.append(("ok", payload))
        return out
    except Exception:
        return [("err", traceback.format_exc(limit=20))] * len(specs)


def _execute_job(
    specs: List[ExperimentSpec], batched: bool, backend: str = "auto"
) -> List[tuple]:
    """One vectorized-path job: a stacked group or a serial fallback."""
    if batched:
        return _run_batched_group(specs, backend)
    return _run_chunk(specs, None)


def _run_stream_shard(
    specs: List[ExperimentSpec], batched: bool, backend: str = "auto"
) -> List[tuple]:
    """Worker-side streamed executor: one shard, one payload per spec.

    ``batched`` is accepted for dispatcher symmetry and ignored -- every
    stream job is a :func:`~repro.simulation.streamed.run_streamed`
    call.  Shard failure is atomic, like a stacked group.
    """
    started = perf_counter()
    try:
        from repro.simulation.streamed import run_streamed

        batch = run_streamed(
            [s.config for s in specs],
            specs[0].n_cycles,
            warmup=specs[0].warmup,
            backend=backend,
        )
        elapsed = perf_counter() - started
        out = []
        for result in batch.results:
            payload = result_to_payload(result)
            payload["elapsed_seconds"] = elapsed / len(specs)
            out.append(("ok", payload))
        return out
    except Exception:
        return [("err", traceback.format_exc(limit=20))] * len(specs)


def _run_vectorized(
    specs, pending, groups, outcomes, *,
    workers, retries, timeout, cache, progress, backend="auto",
) -> None:
    """Execute a grouped batch: stacked runs for marked groups.

    Jobs are whole groups: if *any* member of a batchable group is
    uncached, the entire group re-runs (a stacked run is a pure function
    of the ordered scenario list, so the cached members are simply
    reproduced and only the pending ones are finished).  Unbatchable
    specs (singletons, finite buffers) become one-spec serial jobs on
    the proven :func:`_run_chunk` path.  Retries and timeouts apply per
    job, atomically.
    """
    pending_set = set(pending)
    jobs: List[tuple] = []  # (indices_to_run, indices_to_finish, batched)
    for indices, batchable in groups:
        need = [i for i in indices if i in pending_set]
        if not need:
            continue
        if batchable:
            jobs.append((indices, need, True))
        else:
            jobs.extend(([i], [i], False) for i in need)
    execute = partial(_execute_job, backend=backend)
    _dispatch_jobs(
        specs, jobs, outcomes, workers=workers, retries=retries,
        timeout=timeout, cache=cache, progress=progress, execute=execute,
    )


def _run_streamed_groups(
    specs, pending, groups, outcomes, *,
    workers, retries, timeout, cache, progress, backend="auto", shard_mem=None,
) -> None:
    """Execute a stream-marked batch in memory-bounded shards.

    Unlike the vectorized path, jobs cover only *pending* specs: a
    streamed replica's result is independent of its shard-mates, so
    cached members are genuinely skipped and the pending remainder is
    sharded under the byte budget.  Shard composition affects neither
    results (shard-invariance, test-asserted) nor digests
    (:data:`~repro.exec.spec.STREAM_MARKER` carries no batch info).
    """
    from repro.exec.sharded import plan_shard_size

    pending_set = set(pending)
    jobs: List[tuple] = []
    for indices, _ in groups:
        need = [i for i in indices if i in pending_set]
        if not need:
            continue
        shard_size = plan_shard_size(
            specs[need[0]].config, specs[need[0]].n_cycles, shard_mem
        )
        for j in range(0, len(need), shard_size):
            shard = need[j : j + shard_size]
            jobs.append((shard, shard, True))
    execute = partial(_run_stream_shard, backend=backend)
    _dispatch_jobs(
        specs, jobs, outcomes, workers=workers, retries=retries,
        timeout=timeout, cache=cache, progress=progress, execute=execute,
    )


def _dispatch_jobs(
    specs, jobs, outcomes, *,
    workers, retries, timeout, cache, progress, execute,
) -> None:
    """Run group-shaped jobs in-process or on a pool, with retries.

    A job is ``(indices_to_run, indices_to_finish, batched)``;
    ``execute(specs_list, batched)`` returns one ``("ok"|"err", ...)``
    per spec.  ``execute`` must be picklable for pooled dispatch.
    Retries and timeouts apply per job, atomically.
    """

    def finish(job, attempt, job_out) -> List[tuple]:
        """Finish a job's pending members; return member-level errors."""
        indices, need, _ = job
        by_index = dict(zip(indices, job_out, strict=True))
        errors = []
        for i in need:
            kind, value = by_index[i]
            if kind == "ok":
                _finish_ok(outcomes, specs, i, value, attempt, cache, progress)
            else:
                errors.append((i, value))
        return errors

    def handle_errors(job, attempt, errors, resubmit) -> None:
        indices, need, batched = job
        still = [i for i, _ in errors]
        if attempt <= retries:
            for i, error in errors:
                _emit(
                    progress,
                    TaskOutcome(
                        index=i, spec=specs[i], status="retry",
                        error=error, attempts=attempt,
                    ),
                )
            resubmit((indices, still, batched), attempt + 1)
        else:
            for i, error in errors:
                _finish_failed(outcomes, specs, i, error, attempt, progress)

    if workers == 1 or len(jobs) == 1:
        for job in jobs:
            attempt = 1
            while job is not None:
                indices, need, batched = job
                job_out = execute([specs[i] for i in indices], batched)
                errors = finish(job, attempt, job_out)
                job = None
                if errors:
                    def retry(next_job, next_attempt):
                        nonlocal job, attempt
                        job, attempt = next_job, next_attempt

                    handle_errors((indices, need, batched), attempt, errors, retry)
        return

    futures = {}  # future -> (job, attempt, dispatch time)
    with ProcessPoolExecutor(
        max_workers=min(workers, len(jobs)), initializer=_worker_init
    ) as pool:

        def submit(job, attempt: int) -> None:
            indices, _, batched = job
            fut = pool.submit(execute, [specs[i] for i in indices], batched)
            futures[fut] = (job, attempt, perf_counter())

        for job in jobs:
            submit(job, 1)

        while futures:
            if timeout is None:
                done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
            else:
                now = perf_counter()
                deadlines = {
                    fut: t0 + timeout * len(job[0])
                    for fut, (job, _, t0) in futures.items()
                }
                slack = max(0.0, min(deadlines.values()) - now)
                done, _ = wait(set(futures), timeout=slack, return_when=FIRST_COMPLETED)
                if not done:
                    now = perf_counter()
                    expired = [f for f, d in deadlines.items() if now >= d]
                    for fut in expired:
                        job, attempt, _ = futures.pop(fut)
                        fut.cancel()
                        note = (
                            f"timeout: no result within "
                            f"{timeout * len(job[0]):.1f}s of dispatch"
                        )
                        handle_errors(
                            job, attempt, [(i, note) for i in job[1]], submit
                        )
                    continue
            for fut in done:
                job, attempt, _ = futures.pop(fut)
                try:
                    job_out = fut.result()
                except Exception:
                    error = traceback.format_exc(limit=10)
                    handle_errors(
                        job, attempt, [(i, error) for i in job[1]], submit
                    )
                    continue
                errors = finish(job, attempt, job_out)
                if errors:
                    handle_errors(job, attempt, errors, submit)


@dataclass
class TaskOutcome:
    """What happened to one spec of a batch."""

    index: int
    spec: ExperimentSpec
    #: ``"completed"`` (simulated this batch), ``"cached"``, or ``"failed"``
    status: str
    result: Optional[NetworkResult] = None
    #: worker traceback (or timeout note) for failed tasks
    error: Optional[str] = None
    #: attempts actually made (0 for cache hits)
    attempts: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("completed", "cached")


@dataclass
class BatchResult:
    """All outcomes of one :func:`run_many` call, in spec order."""

    outcomes: List[TaskOutcome] = field(default_factory=list)
    workers: int = 1
    elapsed_seconds: float = 0.0

    @property
    def n_tasks(self) -> int:
        return len(self.outcomes)

    @property
    def n_simulated(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "completed")

    @property
    def n_cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    def results(self) -> List[Optional[NetworkResult]]:
        """Per-spec results (``None`` where the task failed)."""
        return [o.result for o in self.outcomes]

    def summary(self) -> dict:
        """One-glance batch accounting (printed by ``python -m repro batch``).

        Returns per-status counts plus attempt and cache tallies::

            {"n_tasks": 8, "statuses": {"completed": 6, "cached": 1,
             "failed": 1}, "total_attempts": 9, "cache_hits": 1,
             "cache_misses": 7, "workers": 4, "elapsed_seconds": 1.9}

        ``cache_hits`` counts outcomes served from the result cache;
        ``cache_misses`` is every other task (simulated or failed).
        """
        statuses: dict = {}
        for outcome in self.outcomes:
            statuses[outcome.status] = statuses.get(outcome.status, 0) + 1
        return {
            "n_tasks": self.n_tasks,
            "statuses": dict(sorted(statuses.items())),
            "total_attempts": sum(o.attempts for o in self.outcomes),
            "cache_hits": self.n_cached,
            "cache_misses": self.n_tasks - self.n_cached,
            "workers": self.workers,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def failures(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    def raise_on_failure(self) -> "BatchResult":
        """Raise :class:`ExecutionError` if any task failed; else self."""
        failed = self.failures()
        if failed:
            notes = "; ".join(
                f"{o.spec.label or f'task {o.index}'}: "
                f"{(o.error or 'unknown error').strip().splitlines()[-1]}"
                for o in failed
            )
            raise ExecutionError(
                f"{len(failed)} of {self.n_tasks} batch task(s) failed after "
                f"{max(o.attempts for o in failed)} attempt(s): {notes}"
            )
        return self


def _emit(progress, outcome: TaskOutcome) -> None:
    """Dispatch one outcome to the progress subscriber, if any.

    A subscriber is an observer: an exception it raises must never
    abort the batch (the simulation already ran; its result is good).
    It must not disappear silently either -- the failure is reported as
    a :class:`RuntimeWarning` so a broken sink is visible in test runs
    and ``-W error`` deployments.
    """
    if progress is None:
        return
    try:
        progress(
            {
                "event": outcome.status,
                "index": outcome.index,
                "label": outcome.spec.label,
                "digest": outcome.spec.digest[:12],
                "attempts": outcome.attempts,
                "error": (
                    outcome.error.strip().splitlines()[-1] if outcome.error else None
                ),
            }
        )
    except Exception as exc:
        warnings.warn(
            f"progress callback failed for "
            f"{outcome.spec.label or outcome.spec.digest[:12]} "
            f"({outcome.status}): {exc!r}; batch continues",
            RuntimeWarning,
            stacklevel=2,
        )


def _finish_ok(outcomes, specs, i, payload, attempts, cache, progress) -> None:
    spec = specs[i]
    result = payload_to_result(payload, spec.config)
    if cache is not None:
        cache.put(spec, payload)
    outcomes[i] = TaskOutcome(
        index=i,
        spec=spec,
        status="completed",
        result=result,
        attempts=attempts,
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
    )
    _emit(progress, outcomes[i])


def _finish_failed(outcomes, specs, i, error, attempts, progress) -> None:
    outcomes[i] = TaskOutcome(
        index=i, spec=specs[i], status="failed", error=error, attempts=attempts
    )
    _emit(progress, outcomes[i])


def _run_serial(specs, pending, outcomes, retries, task_fn, cache, progress) -> None:
    for i in pending:
        attempts = 0
        while True:
            attempts += 1
            (kind, value), = _run_chunk([specs[i]], task_fn)
            if kind == "ok":
                _finish_ok(outcomes, specs, i, value, attempts, cache, progress)
                break
            if attempts <= retries:
                continue
            _finish_failed(outcomes, specs, i, value, attempts, progress)
            break


class LocalPool:
    """Chunked dispatch onto a :class:`ProcessPoolExecutor` with retries.

    Tasks are submitted in chunks (amortising IPC and fork overhead);
    failures within a chunk are retried *individually*, so one sick
    scenario never drags its chunk-mates back through the pool.
    """

    def __init__(
        self,
        workers: int,
        retries: int = 1,
        timeout: Optional[float] = None,
        chunksize: Optional[int] = None,
    ) -> None:
        self.workers = workers
        self.retries = retries
        self.timeout = timeout
        self.chunksize = chunksize

    def _chunks(self, pending: List[int]) -> List[List[int]]:
        size = self.chunksize
        if size is None:
            # ~4 chunks per worker keeps the pool fed without making
            # one slow chunk the long pole
            size = max(1, -(-len(pending) // (self.workers * 4)))
        return [pending[j : j + size] for j in range(0, len(pending), size)]

    def run(self, specs, pending, outcomes, task_fn, cache, progress) -> None:
        futures = {}  # future -> (index list, attempt number, dispatch time)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(pending)), initializer=_worker_init
        ) as pool:

            def submit(idx_list: List[int], attempt: int) -> None:
                fut = pool.submit(_run_chunk, [specs[i] for i in idx_list], task_fn)
                futures[fut] = (idx_list, attempt, perf_counter())

            def handle_error(i: int, attempt: int, error: str) -> None:
                if attempt <= self.retries:
                    _emit(
                        progress,
                        TaskOutcome(
                            index=i, spec=specs[i], status="retry",
                            error=error, attempts=attempt,
                        ),
                    )
                    submit([i], attempt + 1)
                else:
                    _finish_failed(outcomes, specs, i, error, attempt, progress)

            for chunk in self._chunks(pending):
                submit(chunk, 1)

            while futures:
                if self.timeout is None:
                    done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                else:
                    now = perf_counter()
                    deadlines = {
                        fut: t0 + self.timeout * len(idx)
                        for fut, (idx, _, t0) in futures.items()
                    }
                    slack = max(0.0, min(deadlines.values()) - now)
                    done, _ = wait(
                        set(futures), timeout=slack, return_when=FIRST_COMPLETED
                    )
                    if not done:
                        now = perf_counter()
                        expired = [f for f, d in deadlines.items() if now >= d]
                        for fut in expired:
                            idx_list, attempt, t0 = futures.pop(fut)
                            fut.cancel()  # frees the slot if not yet started
                            note = (
                                f"timeout: no result within "
                                f"{self.timeout * len(idx_list):.1f}s of dispatch"
                            )
                            for i in idx_list:
                                handle_error(i, attempt, note)
                        continue
                for fut in done:
                    idx_list, attempt, _ = futures.pop(fut)
                    try:
                        chunk_out = fut.result()
                    except Exception:
                        # the worker process died (or the chunk call
                        # itself broke); every spec in it counts one
                        # failed attempt
                        error = traceback.format_exc(limit=10)
                        for i in idx_list:
                            handle_error(i, attempt, error)
                        continue
                    for i, (kind, value) in zip(idx_list, chunk_out, strict=True):
                        if kind == "ok":
                            _finish_ok(
                                outcomes, specs, i, value, attempt, cache, progress
                            )
                        else:
                            handle_error(i, attempt, value)


def run_many(
    specs: Sequence[ExperimentSpec],
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    retries: int = 1,
    timeout: Optional[float] = None,
    chunksize: Optional[int] = None,
    base_seed: int = DEFAULT_SEED,
    progress: Optional[Callable[[dict], None]] = None,
    task_fn: Optional[Callable[[ExperimentSpec], NetworkResult]] = None,
    vectorize: bool = False,
    stream: bool = False,
    shard_mem: Optional[int] = None,
    backend: str = "auto",
    db: Optional["ExperimentDB"] = None,
) -> BatchResult:
    """Execute a batch of specs; see the module docstring for the contract.

    Parameters
    ----------
    workers:
        Process count; ``1`` (default) runs in-process with no pool.
    cache:
        Optional :class:`ResultCache`; hits skip simulation, fresh
        completions are written back.
    retries:
        Extra attempts after a task's first failure (so a task runs at
        most ``retries + 1`` times).
    timeout:
        Per-task seconds the parent waits for a dispatched chunk
        (pool mode only; see module docstring for the exact semantics).
    chunksize:
        Specs per pool submission; default targets ~4 chunks/worker.
    base_seed:
        Feeds :func:`~repro.exec.spec.resolve_seeds` for specs whose
        config has no seed.
    progress:
        Callback receiving one event dict per outcome (and per retry).
    task_fn:
        Override for the per-spec work -- used by fault-injection
        tests and custom workloads; must be picklable for ``workers > 1``.
    vectorize:
        Stack same-shape specs into replica-batched engine runs
        (:mod:`repro.simulation.batched`), one stacked run per group --
        composing with ``workers`` (groups are pool jobs) and the cache
        (entries stay per-spec, keyed by batch-marked digests; see
        :func:`~repro.exec.spec.group_for_vectorize`).  Group members
        may differ in seed, load ``p``, bulk size, favourite bias
        ``q``, and service model -- a whole sweep becomes one
        scenario-stacked kernel pass -- as long as the shape-fixing
        fields (topology, ``k``, stages, width, transfer, buffers,
        track limit, cycle budget, warm-up) agree.  Specs with no
        same-shape partner, or with finite buffers, silently fall back
        to the serial engine, so ``vectorize=True`` is always safe.
        Incompatible with ``task_fn`` and ``chunksize``.
    stream:
        Run every spec on the streamed engine
        (:mod:`repro.simulation.streamed`) in memory-bounded shards.
        Specs are stream-marked (digest kind ``"stream"`` -- a distinct
        replication design from both serial and batched runs), grouped
        by shape like ``vectorize``, and the *pending* members of each
        group sharded under ``shard_mem``: cached specs are skipped
        outright, and results are bit-identical for any shard size or
        worker count (streamed replicas are seeded independently).
        Requires infinite buffers; incompatible with ``vectorize``,
        ``task_fn``, and ``chunksize``.  ``track_limit=0`` specs
        additionally return streaming totals summaries instead of
        per-message panels (see ``docs/scaling.md``).
    shard_mem:
        Per-shard working-set budget in bytes for ``stream=True``
        (default :data:`~repro.exec.sharded.DEFAULT_SHARD_MEM`,
        256 MiB).  Purely an execution knob: it never enters digests or
        results.
    backend:
        Compute backend for vectorized groups -- ``"numpy"``,
        ``"numba"``, or ``"auto"`` (default; JIT when numba is usable,
        reference otherwise).  Purely an execution detail: results,
        digests, and cache keys are backend-independent (the JIT loop is
        bit-identical to the reference), and serial paths always use the
        reference implementation.  See :mod:`repro.simulation.backends`.
    db:
        Optional :class:`~repro.expdb.db.ExperimentDB`; every outcome
        (completed, cached, and failed) is recorded in the ledger after
        the batch finishes.  Recording is strictly observational: the
        returned :class:`BatchResult` is identical with and without a
        ledger, and a ledger write failure is swallowed (stderr note)
        rather than failing a batch that already computed its results.
    """
    if workers < 1:
        raise ExecutionError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise ExecutionError(f"retries must be >= 0, got {retries}")
    if vectorize and task_fn is not None:
        raise ExecutionError("vectorize=True cannot run a custom task_fn")
    if vectorize and chunksize is not None:
        raise ExecutionError("vectorize=True groups specs itself; drop chunksize")
    if stream and vectorize:
        raise ExecutionError(
            "stream=True and vectorize=True are distinct replication "
            "designs (independent vs shared-stream seeding); pick one"
        )
    if stream and task_fn is not None:
        raise ExecutionError("stream=True cannot run a custom task_fn")
    if stream and chunksize is not None:
        raise ExecutionError("stream=True shards specs itself; drop chunksize")
    if shard_mem is not None and not stream:
        raise ExecutionError("shard_mem only applies with stream=True")
    if backend not in ("numpy", "numba", "auto"):
        raise ExecutionError(
            f"backend must be one of 'numpy', 'numba', 'auto'; got {backend!r}"
        )
    started = perf_counter()
    specs = resolve_seeds(specs, base_seed=base_seed)
    groups = None
    if vectorize:
        # grouping sees the FULL batch (before cache lookups), so batch
        # composition -- and hence every digest and result -- is a pure
        # function of the spec list, never of cache state
        specs, groups = group_for_vectorize(specs)
    elif stream:
        # stream marking is composition-free, so here the cache may
        # legitimately shape execution: only pending specs are sharded
        specs, groups = group_for_stream(specs)
    outcomes: List[Optional[TaskOutcome]] = [None] * len(specs)

    pending: List[int] = []
    for i, spec in enumerate(specs):
        cached = cache.get(spec) if cache is not None else None
        if cached is not None:
            outcomes[i] = TaskOutcome(
                index=i, spec=spec, status="cached", result=cached, attempts=0
            )
            _emit(progress, outcomes[i])
        else:
            pending.append(i)

    if pending:
        if vectorize:
            _run_vectorized(
                specs, pending, groups, outcomes,
                workers=workers, retries=retries, timeout=timeout,
                cache=cache, progress=progress, backend=backend,
            )
        elif stream:
            _run_streamed_groups(
                specs, pending, groups, outcomes,
                workers=workers, retries=retries, timeout=timeout,
                cache=cache, progress=progress, backend=backend,
                shard_mem=shard_mem,
            )
        elif workers == 1 or len(pending) == 1:
            _run_serial(specs, pending, outcomes, retries, task_fn, cache, progress)
        else:
            LocalPool(workers, retries=retries, timeout=timeout, chunksize=chunksize).run(
                specs, pending, outcomes, task_fn, cache, progress
            )

    batch = BatchResult(
        outcomes=list(outcomes), workers=workers,
        elapsed_seconds=perf_counter() - started,
    )
    session = current_session()
    if session is not None:
        session.record_exec_batch(batch)
    if db is not None:
        import sys
        import time

        from repro.expdb.ingest import ingest_batch

        try:
            # repro.exec is a sanctioned timing layer: the ledger itself
            # never reads the clock, the timestamp enters here
            ingest_batch(db, batch, created_unix=time.time())
        except Exception as exc:
            # repro: lint-ok RPR004 -- a swallowed ledger failure must stay visible
            print(f"warning: experiment-db ingestion failed: {exc}", file=sys.stderr)
    return batch

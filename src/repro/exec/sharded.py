"""Memory-bounded sharded execution of huge streamed batches.

Two layers live here:

* **Shard planning** -- :func:`estimate_replica_bytes` models the
  streamed engine's per-replica working set (ring buffers, the
  pre-drawn arrival arrays, tracker or streaming per-message scalars)
  and :func:`plan_shard_size` turns a byte budget into a replica count.
  The shard size is an *execution* knob: it never enters a spec digest
  (:data:`repro.exec.spec.STREAM_MARKER` is composition-free), so the
  same cache entries serve every budget.
* **The direct driver** -- :func:`stream_totals` runs ``R`` replicas of
  one scenario in streaming summary mode (``track_limit=0``) without
  materialising specs, results, or cache entries: shards are dispatched
  to a process pool and their
  :class:`~repro.simulation.stats.StreamingTotals` merged in shard
  order, so peak memory is one shard's working set per worker while the
  merged moments are bit-identical to a monolithic run (shard-invariance
  of the streamed engine).  This is the R >= 1e5 path used by the scale
  benchmark and the figure overlays.

Spec-level sharded execution (cache-aware, per-spec results) is
``run_many(stream=True, shard_mem=...)`` in :mod:`repro.exec.runner`,
which plans its shards with the same functions.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List, Optional

from repro.errors import ExecutionError
from repro.simulation.network import NetworkConfig
from repro.simulation.stats import StreamingTotals
from repro.simulation.streamed import (
    DEFAULT_SKETCH_MARKERS,
    DEFAULT_TAIL_K,
    run_streamed,
)

__all__ = [
    "DEFAULT_SHARD_MEM",
    "ShardedTotals",
    "estimate_replica_bytes",
    "plan_shard_size",
    "stream_totals",
]

#: Default per-shard byte budget (256 MiB): small enough that a handful
#: of pool workers fit comfortably in commodity memory, large enough
#: that shard dispatch overhead is noise.
DEFAULT_SHARD_MEM = 256 * 1024 * 1024

#: Ring-buffer geometry of the streamed engine: 4 int64 fields at the
#: initial capacity of 64 slots per port.
_QUEUE_FIELDS = 4
_QUEUE_CAPACITY = 64


def estimate_replica_bytes(config: NetworkConfig, n_cycles: int) -> int:
    """Model of one replica's working set inside a streamed shard.

    Counts the dominant allocations: the per-port ring buffers, the
    ``(n_cycles, width)`` injection-coin block, the pre-drawn arrival
    arrays (six int64 columns per expected message), and either the
    tracker matrix (tracked mode) or the per-message total/done scalars
    (streaming mode).  A deliberate over-estimate is harmless (smaller
    shards); an under-estimate risks the memory budget, so queue growth
    beyond the initial capacity is absorbed by the x2 safety factor on
    the message-proportional terms.
    """
    topology = config.build_topology()
    ppr = topology.n_stages * topology.width
    expected_msgs = max(
        1.0, n_cycles * topology.width * config.p * config.bulk_size
    )
    queue_bytes = ppr * _QUEUE_FIELDS * _QUEUE_CAPACITY * 8
    coin_bytes = n_cycles * topology.width * 8
    predraw_bytes = 6 * 8 * expected_msgs
    if config.track_limit > 0:
        per_message = min(config.track_limit, expected_msgs) * topology.n_stages * 4
    else:
        per_message = expected_msgs * (8 + 1)  # msg_total f64 + msg_done u8
    return int(queue_bytes + coin_bytes + 2.0 * (predraw_bytes + per_message))


def plan_shard_size(
    config: NetworkConfig, n_cycles: int, shard_mem: Optional[int]
) -> int:
    """Replicas per shard under a byte budget (always at least 1)."""
    if shard_mem is None:
        shard_mem = DEFAULT_SHARD_MEM
    if shard_mem < 1:
        raise ExecutionError(f"shard_mem must be >= 1 byte, got {shard_mem}")
    return max(1, shard_mem // estimate_replica_bytes(config, n_cycles))


@dataclass
class ShardedTotals:
    """Merged outcome of one sharded streaming run."""

    totals: StreamingTotals
    injected: int
    completed: int
    elapsed_seconds: float
    n_shards: int
    shard_size: int


def _run_totals_shard(
    config: NetworkConfig,
    seeds: List[int],
    n_cycles: int,
    warmup: Optional[int],
    backend: str,
    n_markers: int,
    tail_k: int,
) -> tuple:
    """Worker-side shard executor (top-level, so it pickles)."""
    configs = [dataclasses.replace(config, seed=s) for s in seeds]
    batch = run_streamed(
        configs,
        n_cycles,
        warmup=warmup,
        backend=backend,
        n_markers=n_markers,
        tail_k=tail_k,
    )
    injected = sum(r.injected for r in batch.results)
    completed = sum(r.completed for r in batch.results)
    return batch.totals, injected, completed


def stream_totals(
    config: NetworkConfig,
    n_replications: int,
    n_cycles: int,
    *,
    warmup: Optional[int] = None,
    base_seed: int = 1000,
    shard_mem: Optional[int] = None,
    workers: int = 1,
    backend: str = "auto",
    n_markers: int = DEFAULT_SKETCH_MARKERS,
    tail_k: int = DEFAULT_TAIL_K,
    progress: Optional[Callable[[dict], None]] = None,
) -> ShardedTotals:
    """Streaming totals of ``n_replications`` replicas of one scenario.

    Replica ``i`` runs ``config`` with seed ``base_seed + i`` in
    streaming summary mode; the batch is split into shards of
    :func:`plan_shard_size` replicas and the per-shard
    :class:`~repro.simulation.stats.StreamingTotals` merged in shard
    order.  Because the streamed engine is shard-invariant and the
    merge concatenates per-replica accumulators in replica order, the
    result's exact statistics (count, moments, tail) are **independent
    of both ``shard_mem`` and ``workers``** -- only the quantile sketch
    is a per-shard approximation (merged within its grid bound).

    Memory stays bounded at one shard's working set per concurrent
    worker; nothing scales with ``n_replications`` except the
    per-replica moment accumulators (five floats each).
    """
    if n_replications < 1:
        raise ExecutionError(
            f"n_replications must be >= 1, got {n_replications}"
        )
    if workers < 1:
        raise ExecutionError(f"workers must be >= 1, got {workers}")
    cfg = dataclasses.replace(config, track_limit=0)
    shard_size = plan_shard_size(cfg, n_cycles, shard_mem)
    seeds = [base_seed + i for i in range(n_replications)]
    shards = [
        seeds[lo : lo + shard_size] for lo in range(0, len(seeds), shard_size)
    ]

    started = perf_counter()
    parts: List[tuple] = [()] * len(shards)
    if workers == 1 or len(shards) == 1:
        for j, shard_seeds in enumerate(shards):
            parts[j] = _run_totals_shard(
                cfg, shard_seeds, n_cycles, warmup, backend, n_markers, tail_k
            )
            if progress is not None:
                progress({"event": "shard", "index": j, "n_shards": len(shards),
                          "replicas": len(shard_seeds)})
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(shards))) as pool:
            futures = {
                pool.submit(
                    _run_totals_shard,
                    cfg, shard_seeds, n_cycles, warmup, backend,
                    n_markers, tail_k,
                ): j
                for j, shard_seeds in enumerate(shards)
            }
            for fut, j in futures.items():
                parts[j] = fut.result()
                if progress is not None:
                    progress({"event": "shard", "index": j,
                              "n_shards": len(shards),
                              "replicas": len(shards[j])})

    merged = StreamingTotals.concat([p[0] for p in parts])
    return ShardedTotals(
        totals=merged,
        injected=sum(p[1] for p in parts),
        completed=sum(p[2] for p in parts),
        elapsed_seconds=perf_counter() - started,
        n_shards=len(shards),
        shard_size=shard_size,
    )

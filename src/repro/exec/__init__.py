"""repro.exec: parallel experiment execution with a result cache.

The shared substrate every sweep, table, figure, and replication study
runs on:

* **specs** (:mod:`repro.exec.spec`) -- declarative scenario
  descriptions with stable SHA-256 content digests;
* **runner** (:mod:`repro.exec.runner`) -- :func:`run_many` over a
  chunked process pool with deterministic per-position seed
  derivation, bounded retries, per-task timeouts, and partial-result
  reporting;
* **cache** (:mod:`repro.exec.cache`) -- digest-keyed on-disk results
  under ``.repro-cache/`` so repeated batches skip completed
  simulations;
* **context** (:mod:`repro.exec.context`) -- a process-wide
  :class:`ExecutionContext` (workers + cache) the analysis generators
  consult, mirroring :mod:`repro.obs.session`;
* **scenarios** (:mod:`repro.exec.scenarios`) -- the versioned YAML
  scenario library (``scenarios/*.yaml``) behind ``python -m repro
  batch`` and the :mod:`repro.api` service.

Determinism contract: for any batch, ``workers=N`` produces statistics
bit-identical to ``workers=1``, and a cached result is bit-identical to
a fresh one.  See ``docs/execution.md``.
"""

from __future__ import annotations

from repro.exec.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
    payload_to_result,
    result_to_payload,
)
from repro.exec.context import (
    ExecutionContext,
    current_execution,
    run_batch,
    simulate,
    use_execution,
)
from repro.exec.runner import (
    BatchResult,
    LocalPool,
    TaskOutcome,
    execute_spec,
    run_many,
)
from repro.exec.scenarios import (
    SCENARIO_SCHEMA_VERSION,
    ScenarioSet,
    available_scenario_sets,
    load_scenario_file,
    load_scenarios,
    scenario_dir,
    scenario_specs,
)
from repro.exec.sharded import (
    DEFAULT_SHARD_MEM,
    ShardedTotals,
    estimate_replica_bytes,
    plan_shard_size,
    stream_totals,
)
from repro.exec.spec import (
    SPEC_SCHEMA_VERSION,
    STREAM_MARKER,
    ExperimentSpec,
    group_for_stream,
    group_for_vectorize,
    resolve_seeds,
    spec_from_jsonable,
    specs_from_file,
)

__all__ = [
    # spec
    "SPEC_SCHEMA_VERSION",
    "STREAM_MARKER",
    "ExperimentSpec",
    "group_for_stream",
    "group_for_vectorize",
    "resolve_seeds",
    "spec_from_jsonable",
    "specs_from_file",
    # sharded
    "DEFAULT_SHARD_MEM",
    "ShardedTotals",
    "estimate_replica_bytes",
    "plan_shard_size",
    "stream_totals",
    # runner
    "BatchResult",
    "LocalPool",
    "TaskOutcome",
    "execute_spec",
    "run_many",
    # cache
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "ResultCache",
    "payload_to_result",
    "result_to_payload",
    # context
    "ExecutionContext",
    "current_execution",
    "run_batch",
    "simulate",
    "use_execution",
    # scenarios
    "SCENARIO_SCHEMA_VERSION",
    "ScenarioSet",
    "available_scenario_sets",
    "load_scenario_file",
    "load_scenarios",
    "scenario_dir",
    "scenario_specs",
]

"""Ambient execution policy for the analysis layer.

Table, figure, and sweep generators build their simulations internally,
so "run this table with 4 workers against the shared cache" cannot be
threaded as arguments through every generator signature.  Mirroring
:mod:`repro.obs.session`, an :class:`ExecutionContext` is installed
process-wide (the CLI's ``--workers`` / ``--cache`` flags wrap each
command in one); generators route their simulations through
:func:`run_batch` / :func:`simulate`, which consult the ambient
context.  The default context (one worker, no cache) makes both
helpers behave exactly like inline ``NetworkSimulator(config).run(...)``
loops -- library callers that never install a context see no change.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ExecutionError
from repro.simulation.sanitize import SANITIZE_ENV
from repro.exec.cache import ResultCache
from repro.exec.runner import BatchResult, run_many
from repro.exec.spec import ExperimentSpec
from repro.simulation.network import NetworkConfig, NetworkResult

__all__ = [
    "ExecutionContext",
    "use_execution",
    "current_execution",
    "run_batch",
    "simulate",
]


@dataclass(frozen=True)
class ExecutionContext:
    """How batches launched through the ambient helpers should run."""

    workers: int = 1
    cache: Optional[ResultCache] = None
    retries: int = 1
    timeout: Optional[float] = None
    #: stack same-shape specs onto the replica-batched engine
    #: (:mod:`repro.simulation.batched`); composes with ``workers``
    vectorize: bool = False
    #: compute backend for vectorized groups (``"numpy"``/``"numba"``/
    #: ``"auto"``); an execution detail -- results and cache keys are
    #: backend-independent (see :mod:`repro.simulation.backends`)
    backend: str = "auto"
    #: run specs on the streamed engine in memory-bounded shards
    #: (:mod:`repro.exec.sharded`); mutually exclusive with ``vectorize``
    stream: bool = False
    #: per-shard byte budget for ``stream`` mode (``None`` = the
    #: 256 MiB default); never enters digests or results
    shard_mem: Optional[int] = None
    #: when set, adaptive replication helpers
    #: (:func:`repro.simulation.replication.replicate_until`, sweep
    #: generators) grow replicas until the t-interval half-width of
    #: their target statistic drops below this value
    target_ci: Optional[float] = None
    #: arm the runtime sanitizer (:mod:`repro.simulation.sanitize`) for
    #: every simulation launched under this context; installs
    #: ``REPRO_SANITIZE=1`` for the context's scope so forked pool
    #: workers inherit it; an execution detail -- never enters digests
    sanitize: bool = False


_DEFAULT = ExecutionContext()
_current: ExecutionContext = _DEFAULT


def current_execution() -> ExecutionContext:
    """The installed context (the serial/no-cache default otherwise)."""
    return _current


@contextmanager
def use_execution(context: Optional[ExecutionContext] = None, **kwargs):
    """Install an execution context for the enclosed block.

    Pass a ready :class:`ExecutionContext` or its keyword fields::

        with use_execution(workers=4, cache=ResultCache()):
            tables.table_I()          # columns run as one parallel batch
    """
    global _current
    if context is not None and kwargs:
        raise ExecutionError("pass a context object or keyword fields, not both")
    ctx = context if context is not None else ExecutionContext(**kwargs)
    previous = _current
    _current = ctx
    # the engines (and forked pool workers) see the sanitizer through
    # the environment, not the context object -- export it for the
    # block and restore the previous value on the way out
    prior_env = os.environ.get(SANITIZE_ENV)
    if ctx.sanitize:
        os.environ[SANITIZE_ENV] = "1"
    try:
        yield ctx
    finally:
        _current = previous
        if ctx.sanitize:
            if prior_env is None:
                os.environ.pop(SANITIZE_ENV, None)
            else:
                os.environ[SANITIZE_ENV] = prior_env


def run_batch(specs: Sequence[ExperimentSpec], **overrides) -> BatchResult:
    """:func:`~repro.exec.runner.run_many` under the ambient context."""
    ctx = current_execution()
    kwargs = {
        "workers": ctx.workers,
        "cache": ctx.cache,
        "retries": ctx.retries,
        "timeout": ctx.timeout,
        "vectorize": ctx.vectorize,
        "backend": ctx.backend,
        "stream": ctx.stream,
        "shard_mem": ctx.shard_mem,
    }
    kwargs.update(overrides)
    return run_many(specs, **kwargs)


def simulate(
    config: NetworkConfig,
    n_cycles: int,
    warmup: Optional[int] = None,
    label: str = "",
) -> NetworkResult:
    """Run one scenario through the ambient context (cache-aware).

    The single-run convenience used by the figure and correlation-table
    generators; failures are re-raised immediately.
    """
    spec = ExperimentSpec(config=config, n_cycles=n_cycles, warmup=warmup, label=label)
    batch = run_batch([spec]).raise_on_failure()
    return batch.results()[0]

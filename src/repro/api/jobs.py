"""Digest-keyed job manager behind the simulation service.

The manager multiplexes every HTTP client onto one shared execution
backend:

* **Dedup** -- jobs are keyed by :attr:`ExperimentSpec.digest
  <repro.exec.spec.ExperimentSpec.digest>`.  Concurrent submissions of
  an identical spec all land on the *same* job, so the engine runs
  once no matter how many clients ask (:attr:`JobManager.executions`
  counts actual engine runs and is what the end-to-end tests assert
  on).  The shared :class:`~repro.exec.cache.ResultCache` extends the
  dedup across manager instances in one process
  (:meth:`~repro.exec.cache.ResultCache.get_or_begin`) and across
  processes/restarts (on-disk entries answer instantly).
* **Backpressure** -- the pending queue is bounded; a submission that
  would overflow it raises :class:`~repro.errors.JobQueueFullError`
  without changing any state, which the HTTP layer maps onto 429.
* **Observability** -- each job accumulates an ordered event list
  (``queued`` / ``running`` / per-outcome progress events from
  :func:`~repro.exec.runner.run_many` / a terminal ``done`` or
  ``failed``).  :meth:`JobManager.wait_events` is the blocking cursor
  API the SSE endpoint streams from.
* **Ledger** -- with ``db=``, every finished outcome is recorded via
  :func:`repro.expdb.ingest.ingest_outcome` (``source="api"``).
  Recording is observational: a ledger failure is warned about, never
  surfaced to the submitting client.

Execution itself is delegated to :func:`~repro.exec.runner.run_many`,
so retries, timeouts, caching, and progress events behave exactly as
they do for ``python -m repro batch``.
"""

from __future__ import annotations

import queue
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ApiError, JobQueueFullError
from repro.exec.cache import ResultCache
from repro.exec.runner import TaskOutcome, run_many
from repro.exec.spec import ExperimentSpec
from repro.simulation.network import NetworkResult

if TYPE_CHECKING:  # pragma: no cover - typing only, expdb imports lazily
    from repro.expdb.db import ExperimentDB

__all__ = ["Job", "JobManager", "result_summary"]

#: Job states a client can observe.
JOB_STATUSES = ("queued", "running", "done", "failed")

_TERMINAL = ("done", "failed")


def result_summary(result: NetworkResult) -> Dict[str, Any]:
    """The JSON-ready digest of a result a run endpoint reports.

    Deliberately scalar-and-small: the full cohort stays in the result
    cache; clients wanting arrays re-run against the cache locally.
    Streaming-summary results (``track_limit=0``) have no per-message
    cohort; their totals come from the streamed moment accumulators.
    """
    doc: Dict[str, Any] = {
        "n_cycles": int(result.n_cycles),
        "warmup": int(result.warmup),
        "injected": int(result.injected),
        "completed": int(result.completed),
        "dropped": int(result.dropped),
        "max_occupancy": int(result.max_occupancy),
        "stage_means": [float(x) for x in result.stage_means],
        "stage_variances": [float(x) for x in result.stage_variances],
        "elapsed_seconds": float(result.elapsed_seconds),
    }
    if result.totals_summary is not None:
        doc["tracked_messages"] = 0
        doc["streamed_messages"] = int(result.totals_summary.count)
        doc["mean_total_wait"] = (
            float(result.total_waiting_mean())
            if result.totals_summary.count
            else None
        )
    else:
        totals = result.tracked.totals()
        doc["tracked_messages"] = int(totals.size)
        doc["mean_total_wait"] = float(totals.mean()) if totals.size else None
    return doc


def _last_line(text: Optional[str]) -> Optional[str]:
    if not text:
        return None
    return text.strip().splitlines()[-1]


@dataclass
class Job:
    """One digest's lifecycle inside the manager."""

    digest: str
    spec: ExperimentSpec
    created_unix: float
    status: str = "queued"
    #: ordered event log; grows monotonically, read via a cursor
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: terminal outcome status ("completed" | "cached" | "failed")
    outcome_status: Optional[str] = None
    summary: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 0
    finished_unix: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.status in _TERMINAL

    def to_jsonable(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "digest": self.digest,
            "label": self.spec.label,
            "status": self.status,
            "created_unix": self.created_unix,
            "n_events": len(self.events),
        }
        if self.outcome_status is not None:
            doc["outcome"] = self.outcome_status
            doc["attempts"] = self.attempts
            doc["finished_unix"] = self.finished_unix
        if self.summary is not None:
            doc["result"] = self.summary
        if self.error is not None:
            doc["error"] = _last_line(self.error)
        return doc


class JobManager:
    """Bounded, deduplicating executor pool over :func:`run_many`.

    Parameters mirror the batch runner: ``workers`` / ``retries`` /
    ``timeout`` are passed through to each job's ``run_many`` call;
    ``executors`` is how many jobs may *run* concurrently; ``max_queue``
    bounds how many may *wait*.  ``task_fn`` is the fault-injection
    hook (tests count engine invocations through it).
    """

    def __init__(
        self,
        *,
        executors: int = 2,
        workers: int = 1,
        retries: int = 1,
        timeout: Optional[float] = None,
        backend: str = "auto",
        stream: bool = False,
        shard_mem: Optional[int] = None,
        max_queue: int = 64,
        cache: Optional[ResultCache] = None,
        use_cache: bool = True,
        db: Optional[Union[str, Path, "ExperimentDB"]] = None,
        task_fn: Optional[Callable[[ExperimentSpec], NetworkResult]] = None,
        inflight_wait: float = 300.0,
    ) -> None:
        if executors < 1:
            raise ApiError(f"executors must be >= 1, got {executors}")
        if max_queue < 1:
            raise ApiError(f"max_queue must be >= 1, got {max_queue}")
        self._use_cache = use_cache
        self._cache = cache if cache is not None else ResultCache()
        self._workers = workers
        self._retries = retries
        self._timeout = timeout
        #: compute backend forwarded to each job's run_many call (an
        #: execution detail: digests and cached payloads never see it)
        self._backend = backend
        #: streamed sharded execution knobs, forwarded the same way
        #: (shard_mem is a byte budget; see docs/scaling.md)
        self._stream = stream or shard_mem is not None
        self._shard_mem = shard_mem
        self._max_queue = max_queue
        # SQLite connections are thread-bound, so the manager keeps the
        # ledger *path* and opens one handle per thread that ingests.
        self._db_path: Optional[Union[str, Path]] = (
            getattr(db, "path", db) if db is not None else None
        )
        self._db_local = threading.local()
        self._task_fn = task_fn
        self._inflight_wait = inflight_wait
        #: engine runs actually performed (outcome status "completed")
        self.executions = 0
        self._jobs: Dict[str, Job] = {}
        #: one condition guards jobs, events, and counters; SSE readers
        #: block on it in wait_events
        self._cond = threading.Condition()
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue(maxsize=max_queue)
        self._stopped = False
        self._started_unix = time.time()
        self._threads = [
            threading.Thread(
                target=self._executor_loop, name=f"repro-api-exec-{i}", daemon=True
            )
            for i in range(executors)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------
    def submit(self, spec: ExperimentSpec) -> Tuple[Job, bool]:
        """Register ``spec``; returns ``(job, enqueued)``.

        ``enqueued`` is ``False`` when no new work was scheduled: the
        digest already has a live or finished job, or the result cache
        answered outright (the job is born ``done``).  The HTTP layer
        reports ``cached = not enqueued``.  A previously *failed*
        digest is re-enqueued (transient failures must not poison a
        digest for the life of the service).

        Raises :class:`JobQueueFullError` when the pending queue is at
        capacity -- nothing is registered in that case.
        """
        digest = spec.digest
        with self._cond:
            if self._stopped:
                raise ApiError("job manager is stopped")
            existing = self._jobs.get(digest)
            if existing is not None and existing.status != "failed":
                return existing, False
        # Disk lookup outside the lock: a slow cache read must not
        # stall every SSE reader and submitter.
        cached = self._cache.get(spec) if self._use_cache else None
        with self._cond:
            existing = self._jobs.get(digest)
            if existing is not None and existing.status != "failed":
                return existing, False
            job = existing or Job(digest=digest, spec=spec, created_unix=time.time())
            if cached is not None:
                self._jobs[digest] = job
                outcome = TaskOutcome(
                    index=0, spec=spec, status="cached", result=cached, attempts=0
                )
                self._record_outcome(job, outcome)
                return job, False
            try:
                self._queue.put_nowait(digest)
            except queue.Full as exc:
                raise JobQueueFullError(
                    f"job queue full ({self._max_queue} pending); retry later"
                ) from exc
            job.status = "queued"
            job.error = None
            job.outcome_status = None
            job.summary = None
            self._jobs[digest] = job
            self._append_event(
                job, {"event": "queued", "digest": digest[:12], "label": spec.label}
            )
            return job, True

    # -- queries -------------------------------------------------------
    def get(self, digest: str) -> Optional[Job]:
        with self._cond:
            return self._jobs.get(digest)

    def wait_events(
        self, digest: str, cursor: int = 0, timeout: Optional[float] = None
    ) -> Tuple[List[Dict[str, Any]], bool]:
        """Events after ``cursor``, blocking up to ``timeout`` for news.

        Returns ``(events, done)``.  An empty event list with ``done``
        false means the wait timed out (SSE sends a keepalive and
        loops).  Raises :class:`ApiError` for an unknown digest.
        """
        with self._cond:
            job = self._jobs.get(digest)
            if job is None:
                raise ApiError(f"unknown run {digest!r}")
            if len(job.events) <= cursor and not job.done:
                self._cond.wait(timeout)
            return list(job.events[cursor:]), job.done

    def stats(self) -> Dict[str, Any]:
        """Service-level accounting for ``GET /v1/stats``."""
        with self._cond:
            by_status = dict.fromkeys(JOB_STATUSES, 0)
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            doc: Dict[str, Any] = {
                "jobs": by_status,
                "n_jobs": len(self._jobs),
                "executions": self.executions,
                "queue_depth": self._queue.qsize(),
                "max_queue": self._max_queue,
                "executors": len(self._threads),
                "workers": self._workers,
                "backend": self._backend,
                "stream": self._stream,
                "shard_mem": self._shard_mem,
                "uptime_seconds": time.time() - self._started_unix,
                "ledger": self._db_path is not None,
            }
        doc["cache"] = self._cache.stats().to_dict() if self._use_cache else None
        return doc

    # -- lifecycle -----------------------------------------------------
    def stop(self, timeout: float = 5.0) -> None:
        """Drain the executors; queued-but-unstarted jobs stay queued."""
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            self._cond.notify_all()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)

    # -- internals -----------------------------------------------------
    def _append_event(self, job: Job, event: Dict[str, Any]) -> None:
        """Record one event and wake every waiting stream (lock held)."""
        job.events.append(event)
        self._cond.notify_all()

    def _executor_loop(self) -> None:
        while True:
            digest = self._queue.get()
            if digest is None:
                return
            try:
                self._run_job(digest)
            except Exception as exc:
                warnings.warn(
                    f"api executor crashed on {digest[:12]}: {exc!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def _run_job(self, digest: str) -> None:
        with self._cond:
            job = self._jobs.get(digest)
            if job is None or job.status != "queued":
                return
            job.status = "running"
            self._append_event(
                job,
                {"event": "running", "digest": digest[:12], "label": job.spec.label},
            )
        spec = job.spec

        def progress(event: Dict[str, Any]) -> None:
            with self._cond:
                self._append_event(job, dict(event))

        token = None
        result: Optional[NetworkResult] = None
        if self._use_cache:
            result, token = self._cache.get_or_begin(spec)
            if result is None and token is not None and not token.leader:
                # Another thread of this process is computing the same
                # digest (e.g. a sibling manager sharing the cache):
                # wait for it, then either take its answer or claim
                # leadership ourselves.
                token.event.wait(self._inflight_wait)
                result, token = self._cache.get_or_begin(spec)
        try:
            if result is not None:
                outcome = TaskOutcome(
                    index=0, spec=spec, status="cached", result=result, attempts=0
                )
                progress(
                    {
                        "event": "cached",
                        "index": 0,
                        "label": spec.label,
                        "digest": digest[:12],
                        "attempts": 0,
                        "error": None,
                    }
                )
            else:
                batch = run_many(
                    [spec],
                    workers=self._workers,
                    cache=self._cache if self._use_cache else None,
                    retries=self._retries,
                    timeout=self._timeout,
                    progress=progress,
                    task_fn=self._task_fn,
                    backend=self._backend,
                    stream=self._stream,
                    shard_mem=self._shard_mem,
                )
                outcome = batch.outcomes[0]
        except Exception as exc:
            outcome = TaskOutcome(
                index=0, spec=spec, status="failed", error=repr(exc), attempts=1
            )
        finally:
            if token is not None and token.leader:
                self._cache.finish(spec)
        with self._cond:
            self._record_outcome(job, outcome)

    def _record_outcome(self, job: Job, outcome: TaskOutcome) -> None:
        """Finalize a job from its outcome (caller holds the lock)."""
        self._ingest(job, outcome)
        job.outcome_status = outcome.status
        job.attempts = outcome.attempts
        job.error = outcome.error
        job.finished_unix = time.time()
        job.summary = (
            result_summary(outcome.result) if outcome.result is not None else None
        )
        if outcome.status == "completed":
            self.executions += 1
        job.status = "done" if outcome.ok else "failed"
        self._append_event(
            job,
            {
                "event": job.status,
                "status": outcome.status,
                "digest": job.digest[:12],
                "label": job.spec.label,
                "attempts": outcome.attempts,
                "error": _last_line(outcome.error),
            },
        )

    def _thread_db(self) -> Optional["ExperimentDB"]:
        """This thread's ledger handle, opened on first use."""
        if self._db_path is None:
            return None
        db = getattr(self._db_local, "db", None)
        if db is None:
            from repro.expdb.db import ExperimentDB

            db = ExperimentDB(self._db_path)
            self._db_local.db = db
        return db

    def _ingest(self, job: Job, outcome: TaskOutcome) -> None:
        if self._db_path is None:
            return
        from repro.expdb.ingest import ingest_outcome

        try:
            db = self._thread_db()
            assert db is not None
            ingest_outcome(db, outcome, created_unix=time.time(), source="api")
        except Exception as exc:
            warnings.warn(
                f"experiment-db ingestion failed for {job.digest[:12]}: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )

"""A tiny stdlib client for the simulation service.

Used by ``python -m repro submit``, the CI smoke job, and the
end-to-end tests; applications embedding the service in-process should
talk to :class:`~repro.api.jobs.JobManager` directly instead.

Everything rides :mod:`urllib.request`; HTTP-level failures surface as
:class:`~repro.errors.ApiError` carrying the server's structured error
body when one was sent.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ApiError

__all__ = ["ApiClient", "parse_sse"]


def parse_sse(lines: Iterator[str]) -> Iterator[Dict[str, Any]]:
    """Decode a Server-Sent-Events byte stream into event dicts.

    Yields ``{"event": name, "data": <decoded JSON>}`` per message;
    comment lines (keepalives) are skipped.  Only the single-``data:``
    framing the server emits is supported.
    """
    name: Optional[str] = None
    data: List[str] = []
    for raw in lines:
        line = raw.rstrip("\n").rstrip("\r")
        if line.startswith(":"):
            continue
        if line.startswith("event:"):
            name = line[len("event:") :].strip()
            continue
        if line.startswith("data:"):
            data.append(line[len("data:") :].strip())
            continue
        if line == "" and (name is not None or data):
            payload = "\n".join(data)
            try:
                decoded: Any = json.loads(payload) if payload else None
            except json.JSONDecodeError:
                decoded = payload
            yield {"event": name or "message", "data": decoded}
            name, data = None, []


class ApiClient:
    """Thin JSON-over-HTTP wrapper around one service base URL."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                doc = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                error_doc = json.loads(exc.read().decode("utf-8"))
                detail = error_doc.get("error", {}).get("message", "")
            except Exception as parse_exc:
                detail = f"(unparseable error body: {parse_exc!r})"
            raise ApiError(
                f"{method} {path} -> HTTP {exc.code}: {detail or exc.reason}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ApiError(f"{method} {url} failed: {exc.reason}") from exc
        if not isinstance(doc, dict):
            raise ApiError(f"{method} {path}: expected a JSON object response")
        return doc

    # -- endpoints -----------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def scenarios(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/scenarios")

    def openapi(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/openapi.json")

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """POST a submission body; returns the ``{count, runs}`` doc."""
        return self._request("POST", "/v1/runs", body=payload)

    def run(self, digest: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/runs/{digest}")

    def events(self, digest: str) -> List[Dict[str, Any]]:
        """Read a run's full SSE stream (blocks until the job ends)."""
        url = f"{self.base_url}/v1/runs/{digest}/events"
        request = urllib.request.Request(url, headers={"Accept": "text/event-stream"})
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                text = response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ApiError(f"GET {url} -> HTTP {exc.code}") from exc
        except urllib.error.URLError as exc:
            raise ApiError(f"GET {url} failed: {exc.reason}") from exc
        return list(parse_sse(iter(text.splitlines(keepends=True))))

    def wait(self, digest: str, *, timeout: float = 300.0, poll: float = 0.2) -> Dict[str, Any]:
        """Poll a run until it reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.run(digest)
            if doc.get("status") in ("done", "failed"):
                return doc
            if time.monotonic() >= deadline:
                raise ApiError(
                    f"run {digest[:12]} still {doc.get('status')!r} after {timeout}s"
                )
            time.sleep(poll)

"""Hand-written OpenAPI 3 description of the simulation service.

The document is maintained by hand (no schema-generation dependency)
and served verbatim at ``GET /v1/openapi.json``.  It is deliberately a
*contract*, not a mirror of the implementation: the end-to-end tests
assert that every route the server exposes appears here and vice
versa, so drift between the two is a test failure.
"""

from __future__ import annotations

from typing import Any, Dict

from repro._version import __version__

__all__ = ["API_VERSION", "openapi_document"]

#: Path prefix every route lives under; bump for breaking changes.
API_VERSION = "v1"

_RUN_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["digest", "status"],
    "properties": {
        "digest": {
            "type": "string",
            "pattern": "^[0-9a-f]{64}$",
            "description": "Content digest of the experiment spec (job key).",
        },
        "label": {"type": "string"},
        "status": {
            "type": "string",
            "enum": ["queued", "running", "done", "failed"],
        },
        "outcome": {
            "type": "string",
            "enum": ["completed", "cached", "failed"],
            "description": "Terminal outcome; present once status is done/failed.",
        },
        "created_unix": {"type": "number"},
        "finished_unix": {"type": "number"},
        "n_events": {"type": "integer"},
        "attempts": {"type": "integer"},
        "result": {
            "type": "object",
            "description": "Scalar result summary (stage means/variances, counts).",
        },
        "error": {"type": "string"},
    },
}

_SUBMIT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "description": (
        "Either an inline spec document ({'spec': {...}}) or a named "
        "scenario set ({'scenario': 'smoke'}), optionally narrowed to "
        "one entry by label and rescaled by n_cycles."
    ),
    "properties": {
        "spec": {
            "type": "object",
            "description": (
                "Inline experiment spec: {'config': {...}, 'n_cycles': N, "
                "'warmup': N|null, 'label': '...'} -- the shape written by "
                "ExperimentSpec.to_jsonable and accepted by spec files."
            ),
        },
        "scenario": {
            "type": "string",
            "description": "Name of a scenario set from the scenario library.",
        },
        "label": {
            "type": "string",
            "description": "Submit only the scenario entry with this label.",
        },
        "n_cycles": {
            "type": "integer",
            "minimum": 1,
            "description": "Override every submitted spec's cycle budget.",
        },
    },
}

_SUBMIT_RESPONSE: Dict[str, Any] = {
    "type": "object",
    "required": ["runs", "count"],
    "properties": {
        "count": {"type": "integer"},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["digest", "status", "cached", "url"],
                "properties": {
                    "digest": {"type": "string"},
                    "label": {"type": "string"},
                    "status": {"type": "string"},
                    "cached": {
                        "type": "boolean",
                        "description": (
                            "True when no new execution was scheduled: the "
                            "result cache answered, or the digest deduped "
                            "onto an existing job."
                        ),
                    },
                    "url": {"type": "string"},
                },
            },
        },
    },
}

_ERROR_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["error"],
    "properties": {
        "error": {
            "type": "object",
            "required": ["code", "message"],
            "properties": {
                "code": {"type": "string"},
                "message": {"type": "string"},
            },
        }
    },
}


def _error_response(description: str) -> Dict[str, Any]:
    return {
        "description": description,
        "content": {
            "application/json": {"schema": {"$ref": "#/components/schemas/Error"}}
        },
    }


def openapi_document() -> Dict[str, Any]:
    """The complete OpenAPI 3.0 document served by the API."""
    return {
        "openapi": "3.0.3",
        "info": {
            "title": "repro simulation service",
            "version": __version__,
            "description": (
                "Digest-keyed execution of clocked multistage interconnection "
                "network experiments (Kruskal-Snir-Weiss waiting-time "
                "reproduction). Identical submissions deduplicate onto one "
                "job; finished results are served from the content-addressed "
                "result cache."
            ),
        },
        "paths": {
            f"/{API_VERSION}/healthz": {
                "get": {
                    "summary": "Liveness probe",
                    "responses": {
                        "200": {
                            "description": "Service is up.",
                            "content": {
                                "application/json": {
                                    "schema": {
                                        "type": "object",
                                        "properties": {
                                            "status": {"type": "string"},
                                            "version": {"type": "string"},
                                        },
                                    }
                                }
                            },
                        }
                    },
                }
            },
            f"/{API_VERSION}/stats": {
                "get": {
                    "summary": "Service accounting",
                    "description": (
                        "Job counts by status, engine executions, queue depth "
                        "and bound, and result-cache statistics."
                    ),
                    "responses": {
                        "200": {
                            "description": "Current counters.",
                            "content": {"application/json": {"schema": {"type": "object"}}},
                        }
                    },
                }
            },
            f"/{API_VERSION}/scenarios": {
                "get": {
                    "summary": "List the scenario library",
                    "description": (
                        "Every versioned scenario set on disk, with per-entry "
                        "labels and digests."
                    ),
                    "responses": {
                        "200": {
                            "description": "Scenario sets.",
                            "content": {"application/json": {"schema": {"type": "object"}}},
                        }
                    },
                }
            },
            f"/{API_VERSION}/openapi.json": {
                "get": {
                    "summary": "This document",
                    "responses": {
                        "200": {
                            "description": "The OpenAPI description.",
                            "content": {"application/json": {"schema": {"type": "object"}}},
                        }
                    },
                }
            },
            f"/{API_VERSION}/runs": {
                "post": {
                    "summary": "Submit experiments",
                    "description": (
                        "Submit an inline spec or a named scenario set. "
                        "Submissions are keyed by content digest: an identical "
                        "spec never runs twice, whether it is already cached, "
                        "queued, running, or finished."
                    ),
                    "requestBody": {
                        "required": True,
                        "content": {
                            "application/json": {
                                "schema": {"$ref": "#/components/schemas/Submit"}
                            }
                        },
                    },
                    "responses": {
                        "202": {
                            "description": "Accepted (some runs may be cached).",
                            "content": {
                                "application/json": {
                                    "schema": {
                                        "$ref": "#/components/schemas/SubmitResponse"
                                    }
                                }
                            },
                        },
                        "400": _error_response("Malformed submission."),
                        "429": _error_response(
                            "Job queue at capacity; nothing was enqueued."
                        ),
                    },
                }
            },
            f"/{API_VERSION}/runs/{{digest}}": {
                "get": {
                    "summary": "Run state",
                    "parameters": [
                        {
                            "name": "digest",
                            "in": "path",
                            "required": True,
                            "schema": {"type": "string"},
                        }
                    ],
                    "responses": {
                        "200": {
                            "description": "Job state (result summary once done).",
                            "content": {
                                "application/json": {
                                    "schema": {"$ref": "#/components/schemas/Run"}
                                }
                            },
                        },
                        "404": _error_response("Unknown digest."),
                    },
                }
            },
            f"/{API_VERSION}/runs/{{digest}}/events": {
                "get": {
                    "summary": "Progress stream (SSE)",
                    "description": (
                        "Server-sent events: each message has an `event:` "
                        "field (queued, running, retry, completed, cached, "
                        "failed, done) and a JSON `data:` payload. The stream "
                        "replays the job's full event log from the start and "
                        "closes after the terminal done/failed event. "
                        "Keepalive comment lines (`: keepalive`) are sent "
                        "while the job is idle."
                    ),
                    "parameters": [
                        {
                            "name": "digest",
                            "in": "path",
                            "required": True,
                            "schema": {"type": "string"},
                        }
                    ],
                    "responses": {
                        "200": {
                            "description": "text/event-stream until job completion.",
                            "content": {"text/event-stream": {}},
                        },
                        "404": _error_response("Unknown digest."),
                    },
                }
            },
        },
        "components": {
            "schemas": {
                "Run": _RUN_SCHEMA,
                "Submit": _SUBMIT_SCHEMA,
                "SubmitResponse": _SUBMIT_RESPONSE,
                "Error": _ERROR_SCHEMA,
            }
        },
    }

"""The simulation service: HTTP API over the experiment machinery.

:mod:`repro.api` turns the execution layer (:mod:`repro.exec`) into a
long-lived, dependency-free network service:

* :mod:`repro.api.jobs` -- the :class:`JobManager`: digest-keyed job
  dedup, a bounded pending queue (backpressure as
  :class:`~repro.errors.JobQueueFullError` / HTTP 429), executor
  threads delegating to :func:`~repro.exec.runner.run_many`, an event
  log per job, and optional experiment-ledger ingestion.
* :mod:`repro.api.server` -- the stdlib ``http.server`` front end:
  ``POST /v1/runs``, ``GET /v1/runs/{digest}`` and its SSE
  ``/events`` stream, the scenario catalogue, health, stats, and the
  OpenAPI document.
* :mod:`repro.api.openapi` -- the hand-written OpenAPI 3 contract.
* :mod:`repro.api.client` -- a small :mod:`urllib` client
  (``python -m repro submit`` and the CI smoke job ride it).

Start a service with ``python -m repro serve`` or in-process::

    from repro.api import JobManager, make_server, start_in_thread

    server = make_server(port=0, manager=JobManager(executors=4))
    start_in_thread(server)
    print(f"listening on http://127.0.0.1:{server.port}")
"""

from repro.api.client import ApiClient, parse_sse
from repro.api.jobs import Job, JobManager, result_summary
from repro.api.openapi import API_VERSION, openapi_document
from repro.api.server import (
    ApiHandler,
    ApiServer,
    make_server,
    serve_forever,
    start_in_thread,
)

__all__ = [
    "API_VERSION",
    "ApiClient",
    "ApiHandler",
    "ApiServer",
    "Job",
    "JobManager",
    "make_server",
    "openapi_document",
    "parse_sse",
    "result_summary",
    "serve_forever",
    "start_in_thread",
]

"""The HTTP face of the simulation service (stdlib only).

Built on :class:`http.server.ThreadingHTTPServer` -- one thread per
connection, all multiplexed onto the shared :class:`~repro.api.jobs.
JobManager` -- so the service has zero dependencies beyond the Python
standard library.  Routes (all under ``/v1``, see
:mod:`repro.api.openapi` for the contract):

========================  =============================================
``POST /v1/runs``         submit an inline spec or a named scenario set
``GET /v1/runs/{d}``      job state / result summary for a digest
``GET /v1/runs/{d}/events``  live progress as Server-Sent Events
``GET /v1/scenarios``     the on-disk scenario library
``GET /v1/openapi.json``  the hand-written OpenAPI 3 document
``GET /v1/healthz``       liveness probe
``GET /v1/stats``         jobs / executions / queue / cache counters
========================  =============================================

Error mapping: malformed submissions (:class:`~repro.errors.ApiError`,
:class:`~repro.errors.ExecutionError`) are 400, unknown digests and
scenario labels 404, a full job queue 429
(:class:`~repro.errors.JobQueueFullError`), anything unexpected 500.
Every error body is ``{"error": {"code", "message"}}``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro._version import __version__
from repro.api.jobs import JobManager
from repro.api.openapi import openapi_document
from repro.errors import ApiError, ExecutionError, JobQueueFullError
from repro.exec.scenarios import (
    available_scenario_sets,
    list_scenario_files,
    load_scenario_file,
    scenario_dir,
    scenario_specs,
)
from repro.exec.spec import ExperimentSpec, spec_from_jsonable

__all__ = [
    "ApiServer",
    "ApiHandler",
    "make_server",
    "serve_forever",
    "start_in_thread",
]

#: How long one SSE wait slice lasts before a keepalive comment.
SSE_KEEPALIVE_SECONDS = 15.0

#: Largest request body the server will read (a spec is tiny).
MAX_BODY_BYTES = 1 << 20


class ApiServer(ThreadingHTTPServer):
    """A threading HTTP server carrying the shared job manager."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        manager: JobManager,
        *,
        quiet: bool = False,
    ) -> None:
        self.manager = manager
        self.quiet = quiet
        super().__init__(address, ApiHandler)

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    def shutdown(self) -> None:  # type: ignore[override]
        super().shutdown()
        self.manager.stop()


def _submission_specs(doc: Dict[str, Any]) -> List[ExperimentSpec]:
    """Resolve a POST body into the specs it asks for.

    Raises :class:`ApiError` (400) for shape problems and delegates
    spec/scenario validation to the exec layer
    (:class:`~repro.errors.ExecutionError`, also 400 -- except unknown
    scenario labels, which the handler maps to 404).
    """
    if not isinstance(doc, dict):
        raise ApiError("request body must be a JSON object")
    has_spec = "spec" in doc
    has_scenario = "scenario" in doc
    if has_spec == has_scenario:
        raise ApiError("submit exactly one of 'spec' or 'scenario'")
    n_cycles = doc.get("n_cycles")
    if n_cycles is not None and (
        isinstance(n_cycles, bool) or not isinstance(n_cycles, int) or n_cycles < 1
    ):
        raise ApiError(f"n_cycles must be a positive integer, got {n_cycles!r}")
    if has_spec:
        if "label" in doc:
            raise ApiError("'label' only narrows a 'scenario' submission")
        spec_doc = doc["spec"]
        if not isinstance(spec_doc, dict):
            raise ApiError("'spec' must be a JSON object")
        spec = spec_from_jsonable(dict(spec_doc, n_cycles=n_cycles or spec_doc.get("n_cycles")))
        return [spec]
    name = doc["scenario"]
    if not isinstance(name, str) or not name:
        raise ApiError("'scenario' must be a non-empty string")
    specs = scenario_specs(name, n_cycles=n_cycles)
    label = doc.get("label")
    if label is not None:
        chosen = [s for s in specs if s.label == label]
        if not chosen:
            raise ApiError(
                f"scenario set {name!r} has no entry labelled {label!r} "
                f"(labels: {[s.label for s in specs]})",
            )
        return chosen
    return list(specs)


def _scenario_catalogue() -> Dict[str, Any]:
    sets = []
    for name in available_scenario_sets():
        path = list_scenario_files()[name]
        sets.append(load_scenario_file(path).to_jsonable())
    return {
        "scenario_dir": str(scenario_dir()),
        "n_sets": len(sets),
        "sets": sets,
    }


class ApiHandler(BaseHTTPRequestHandler):
    """Request router; all state lives on ``self.server.manager``."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-api/{__version__}"
    server: ApiServer  # narrowed from BaseServer for the type checker

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, doc: Dict[str, Any]) -> None:
        body = json.dumps(doc, indent=2).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self._send_json(status, {"error": {"code": code, "message": message}})

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ApiError("request body required")
        if length > MAX_BODY_BYTES:
            raise ApiError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise ApiError("request body must be a JSON object")
        return doc

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # http.server dispatches on this exact name
        try:
            self._route_get()
        except ApiError as exc:
            self._send_error_json(404, "not_found", str(exc))
        except BrokenPipeError:
            pass  # client hung up mid-response; nothing to send it
        except Exception as exc:
            self._send_error_json(500, "internal", repr(exc))

    def do_POST(self) -> None:  # http.server dispatches on this exact name
        if self.path.rstrip("/") != "/v1/runs":
            self._send_error_json(404, "not_found", f"no POST route {self.path!r}")
            return
        try:
            doc = self._read_body()
            specs = _submission_specs(doc)
        except JobQueueFullError as exc:
            self._send_error_json(429, "queue_full", str(exc))
            return
        except (ApiError, ExecutionError) as exc:
            status, code = (400, "bad_request")
            if "has no entry labelled" in str(exc) or "unknown scenario set" in str(exc):
                status, code = (404, "not_found")
            self._send_error_json(status, code, str(exc))
            return
        except BrokenPipeError:
            return  # client hung up; the response is unsendable
        except Exception as exc:
            self._send_error_json(500, "internal", repr(exc))
            return
        self._submit(specs)

    def _submit(self, specs: List[ExperimentSpec]) -> None:
        manager = self.server.manager
        runs = []
        try:
            for spec in specs:
                job, enqueued = manager.submit(spec)
                runs.append(
                    {
                        "digest": job.digest,
                        "label": spec.label,
                        "status": job.status,
                        "cached": not enqueued,
                        "url": f"/v1/runs/{job.digest}",
                    }
                )
        except JobQueueFullError as exc:
            # nothing past this point was enqueued; report what was
            self._send_json(
                429,
                {
                    "error": {"code": "queue_full", "message": str(exc)},
                    "accepted": runs,
                },
            )
            return
        self._send_json(202, {"count": len(runs), "runs": runs})

    def _route_get(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/v1/healthz":
            self._send_json(200, {"status": "ok", "version": __version__})
            return
        if path == "/v1/stats":
            self._send_json(200, self.server.manager.stats())
            return
        if path == "/v1/openapi.json":
            self._send_json(200, openapi_document())
            return
        if path == "/v1/scenarios":
            self._send_json(200, _scenario_catalogue())
            return
        parts = [p for p in path.split("/") if p]
        if len(parts) == 3 and parts[0] == "v1" and parts[1] == "runs":
            self._get_run(parts[2])
            return
        if (
            len(parts) == 4
            and parts[0] == "v1"
            and parts[1] == "runs"
            and parts[3] == "events"
        ):
            self._stream_events(parts[2])
            return
        self._send_error_json(404, "not_found", f"no route {self.path!r}")

    def _get_run(self, digest: str) -> None:
        job = self.server.manager.get(digest)
        if job is None:
            self._send_error_json(404, "not_found", f"unknown run {digest!r}")
            return
        self._send_json(200, job.to_jsonable())

    # -- SSE -----------------------------------------------------------
    def _stream_events(self, digest: str) -> None:
        manager = self.server.manager
        if manager.get(digest) is None:
            self._send_error_json(404, "not_found", f"unknown run {digest!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        # no Content-Length: the stream ends when the connection closes
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        cursor = 0
        try:
            while True:
                events, done = manager.wait_events(
                    digest, cursor, timeout=SSE_KEEPALIVE_SECONDS
                )
                for event in events:
                    name = str(event.get("event", "message"))
                    data = json.dumps(event, sort_keys=True)
                    self.wfile.write(
                        f"event: {name}\ndata: {data}\n\n".encode("utf-8")
                    )
                cursor += len(events)
                if done:
                    self.wfile.flush()
                    break
                if not events:
                    self.wfile.write(b": keepalive\n\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client closed the stream; the normal SSE ending


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    manager: Optional[JobManager] = None,
    quiet: bool = False,
) -> ApiServer:
    """Bind an :class:`ApiServer` (``port=0`` picks an ephemeral port)."""
    return ApiServer((host, port), manager or JobManager(), quiet=quiet)


def serve_forever(server: ApiServer) -> None:
    """Run the accept loop in the calling thread until interrupted."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass  # Ctrl-C is the documented way to stop serving
    finally:
        server.shutdown()
        server.server_close()


def start_in_thread(server: ApiServer) -> threading.Thread:
    """Run the accept loop in a daemon thread (tests, embedding)."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-api-accept", daemon=True
    )
    thread.start()
    return thread

"""Rational functions ``P(z)/Q(z)`` over exact or float coefficients.

The waiting-time transform of Theorem 1 is a rational function of ``z``
whenever the arrival PGF ``R`` and the service PGF ``U`` are rational
(which covers every example in the paper: binomial arrivals, bulk
arrivals, mixtures of deterministic service times, geometric service).
This module provides the full field arithmetic plus the two expansions
the analysis needs:

* :meth:`RationalFunction.taylor` about an arbitrary point -- used at
  ``z = 1`` for moments, where the transform typically has a *removable*
  singularity that the expansion resolves automatically (the paper does
  this by hand with repeated L'Hospital applications; "the derivation of
  t''(1) used six applications of L'Hospital's rule, and took Macsyma
  all night on a minicomputer" -- the exact series expansion here does
  the same job in microseconds);
* :meth:`RationalFunction.series` about ``z = 0`` -- used to read off
  probability mass functions term by term.

No GCD normalisation is performed (exact GCDs over ``Fraction`` are
cheap but unnecessary for the small degrees involved); equality is
tested by cross-multiplication.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence, Union

from repro.errors import PoleError, SeriesError
from repro.series.polynomial import Polynomial, Scalar
from repro.series.taylor import series_div

__all__ = ["RationalFunction"]


class RationalFunction:
    """An immutable rational function ``numerator / denominator``.

    Parameters
    ----------
    numerator, denominator:
        :class:`~repro.series.polynomial.Polynomial` instances or
        scalars / coefficient iterables accepted by ``Polynomial``.

    Examples
    --------
    >>> z = RationalFunction.identity()
    >>> geo = (z / 2) / (1 - z / 2)        # PGF of Geometric(1/2) on {1,2,...}
    >>> geo.evaluate(1)
    Fraction(1, 1)
    >>> geo.derivative().evaluate(1)       # mean service time = 2
    Fraction(2, 1)
    """

    __slots__ = ("_num", "_den")

    def __init__(
        self,
        numerator: Union[Polynomial, Scalar, Sequence],
        denominator: Union[Polynomial, Scalar, Sequence] = 1,
    ) -> None:
        num = _as_poly(numerator)
        den = _as_poly(denominator)
        if den.is_zero():
            raise SeriesError("rational function with zero denominator")
        self._num = num
        self._den = den

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls) -> "RationalFunction":
        """The rational function ``z``."""
        return cls(Polynomial.identity())

    @classmethod
    def constant(cls, value: Scalar) -> "RationalFunction":
        """The constant rational function ``value``."""
        return cls(Polynomial.constant(value))

    @classmethod
    def from_polynomial(cls, poly: Polynomial) -> "RationalFunction":
        """Wrap a polynomial as a rational function with denominator 1."""
        return cls(poly)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def numerator(self) -> Polynomial:
        """Numerator polynomial (not normalised)."""
        return self._num

    @property
    def denominator(self) -> Polynomial:
        """Denominator polynomial (not normalised)."""
        return self._den

    def is_polynomial(self) -> bool:
        """True when the denominator is a (non-zero) constant."""
        return self._den.degree == 0

    def is_zero(self) -> bool:
        """True iff the function is identically zero."""
        return self._num.is_zero()

    def to_exact(self) -> "RationalFunction":
        """Convert all coefficients to :class:`~fractions.Fraction`."""
        return RationalFunction(self._num.to_exact(), self._den.to_exact())

    def to_float(self) -> "RationalFunction":
        """Convert all coefficients to ``float``."""
        return RationalFunction(self._num.to_float(), self._den.to_float())

    # ------------------------------------------------------------------
    # field arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "RationalFunction":
        other = _coerce(other)
        return RationalFunction(
            self._num * other._den + other._num * self._den,
            self._den * other._den,
        )

    __radd__ = __add__

    def __neg__(self) -> "RationalFunction":
        return RationalFunction(-self._num, self._den)

    def __sub__(self, other) -> "RationalFunction":
        return self + (-_coerce(other))

    def __rsub__(self, other) -> "RationalFunction":
        return _coerce(other) - self

    def __mul__(self, other) -> "RationalFunction":
        other = _coerce(other)
        return RationalFunction(self._num * other._num, self._den * other._den)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "RationalFunction":
        other = _coerce(other)
        if other._num.is_zero():
            raise SeriesError("division of rational functions by zero")
        return RationalFunction(self._num * other._den, self._den * other._num)

    def __rtruediv__(self, other) -> "RationalFunction":
        return _coerce(other) / self

    def __pow__(self, n: int) -> "RationalFunction":
        if n < 0:
            return RationalFunction(self._den, self._num) ** (-n)
        return RationalFunction(self._num ** n, self._den ** n)

    # ------------------------------------------------------------------
    # calculus / composition / evaluation
    # ------------------------------------------------------------------
    def derivative(self, order: int = 1) -> "RationalFunction":
        """The ``order``-th derivative (quotient rule, applied repeatedly)."""
        result = self
        for _ in range(order):
            num = result._num.derivative() * result._den - result._num * result._den.derivative()
            den = result._den * result._den
            result = RationalFunction(num, den)
        return result

    def compose(self, inner: "RationalFunction") -> "RationalFunction":
        """Return ``self(inner(z))`` as a rational function.

        ``P(inner)/Q(inner)`` is computed by evaluating both polynomials
        at the rational function via Horner's rule and clearing the
        common denominator, i.e. for ``inner = A/B`` and ``deg = max(deg
        P, deg Q)``::

            P(A/B) / Q(A/B) = (sum p_i A^i B^{deg-i}) / (sum q_i A^i B^{deg-i})
        """
        inner = _coerce(inner)
        a, b = inner._num, inner._den
        deg = max(self._num.degree, self._den.degree, 0)

        def eval_cleared(poly: Polynomial) -> Polynomial:
            # sum_i c_i * A^i * B^(deg - i)
            total = Polynomial.zero()
            a_pow = Polynomial.one()
            b_pows = [Polynomial.one()]
            for _ in range(deg):
                b_pows.append(b_pows[-1] * b)
            for i in range(deg + 1):
                c = poly.coefficient(i)
                if c != 0:
                    total = total + a_pow * b_pows[deg - i] * c
                a_pow = a_pow * a
            return total

        return RationalFunction(eval_cleared(self._num), eval_cleared(self._den))

    def __call__(self, x):
        """Evaluate at a scalar or compose with another rational function."""
        if isinstance(x, RationalFunction):
            return self.compose(x)
        if isinstance(x, Polynomial):
            return self.compose(RationalFunction(x))
        return self.evaluate(x)

    def evaluate(self, x: Scalar):
        """Evaluate at scalar ``x``.

        At a removable singularity the limit is computed by expanding
        one Taylor term about ``x``.
        """
        den = self._den(x)
        num = self._num(x)
        if den != 0:
            if isinstance(num, int) and isinstance(den, int):
                return Fraction(num, den)
            return num / den
        if num != 0:
            raise PoleError(f"rational function has a pole at {x!r}")
        return self.taylor(x, 0)[0]

    # ------------------------------------------------------------------
    # expansions
    # ------------------------------------------------------------------
    def taylor(self, center: Scalar, order: int) -> List:
        """Taylor coefficients about ``center`` up to ``eps**order``.

        Removable singularities at ``center`` are resolved by cancelling
        the common leading powers of ``(z - center)`` in numerator and
        denominator; a genuine pole raises
        :class:`~repro.errors.PoleError`.
        """
        num = self._num.shift(center)
        den = self._den.shift(center)
        # give series_div enough numerator/denominator terms: cancelling
        # v leading zeros consumes v orders.
        v = min(den.valuation(), den.degree if not den.is_zero() else 0)
        need = order + v + 1
        num_c = [num.coefficient(i) for i in range(max(need, num.degree + 1))]
        den_c = [den.coefficient(i) for i in range(max(need, den.degree + 1))]
        return series_div(num_c, den_c, order)

    def series(self, order: int) -> List:
        """Maclaurin coefficients (about 0) up to ``z**order``.

        This is the pmf-extraction entry point: if the function is a
        PGF, coefficient ``n`` is ``P(X = n)``.
        """
        return self.taylor(0, order)

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float, Fraction, Polynomial)):
            other = _coerce(other)
        if not isinstance(other, RationalFunction):
            return NotImplemented
        return self._num * other._den == other._num * self._den

    def __hash__(self) -> int:
        # hash via an arbitrary canonical evaluation is fragile; rational
        # functions are rarely used as dict keys, so hash on the pair.
        return hash(("RationalFunction", self._num, self._den))

    def __repr__(self) -> str:
        if self.is_polynomial():
            return f"RationalFunction({self._num!r})"
        return f"RationalFunction({self._num!r}, {self._den!r})"

    def __str__(self) -> str:
        if self.is_polynomial() and self._den.coefficient(0) == 1:
            return str(self._num)
        return f"({self._num}) / ({self._den})"


def _as_poly(value) -> Polynomial:
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, float, Fraction)):
        return Polynomial.constant(value)
    return Polynomial(value)


def _coerce(value) -> RationalFunction:
    if isinstance(value, RationalFunction):
        return value
    if isinstance(value, Polynomial):
        return RationalFunction(value)
    if isinstance(value, (int, float, Fraction)):
        return RationalFunction.constant(value)
    raise SeriesError(f"cannot coerce {type(value).__name__} to RationalFunction")

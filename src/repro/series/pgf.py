"""Probability generating functions (PGFs) on the non-negative integers.

A :class:`PGF` wraps a :class:`~repro.series.rational.RationalFunction`
``g(z) = E[z^X]`` and provides the probabilistic vocabulary the queueing
analysis speaks: means, variances, factorial moments of any order, the
probability mass function, convolution (sums of independent variables)
and compounding (random sums), plus validation that the object really is
a PGF (``g(1) = 1``, non-negative mass).

Exactness
---------
When constructed from exact data the entire moment pipeline is exact
(``Fraction`` arithmetic end to end); this is what lets the test suite
assert the paper's closed forms with **zero** tolerance.  The pmf
extraction offers both an exact mode and a float fast path (the
recurrence behind the float path is the standard series long-division,
numerically benign here because every pmf coefficient is non-negative
and the denominator is dominated by its constant term for stable
queues).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence, Union

import numpy as np

from repro.errors import NotAProbabilityError, SeriesError
from repro.obs.profiling import profiled
from repro.series.polynomial import Polynomial, Scalar, as_exact
from repro.series.rational import RationalFunction
from repro.series.taylor import (
    central_from_raw,
    factorial_from_taylor,
    raw_from_factorial,
)

__all__ = ["PGF"]


class PGF:
    """A probability generating function ``E[z^X]`` for integer ``X >= 0``.

    Parameters
    ----------
    transform:
        The generating function as a
        :class:`~repro.series.rational.RationalFunction` (or a
        :class:`~repro.series.polynomial.Polynomial`, which is wrapped).
    validate:
        When true (default) check that ``g(1) == 1``.  The non-negativity
        of the mass function is *not* exhaustively checkable for rational
        transforms; :meth:`pmf` rechecks the extracted prefix.

    Examples
    --------
    >>> from fractions import Fraction
    >>> coin = PGF.from_pmf([Fraction(1, 2), Fraction(1, 2)])   # Bernoulli(1/2)
    >>> coin.mean()
    Fraction(1, 2)
    >>> (coin + coin).variance()      # sum of two independent coins
    Fraction(1, 2)
    """

    __slots__ = ("_transform", "_reduced_cache", "_series_cache")

    def __init__(
        self,
        transform: Union[RationalFunction, Polynomial],
        validate: bool = True,
    ) -> None:
        if isinstance(transform, Polynomial):
            transform = RationalFunction(transform)
        if not isinstance(transform, RationalFunction):
            raise SeriesError("PGF requires a RationalFunction or Polynomial")
        self._transform = transform
        if validate:
            total = transform.evaluate(1)
            if not _is_one(total):
                raise NotAProbabilityError(
                    f"generating function evaluates to {total} at z=1, expected 1"
                )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pmf(cls, pmf: Sequence[Scalar], exact: bool = True) -> "PGF":
        """Build a PGF from a finite probability mass function.

        ``pmf[j]`` is ``P(X = j)``.  With ``exact=True`` the entries are
        converted to :class:`~fractions.Fraction` via their decimal
        representation (see :func:`repro.series.polynomial.as_exact`).
        """
        values = [as_exact(p) if exact else p for p in pmf]
        total = sum(values)
        if any(v < 0 for v in values):
            raise NotAProbabilityError("pmf has negative mass")
        if not _is_one(total):
            raise NotAProbabilityError(f"pmf sums to {total}, expected 1")
        return cls(RationalFunction(Polynomial(values)), validate=False)

    @classmethod
    def degenerate(cls, value: int) -> "PGF":
        """The PGF of the constant ``value`` (i.e. ``z**value``)."""
        if value < 0:
            raise NotAProbabilityError("degenerate PGF requires value >= 0")
        return cls(RationalFunction(Polynomial.monomial(value)), validate=False)

    @classmethod
    def bernoulli(cls, p: Scalar) -> "PGF":
        """PGF of a Bernoulli(``p``) indicator: ``1 - p + p z``."""
        p = as_exact(p)
        if not 0 <= p <= 1:
            raise NotAProbabilityError(f"Bernoulli parameter {p} outside [0, 1]")
        return cls.from_pmf([1 - p, p])

    @classmethod
    def binomial(cls, n: int, p: Scalar) -> "PGF":
        """PGF of a Binomial(``n``, ``p``): ``(1 - p + p z)**n``."""
        if n < 0:
            raise NotAProbabilityError("binomial count must be >= 0")
        p = as_exact(p)
        if not 0 <= p <= 1:
            raise NotAProbabilityError(f"binomial parameter {p} outside [0, 1]")
        base = Polynomial([1 - p, p])
        return cls(RationalFunction(base ** n), validate=False)

    @classmethod
    def geometric(cls, p: Scalar) -> "PGF":
        """PGF of a Geometric(``p``) on ``{1, 2, ...}``: ``p z / (1 - (1-p) z)``.

        This is the paper's Section III-B service distribution
        ``g_j = p (1-p)^{j-1}``.
        """
        p = as_exact(p)
        if not 0 < p <= 1:
            raise NotAProbabilityError(f"geometric parameter {p} outside (0, 1]")
        num = Polynomial([0, p])
        den = Polynomial([1, -(1 - p)])
        return cls(RationalFunction(num, den), validate=False)

    @classmethod
    def shifted_geometric(cls, p: Scalar) -> "PGF":
        """PGF of a Geometric(``p``) on ``{0, 1, ...}``: ``p / (1 - (1-p) z)``."""
        p = as_exact(p)
        if not 0 < p <= 1:
            raise NotAProbabilityError(f"geometric parameter {p} outside (0, 1]")
        return cls(RationalFunction(Polynomial([p]), Polynomial([1, -(1 - p)])), validate=False)

    @classmethod
    def mixture(cls, components: Sequence["PGF"], weights: Sequence[Scalar]) -> "PGF":
        """Finite mixture: ``sum_i w_i g_i(z)`` with ``sum w_i = 1``."""
        if len(components) != len(weights):
            raise NotAProbabilityError("mixture needs one weight per component")
        ws = [as_exact(w) for w in weights]
        if any(w < 0 for w in ws):
            raise NotAProbabilityError("mixture weights must be non-negative")
        if not _is_one(sum(ws)):
            raise NotAProbabilityError(f"mixture weights sum to {sum(ws)}, expected 1")
        total = RationalFunction.constant(0)
        for g, w in zip(components, ws, strict=True):
            total = total + g.transform * RationalFunction.constant(w)
        return cls(total, validate=False)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def transform(self) -> RationalFunction:
        """The underlying rational generating function."""
        return self._transform

    def evaluate(self, z: Scalar):
        """Evaluate ``E[z^X]`` at a scalar ``z``."""
        return self._transform.evaluate(z)

    def __call__(self, z):
        """Evaluate at a scalar, or compose with another PGF/transform."""
        if isinstance(z, PGF):
            return self.compound(z)
        if isinstance(z, (RationalFunction, Polynomial)):
            return self._transform(z)
        return self.evaluate(z)

    # ------------------------------------------------------------------
    # moments
    # ------------------------------------------------------------------
    def taylor_at_one(self, order: int) -> List:
        """Taylor coefficients of the transform about ``z = 1``."""
        return self._transform.taylor(1, order)

    def factorial_moment(self, r: int):
        """The ``r``-th falling factorial moment ``E[X (X-1) ... (X-r+1)]``.

        ``r = 0`` gives 1; ``r = 1`` the mean.  Equivalent to the
        ``r``-th derivative of the transform at 1 (this is exactly the
        quantity the paper denotes ``R''(1)``, ``U'''(1)`` etc.).
        """
        if r < 0:
            raise SeriesError("factorial moment order must be >= 0")
        return factorial_from_taylor(self.taylor_at_one(r))[r]

    def derivative_at_one(self, order: int):
        """Alias for :meth:`factorial_moment` using the paper's notation."""
        return self.factorial_moment(order)

    @profiled("pgf.raw_moments")
    def raw_moments(self, up_to: int) -> List:
        """Raw moments ``[1, E X, E X^2, ...]`` up to order ``up_to``."""
        fac = factorial_from_taylor(self.taylor_at_one(up_to))
        return raw_from_factorial(fac)

    def mean(self):
        """``E[X]``."""
        return self.factorial_moment(1)

    def variance(self):
        """``Var[X]``."""
        raw = self.raw_moments(2)
        return raw[2] - raw[1] * raw[1]

    def central_moment(self, order: int):
        """The ``order``-th central moment ``E[(X - EX)^order]``."""
        raw = self.raw_moments(order)
        return central_from_raw(raw)[order]

    def skewness(self) -> float:
        """Standardised third central moment (float)."""
        var = self.variance()
        if var == 0:
            raise SeriesError("skewness undefined for a degenerate distribution")
        mu3 = self.central_moment(3)
        return float(mu3) / float(var) ** 1.5

    # ------------------------------------------------------------------
    # distribution
    # ------------------------------------------------------------------
    @profiled("pgf.pmf")
    def pmf(self, n_terms: int, exact: bool = False) -> Union[np.ndarray, List[Fraction]]:
        """The first ``n_terms`` probabilities ``[P(X=0), ..., P(X=n_terms-1)]``.

        ``exact=True`` returns Fractions; otherwise a float
        ``numpy.ndarray``.  Small negative round-off (float mode only)
        is clipped to zero; a materially negative coefficient raises
        :class:`~repro.errors.NotAProbabilityError` since it indicates
        the transform is not a PGF.
        """
        if n_terms <= 0:
            raise SeriesError("n_terms must be positive")
        if exact:
            coeffs = self._transform.series(n_terms - 1)
            bad = [c for c in coeffs if c < 0]
            if bad:
                raise NotAProbabilityError(f"pmf has negative mass {min(bad)}")
            return list(coeffs)
        arr = self._float_series(n_terms)
        if (arr < -1e-9).any():
            raise NotAProbabilityError(
                f"pmf has negative mass (min {arr.min():.3g}); transform is not a PGF"
            )
        return np.clip(arr, 0.0, None)

    def _float_series(self, n_terms: int) -> np.ndarray:
        """The first ``n_terms`` float coefficients, memoized per instance.

        The series recurrence has no state beyond its output, so the
        longest expansion ever computed is kept and shorter requests
        are served as slices -- :meth:`quantile`'s geometric doubling
        then extends one shared expansion instead of re-deriving every
        prefix from scratch.  Validation and clipping stay in the
        callers: the cache holds the raw coefficients.
        """
        cached = getattr(self, "_series_cache", None)
        if cached is None or cached.size < n_terms:
            coeffs = self._reduced_transform().to_float().series(n_terms - 1)
            cached = np.asarray([float(c) for c in coeffs])
            object.__setattr__(self, "_series_cache", cached)
        return cached[:n_terms]

    def _reduced_transform(self) -> RationalFunction:
        """The transform with common ``(z - 1)`` factors cancelled.

        Waiting-time transforms built from Theorem 1 carry a removable
        double zero at ``z = 1`` in both numerator and denominator.
        Harmless in exact arithmetic, it puts unit-circle roots into the
        float extraction recursion, whose rounding errors then persist
        instead of decaying; cancelling the factors exactly first makes
        the float pmf accurate to machine precision at every order.
        """
        cached = getattr(self, "_reduced_cache", None)
        if cached is not None:
            return cached
        num = self._transform.numerator.to_exact()
        den = self._transform.denominator.to_exact()
        while (
            not num.is_zero()
            and num(Fraction(1)) == 0
            and den(Fraction(1)) == 0
        ):
            num = num.deflate(Fraction(1))
            den = den.deflate(Fraction(1))
        reduced = RationalFunction(num, den)
        object.__setattr__(self, "_reduced_cache", reduced)
        return reduced

    def cdf(self, n_terms: int) -> np.ndarray:
        """``P(X <= n)`` for ``n`` in ``range(n_terms)`` (float array)."""
        return np.cumsum(self.pmf(n_terms))

    def tail(self, n_terms: int) -> np.ndarray:
        """``P(X > n)`` for ``n`` in ``range(n_terms)`` (float array)."""
        return 1.0 - self.cdf(n_terms)

    def quantile(self, q: float, max_terms: int = 1 << 16) -> int:
        """Smallest ``n`` with ``P(X <= n) >= q`` (float mode).

        Grows the expansion geometrically until the quantile is
        bracketed; raises :class:`SeriesError` if ``max_terms`` is hit
        (e.g. for an unstable queue passed through unvalidated).  Each
        doubling extends the instance's memoized float expansion (see
        :meth:`_float_series`) rather than recomputing the series, and
        an expansion already long enough from earlier calls is reused
        outright.
        """
        if not 0 <= q < 1:
            raise SeriesError("quantile level must be in [0, 1)")
        cached = getattr(self, "_series_cache", None)
        n = 64
        if cached is not None:
            # resume from the memoized expansion; cdf prefixes are
            # identical, so starting longer never changes the answer
            n = max(n, min(int(cached.size), max_terms))
        while n <= max_terms:
            cdf = self.cdf(n)
            idx = np.searchsorted(cdf, q, side="left")
            if idx < len(cdf) and cdf[idx] >= q:
                return int(idx)
            n *= 2
        raise SeriesError(f"quantile {q} not reached within {max_terms} terms")

    # ------------------------------------------------------------------
    # algebra of random variables
    # ------------------------------------------------------------------
    def __add__(self, other: "PGF") -> "PGF":
        """PGF of the sum of *independent* variables: product of transforms."""
        if not isinstance(other, PGF):
            return NotImplemented
        return PGF(self._transform * other._transform, validate=False)

    def __mul__(self, n: int) -> "PGF":
        """PGF of the sum of ``n`` i.i.d. copies: ``g(z)**n``."""
        if not isinstance(n, int) or n < 0:
            return NotImplemented
        return PGF(self._transform ** n, validate=False)

    __rmul__ = __mul__

    def compound(self, count: "PGF") -> "PGF":
        """PGF of a random sum ``X_1 + ... + X_N`` with ``N ~ count``.

        Returns ``count_transform(self_transform)`` -- note the order:
        ``self`` is the summand distribution.  This is exactly the
        paper's ``R(U(z))`` construction for the work arriving per cycle.
        """
        if not isinstance(count, PGF):
            raise SeriesError("compound requires a PGF for the count")
        return PGF(count._transform.compose(self._transform), validate=False)

    def thin(self, keep: Scalar) -> "PGF":
        """Independent thinning: each unit kept with probability ``keep``.

        The transform becomes ``g(1 - keep + keep z)``.
        """
        keep = as_exact(keep)
        if not 0 <= keep <= 1:
            raise NotAProbabilityError(f"thinning probability {keep} outside [0, 1]")
        inner = RationalFunction(Polynomial([1 - keep, keep]))
        return PGF(self._transform.compose(inner), validate=False)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PGF):
            return NotImplemented
        return self._transform == other._transform

    def __hash__(self) -> int:
        return hash(("PGF", self._transform))

    def __repr__(self) -> str:
        return f"PGF({self._transform!r})"

    def __str__(self) -> str:
        return str(self._transform)


def _is_one(value, tol: float = 1e-9) -> bool:
    if isinstance(value, Fraction) or isinstance(value, int):
        return value == 1
    return abs(float(value) - 1.0) <= tol

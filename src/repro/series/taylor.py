"""Truncated power-series kernels and moment conversions.

These are the low-level routines behind both moment extraction (Taylor
expansion of the waiting-time transform about ``z = 1``) and pmf
extraction (expansion about ``z = 0``).  All routines operate on plain
sequences of coefficients, lowest order first, and are agnostic about
the coefficient type (Fraction for exactness, float for speed).

Moment conventions
------------------
If ``t(z) = E[z^w]`` is a PGF, then

.. math:: t(1+\\varepsilon) = \\sum_{r\\ge 0} E\\binom{w}{r} \\varepsilon^r,

so the ``r``-th Taylor coefficient about 1 times ``r!`` is the ``r``-th
*falling factorial moment* ``E[w(w-1)...(w-r+1)]``.  Raw moments follow
via Stirling numbers of the second kind, central moments via the
binomial transform.  Keeping these conversions exact (integer Stirling
numbers, Fraction arithmetic) means the variance formulas of the paper
can be checked with zero numerical tolerance.
"""

from __future__ import annotations

from fractions import Fraction
from math import factorial
from typing import List, Sequence

from repro.errors import PoleError, SeriesError

__all__ = [
    "series_mul",
    "series_div",
    "series_compose",
    "series_pow",
    "stirling2",
    "factorial_from_taylor",
    "raw_from_factorial",
    "central_from_raw",
    "moments_from_taylor",
]


def series_mul(a: Sequence, b: Sequence, order: int) -> List:
    """Product of two truncated series, keeping terms up to ``x**order``."""
    out = [0] * (order + 1)
    for i, ca in enumerate(a[: order + 1]):
        if ca == 0:
            continue
        jmax = order - i
        for j, cb in enumerate(b[: jmax + 1]):
            if cb == 0:
                continue
            out[i + j] += ca * cb
    return out


def series_div(num: Sequence, den: Sequence, order: int) -> List:
    """Quotient ``num / den`` as a truncated power series.

    Handles removable singularities: if both ``num`` and ``den`` start
    with zero coefficients, the common leading zeros cancel.  If the
    denominator vanishes to *strictly higher* order than the numerator a
    :class:`~repro.errors.PoleError` is raised -- the quotient is not a
    power series.
    """
    num = list(num)
    den = list(den)
    v_den = _valuation(den)
    if v_den == len(den):
        raise SeriesError("division by the zero series")
    v_num = _valuation(num)
    if v_num < v_den:
        raise PoleError(
            f"series quotient has a pole: numerator valuation {v_num} "
            f"< denominator valuation {v_den}"
        )
    # cancel the common factor x**v_den
    num = num[v_den:] if v_num >= v_den else num
    den = den[v_den:]
    lead = den[0]
    out: List = [0] * (order + 1)
    for n in range(order + 1):
        acc = num[n] if n < len(num) else 0
        kmax = min(n, len(den) - 1)
        for k in range(1, kmax + 1):
            if den[k] != 0 and out[n - k] != 0:
                acc = acc - den[k] * out[n - k]
        out[n] = _divide(acc, lead)
    return out


def _divide(a, b):
    """Divide preserving exactness: int/int stays a Fraction."""
    if isinstance(a, int) and isinstance(b, int):
        return Fraction(a, b)
    return a / b


def _valuation(coeffs: Sequence) -> int:
    for i, c in enumerate(coeffs):
        if c != 0:
            return i
    return len(coeffs)


def series_compose(outer: Sequence, inner: Sequence, order: int) -> List:
    """Composition ``outer(inner(x))`` as a truncated series.

    Requires ``inner`` to have zero constant term (otherwise the
    composition of formal power series is not defined term-by-term).
    """
    inner = list(inner[: order + 1])
    if inner and inner[0] != 0:
        raise SeriesError("series composition requires inner constant term 0")
    out = [0] * (order + 1)
    # Horner in the series ring, highest outer coefficient first.
    for c in reversed(list(outer)):
        out = series_mul(out, inner, order)
        out[0] += c
    return out


def series_pow(base: Sequence, n: int, order: int) -> List:
    """``base**n`` as a truncated series (binary powering)."""
    if n < 0:
        raise SeriesError("negative series powers not supported here")
    result: List = [1, *([0] * order)]
    b = list(base[: order + 1]) + [0] * max(0, order + 1 - len(base))
    while n:
        if n & 1:
            result = series_mul(result, b, order)
        b = series_mul(b, b, order)
        n >>= 1
    return result


# ----------------------------------------------------------------------
# moment conversions
# ----------------------------------------------------------------------

def stirling2(n: int, k: int) -> int:
    """Stirling number of the second kind ``S(n, k)`` (exact integer)."""
    if n == k:
        return 1
    if k <= 0 or k > n:
        return 0
    # recurrence S(n, k) = k S(n-1, k) + S(n-1, k-1), small n only
    row = [1]  # S(0,0)
    for m in range(1, n + 1):
        new = [0] * (m + 1)
        for j in range(1, m + 1):
            left = row[j] if j < len(row) else 0
            new[j] = j * left + row[j - 1]
        row = new
    return row[k]


def factorial_from_taylor(taylor_at_one: Sequence) -> List:
    """Falling factorial moments from Taylor coefficients about 1.

    ``taylor_at_one[r]`` is the coefficient of ``eps**r`` in
    ``t(1+eps)``; the ``r``-th factorial moment is ``r! *`` that.
    """
    return [factorial(r) * c for r, c in enumerate(taylor_at_one)]


def raw_from_factorial(factorial_moments: Sequence) -> List:
    """Raw moments ``E[w**n]`` from factorial moments ``E[(w)_r]``.

    Uses ``E[w**n] = sum_r S(n, r) E[(w)_r]``.
    """
    n_max = len(factorial_moments) - 1
    out = []
    for n in range(n_max + 1):
        acc = 0
        for r in range(n + 1):
            s = stirling2(n, r)
            if s:
                acc += s * factorial_moments[r]
        out.append(acc)
    return out


def central_from_raw(raw_moments: Sequence) -> List:
    """Central moments from raw moments (binomial transform).

    ``out[0] = 1``, ``out[1] = 0``, ``out[2]`` is the variance, etc.
    """
    if not raw_moments:
        return []
    mean = raw_moments[1] if len(raw_moments) > 1 else 0
    out = [1]
    from repro.series.polynomial import binomial_coefficient

    for n in range(1, len(raw_moments)):
        acc = 0
        for j in range(n + 1):
            term = binomial_coefficient(n, j) * raw_moments[j] * (-mean) ** (n - j)
            acc += term
        out.append(acc)
    return out


def moments_from_taylor(taylor_at_one: Sequence) -> dict:
    """Convenience bundle: mean / variance / skewness-ready moments.

    Returns a dict with ``factorial``, ``raw`` and ``central`` moment
    lists derived from the Taylor coefficients of a PGF about 1.
    """
    fac = factorial_from_taylor(taylor_at_one)
    raw = raw_from_factorial(fac)
    central = central_from_raw(raw)
    return {"factorial": fac, "raw": raw, "central": central}

"""Exact power-series and rational-function algebra.

This subpackage is the numerical foundation of the reproduction: the
paper's Theorem 1 expresses the waiting-time distribution as a rational
generating function

.. math::

    t(z) \\;=\\; \\frac{1-m\\lambda}{\\lambda}\\,
        \\frac{(1-z)\\,(1-R(U(z)))}{(R(U(z))-z)\\,(1-U(z))},

and everything the paper derives from it -- means, variances, higher
moments, and the full probability mass function -- is a series-algebra
operation on that expression.  Working with exact rational coefficients
(:class:`fractions.Fraction`) removes every source of floating-point
doubt from the *analytic* half of the reproduction: the closed-form
equations printed in the paper are tested against this layer to machine
precision (indeed, to *infinite* precision when the inputs are rational).

Contents
--------

:mod:`repro.series.polynomial`
    Dense univariate polynomials over an arbitrary coefficient field.
:mod:`repro.series.rational`
    Rational functions ``P/Q`` with composition, differentiation, and
    Taylor expansion (including at removable singularities).
:mod:`repro.series.taylor`
    Raw truncated-power-series kernels (multiplication, division,
    composition) plus moment conversions (factorial, raw, central).
:mod:`repro.series.pgf`
    Probability generating functions with moment and pmf extraction.
"""

from __future__ import annotations

from repro.series.polynomial import Polynomial
from repro.series.rational import RationalFunction
from repro.series.taylor import (
    central_from_raw,
    factorial_from_taylor,
    raw_from_factorial,
    series_compose,
    series_div,
    series_mul,
)
from repro.series.pgf import PGF

__all__ = [
    "Polynomial",
    "RationalFunction",
    "PGF",
    "series_mul",
    "series_div",
    "series_compose",
    "factorial_from_taylor",
    "raw_from_factorial",
    "central_from_raw",
]

"""Dense univariate polynomials over an exact (or float) coefficient field.

The class is deliberately small and allocation-friendly: coefficients are
stored in a plain tuple, lowest degree first, with trailing zeros
stripped.  It supports the handful of operations the generating-function
layer needs -- ring arithmetic, composition, differentiation, evaluation
and re-expansion about an arbitrary point -- and it is agnostic about the
coefficient type: :class:`fractions.Fraction` gives exact results (the
default used by the analysis layer), ``float`` gives a fast approximate
mode used by the bulk pmf extractors.

Design notes
------------
* Following the HPC guides, the heavy *numeric* lifting in this project
  is vectorised NumPy (the simulator, the pmf extraction fast path); the
  polynomial class is used for *symbolic-exact* work where the series
  orders are tiny (tens of terms), so simple Python loops are the right
  tool and keep the arithmetic exact.
* Polynomials are immutable and hashable so they can be shared freely
  between PGF objects.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterable, Union

from repro.errors import SeriesError

__all__ = ["Polynomial", "as_exact", "binomial_coefficient"]

Scalar = Union[int, float, Fraction]


def as_exact(value: Scalar) -> Fraction:
    """Convert ``value`` to an exact :class:`~fractions.Fraction`.

    Integers and Fractions convert losslessly.  Floats are converted via
    their *shortest decimal representation* (``repr``), so the common
    case of a parameter written as ``0.2`` in an experiment table becomes
    exactly ``1/5`` rather than the binary float ``3602879701896397/2**54``.
    This matches the intent of the paper's parameter tables, which are
    decimal.  Pass a ``Fraction`` explicitly when a different reading of
    a float is intended.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise SeriesError(f"cannot convert non-finite float {value!r} to Fraction")
        return Fraction(repr(value))
    raise SeriesError(f"cannot convert {type(value).__name__} to Fraction")


def binomial_coefficient(n: int, k: int) -> int:
    """Binomial coefficient ``C(n, k)`` with ``C(n, k) = 0`` for ``k > n`` or ``k < 0``."""
    if k < 0 or k > n:
        return 0
    result = 1
    k = min(k, n - k)
    for i in range(k):
        result = result * (n - i) // (i + 1)
    return result


class Polynomial:
    """An immutable dense univariate polynomial ``sum_i c_i x**i``.

    Parameters
    ----------
    coefficients:
        Iterable of coefficients, lowest degree first.  Trailing zeros
        are stripped; the empty/all-zero polynomial has ``degree == -1``.

    Examples
    --------
    >>> p = Polynomial([1, 2, 1])        # 1 + 2x + x^2 = (1+x)^2
    >>> p(3)
    16
    >>> p.derivative()
    Polynomial([2, 2])
    >>> (p * p).degree
    4
    """

    __slots__ = ("_coeffs",)

    def __init__(self, coefficients: Iterable[Scalar]) -> None:
        coeffs = list(coefficients)
        while coeffs and coeffs[-1] == 0:
            coeffs.pop()
        self._coeffs = tuple(coeffs)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "Polynomial":
        """The zero polynomial."""
        return cls(())

    @classmethod
    def one(cls) -> "Polynomial":
        """The constant polynomial 1."""
        return cls((1,))

    @classmethod
    def constant(cls, value: Scalar) -> "Polynomial":
        """The constant polynomial ``value``."""
        return cls((value,))

    @classmethod
    def identity(cls) -> "Polynomial":
        """The polynomial ``x``."""
        return cls((0, 1))

    @classmethod
    def monomial(cls, degree: int, coefficient: Scalar = 1) -> "Polynomial":
        """The monomial ``coefficient * x**degree``."""
        if degree < 0:
            raise SeriesError("monomial degree must be non-negative")
        return cls((*((0,) * degree), coefficient))

    def map_coefficients(self, fn: Callable[[Scalar], Scalar]) -> "Polynomial":
        """Return a polynomial with ``fn`` applied to every coefficient."""
        return Polynomial(fn(c) for c in self._coeffs)

    def to_exact(self) -> "Polynomial":
        """Convert all coefficients to :class:`~fractions.Fraction`."""
        return self.map_coefficients(as_exact)

    def to_float(self) -> "Polynomial":
        """Convert all coefficients to ``float``."""
        return self.map_coefficients(float)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def coefficients(self) -> tuple:
        """Coefficient tuple, lowest degree first, trailing zeros stripped."""
        return self._coeffs

    @property
    def degree(self) -> int:
        """Degree of the polynomial; ``-1`` for the zero polynomial."""
        return len(self._coeffs) - 1

    def coefficient(self, i: int) -> Scalar:
        """The coefficient of ``x**i`` (0 beyond the degree)."""
        if 0 <= i < len(self._coeffs):
            return self._coeffs[i]
        return 0

    def is_zero(self) -> bool:
        """True iff this is the zero polynomial."""
        return not self._coeffs

    # ------------------------------------------------------------------
    # ring arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        other = _coerce(other)
        a, b = self._coeffs, other._coeffs
        if len(a) < len(b):
            a, b = b, a
        out = list(a)
        for i, c in enumerate(b):
            out[i] = out[i] + c
        return Polynomial(out)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial(-c for c in self._coeffs)

    def __sub__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        return self + (-_coerce(other))

    def __rsub__(self, other: Scalar) -> "Polynomial":
        return _coerce(other) - self

    def __mul__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        if not isinstance(other, Polynomial):
            return Polynomial(c * other for c in self._coeffs)
        a, b = self._coeffs, other._coeffs
        if not a or not b:
            return Polynomial.zero()
        out = [0] * (len(a) + len(b) - 1)
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            for j, cb in enumerate(b):
                out[i + j] = out[i + j] + ca * cb
        return Polynomial(out)

    __rmul__ = __mul__

    def __pow__(self, n: int) -> "Polynomial":
        if n < 0:
            raise SeriesError("negative polynomial powers are not defined; use RationalFunction")
        result = Polynomial.one()
        base = self
        while n:
            if n & 1:
                result = result * base
            base = base * base
            n >>= 1
        return result

    # ------------------------------------------------------------------
    # calculus and evaluation
    # ------------------------------------------------------------------
    def derivative(self, order: int = 1) -> "Polynomial":
        """The ``order``-th derivative."""
        if order < 0:
            raise SeriesError("derivative order must be non-negative")
        coeffs = self._coeffs
        for _ in range(order):
            coeffs = tuple(i * c for i, c in enumerate(coeffs))[1:]
        return Polynomial(coeffs)

    def __call__(self, x):
        """Evaluate at ``x`` by Horner's rule.

        ``x`` may be a scalar, another :class:`Polynomial` (composition)
        or any object supporting ``+`` and ``*`` with the coefficients
        (e.g. a :class:`~repro.series.rational.RationalFunction`).
        """
        if not self._coeffs:
            return 0 if not isinstance(x, Polynomial) else Polynomial.zero()
        result = self._coeffs[-1]
        if isinstance(x, Polynomial):
            result = Polynomial.constant(result)
        for c in reversed(self._coeffs[:-1]):
            result = result * x + c
        return result

    def compose(self, inner: "Polynomial") -> "Polynomial":
        """Return ``self(inner(x))`` as a polynomial."""
        out = self(inner)
        return out if isinstance(out, Polynomial) else Polynomial.constant(out)

    def shift(self, center: Scalar) -> "Polynomial":
        """Re-expand about ``center``: return ``q`` with ``q(e) == self(center + e)``.

        Used to Taylor-expand rational functions about ``z = 1`` when
        extracting moments from a generating function.
        """
        return self.compose(Polynomial((center, 1)))

    def truncate(self, order: int) -> "Polynomial":
        """Drop terms of degree ``> order``."""
        return Polynomial(self._coeffs[: order + 1])

    def deflate(self, root: Scalar) -> "Polynomial":
        """Divide exactly by ``(x - root)`` (synthetic division).

        Raises :class:`~repro.errors.SeriesError` if ``root`` is not a
        root (non-zero remainder) -- with exact coefficients the check
        is exact.  Used to cancel removable factors shared by numerator
        and denominator before a floating-point series expansion, where
        an uncancelled unit-circle root would make the extraction
        recursion neutrally unstable.
        """
        if self.is_zero():
            raise SeriesError("cannot deflate the zero polynomial")
        out = []
        acc = 0
        for c in reversed(self._coeffs):
            acc = acc * root + c
            out.append(acc)
        remainder = out.pop()
        if remainder != 0:
            raise SeriesError(f"{root!r} is not a root (remainder {remainder})")
        return Polynomial(tuple(reversed(out)))

    def valuation(self) -> int:
        """The index of the lowest non-zero coefficient (``len`` for zero poly)."""
        for i, c in enumerate(self._coeffs):
            if c != 0:
                return i
        return len(self._coeffs)

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Polynomial):
            return self._coeffs == other._coeffs
        if isinstance(other, (int, float, Fraction)):
            return self == Polynomial.constant(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Polynomial", self._coeffs))

    def __repr__(self) -> str:
        return f"Polynomial({list(self._coeffs)!r})"

    def __str__(self) -> str:
        if not self._coeffs:
            return "0"
        parts = []
        for i, c in enumerate(self._coeffs):
            if c == 0:
                continue
            if i == 0:
                parts.append(f"{c}")
            elif i == 1:
                parts.append(f"{c}*z")
            else:
                parts.append(f"{c}*z^{i}")
        return " + ".join(parts)


def _coerce(value: Union[Polynomial, Scalar]) -> Polynomial:
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, float, Fraction)):
        return Polynomial.constant(value)
    raise SeriesError(f"cannot coerce {type(value).__name__} to Polynomial")

"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro table I            # Tables I..VI
    python -m repro table VII          # totals Tables VII..XII
    python -m repro figure 5 --stages 6
    python -m repro calibrate          # re-derive Section IV constants
    python -m repro metrics --stages 6 # instrumented run: metrics + timings
    python -m repro batch --workers 4  # parallel scenario batch (cached)
    python -m repro cache stats        # result-cache maintenance
    python -m repro db expectations    # evaluate paper targets vs the ledger
    python -m repro serve --port 8765  # HTTP simulation service (docs/api-service.md)
    python -m repro submit --scenarios smoke --wait   # talk to a running service
    python -m repro all                # everything (paper-grade: slow)

``--cycles`` (or the ``REPRO_SIM_CYCLES`` environment variable) trades
accuracy for time; the defaults give each entry a few seconds.

``--workers N`` runs each command's simulations through the
:mod:`repro.exec` process pool, and ``--cache DIR`` serves repeated
scenarios from the content-addressed result cache -- both are
bit-identical to the serial uncached run (see ``docs/execution.md``).

``--metrics-out DIR`` wraps any command in an observation session (see
``docs/observability.md``): every simulation run writes a
``run-NNNN.manifest.json`` (config, seed, versions, timings, summary
statistics) and a ``run-NNNN.metrics.jsonl`` per-stage time series into
``DIR``, turning the invocation into a reproducible artifact.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

__all__ = ["main", "build_parser"]

_STAGE_TABLES = ("I", "II", "III", "IV", "V")
_TOTALS_TABLES = ("VII", "VIII", "IX", "X", "XI", "XII")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--cycles", type=int, default=None, help="simulation cycles per run"
    )
    common.add_argument("--seed", type=int, default=None, help="override master seed")
    common.add_argument(
        "--metrics-out",
        metavar="DIR",
        default=None,
        help="write run manifests + per-stage metrics JSONL into DIR",
    )
    common.add_argument(
        "--metrics-stride",
        type=int,
        default=16,
        help="cycles between metrics samples (with --metrics-out; default 16)",
    )
    common.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for simulation batches (default: serial)",
    )
    common.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="content-addressed result cache directory (default: off; "
        "'batch' and 'cache' commands default to .repro-cache)",
    )
    common.add_argument(
        "--vectorize-replicas",
        action="store_true",
        help="stack same-shape scenarios (which may differ in seed, load, "
        "bulk size, bias, and service model) onto the batched engine, "
        "fusing replications and whole sweeps into single runs; composes "
        "with --workers (metrics are off for stacked runs)",
    )
    common.add_argument(
        "--backend",
        choices=["numpy", "numba", "auto"],
        default="auto",
        help="compute backend for stacked runs: 'numpy' (reference), "
        "'numba' (JIT cycle loop; requires numba), or 'auto' (default: "
        "JIT when usable, reference otherwise) -- results are "
        "bit-identical either way (see docs/backends.md)",
    )
    common.add_argument(
        "--shard-mem",
        type=int,
        default=None,
        metavar="MIB",
        dest="shard_mem",
        help="per-shard memory budget in MiB for huge replication batches; "
        "implies the streamed sharded engine (results are bit-identical "
        "under any budget; see docs/scaling.md)",
    )
    common.add_argument(
        "--target-ci",
        type=float,
        default=None,
        dest="target_ci",
        help="adaptive replication: grow replications per scenario until "
        "the 95%% t-interval half-width is at most this value, instead of "
        "a fixed count (see docs/scaling.md)",
    )
    common.add_argument(
        "--sanitize",
        action="store_true",
        help="arm the runtime sanitizer: per-cycle invariant checks "
        "(finite statistics, non-negative queue depths, message "
        "conservation, shard-merge consistency) that raise "
        "SanitizerError with cycle/stage coordinates; equivalent to "
        "REPRO_SANITIZE=1 (see docs/simulator.md)",
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce tables/figures from Kruskal-Snir-Weiss 1988.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t = sub.add_parser("table", parents=[common], help="regenerate one table (I..XII)")
    t.add_argument("id", choices=(*_STAGE_TABLES, "VI", *_TOTALS_TABLES))

    f = sub.add_parser("figure", parents=[common], help="regenerate one figure panel (3..8)")
    f.add_argument("id", type=int, choices=[3, 4, 5, 6, 7, 8])
    f.add_argument("--stages", type=int, default=6, help="network depth (3/6/9/12)")

    sub.add_parser(
        "calibrate", parents=[common],
        help="re-derive Section IV constants from simulation",
    )
    sub.add_parser("all", parents=[common], help="every table and figure (slow)")
    sub.add_parser(
        "report", parents=[common],
        help="emit the EXPERIMENTS.md paper-vs-measured report (slow)",
    )

    s = sub.add_parser(
        "sweep", parents=[common],
        help="parameter sweep with confidence intervals",
    )
    s.add_argument("kind", choices=["load", "switch", "message"])

    sub.add_parser(
        "validate", parents=[common],
        help="fast end-to-end self-validation (~1 min)",
    )

    b = sub.add_parser(
        "batch", parents=[common],
        help="run a scenario batch through the parallel cached runner",
    )
    b.add_argument(
        "--scenarios",
        default="smoke",
        help="named scenario set (smoke) or path to a JSON spec file",
    )
    b.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts per failed task (default 1)",
    )
    b.add_argument(
        "--timeout", type=float, default=None,
        help="per-task seconds before a dispatched chunk counts as failed",
    )
    b.add_argument(
        "--no-cache", action="store_true", help="run without the result cache"
    )
    b.add_argument(
        "--require-cached", action="store_true",
        help="exit non-zero unless every task is served from cache",
    )
    b.add_argument(
        "--db",
        metavar="PATH",
        default=None,
        help="record every outcome in the experiment ledger at PATH "
        "(see 'python -m repro db' and docs/experiments-db.md)",
    )

    c = sub.add_parser(
        "cache", parents=[common], help="result-cache maintenance"
    )
    c.add_argument("action", choices=["stats", "clear"])

    lint = sub.add_parser(
        "lint",
        help="check the repro invariants (determinism, digest hygiene, "
        "failure hygiene) with the built-in AST linter",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to check (default: the installed repro package)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default text; 'sarif' emits SARIF 2.1.0 "
        "for CI annotation tooling)",
    )
    lint.add_argument(
        "--list-waivers",
        action="store_true",
        dest="list_waivers",
        help="print the inventory of '# repro: lint-ok' waivers (path, "
        "line, codes, expiry, reason) instead of linting",
    )
    lint.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="only run these rule codes (repeatable / comma-separated)",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="skip these rule codes (repeatable / comma-separated)",
    )

    db = sub.add_parser(
        "db",
        help="experiment ledger: ingest runs/benchmarks, evaluate the "
        "paper's reproduction targets, render reports (docs/experiments-db.md)",
    )
    db.add_argument(
        "--path",
        metavar="PATH",
        default=None,
        help="ledger file (default: experiments.sqlite)",
    )
    dbsub = db.add_subparsers(dest="db_command", required=True)

    di = dbsub.add_parser(
        "ingest", help="ingest observation-session manifests and BENCH artifacts"
    )
    di.add_argument(
        "--manifests",
        action="append",
        default=[],
        metavar="DIR",
        help="observation-session directory of run manifests (repeatable)",
    )
    di.add_argument(
        "--bench",
        action="append",
        default=[],
        metavar="FILE",
        help="BENCH_*.json perf artifact (repeatable)",
    )

    dq = dbsub.add_parser("query", help="list recorded runs")
    dq.add_argument("--digest", default=None, help="exact spec digest")
    dq.add_argument("--label", default=None, help="exact scenario label")
    dq.add_argument(
        "--status", default=None, choices=["completed", "cached", "failed"]
    )
    dq.add_argument(
        "--engine", default=None,
        choices=["serial", "replica-batched", "scenario-batched", "stream"],
    )
    dq.add_argument(
        "--limit", type=int, default=20, help="max rows (default 20; 0 = all)"
    )

    de = dbsub.add_parser(
        "expectations",
        help="evaluate the paper's machine-checkable targets against the "
        "ledger; exits non-zero if a previously-met target regressed",
    )
    de.add_argument(
        "--report", metavar="FILE", default=None,
        help="also write the markdown scorecard to FILE",
    )
    de.add_argument(
        "--strict", action="store_true",
        help="also exit non-zero on any outright 'failure' classification",
    )

    dp = dbsub.add_parser(
        "perf", help="render the perf-trajectory report from ingested benchmarks"
    )
    dp.add_argument(
        "--report", metavar="FILE", default=None,
        help="also write the markdown report to FILE",
    )
    dp.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit non-zero if any series' latest speedup is below its floor",
    )

    dx = dbsub.add_parser(
        "export", help="dump the whole ledger as deterministic canonical JSON"
    )
    dx.add_argument(
        "--out", metavar="FILE", default=None,
        help="write to FILE instead of stdout",
    )

    serve = sub.add_parser(
        "serve",
        help="run the HTTP simulation service (docs/api-service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="bind port (0 picks an ephemeral port; default 8765)",
    )
    serve.add_argument(
        "--port-file",
        metavar="FILE",
        default=None,
        help="write the bound port number to FILE once listening "
        "(for scripts using --port 0)",
    )
    serve.add_argument(
        "--executors", type=int, default=2,
        help="jobs that may run concurrently (default 2)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per job's run_many call (default 1: in-thread)",
    )
    serve.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts per failed job (default 1)",
    )
    serve.add_argument(
        "--backend",
        choices=["numpy", "numba", "auto"],
        default="auto",
        help="compute backend for vectorized jobs (default auto)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="per-task seconds before a dispatched job counts as failed",
    )
    serve.add_argument(
        "--shard-mem",
        type=int,
        default=None,
        metavar="MIB",
        dest="shard_mem",
        help="run jobs on the streamed sharded engine with this per-shard "
        "memory budget in MiB (see docs/scaling.md)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="pending-job bound; overflowing submissions get HTTP 429 (default 64)",
    )
    serve.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="result-cache directory (default .repro-cache)",
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="serve without the result cache"
    )
    serve.add_argument(
        "--db",
        metavar="PATH",
        default=None,
        help="record every finished run in the experiment ledger at PATH",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logging"
    )

    submit = sub.add_parser(
        "submit",
        help="submit scenarios to a running service and report the runs",
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="service base URL (default http://127.0.0.1:8765)",
    )
    submit.add_argument(
        "--scenarios", default="smoke",
        help="named scenario set or path to a JSON spec file (default smoke)",
    )
    submit.add_argument(
        "--label", default=None,
        help="submit only the scenario entry with this label",
    )
    submit.add_argument(
        "--cycles", type=int, default=None,
        help="override every submitted spec's cycle budget",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until every submitted run reaches a terminal state",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds to wait per run with --wait (default 300)",
    )
    submit.add_argument(
        "--require-cached", action="store_true",
        help="exit non-zero unless every response reports cached: true",
    )
    submit.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the raw JSON documents instead of the table",
    )

    m = sub.add_parser(
        "metrics", parents=[common],
        help="one instrumented run: per-stage metrics + phase timings",
    )
    m.add_argument("--k", type=int, default=2, help="switch degree (default 2)")
    m.add_argument("--stages", type=int, default=6, help="network depth (default 6)")
    m.add_argument("--p", type=float, default=0.5, help="arrival probability")
    m.add_argument("--m", type=int, default=1, help="message size (packets)")
    m.add_argument(
        "--width", type=int, default=None,
        help="ports per stage (enables width-decoupled random routing)",
    )
    m.add_argument(
        "--buffer", type=int, default=None, help="finite buffer capacity (drops)"
    )
    return parser


def _sim_kwargs(cycles: Optional[int], seed: Optional[int]) -> dict:
    """Overrides for the analysis generators.

    ``is not None`` (not truthiness), so an explicit ``--cycles 0`` is
    passed through to be rejected loudly instead of silently ignored.
    """
    kwargs = {}
    if cycles is not None:
        kwargs["n_cycles"] = cycles
    if seed is not None:
        kwargs["seed"] = seed
    return kwargs


def _run_table(table_id: str, cycles: Optional[int], seed: Optional[int]) -> str:
    from repro.analysis import tables

    kwargs = _sim_kwargs(cycles, seed)
    if table_id in _STAGE_TABLES:
        fn = {
            "I": tables.table_I,
            "II": tables.table_II,
            "III": tables.table_III,
            "IV": tables.table_IV,
            "V": tables.table_V,
        }[table_id]
        return fn(**kwargs).to_text()
    if table_id == "VI":
        return tables.table_VI(**kwargs).to_text()
    return tables.table_totals(table_id, **kwargs).to_text()


def _run_figure(figure_id: int, stages: int, cycles: Optional[int], seed: Optional[int]) -> str:
    from repro.analysis.figures import figure_waiting_histogram
    from repro.analysis.report import render_figure

    kwargs = _sim_kwargs(cycles, seed)
    return render_figure(figure_waiting_histogram(figure_id, stages, **kwargs))


def _run_calibrate(cycles: Optional[int]) -> str:
    from repro.core.calibration import calibrated_constants
    from repro.core.later_stages import PAPER_CONSTANTS

    n_cycles = cycles if cycles is not None else 40_000
    fresh = calibrated_constants(n_cycles=n_cycles, include_nonuniform=True)
    lines = ["recalibrated Section IV constants (k=2) vs shipped defaults:"]
    for name in (
        "mean_slope",
        "var_linear",
        "var_quadratic",
        "var_m_linear",
        "var_m_quadratic",
        "nonuniform_mean_slope",
        "nonuniform_var_slope",
    ):
        lines.append(
            f"  {name:22} calibrated={float(getattr(fresh, name)):8.4f} "
            f"default={float(getattr(PAPER_CONSTANTS, name)):8.4f}"
        )
    return "\n".join(lines)


def _run_sweep(kind: str, cycles: Optional[int], seed: Optional[int]) -> str:
    from repro.analysis.sweeps import load_sweep, message_size_sweep, switch_size_sweep

    kwargs = _sim_kwargs(cycles, seed)
    fn = {"load": load_sweep, "switch": switch_size_sweep, "message": message_size_sweep}[kind]
    rows = fn(**kwargs)
    lines = [
        f"{kind} sweep (simulated vs predicted; +/- is a 95% batch-means CI)",
        f"{'point':>10} {'w1 sim':>16} {'w1 exact':>9} {'w_deep sim':>11} "
        f"{'w_inf pred':>10} {'total':>16}",
    ]
    for r in rows:
        lines.append(
            f"{r.label:>10} {r.first_stage_mean:8.4f}+/-{r.first_stage_ci:6.4f} "
            f"{r.predicted_first_mean:9.4f} {r.deep_stage_mean:11.4f} "
            f"{r.predicted_limit_mean:10.4f} {r.total_mean:8.3f}+/-{r.total_ci:6.4f}"
        )
    return "\n".join(lines)


def _run_batch(args) -> int:
    from repro.exec import DEFAULT_CACHE_DIR, ResultCache, load_scenarios, run_many

    specs = load_scenarios(args.scenarios, n_cycles=args.cycles)
    cache = None if args.no_cache else ResultCache(args.cache or DEFAULT_CACHE_DIR)
    workers = args.workers or 1
    db = None
    if args.db is not None:
        from repro.expdb import ExperimentDB

        db = ExperimentDB(args.db)

    def progress(event) -> None:
        note = f"  [{event['event']:>9}] {event['label'] or event['digest']}"
        if event.get("error"):
            note += f"  ({event['error']})"
        print(note, file=sys.stderr)

    shard_mib = getattr(args, "shard_mem", None)
    batch = run_many(
        specs,
        workers=workers,
        cache=cache,
        retries=args.retries,
        timeout=args.timeout,
        progress=progress,
        vectorize=getattr(args, "vectorize_replicas", False),
        backend=getattr(args, "backend", "auto"),
        stream=shard_mib is not None,
        shard_mem=shard_mib * 1024 * 1024 if shard_mib is not None else None,
        db=db,
    )
    lines = [
        f"batch of {batch.n_tasks} scenarios (workers={workers}, "
        f"cache={'off' if cache is None else cache.root})",
        f"{'label':>18} {'status':>10} {'attempts':>8} {'digest':>14} {'w1 mean':>9}",
    ]
    for o in batch.outcomes:
        w1 = f"{float(o.result.stage_means[0]):9.4f}" if o.result is not None else "        -"
        lines.append(
            f"{o.spec.label:>18} {o.status:>10} {o.attempts:8d} "
            f"{o.spec.digest[:12]:>14} {w1}"
        )
    summary = batch.summary()
    status_note = ", ".join(
        f"{count} {status}" for status, count in summary["statuses"].items()
    )
    lines.append(
        f"batch: {batch.n_tasks} tasks -- {batch.n_simulated} simulated, "
        f"{batch.n_cached} cached, {batch.n_failed} failed "
        f"in {batch.elapsed_seconds:.1f}s"
    )
    lines.append(
        f"batch summary: {summary['n_tasks']} tasks ({status_note}) -- "
        f"{summary['total_attempts']} attempt(s), "
        f"{summary['cache_hits']} cache hit(s) / "
        f"{summary['cache_misses']} miss(es), "
        f"workers={summary['workers']}, {summary['elapsed_seconds']:.1f}s"
    )
    for o in batch.failures():
        lines.append(f"FAILED {o.spec.label or o.index}: "
                     f"{(o.error or '').strip().splitlines()[-1]}")
    if cache is not None:
        lines.append(cache.stats().to_text())
    if db is not None:
        counts = db.counts()
        lines.append(
            f"ledger {db.path}: {counts['runs']} run(s), "
            f"{counts['benchmarks']} benchmark point(s), "
            f"{counts['expectation_evals']} evaluation(s)"
        )
    print("\n".join(lines))
    if batch.n_failed:
        return 1
    if args.require_cached and batch.n_simulated:
        print(
            f"--require-cached: {batch.n_simulated} task(s) had to be simulated",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_cache(args) -> int:
    from repro.exec import DEFAULT_CACHE_DIR, ResultCache

    cache = ResultCache(args.cache or DEFAULT_CACHE_DIR)
    if args.action == "stats":
        print(cache.stats().to_text())
    else:
        removed = cache.clear()
        print(f"cleared {removed} cache entrie(s) from {cache.root}")
    return 0


def _run_lint(args) -> int:
    from pathlib import Path

    import repro
    from repro.errors import LintError
    from repro.lint import (
        PARSE_ERROR_CODE,
        RULE_CODES,
        UNUSED_SUPPRESSION_CODE,
        LintConfig,
        collect_waivers,
        lint_paths,
        render_json,
        render_sarif,
        render_text,
    )

    paths = args.paths or [Path(repro.__file__).parent]
    if getattr(args, "list_waivers", False):
        try:
            waivers = collect_waivers(paths)
        except LintError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
        for path, sup in waivers:
            expiry = f" until={sup.until.isoformat()}" if sup.until else ""
            reason = sup.reason or "(no reason: inert)"
            print(f"{path}:{sup.line}: {', '.join(sup.codes)}{expiry} -- {reason}")
        print(f"{len(waivers)} waiver(s)")
        return 0
    known = (*RULE_CODES, PARSE_ERROR_CODE, UNUSED_SUPPRESSION_CODE)
    try:
        config = LintConfig.from_options(
            select=args.select, ignore=args.ignore, known=known
        )
        result = lint_paths(paths, config)
    except LintError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    render = {"json": render_json, "sarif": render_sarif}.get(args.format, render_text)
    print(render(result))
    return 0 if result.ok else 1


def _run_db(args) -> int:
    """The ``db`` subcommand family (see ``docs/experiments-db.md``)."""
    import json as json_mod

    from repro.expdb import (
        DEFAULT_DB_PATH,
        ExperimentDB,
        evaluate_expectations,
        find_regressions,
        ingest_bench_file,
        ingest_session_dir,
        perf_regressions,
        record_evaluations,
        render_expectations_markdown,
        render_perf_markdown,
        scorecard_counts,
    )

    db = ExperimentDB(args.path or DEFAULT_DB_PATH)

    if args.db_command == "ingest":
        if not args.manifests and not args.bench:
            print("db ingest: nothing to do (--manifests/--bench)", file=sys.stderr)
            return 2
        now = time.time()  # the CLI is a sanctioned timing layer
        total_ingested = total_skipped = 0
        for directory in args.manifests:
            ingested, skipped = ingest_session_dir(db, directory)
            total_ingested += ingested
            total_skipped += skipped
            print(f"{directory}: {ingested} manifest(s) ingested, {skipped} skipped")
        for bench_path in args.bench:
            names = ingest_bench_file(db, bench_path, created_unix=now)
            total_ingested += len(names)
            print(f"{bench_path}: {len(names)} benchmark point(s) "
                  f"-> series {sorted(set(names))}")
        counts = db.counts()
        print(
            f"ledger {db.path}: {counts['runs']} run(s), "
            f"{counts['benchmarks']} benchmark point(s)"
        )
        return 0 if total_ingested or not total_skipped else 1

    if args.db_command == "query":
        rows = db.runs(
            digest=args.digest,
            label=args.label,
            status=args.status,
            engine=args.engine,
            limit=args.limit or None,
        )
        counts = db.counts()
        print(
            f"ledger {db.path}: {counts['runs']} run(s), "
            f"{counts['benchmarks']} benchmark point(s), "
            f"{counts['expectation_evals']} evaluation(s)"
        )
        if rows:
            print(f"{'digest':>14} {'label':>18} {'status':>10} "
                  f"{'engine':>17} {'cycles':>8} {'w1 mean':>9}")
            for row in rows:
                means = json_mod.loads(row["stage_means"]) if row["stage_means"] else None
                w1 = f"{means[0]:9.4f}" if means else "        -"
                print(
                    f"{row['digest'][:12]:>14} {row['label']:>18} "
                    f"{row['status']:>10} {row['engine']:>17} "
                    f"{row['n_cycles']:8d} {w1}"
                )
        return 0

    if args.db_command == "expectations":
        results = evaluate_expectations(db)
        regressions = find_regressions(db, results)
        record_evaluations(db, results, created_unix=time.time())
        report = render_expectations_markdown(results, regressions)
        if args.report:
            from pathlib import Path

            Path(args.report).write_text(report)
            print(f"[scorecard -> {args.report}]", file=sys.stderr)
        print(report, end="")
        counts = scorecard_counts(results)
        if regressions:
            names = ", ".join(r.expectation.id for r in regressions)
            print(f"REGRESSION: previously-met target(s) no longer hold: {names}",
                  file=sys.stderr)
            return 1
        if args.strict and counts["failure"]:
            print(f"--strict: {counts['failure']} target(s) classified as failure",
                  file=sys.stderr)
            return 1
        return 0

    if args.db_command == "perf":
        report = render_perf_markdown(db)
        if args.report:
            from pathlib import Path

            Path(args.report).write_text(report)
            print(f"[perf trajectory -> {args.report}]", file=sys.stderr)
        print(report, end="")
        problems = perf_regressions(db)
        if problems and args.fail_on_regression:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        return 0

    # export
    dump = db.export()
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(dump + "\n")
        print(f"[ledger export -> {args.out}]", file=sys.stderr)
    else:
        print(dump)
    return 0


def _run_serve(args) -> int:
    """The ``serve`` command: run the HTTP service until interrupted."""
    from pathlib import Path

    from repro.api import JobManager, make_server, serve_forever
    from repro.exec import DEFAULT_CACHE_DIR, ResultCache

    db = None
    if args.db is not None:
        from repro.expdb import ExperimentDB

        db = ExperimentDB(args.db)
    shard_mib = args.shard_mem
    manager = JobManager(
        executors=args.executors,
        workers=args.workers,
        retries=args.retries,
        timeout=args.timeout,
        backend=args.backend,
        shard_mem=shard_mib * 1024 * 1024 if shard_mib is not None else None,
        max_queue=args.max_queue,
        cache=None if args.no_cache else ResultCache(args.cache or DEFAULT_CACHE_DIR),
        use_cache=not args.no_cache,
        db=db,
    )
    server = make_server(args.host, args.port, manager=manager, quiet=args.quiet)
    print(f"listening on http://{args.host}:{server.port}", flush=True)
    if args.port_file:
        Path(args.port_file).write_text(f"{server.port}\n")
    serve_forever(server)
    return 0


def _run_submit(args) -> int:
    """The ``submit`` command: drive a running service over HTTP."""
    import json as json_mod
    from pathlib import Path

    from repro.api import ApiClient
    from repro.errors import ApiError

    client = ApiClient(args.url, timeout=args.timeout)
    source = args.scenarios
    payloads = []
    if source.endswith(".json") or Path(source).is_file():
        from repro.exec import specs_from_file

        for spec in specs_from_file(source):
            doc = {"spec": spec.to_jsonable()}
            if args.cycles is not None:
                doc["n_cycles"] = args.cycles
            payloads.append(doc)
    else:
        doc = {"scenario": source}
        if args.label is not None:
            doc["label"] = args.label
        if args.cycles is not None:
            doc["n_cycles"] = args.cycles
        payloads.append(doc)

    runs = []
    try:
        for payload in payloads:
            response = client.submit(payload)
            if args.as_json:
                print(json_mod.dumps(response, indent=2))
            runs.extend(response["runs"])
        finals = {}
        if args.wait:
            for run in runs:
                finals[run["digest"]] = client.wait(
                    run["digest"], timeout=args.timeout
                )
                if args.as_json:
                    print(json_mod.dumps(finals[run["digest"]], indent=2))
    except ApiError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1

    if not args.as_json:
        print(f"{'label':>18} {'digest':>14} {'cached':>7} {'status':>10}")
        for run in runs:
            status = finals.get(run["digest"], run).get("status", run["status"])
            print(
                f"{run['label']:>18} {run['digest'][:12]:>14} "
                f"{str(run['cached']).lower():>7} {status:>10}"
            )
    failed = [
        digest for digest, doc in finals.items() if doc.get("status") == "failed"
    ]
    if failed:
        print(f"submit: {len(failed)} run(s) failed", file=sys.stderr)
        return 1
    if args.require_cached:
        fresh = [run for run in runs if not run["cached"]]
        if fresh:
            print(
                f"--require-cached: {len(fresh)} run(s) were not served "
                "from cache or an existing job",
                file=sys.stderr,
            )
            return 1
    return 0


def _run_metrics(args) -> str:
    from repro.analysis.report import render_metrics_summary
    from repro.obs.metrics import MetricsCollector
    from repro.simulation.network import NetworkConfig, NetworkSimulator

    config = NetworkConfig(
        k=args.k,
        n_stages=args.stages,
        p=args.p,
        message_size=args.m,
        topology="random" if args.width is not None else "omega",
        width=args.width,
        buffer_capacity=args.buffer,
        seed=args.seed if args.seed is not None else 1,
    )
    sim = NetworkSimulator(config)
    if sim.metrics is None:  # no --metrics-out session installed one
        sim.attach_metrics(MetricsCollector(stride=args.metrics_stride))
    sim.engine.enable_profiling()
    n_cycles = args.cycles if args.cycles is not None else 20_000
    result = sim.run(n_cycles)
    return render_metrics_summary(result, sim.metrics)


def _dispatch(args) -> int:
    if args.command == "table":
        print(_run_table(args.id, args.cycles, args.seed))
    elif args.command == "figure":
        print(_run_figure(args.id, args.stages, args.cycles, args.seed))
    elif args.command == "calibrate":
        print(_run_calibrate(args.cycles))
    elif args.command == "report":
        from repro.analysis.experiments_report import generate_experiments_markdown

        print(generate_experiments_markdown(n_cycles=args.cycles, seed=args.seed))
    elif args.command == "sweep":
        print(_run_sweep(args.kind, args.cycles, args.seed))
    elif args.command == "batch":
        return _run_batch(args)
    elif args.command == "cache":
        return _run_cache(args)
    elif args.command == "metrics":
        print(_run_metrics(args))
    elif args.command == "validate":
        from repro.analysis.validate import render_validation, run_validation

        checks = run_validation(
            n_cycles=args.cycles if args.cycles is not None else 8_000
        )
        print(render_validation(checks))
        if any(not c.passed for c in checks):
            return 1
    elif args.command == "all":
        from repro.analysis.figures import FIGURE_CONFIGS

        for table_id in (*_STAGE_TABLES, "VI", *_TOTALS_TABLES):
            print(_run_table(table_id, args.cycles, args.seed))
            print()
        for figure_id in sorted(FIGURE_CONFIGS):
            for stages in (3, 6, 9, 12):
                print(_run_figure(figure_id, stages, args.cycles, args.seed))
                print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        # lint is pure static analysis: no simulation context, no
        # metrics session, no timing chatter polluting JSON output
        return _run_lint(args)
    if args.command == "db":
        # ledger maintenance never simulates: no execution context, no
        # metrics session, and exports stay free of timing chatter
        return _run_db(args)
    if args.command == "serve":
        # the service wires its own JobManager; the process-global
        # execution context and metrics session stay out of its way
        return _run_serve(args)
    if args.command == "submit":
        # pure HTTP client: nothing simulates in this process
        return _run_submit(args)
    started = time.time()

    def dispatch_in_context() -> int:
        from repro.exec import ExecutionContext, ResultCache, use_execution

        # the batch/cache commands manage their own cache handle
        cache_dir = args.cache if args.command not in ("batch", "cache") else None
        shard_mib = getattr(args, "shard_mem", None)
        context = ExecutionContext(
            workers=args.workers or 1,
            cache=ResultCache(cache_dir) if cache_dir else None,
            vectorize=getattr(args, "vectorize_replicas", False),
            backend=getattr(args, "backend", "auto"),
            stream=shard_mib is not None,
            shard_mem=shard_mib * 1024 * 1024 if shard_mib is not None else None,
            target_ci=getattr(args, "target_ci", None),
            sanitize=getattr(args, "sanitize", False),
        )
        with use_execution(context):
            return _dispatch(args)

    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out is not None:
        from repro.obs.session import session

        with session(metrics_out, stride=args.metrics_stride) as sess:
            code = dispatch_in_context()
        print(
            f"[{len(sess.manifests)} run manifest(s) -> {metrics_out}]",
            file=sys.stderr,
        )
    else:
        code = dispatch_in_context()
    print(f"[{time.time() - started:.1f}s]", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

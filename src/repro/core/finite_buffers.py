"""Approximate finite-buffer analysis (paper Section VI, future work).

"Given our formulas for infinite buffer delays, along with some
simulation results for finite buffers, it is possible that one could
develop good approximate formulas for finite buffer delays."  This
module supplies the standard tail-probability workflow:

* the exact distribution of the *buffered work* ``s`` comes from the
  Theorem 1 component ``Psi(z)`` (the unfinished-work transform), which
  this library computes term-by-term;
* the loss probability of a finite buffer of ``B`` work units is
  approximated by the infinite-buffer overflow tail ``P(s > B)`` -- the
  classical heuristic, asymptotically exact as the loss rate goes to
  zero, i.e. precisely in the light-to-moderate-load regime where the
  paper's infinite-buffer idealisation is meant to hold;
* because the tail is geometric (dominant-singularity of the rational
  transform), a decay-rate fit extrapolates beyond any computed prefix,
  so nano-scale loss targets cost nothing extra.

Buffer sizes are measured in *work units* (packet-cycles); for unit
service that is messages, for constant size ``m`` divide by ``m`` to
get message slots.

Validated against the simulator's finite-buffer drop counters in the
test-suite and the A4 ablation benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.first_stage import FirstStageQueue
from repro.errors import AnalysisError

__all__ = [
    "BufferTail",
    "work_tail",
    "overflow_probability",
    "suggested_capacity",
]


@dataclass(frozen=True)
class BufferTail:
    """The buffered-work tail ``P(s > B)`` with geometric extrapolation.

    Attributes
    ----------
    tail:
        ``tail[B] = P(s > B)`` for the computed prefix.  Entries below
        float noise are unreliable; queries beyond :attr:`anchor` use
        the fitted geometric law instead.
    decay:
        Fitted per-unit geometric decay rate of the tail.
    anchor:
        Last index whose tail value is trusted (above float noise).
    """

    tail: np.ndarray
    decay: float
    anchor: int

    def probability(self, capacity: int) -> float:
        """``P(s > capacity)``, extrapolating geometrically if needed."""
        if capacity < 0:
            return 1.0
        if capacity <= self.anchor:
            return float(self.tail[capacity])
        if self.decay <= 0.0:
            return 0.0
        return float(self.tail[self.anchor] * self.decay ** (capacity - self.anchor))

    def capacity_for(self, target: float) -> int:
        """Smallest capacity with overflow probability ``<= target``."""
        if not 0 < target < 1:
            raise AnalysisError(f"target must be in (0, 1), got {target}")
        trusted = self.tail[: self.anchor + 1]
        idx = np.searchsorted(-trusted, -target, side="left")
        if idx <= self.anchor and trusted[idx] <= target:
            return int(idx)
        # extrapolate past the trusted prefix
        anchor_value = float(self.tail[self.anchor])
        if self.decay <= 0.0:
            return self.anchor  # tail is identically zero beyond here
        if self.decay >= 1.0 or anchor_value <= 0:
            raise AnalysisError("tail does not decay; cannot size a buffer")
        extra = math.log(target / anchor_value) / math.log(self.decay)
        return self.anchor + max(0, math.ceil(extra))


def work_tail(queue: FirstStageQueue, n_terms: int = 512) -> BufferTail:
    """Compute ``P(s > B)`` from the exact ``Psi(z)`` transform.

    ``n_terms`` bounds the explicitly computed prefix; the geometric
    decay rate is fitted on the last decade of usable (above float
    noise) tail values.
    """
    if n_terms < 16:
        raise AnalysisError("need at least 16 terms to fit a tail")
    if queue.rho == 0:
        return BufferTail(tail=np.zeros(n_terms), decay=0.0, anchor=0)
    pmf = np.asarray(queue.unfinished_work_transform.pmf(n_terms), dtype=float)
    tail = np.clip(1.0 - np.cumsum(pmf), 0.0, None)
    # trust the tail only where it is comfortably above float noise
    usable = np.flatnonzero(tail > 1e-13)
    if usable.size < 4:
        return BufferTail(tail=tail, decay=0.0, anchor=int(usable[-1]) if usable.size else 0)
    hi = int(usable[-1])
    lo = max(int(usable[0]), hi - 16)
    decay = float((tail[hi] / tail[lo]) ** (1.0 / (hi - lo))) if hi > lo else 0.0
    return BufferTail(tail=tail, decay=decay, anchor=hi)


def overflow_probability(queue: FirstStageQueue, capacity: int, n_terms: int = 512) -> float:
    """Loss-probability approximation for a buffer of ``capacity`` work units.

    This is the infinite-buffer overflow tail ``P(s > capacity)``; a
    good proxy for the finite-buffer drop fraction whenever that
    fraction is small (which is when you would deploy the buffer).
    """
    if capacity < 0:
        raise AnalysisError(f"capacity must be >= 0, got {capacity}")
    return work_tail(queue, n_terms).probability(capacity)


def suggested_capacity(
    queue: FirstStageQueue, target_loss: float, n_terms: int = 512
) -> int:
    """Smallest buffer (in work units) with approximate loss ``<= target_loss``."""
    return work_tail(queue, n_terms).capacity_for(target_loss)

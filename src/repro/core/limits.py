"""Continuous-time limits of the discrete queue (Sections III-C, IV-B).

The paper sanity-checks Theorem 1 by letting the clock tick ``n`` times
per unit of time and sending ``n`` to infinity:

* geometric service with ``mu -> m_u/n`` and arrivals ``p -> p/n`` turns
  each output queue into an **M/M/1** queue -- the discrete transform
  converges to the classical Laplace transform
  ``(1-rho) / (1 - rho - s/mu_rate)`` scaled appropriately;
* constant service with the analogous scaling gives **M/D/1**, the
  light-traffic model the paper uses for the interior stages of
  multi-packet networks.

This module provides the classical reference formulas and helpers that
build the *scaled discrete* queue for any ``n``, so the convergence can
be exhibited numerically (the test-suite does exactly the computation
the paper sketches).
"""

from __future__ import annotations

from fractions import Fraction
from typing import NamedTuple

from repro.arrivals.bernoulli import UniformTraffic
from repro.core.first_stage import FirstStageQueue
from repro.errors import UnstableQueueError
from repro.series.polynomial import as_exact
from repro.service.deterministic import DeterministicService
from repro.service.geometric import GeometricService

__all__ = [
    "ContinuousMoments",
    "mm1_waiting_moments",
    "md1_waiting_moments",
    "mg1_waiting_moments",
    "scaled_geometric_queue",
    "light_traffic_interior_mean",
    "light_traffic_interior_variance",
]


class ContinuousMoments(NamedTuple):
    """Mean and variance of a continuous-time waiting time."""

    mean: Fraction
    variance: Fraction


def _check_rho(rho) -> Fraction:
    rho = as_exact(rho)
    if not 0 <= rho < 1:
        raise UnstableQueueError(f"traffic intensity rho={rho} outside [0, 1)")
    return rho


def mm1_waiting_moments(rho, service_mean=1) -> ContinuousMoments:
    """M/M/1 waiting time: ``E W = rho m/(1-rho)``, ``Var W = rho(2-rho) m^2/(1-rho)^2``.

    (Kleinrock Vol. 1, Section 5.12 -- the reference the paper cites for
    the limiting transform ``(1-rho)/(1-rho+s/mu)``.)
    """
    rho = _check_rho(rho)
    m = as_exact(service_mean)
    mean = rho * m / (1 - rho)
    variance = rho * (2 - rho) * m * m / (1 - rho) ** 2
    return ContinuousMoments(mean, variance)


def mg1_waiting_moments(lam, s1, s2, s3) -> ContinuousMoments:
    """M/G/1 waiting time from the Pollaczek-Khinchine expansion.

    ``lam`` is the arrival rate; ``s1, s2, s3`` the first three raw
    moments of the service time.  ``E W = lam s2 / 2(1-rho)`` and
    ``E W^2 = 2 (E W)^2 + lam s3 / 3(1-rho)``, hence
    ``Var W = (E W)^2 + lam s3 / 3(1-rho)``.
    """
    lam, s1, s2, s3 = map(as_exact, (lam, s1, s2, s3))
    rho = _check_rho(lam * s1)
    mean = lam * s2 / (2 * (1 - rho))
    variance = mean * mean + lam * s3 / (3 * (1 - rho))
    return ContinuousMoments(mean, variance)


def md1_waiting_moments(rho, service_time=1) -> ContinuousMoments:
    """M/D/1 waiting time (service constant ``= service_time``)."""
    rho = _check_rho(rho)
    m = as_exact(service_time)
    lam = rho / m
    return mg1_waiting_moments(lam, m, m * m, m ** 3)


def scaled_geometric_queue(k: int, p, mu, n: int, s: int | None = None) -> FirstStageQueue:
    """The Section III-C scaled discrete queue with ``n`` cycles per time unit.

    Arrival probability ``p/n`` per (fast) cycle and geometric service
    parameter ``mu/n`` keep the traffic intensity fixed while the cycle
    length shrinks; as ``n -> infinity`` the waiting time measured in
    *unscaled* units (divide by ``n``) converges to the M/M/1 waiting
    time with arrival rate ``pk/s`` and service rate ``mu``.
    """
    p, mu = as_exact(p), as_exact(mu)
    if n < 1:
        raise UnstableQueueError(f"time-scale factor n={n} must be >= 1")
    return FirstStageQueue(
        UniformTraffic(k=k, p=p / n, s=s), GeometricService(mu=mu / n)
    )


def scaled_deterministic_queue(k: int, p, m: int, n: int, s: int | None = None) -> FirstStageQueue:
    """M/D/1 scaling: arrivals thinned by ``n``, service stretched by ``n``."""
    p = as_exact(p)
    if n < 1:
        raise UnstableQueueError(f"time-scale factor n={n} must be >= 1")
    return FirstStageQueue(
        UniformTraffic(k=k, p=p / n, s=s), DeterministicService(m=m * n)
    )


# ----------------------------------------------------------------------
# Section IV-B light-traffic interior model
# ----------------------------------------------------------------------

def light_traffic_interior_mean(k: int, rho, m) -> Fraction:
    """Interior-stage light-traffic mean: ``(1 - 1/k) rho m / 2``.

    Interior stages of a multi-packet network resemble M/D/1 queues with
    the congestion of an arrival rate thinned by ``(1 - 1/k)`` -- a
    packet almost never collides with one from its own source.
    """
    rho = _check_rho(rho)
    return (1 - Fraction(1, k)) * rho * as_exact(m) / 2


def light_traffic_interior_variance(k: int, rho, m) -> Fraction:
    """Interior-stage light-traffic variance: ``(1 - 1/k) rho m^2 / 3``.

    This is the source of the paper's ``2/3`` coefficient: the M/D/1
    light-traffic second moment ``lam' m^3/3`` is two thirds of the
    scaled first-stage value ``lam' m^3/2``.
    """
    rho = _check_rho(rho)
    m = as_exact(m)
    return (1 - Fraction(1, k)) * rho * m * m / 3

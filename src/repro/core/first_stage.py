"""Exact first-stage analysis (paper Section II, Theorem 1).

The first stage of the network is a discrete-time queue: per-cycle
arrival batches with PGF ``R(z)``, i.i.d. service times with PGF
``U(z)``, one unit of work served per cycle.  Theorem 1 gives the
z-transform of the steady-state waiting time

.. math::

    t(z) = E[z^w]
         = \\frac{1-m\\lambda}{\\lambda}\\cdot
           \\frac{(1-z)\\,\\bigl(1-R(U(z))\\bigr)}
                {\\bigl(R(U(z))-z\\bigr)\\,\\bigl(1-U(z)\\bigr)} ,

built from two independent components:

* ``Psi(z) = (1-m\\lambda)(1-z)/(R(U(z))-z)`` -- the transform of the
  *unfinished work* ``s`` found by an arriving batch (the discrete
  analogue of the Pollaczek--Khinchine formula, solved exactly as in the
  proof: the Lindley recursion ``s_n = max(0, s_{n-1} + c_n - 1)`` with
  ``c_n`` the work arriving in cycle ``n``, ``E[z^c] = R(U(z))``);
* ``phi(U(z))`` with ``phi(z) = (R(z)-1)/(\\lambda(z-1))`` -- the
  transform of the service ``w'`` of same-batch messages served first
  (a size-biased batch position).

Everything is computed with exact rational arithmetic; "in principle,
this gives the complete distribution of the waiting time" -- and here,
in practice too: :meth:`FirstStageQueue.waiting_pmf` extracts it term
by term.
"""

from __future__ import annotations

from fractions import Fraction
from functools import cached_property
from typing import List, Union

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.core.moments import QueueMoments, check_stability, queue_moments
from repro.errors import AnalysisError
from repro.series.pgf import PGF
from repro.series.polynomial import Polynomial
from repro.series.rational import RationalFunction
from repro.service.base import ServiceProcess

__all__ = ["FirstStageQueue"]

_ONE_MINUS_Z = RationalFunction(Polynomial([1, -1]))
_Z = RationalFunction(Polynomial([0, 1]))


class FirstStageQueue:
    """Exact analysis of one first-stage output queue.

    Parameters
    ----------
    arrivals:
        Any :class:`~repro.arrivals.base.ArrivalProcess` (gives ``R``).
    service:
        Any :class:`~repro.service.base.ServiceProcess` (gives ``U``).

    Raises
    ------
    UnstableQueueError
        If ``rho = m * lambda >= 1``.

    Examples
    --------
    >>> from repro.arrivals import UniformTraffic
    >>> from repro.service import DeterministicService
    >>> q = FirstStageQueue(UniformTraffic(k=2, p=0.5), DeterministicService(1))
    >>> q.waiting_mean()
    Fraction(1, 4)
    """

    def __init__(self, arrivals: ArrivalProcess, service: ServiceProcess) -> None:
        self.arrivals = arrivals
        self.service = service
        self._R = arrivals._cached_pgf()
        self._U = service._cached_pgf()
        self.lam = self._R.mean()
        self.m = self._U.mean()
        self.rho = check_stability(self.lam, self.m)

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    @cached_property
    def work_pgf(self) -> PGF:
        """PGF of the work arriving per cycle: ``A(z) = R(U(z))``."""
        return PGF(self._R.transform.compose(self._U.transform), validate=False)

    @cached_property
    def unfinished_work_transform(self) -> PGF:
        """``Psi(z)``: PGF of the unfinished work ``s`` seen by an arriving batch."""
        A = self.work_pgf.transform
        num = (1 - self.rho) * _ONE_MINUS_Z
        den = A - _Z
        return PGF(num / den, validate=False)

    @cached_property
    def predecessor_transform(self) -> PGF:
        """``phi(U(z))``: PGF of the same-batch predecessor service ``w'``.

        Degenerate-at-zero when arrivals are single (then no message
        ever shares a cycle with a predecessor).
        """
        if self.lam == 0:
            raise AnalysisError("predecessor transform undefined for zero traffic")
        R, U = self._R.transform, self._U.transform
        A = self.work_pgf.transform
        # phi(U(z)) = (R(U(z)) - 1) / (lambda (U(z) - 1))
        num = A - 1
        den = Fraction(self.lam) * (U - 1)
        return PGF(num / den, validate=False)

    @cached_property
    def waiting_transform(self) -> PGF:
        """Theorem 1: the full waiting-time transform ``t(z)``."""
        if self.lam == 0:
            return PGF.degenerate(0)
        return PGF(
            self.unfinished_work_transform.transform
            * self.predecessor_transform.transform,
            validate=False,
        )

    @cached_property
    def delay_transform(self) -> PGF:
        """PGF of the *delay* (waiting + own service): ``t(z) U(z)``.

        The paper's examples report waiting time; "to obtain the delay
        of a message in a queue, one must add to these formulas the
        service time."  Waiting and own service are independent, so the
        transforms multiply.
        """
        return PGF(self.waiting_transform.transform * self._U.transform, validate=False)

    # ------------------------------------------------------------------
    # moments (two independent routes, cross-checked in tests)
    # ------------------------------------------------------------------
    def moments(self) -> QueueMoments:
        """Closed-form moments via paper Eqs. (2)/(3) (exact Fractions)."""
        return queue_moments(
            self.lam,
            self.m,
            self._R.factorial_moment(2),
            self._R.factorial_moment(3),
            self._U.factorial_moment(2),
            self._U.factorial_moment(3),
        )

    def waiting_mean(self) -> Fraction:
        """``E[w]`` (paper Eq. 2)."""
        return self.moments().mean

    def waiting_variance(self) -> Fraction:
        """``Var[w]`` (paper Eq. 3)."""
        return self.moments().variance

    def waiting_moment_exact(self, order: int) -> Fraction:
        """Raw moment ``E[w^order]`` from the exact transform.

        Independent of the closed forms: computed by Taylor-expanding
        ``t(z)`` about ``z = 1``.  Available to any order -- the paper
        stops at the variance because each further L'Hospital pass was
        painful by hand; here ``order=5`` costs microseconds.
        """
        return self.waiting_transform.raw_moments(order)[order]

    def delay_mean(self) -> Fraction:
        """``E[w] + m``: mean queueing delay including own service."""
        return self.waiting_mean() + self.m

    def delay_variance(self) -> Fraction:
        """``Var[w] + Var[service]`` (independent summands)."""
        return self.waiting_variance() + self._U.variance()

    # ------------------------------------------------------------------
    # distributions
    # ------------------------------------------------------------------
    def waiting_pmf(self, n_terms: int, exact: bool = False) -> Union[np.ndarray, List[Fraction]]:
        """``P(w = j)`` for ``j < n_terms`` (the "complete distribution")."""
        return self.waiting_transform.pmf(n_terms, exact=exact)

    def delay_pmf(self, n_terms: int, exact: bool = False) -> Union[np.ndarray, List[Fraction]]:
        """``P(delay = j)`` for ``j < n_terms``."""
        return self.delay_transform.pmf(n_terms, exact=exact)

    def waiting_tail(self, n_terms: int) -> np.ndarray:
        """``P(w > j)`` for ``j < n_terms``."""
        return self.waiting_transform.tail(n_terms)

    def waiting_quantile(self, q: float) -> int:
        """Smallest ``j`` with ``P(w <= j) >= q``."""
        return self.waiting_transform.quantile(q)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"FirstStageQueue(arrivals={self.arrivals}, service={self.service}, "
            f"rho={self.rho})"
        )

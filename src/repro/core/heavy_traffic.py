"""Heavy-traffic asymptotics (paper Section VI, future work).

"It might be possible to obtain a heavy traffic analysis.  This would
provide an exact value for ``lim_{p->1} r(p)``, and would simplify the
task of obtaining good approximations for ``w_inf`` and ``v_inf``."

What *is* exactly computable from the paper's own first-stage results
is the heavy-traffic behaviour of stage one: from Eq. (2),

.. math::

    \\lim_{\\rho \\to 1} (1-\\rho)\\, E w
        = \\frac{m R''(1) + \\lambda^2 U''(1)}{2\\lambda}
          \\Big|_{\\rho = 1},

the discrete analogue of the Kingman heavy-traffic coefficient, and the
waiting time divided by its mean converges to an exponential.  This
module provides those coefficients for the standard traffic families,
an exponential heavy-traffic approximation of the waiting distribution,
and an empirical estimator of ``lim r(rho)`` by simulation at loads
marching toward saturation -- the experiment the authors say they did
not run.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.core import formulas
from repro.core.first_stage import FirstStageQueue
from repro.errors import AnalysisError
from repro.series.polynomial import as_exact
from repro.service.base import ServiceProcess

__all__ = [
    "heavy_traffic_coefficient",
    "uniform_unit_heavy_coefficient",
    "ExponentialApproximation",
    "heavy_traffic_waiting",
    "estimate_limit_inflation",
]


def heavy_traffic_coefficient(arrivals: ArrivalProcess, service: ServiceProcess) -> Fraction:
    """``(1 - rho) E[w]`` evaluated at the *given* (stable) load.

    As the family of traffic processes is pushed toward saturation this
    quantity converges; evaluating it at the highest stable load of
    interest gives the Kingman-style constant for that family.
    """
    lam = arrivals.rate
    m = service.mean
    if lam == 0:
        raise AnalysisError("heavy-traffic coefficient undefined at zero load")
    r2 = arrivals.factorial_moment(2)
    u2 = service.factorial_moment(2)
    return (m * r2 + lam * lam * u2) / (2 * lam)


def uniform_unit_heavy_coefficient(k: int) -> Fraction:
    """``lim_{rho->1} (1-rho) E[w]`` for uniform unit-service traffic.

    From Eq. (6): ``(1-1/k) rho / 2 -> (1-1/k)/2``.
    """
    if k < 1:
        raise AnalysisError(f"switch degree must be >= 1, got {k}")
    return (1 - Fraction(1, k)) / 2


@dataclass(frozen=True)
class ExponentialApproximation:
    """Heavy-traffic exponential model of the waiting time.

    ``P(w > x) ~ exp(-x / mean)`` -- one parameter, matched to the exact
    mean; accurate for loads near saturation where the geometric tail
    dominates the whole distribution.
    """

    mean: float

    def sf(self, x) -> np.ndarray:
        """``P(w > x)`` (vectorised)."""
        return np.exp(-np.asarray(x, dtype=float) / self.mean)

    def quantile(self, q: float) -> float:
        """The ``q`` quantile."""
        if not 0 <= q < 1:
            raise AnalysisError(f"quantile level must be in [0, 1), got {q}")
        return float(-self.mean * np.log1p(-q))


def heavy_traffic_waiting(queue: FirstStageQueue) -> ExponentialApproximation:
    """One-parameter exponential approximation of the waiting time.

    Matched to the exact Eq. (2) mean; the test-suite shows the tail
    error shrinking as ``rho`` approaches one.
    """
    mean = float(queue.waiting_mean())
    if mean <= 0:
        raise AnalysisError("exponential approximation needs a positive mean wait")
    return ExponentialApproximation(mean=mean)


def estimate_limit_inflation(
    k: int = 2,
    loads: Sequence[float] = (0.80, 0.88, 0.94),
    n_cycles: int = 60_000,
    seed: int = 71,
) -> List[tuple]:
    """Empirical ``r(rho) = w_inf / w_1`` marching toward saturation.

    Returns ``[(rho, r(rho)), ...]``.  The paper conjectures
    ``lim_{rho->1} r(rho)`` exists; this runs the experiment.  Heavy
    loads mix slowly, so ``n_cycles`` defaults high -- expect tens of
    seconds per load.
    """
    from repro.core.calibration import _deep_uniform_config, estimate_limit_statistics

    out = []
    for i, rho in enumerate(loads):
        est = estimate_limit_statistics(
            _deep_uniform_config(k, rho, 1, seed + i), n_cycles
        )
        w1 = float(formulas.uniform_unit_mean(k, as_exact(rho)))
        out.append((rho, est.mean / w1))
    return out

"""Closed-form waiting-time moments (paper Eqs. 2 and 3).

The paper derives the mean by one application of L'Hospital's rule to
``t'(z)`` and the variance by six applications to ``t''(z)`` ("took
Macsyma all night on a minicomputer").  We re-derive both directly from
the decomposition in the proof of Theorem 1, which gives compact closed
forms in the factorial moments of ``R`` and ``U``:

With ``w = s + w'`` (``s`` = unfinished work seen by the arriving batch,
``w'`` = service of same-batch predecessors; the two are independent
because the arrival process is memoryless), and writing

.. math::

    \\lambda = R'(1),\\; r_2 = R''(1),\\; r_3 = R'''(1),\\;
    m = U'(1),\\; u_2 = U''(1),\\; u_3 = U'''(1),\\;
    \\rho = m\\lambda,

the per-cycle work PGF is ``A(z) = R(U(z))`` with factorial moments

.. math::

    a_2 = A''(1) = r_2 m^2 + \\lambda u_2, \\qquad
    a_3 = A'''(1) = r_3 m^3 + 3 r_2 m u_2 + \\lambda u_3 .

Expanding ``Psi(z) = (1-\\rho)(1-z)/(A(z)-z)`` and
``phi(U(z)) = (R(U(z))-1)/(\\lambda (U(z)-1))`` about ``z = 1``:

.. math::

    E s &= \\frac{a_2}{2(1-\\rho)}, \\qquad
    E w' = \\frac{m r_2}{2\\lambda}, \\\\
    E w &= \\frac{m r_2 + \\lambda^2 u_2}{2\\lambda(1-\\rho)}
        \\quad\\text{(= paper Eq. 2)}, \\\\
    \\operatorname{Var} s &= \\frac{a_2^2}{4(1-\\rho)^2}
        + \\frac{a_3}{3(1-\\rho)} + \\frac{a_2}{2(1-\\rho)}, \\\\
    \\operatorname{Var} w' &= \\frac{r_2 u_2}{2\\lambda}
        + \\frac{r_3 m^2}{3\\lambda} + \\frac{r_2 m}{2\\lambda}
        - \\frac{r_2^2 m^2}{4\\lambda^2}, \\\\
    \\operatorname{Var} w &= \\operatorname{Var} s
        + \\operatorname{Var} w' \\quad\\text{(= paper Eq. 3)} .

Every function here is validated against the exact series expansion of
the transform (:mod:`repro.core.first_stage`) with zero tolerance; that
agreement is the machine-checked proof that these are the formulas the
(partially OCR-garbled) paper printed.
"""

from __future__ import annotations

from fractions import Fraction
from typing import NamedTuple

from repro.errors import UnstableQueueError
from repro.series.polynomial import as_exact

__all__ = [
    "QueueMoments",
    "waiting_time_mean",
    "waiting_time_variance",
    "unfinished_work_mean",
    "unfinished_work_variance",
    "predecessor_delay_mean",
    "predecessor_delay_variance",
    "queue_moments",
    "check_stability",
]


class QueueMoments(NamedTuple):
    """Bundle of first-stage waiting-time moments.

    Attributes
    ----------
    mean, variance:
        Moments of the waiting time ``w``.
    work_mean, work_variance:
        Moments of the unfinished work ``s`` seen by an arriving batch.
    predecessor_mean, predecessor_variance:
        Moments of the same-batch predecessor service ``w'``.
    traffic_intensity:
        ``rho = m * lambda``.
    """

    mean: Fraction
    variance: Fraction
    work_mean: Fraction
    work_variance: Fraction
    predecessor_mean: Fraction
    predecessor_variance: Fraction
    traffic_intensity: Fraction


def check_stability(lam, m) -> Fraction:
    """Validate ``rho = m * lambda < 1`` and return ``rho`` (exact).

    Raises
    ------
    UnstableQueueError
        If the queue is saturated; none of the steady-state formulas
        apply then.
    """
    lam = as_exact(lam)
    m = as_exact(m)
    rho = m * lam
    if rho >= 1:
        raise UnstableQueueError(
            f"traffic intensity rho = m*lambda = {rho} >= 1; "
            "the steady-state waiting time does not exist"
        )
    if lam < 0:
        raise UnstableQueueError(f"arrival rate lambda = {lam} < 0")
    return rho


def unfinished_work_mean(lam, m, r2, u2) -> Fraction:
    """``E[s]``: mean unfinished work seen by an arriving batch."""
    lam, m, r2, u2 = map(as_exact, (lam, m, r2, u2))
    rho = check_stability(lam, m)
    a2 = r2 * m * m + lam * u2
    return a2 / (2 * (1 - rho))

def unfinished_work_variance(lam, m, r2, r3, u2, u3) -> Fraction:
    """``Var[s]``: variance of the unfinished work."""
    lam, m, r2, r3, u2, u3 = map(as_exact, (lam, m, r2, r3, u2, u3))
    rho = check_stability(lam, m)
    a2 = r2 * m * m + lam * u2
    a3 = r3 * m ** 3 + 3 * r2 * m * u2 + lam * u3
    one = 1 - rho
    return a2 * a2 / (4 * one * one) + a3 / (3 * one) + a2 / (2 * one)


def predecessor_delay_mean(lam, m, r2) -> Fraction:
    """``E[w']``: mean service of same-cycle predecessors.

    Zero when arrivals are single (``r2`` counts ordered pairs of
    same-cycle arrivals).
    """
    lam, m, r2 = map(as_exact, (lam, m, r2))
    if lam == 0:
        return Fraction(0)
    return m * r2 / (2 * lam)


def predecessor_delay_variance(lam, m, r2, r3, u2) -> Fraction:
    """``Var[w']``: variance of same-cycle predecessor service."""
    lam, m, r2, r3, u2 = map(as_exact, (lam, m, r2, r3, u2))
    if lam == 0:
        return Fraction(0)
    return (
        r2 * u2 / (2 * lam)
        + r3 * m * m / (3 * lam)
        + r2 * m / (2 * lam)
        - r2 * r2 * m * m / (4 * lam * lam)
    )


def waiting_time_mean(lam, m, r2, u2) -> Fraction:
    """Paper Eq. (2): ``E[w] = (m R''(1) + lambda^2 U''(1)) / (2 lambda (1 - m lambda))``."""
    lam, m, r2, u2 = map(as_exact, (lam, m, r2, u2))
    rho = check_stability(lam, m)
    if lam == 0:
        return Fraction(0)
    return (m * r2 + lam * lam * u2) / (2 * lam * (1 - rho))


def waiting_time_variance(lam, m, r2, r3, u2, u3) -> Fraction:
    """Paper Eq. (3): ``Var[w] = Var[s] + Var[w']`` (see module docstring)."""
    lam = as_exact(lam)
    if lam == 0:
        check_stability(lam, m)
        return Fraction(0)
    return unfinished_work_variance(lam, m, r2, r3, u2, u3) + predecessor_delay_variance(
        lam, m, r2, r3, u2
    )


def queue_moments(lam, m, r2, r3, u2, u3) -> QueueMoments:
    """All first-stage moments in one call (exact Fractions)."""
    lam, m = as_exact(lam), as_exact(m)
    rho = check_stability(lam, m)
    if lam == 0:
        zero = Fraction(0)
        return QueueMoments(zero, zero, zero, zero, zero, zero, rho)
    return QueueMoments(
        mean=waiting_time_mean(lam, m, r2, u2),
        variance=waiting_time_variance(lam, m, r2, r3, u2, u3),
        work_mean=unfinished_work_mean(lam, m, r2, u2),
        work_variance=unfinished_work_variance(lam, m, r2, r3, u2, u3),
        predecessor_mean=predecessor_delay_mean(lam, m, r2),
        predecessor_variance=predecessor_delay_variance(lam, m, r2, r3, u2),
        traffic_intensity=rho,
    )

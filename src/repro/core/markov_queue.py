"""Exact analysis of the bursty (Markov-modulated) queue.

The paper's companion [12] "suggested a method for analyzing the
waiting time at later stages of the network, by assuming that the
output of a queue can be modeled by a Markov process; the
approximations were in practice hard to obtain and not very accurate."
The obstruction was closed-form algebra, not the model: with modern
sparse linear algebra the Markov-modulated queue is exactly solvable
numerically.  This module does it for the
:class:`~repro.arrivals.markov.MarkovModulatedTraffic` source with unit
service:

* state = (queue length ``n``, modulating phase ``j``); per cycle the
  phase flips with probability ``f``, the phase's Binomial(k, rate)
  batch arrives, and one message departs if any is present
  (``n' = max(0, n + a - 1)``, matching the Lindley convention of the
  rest of the library);
* the chain is *skip-free to the left* (down jumps of exactly one), so
  its transition matrix is banded; the stationary distribution of the
  truncated chain comes from one sparse solve;
* the waiting time follows by conditioning: an arriving message sees
  the stationary queue of the previous cycle *jointly with the phase*
  (that correlation is the entire burstiness effect), plus its
  same-batch predecessors.

Validated against the MMBP simulation in the tests; collapses to
Theorem 1 when the flip probability is 1/2 (no temporal correlation).
"""

from __future__ import annotations

from functools import cached_property
from math import comb, fsum

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from repro.arrivals.markov import MarkovModulatedTraffic
from repro.errors import AnalysisError, UnstableQueueError

__all__ = ["MMBPQueueAnalysis"]


class MMBPQueueAnalysis:
    """Exact (truncated) analysis of the MMBP/D/1 discrete queue.

    Parameters
    ----------
    traffic:
        The modulated source (two phases).
    max_level:
        Queue-length truncation.  The geometric tail makes modest
        levels exact to machine precision at moderate load; the
        constructor verifies the truncated mass and raises if the cap
        is too small.

    Examples
    --------
    >>> from fractions import Fraction
    >>> t = MarkovModulatedTraffic(k=2, rates=(Fraction(1,10), Fraction(2,5)),
    ...                            flip=Fraction(1, 2))
    >>> a = MMBPQueueAnalysis(t)
    >>> round(a.waiting_mean(), 4)   # flip=1/2: matches the i.i.d. analysis
    0.34
    """

    def __init__(self, traffic: MarkovModulatedTraffic, max_level: int = 2048) -> None:
        if max_level < 8:
            raise AnalysisError("max_level must be >= 8")
        rho = float(traffic.rate)  # unit service: rho = lambda
        if rho >= 1:
            raise UnstableQueueError(f"rho = {rho} >= 1")
        self.traffic = traffic
        self.max_level = max_level
        self.k = traffic.k
        self.rates = [float(r) for r in traffic.rates]
        f = float(traffic.flip)
        #: phase transition matrix (symmetric two-state chain)
        self.phase_matrix = np.array([[1 - f, f], [f, 1 - f]])
        #: batch pmf per phase: Binomial(k, rate_j)
        self.batch_pmf = np.array(
            [
                [comb(self.k, a) * r ** a * (1 - r) ** (self.k - a) for a in range(self.k + 1)]
                for r in self.rates
            ]
        )
        self._pi = self._solve()

    # ------------------------------------------------------------------
    # stationary distribution
    # ------------------------------------------------------------------
    def _solve(self) -> np.ndarray:
        """Stationary distribution over (level, phase), shape (N+1, 2).

        State index ``2n + j``.  One cycle: phase ``j -> j'`` with
        ``phase_matrix``; batch ``a ~ batch_pmf[j']`` (the *new* phase
        drives the cycle's arrivals, matching the sampler's convention
        of flipping at the cycle boundary); ``n' = max(0, n + a - 1)``.
        """
        N = self.max_level
        n_states = 2 * (N + 1)
        rows, cols, vals = [], [], []
        for j in range(2):
            for jp in range(2):
                p_phase = self.phase_matrix[j, jp]
                if p_phase == 0:
                    continue
                for a in range(self.k + 1):
                    p = p_phase * self.batch_pmf[jp, a]
                    if p == 0:
                        continue
                    # vectorised over levels: n -> max(0, n + a - 1)
                    n = np.arange(N + 1)
                    np_lvl = np.minimum(np.maximum(n + a - 1, 0), N)  # cap at N
                    rows.append(2 * np_lvl + jp)
                    cols.append(2 * n + j)
                    vals.append(np.full(N + 1, p))
        rows = np.concatenate(rows)
        cols = np.concatenate(cols)
        vals = np.concatenate(vals)
        P = sparse.coo_matrix((vals, (rows, cols)), shape=(n_states, n_states)).tocsr()
        # solve (P - I) pi = 0 with the normalisation replacing one row
        A = (P - sparse.identity(n_states, format="csr")).tolil()
        A[0, :] = 1.0
        b = np.zeros(n_states)
        b[0] = 1.0
        pi = spsolve(A.tocsr(), b)
        pi = np.maximum(pi, 0.0)
        pi = pi / pi.sum()
        out = pi.reshape(N + 1, 2)
        tail = out[-4:].sum()
        if tail > 1e-9:
            raise AnalysisError(
                f"truncation at {N} levels leaves {tail:.2e} mass in the top "
                "levels; raise max_level"
            )
        return out

    # ------------------------------------------------------------------
    # queue-length facts
    # ------------------------------------------------------------------
    @property
    def level_distribution(self) -> np.ndarray:
        """``P(queue length == n)`` (end of cycle), marginal over phase."""
        return self._pi.sum(axis=1)

    def queue_mean(self) -> float:
        """Mean end-of-cycle queue length."""
        return float((np.arange(self.max_level + 1) * self.level_distribution).sum())

    # ------------------------------------------------------------------
    # waiting time
    # ------------------------------------------------------------------
    @cached_property
    def _arrival_weighted(self) -> tuple:
        """Joint mean queue seen by arrivals and per-phase message shares.

        A message in cycle ``t+1`` sees the end-of-cycle-``t`` state
        ``(n, j)``; its own cycle's phase is ``j' ~ phase_matrix[j]``
        and the *expected number* of messages its cycle brings is
        ``lambda_{j'}``.  Weighting levels by those arrival counts gives
        the queue-length distribution *as seen by a random message* --
        the burstiness correction the i.i.d. analysis misses.
        """
        lam = np.array([self.k * r for r in self.rates])
        # expected arrivals next cycle given current phase j
        lam_next = self.phase_matrix @ lam
        weights = self._pi * lam_next[None, :]  # (level, phase)
        total = weights.sum()
        levels = np.arange(self.max_level + 1)
        seen_mean = float((levels[:, None] * weights).sum() / total)
        # share of messages arriving while in phase j'
        phase_share = (self._pi.sum(axis=0) @ self.phase_matrix) * lam
        phase_share = phase_share / phase_share.sum()
        return seen_mean, phase_share

    def waiting_mean(self) -> float:
        """Exact mean waiting time of a random message.

        ``E[w] = E[queue seen] + E[same-batch predecessors]``, the
        phase-aware version of the Theorem 1 decomposition.
        """
        seen_mean, phase_share = self._arrival_weighted
        # same-batch predecessors, phase j: E[A(A-1)]/(2 lambda_j),
        # E[A(A-1)] binomial = k(k-1)r^2; fsum keeps the sum exactly
        # rounded (RPR008: no naive float accumulation in kernel dirs)
        predecessors = fsum(
            share * (self.k * (self.k - 1) * r * r) / (2 * (self.k * r))
            for share, r in zip(phase_share, self.rates)
            if self.k * r > 0
        )
        return seen_mean + predecessors

    def iid_waiting_mean(self) -> float:
        """What the (wrong) i.i.d. analysis of the marginal predicts."""
        from repro.core.first_stage import FirstStageQueue
        from repro.service import DeterministicService

        return float(
            FirstStageQueue(self.traffic, DeterministicService(1)).waiting_mean()
        )

    def burstiness_penalty(self) -> float:
        """Ratio exact / i.i.d. mean wait (1.0 when uncorrelated)."""
        return self.waiting_mean() / self.iid_waiting_mean()

    def __repr__(self) -> str:
        return (
            f"MMBPQueueAnalysis({self.traffic}, max_level={self.max_level}, "
            f"Ew={self.waiting_mean():.4f})"
        )

"""The paper's primary contribution: waiting-time analysis.

Layers, in the order the paper develops them:

:mod:`repro.core.first_stage`
    Theorem 1 -- the exact waiting-time transform of the first-stage
    output queue, with moments and full pmf extraction.
:mod:`repro.core.moments`
    Closed-form mean/variance in terms of factorial moments of ``R``
    and ``U`` (paper Eqs. 2 and 3), derived independently and tested
    against the exact transform.
:mod:`repro.core.formulas`
    The Section III specialisations (Eqs. 4--9 and friends).
:mod:`repro.core.limits`
    Continuous-time limits: M/M/1 (Section III-C) and M/D/1
    (Section IV-B light traffic).
:mod:`repro.core.later_stages`
    The Section IV interpolation approximations for stages ``i >= 2``.
:mod:`repro.core.calibration`
    Re-derivation of the interpolation constants from simulation, the
    way the authors obtained them.
:mod:`repro.core.total_delay`
    Section V: network-total waiting time, covariance chain, and the
    gamma approximation of the full distribution.
:mod:`repro.core.distributions`
    Continuous approximants (gamma, truncated normal) used by Section V.
:mod:`repro.core.convolution`
    Distribution-level Section V alternative: per-stage pmf convolution.
:mod:`repro.core.finite_buffers`
    Section VI future work: loss from the exact buffered-work tail.
:mod:`repro.core.heavy_traffic`
    Section VI future work: saturation asymptotics.
:mod:`repro.core.markov_queue`
    The companion-paper [12] direction: exact numerical analysis of the
    Markov-modulated (bursty) queue.
"""

from __future__ import annotations

from repro.core.first_stage import FirstStageQueue
from repro.core.moments import waiting_time_mean, waiting_time_variance
from repro.core.later_stages import LaterStageModel
from repro.core.total_delay import NetworkDelayModel

__all__ = [
    "FirstStageQueue",
    "waiting_time_mean",
    "waiting_time_variance",
    "LaterStageModel",
    "NetworkDelayModel",
]

"""Distribution-level total-delay model by stage convolution.

Section V approximates the *distribution* of the total waiting time by
a moment-matched gamma.  The paper also observes: "The distribution of
waiting times seems to be about the same for all stages.  If the
distributions were independent ... the total waiting times ... could be
approximated" by composing the per-stage laws directly.  This module
implements that alternative:

1. the exact first-stage pmf comes from Theorem 1;
2. stage ``i`` is modelled as the first-stage waiting time plus an
   independent non-negative **excess** -- a zero-inflated geometric
   fitted to the Section IV moment increments
   ``(w_i - w_1, v_i - v_1)``, so every stage matches the approximation
   layer's mean *and* variance exactly while keeping the exact stage-1
   shape (atom at zero, skew);
3. the total is the convolution of the per-stage pmfs (independence
   conjecture, supported by the ~0.12 correlations of Table VI).

Compared to the gamma this is heavier (a few convolutions of a few
hundred terms -- still sub-millisecond) but it is *discrete* and
anchored to the exact stage-1 law.  The test-suite compares both
against simulation: the convolution wins for short networks, where the
total is dominated by the exactly-known stage-1 shape.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

import numpy as np

from repro.core.later_stages import LaterStageModel
from repro.errors import AnalysisError, ModelError

__all__ = ["excess_delay_pmf", "stage_pmf", "ConvolutionTotalModel"]


def excess_delay_pmf(mean, variance, n_terms: int) -> np.ndarray:
    """Zero-inflated geometric pmf with the given mean and variance.

    ``P(X=0) = 1 - pi``, ``P(X=j) = pi theta (1-theta)^{j-1}`` for
    ``j >= 1``, with

    .. math::

        \\theta = \\frac{2M}{V + M^2 + M}, \\qquad \\pi = M \\theta,

    which solves the two moment equations exactly.  Requires the
    feasibility condition ``M <= V + M^2`` (excess at least as
    dispersed as a Bernoulli-thinned geometric); the Section IV
    increments always satisfy it in practice -- the later-stage
    variance inflation outruns the mean inflation.
    """
    M = float(mean)
    V = float(variance)
    if M < 0 or V < 0:
        raise AnalysisError(f"moment increments must be >= 0, got M={M}, V={V}")
    if M == 0:
        out = np.zeros(n_terms)
        out[0] = 1.0
        return out
    if M > V + M * M + 1e-12:
        raise AnalysisError(
            f"excess with mean {M} and variance {V} is under-dispersed for "
            "the zero-inflated geometric family"
        )
    theta = 2 * M / (V + M * M + M)
    pi = M * theta
    if not (0 < theta <= 1 and 0 <= pi <= 1):
        raise AnalysisError(
            f"infeasible excess moments (theta={theta:.4f}, pi={pi:.4f})"
        )
    out = np.zeros(n_terms)
    out[0] = 1.0 - pi
    j = np.arange(1, n_terms)
    out[1:] = pi * theta * (1 - theta) ** (j - 1)
    return out


def stage_pmf(model: LaterStageModel, stage: int, n_terms: int) -> np.ndarray:
    """Approximate pmf of the waiting time at ``stage``.

    Stage 1 is exact (Theorem 1); later stages convolve it with the
    moment-matched excess of :func:`excess_delay_pmf`.
    """
    if model.m != 1 or model.sizes is not None or model.q != 0:
        raise ModelError(
            "the convolution model is implemented for uniform unit-service "
            "traffic (the case the paper's distribution observation covers)"
        )
    base = model.first_stage.waiting_pmf(n_terms)
    if stage == 1:
        return base
    d_mean = model.stage_mean(stage) - model.stage_mean(1)
    d_var = model.stage_variance(stage) - model.stage_variance(1)
    excess = excess_delay_pmf(Fraction(d_mean), Fraction(d_var), n_terms)
    out = np.convolve(base, excess)[:n_terms]
    return out


class ConvolutionTotalModel:
    """Total waiting-time distribution by per-stage convolution.

    Parameters
    ----------
    stages:
        Network depth.
    model:
        The scenario (uniform unit-service traffic).
    n_terms:
        Support cap for each stage pmf (the convolution grows beyond
        it; per-stage truncation loss is renormalised at the end).

    Examples
    --------
    >>> m = LaterStageModel(k=2, p=0.5)
    >>> conv = ConvolutionTotalModel(stages=6, model=m)
    >>> abs(conv.mean() - 1.717) < 0.01
    True
    """

    def __init__(
        self, stages: int, model: LaterStageModel, n_terms: Optional[int] = None
    ) -> None:
        if stages < 1:
            raise ModelError(f"network must have >= 1 stage, got {stages}")
        self.stages = stages
        self.model = model
        if n_terms is None:
            n_terms = 256
        self.n_terms = n_terms
        total = np.array([1.0])
        for i in range(1, stages + 1):
            total = np.convolve(total, stage_pmf(model, i, n_terms))
        mass = total.sum()
        if mass <= 0:
            raise AnalysisError("convolution lost all probability mass")
        self.pmf = total / mass

    def mean(self) -> float:
        """Mean of the modelled total waiting time."""
        return float((np.arange(self.pmf.size) * self.pmf).sum())

    def variance(self) -> float:
        """Variance of the modelled total waiting time."""
        xs = np.arange(self.pmf.size)
        mu = self.mean()
        return float(((xs - mu) ** 2 * self.pmf).sum())

    def cdf(self) -> np.ndarray:
        """Cumulative distribution over the integer support."""
        return np.cumsum(self.pmf)

    def tail(self, x: int) -> float:
        """``P(total wait > x)``."""
        if x < 0:
            return 1.0
        cdf = self.cdf()
        if x >= cdf.size:
            return 0.0
        return float(1.0 - cdf[x])

    def total_variation_to(self, histogram: np.ndarray) -> float:
        """TV distance to an empirical integer histogram."""
        n = max(self.pmf.size, len(histogram))
        a = np.zeros(n)
        b = np.zeros(n)
        a[: self.pmf.size] = self.pmf
        b[: len(histogram)] = histogram
        return float(0.5 * np.abs(a - b).sum())

"""Re-derive the Section IV interpolation constants from simulation.

The paper obtains its later-stage approximations by simulating at
moderate load and interpolating ("We use simulations to estimate
r(1/2), and then simply linearly interpolate").  This module repeats
that methodology against our own simulator, so that

* the shipped default constants can be cross-checked (ablation A2), and
* users who change the model (other ``k``, other service laws) can
  refresh the constants the same way the authors would have.

The entry points return plain result records; nothing here mutates the
library defaults -- calibrated constants are injected explicitly via
:class:`~repro.core.later_stages.InterpolationConstants`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core import formulas
from repro.core.later_stages import InterpolationConstants, PAPER_CONSTANTS
from repro.errors import CalibrationError
from repro.simulation.network import NetworkConfig, NetworkSimulator

__all__ = [
    "LimitEstimate",
    "estimate_limit_statistics",
    "calibrate_mean_slope",
    "calibrate_variance_coefficients",
    "calibrate_multipacket_variance",
    "calibrate_nonuniform_slopes",
    "calibrated_constants",
]


@dataclass(frozen=True)
class LimitEstimate:
    """Deep-stage limits estimated from one simulation run."""

    mean: float
    variance: float
    first_stage_mean: float
    first_stage_variance: float
    samples: int

    @property
    def mean_ratio(self) -> float:
        """``w_inf / w_1`` (simulated over simulated)."""
        return self.mean / self.first_stage_mean

    @property
    def variance_ratio(self) -> float:
        """``v_inf / v_1`` (simulated over simulated)."""
        return self.variance / self.first_stage_variance


def estimate_limit_statistics(
    config: NetworkConfig,
    n_cycles: int = 40_000,
    tail_stages: int = 3,
) -> LimitEstimate:
    """Run ``config`` and average the last ``tail_stages`` stages.

    The tail stages approximate the deep-network limit (the paper's
    tables show convergence by stage ~5 at ``k = 2``).
    """
    if config.n_stages < tail_stages + 2:
        raise CalibrationError(
            f"need at least {tail_stages + 2} stages to separate the limit "
            f"from the transient, got {config.n_stages}"
        )
    result = NetworkSimulator(config).run(n_cycles)
    means = result.stage_means[-tail_stages:]
    variances = result.stage_variances[-tail_stages:]
    return LimitEstimate(
        mean=float(np.mean(means)),
        variance=float(np.mean(variances)),
        first_stage_mean=float(result.stage_means[0]),
        first_stage_variance=float(result.stage_variances[0]),
        samples=int(result.stage_counts[-tail_stages:].sum()),
    )


def _deep_uniform_config(k: int, p: float, m: int, seed: int, n_stages: int = 10) -> NetworkConfig:
    """Width-decoupled deep network for uniform-traffic calibration."""
    width = {2: 128, 4: 256, 8: 512}.get(k, k ** 3)
    return NetworkConfig(
        k=k,
        n_stages=n_stages,
        p=p,
        message_size=m,
        topology="random",
        width=width,
        seed=seed,
    )


def calibrate_mean_slope(
    k: int = 2,
    rho: float = 0.5,
    n_cycles: int = 40_000,
    seed: int = 2,
) -> float:
    """The paper's ``a`` in ``r(rho) = 1 + a rho`` at switch size ``k``.

    Uses the *exact* first-stage mean in the denominator (the paper
    does the same: Eq. 6 is known exactly) so the estimate's noise comes
    only from the deep-stage average.
    """
    p = rho  # unit service: lambda = p = rho on k x k switches
    est = estimate_limit_statistics(_deep_uniform_config(k, p, 1, seed), n_cycles)
    w1 = float(formulas.uniform_unit_mean(k, p))
    return (est.mean / w1 - 1.0) / rho


def calibrate_variance_coefficients(
    k: int = 2,
    loads: Sequence[float] = (0.2, 0.5, 0.8),
    n_cycles: int = 40_000,
    seed: int = 3,
) -> Tuple[float, float]:
    """Least-squares ``(c1, c2)`` in ``v_inf/v_1 = 1 + (c1 rho + c2 rho^2)/k``.

    One simulated point per load; the fit is the 2-parameter linear
    regression of ``k (ratio - 1)`` on ``(rho, rho^2)``.
    """
    rows = []
    targets = []
    for i, rho in enumerate(loads):
        est = estimate_limit_statistics(_deep_uniform_config(k, rho, 1, seed + i), n_cycles)
        v1 = float(formulas.uniform_unit_variance(k, rho))
        rows.append([rho, rho * rho])
        targets.append(k * (est.variance / v1 - 1.0))
    coeffs, *_ = np.linalg.lstsq(np.asarray(rows), np.asarray(targets), rcond=None)
    return float(coeffs[0]), float(coeffs[1])


def calibrate_multipacket_variance(
    k: int = 2,
    m: int = 4,
    loads: Sequence[float] = (0.2, 0.5, 0.8),
    n_cycles: int = 40_000,
    seed: int = 4,
    light_traffic: float = 0.7,
) -> Tuple[float, float]:
    """``(C1, C2)`` of Eq. (16): ``v_inf = (c0 + (C1 rho + C2 rho^2)/k) m^2 v1_unit(rho)``.

    ``c0`` (the light-traffic intercept) is held at ``light_traffic``;
    the loads pin the slope terms.
    """
    rows = []
    targets = []
    for i, rho in enumerate(loads):
        p = rho / m
        est = estimate_limit_statistics(_deep_uniform_config(k, p, m, seed + i), n_cycles)
        v1_unit = float(formulas.uniform_unit_variance(k, rho))
        g = est.variance / (m * m * v1_unit)
        rows.append([rho, rho * rho])
        targets.append(k * (g - light_traffic))
    coeffs, *_ = np.linalg.lstsq(np.asarray(rows), np.asarray(targets), rcond=None)
    return float(coeffs[0]), float(coeffs[1])


def calibrate_nonuniform_slopes(
    k: int = 2,
    p: float = 0.5,
    biases: Sequence[float] = (0.25, 0.5, 0.75),
    n_stages: int = 8,
    n_cycles: int = 40_000,
    seed: int = 5,
) -> Tuple[float, float]:
    """Section IV-D slopes ``(B_mean, B_var)``.

    Fits ``w_inf(q) = (1 + a rho / k + B_mean q) w_1^{exact}(q)`` and the
    variance analogue by least squares over the simulated biases.
    Needs a true banyan (destination routing), so the network width is
    ``k**n_stages``.
    """
    a = float(PAPER_CONSTANTS.mean_slope)
    rho = p  # unit service
    base_mean = 1 + a * rho / k
    c = PAPER_CONSTANTS
    base_var = float(1 + (c.var_linear * Fraction(str(rho)) + c.var_quadratic * Fraction(str(rho)) ** 2) / k)
    qs, mean_resid, var_resid = [], [], []
    for i, q in enumerate(biases):
        cfg = NetworkConfig(k=k, n_stages=n_stages, p=p, q=q, seed=seed + i)
        est = estimate_limit_statistics(cfg, n_cycles)
        w1 = float(formulas.nonuniform_mean(k, p, q))
        v1 = float(formulas.nonuniform_variance(k, p, q))
        qs.append(q)
        mean_resid.append(est.mean / w1 - base_mean)
        var_resid.append(est.variance / v1 - base_var)
    qs = np.asarray(qs)
    b_mean = float(np.dot(qs, mean_resid) / np.dot(qs, qs))
    b_var = float(np.dot(qs, var_resid) / np.dot(qs, qs))
    return b_mean, b_var


def calibrated_constants(
    k: int = 2,
    n_cycles: int = 40_000,
    include_nonuniform: bool = False,
    seed: int = 11,
) -> InterpolationConstants:
    """One-call recalibration bundle (the ablation-A2 entry point).

    Returns a fresh :class:`InterpolationConstants` whose mean slope,
    variance coefficients and multi-packet coefficients come from
    simulation; ``alpha`` and the light-traffic intercept keep their
    paper values (the former needs per-stage fitting the ablation bench
    performs separately, the latter is an exact asymptote).
    """
    a = calibrate_mean_slope(k=k, n_cycles=n_cycles, seed=seed)
    c1, c2 = calibrate_variance_coefficients(k=k, n_cycles=n_cycles, seed=seed + 1)
    m1, m2 = calibrate_multipacket_variance(k=k, n_cycles=n_cycles, seed=seed + 2)
    kwargs: Dict[str, object] = dict(
        mean_slope=Fraction(repr(round(a * k, 4))),
        var_linear=Fraction(repr(round(c1, 4))),
        var_quadratic=Fraction(repr(round(c2, 4))),
        var_m_linear=Fraction(repr(round(m1, 4))),
        var_m_quadratic=Fraction(repr(round(m2, 4))),
    )
    if include_nonuniform:
        bm, bv = calibrate_nonuniform_slopes(k=k, n_cycles=n_cycles, seed=seed + 3)
        kwargs["nonuniform_mean_slope"] = Fraction(repr(round(bm, 4)))
        kwargs["nonuniform_var_slope"] = Fraction(repr(round(bv, 4)))
    return InterpolationConstants(**kwargs)

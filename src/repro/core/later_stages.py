"""Later-stage waiting-time approximations (paper Section IV).

The inputs to stages ``i >= 2`` are outputs of queues, so successive
cycles are no longer independent and no exact analysis is known.  The
paper's approximation rests on two observations:

1. per-stage waiting statistics converge *geometrically* (ratio
   ``alpha``) to a limit as ``i`` grows;
2. the limit behaves like the first stage with an inflation factor that
   is low-order polynomial in the traffic intensity, with coefficients
   calibrated against simulation at ``rho = 1/2`` and pinned at light
   traffic by exact asymptotics.

Concretely, for uniform traffic with unit service on ``k x k`` switches
(Section IV-A):

.. math::

    w_\\infty(\\rho) \\approx \\Bigl(1 + \\frac{4\\rho}{5k}\\Bigr) w_1(\\rho),
    \\qquad
    w_i(\\rho) \\approx \\Bigl(1 + \\frac{4\\rho}{5k}
        \\bigl(1-\\alpha^{i-1}\\bigr)\\Bigr) w_1(\\rho),
    \\qquad \\alpha = \\tfrac{2}{5}.

(Paper Eqs. 11/12; the ``k = 2`` calibration gives ``a = 2/5``, and
``a`` scales like ``4/(5k)`` across the simulated ``k``.)  The variance
uses a quadratic inflation ``1 + (c_1 \\rho + c_2 \\rho^2)/k`` (Eqs.
13/14; the printed coefficients are OCR-damaged in our source, but the
paper's own Table V ESTIMATE row pins the ``k=2, rho=1/2`` value of the
factor at ``0.3438/0.25 = 1.375``, which ``c_1 = c_2 = 1`` reproduces
exactly -- and our recalibration in :mod:`repro.core.calibration`
confirms the choice independently).

For messages of ``m >= 2`` packets (Section IV-B) the interior stages
behave like the unit-service system on a cycle stretched by ``m`` at
fixed intensity ``rho = mp``:

.. math::

    w_\\infty \\approx m\\Bigl(1 + \\frac{4\\rho}{5k}\\Bigr)
        \\frac{(1-1/k)\\rho}{2(1-\\rho)}  \\qquad\\text{(Eq. 15)},

valid at every stage after the first; the variance analogue (Eq. 16)
carries the light-traffic coefficient ``2/3`` (``7/10`` works better at
small ``m``) and simulation-matched corrections.

Multiple sizes (Section IV-C) are handled by the average-size system
rescaled by the exact first-stage ratio (Eq. 17-style correction);
nonuniform traffic (Section IV-D) by a linear-in-``q`` factor times the
exact first-stage formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from repro.arrivals.bernoulli import UniformTraffic
from repro.arrivals.nonuniform import FavoriteOutputTraffic
from repro.core import formulas
from repro.core.first_stage import FirstStageQueue
from repro.core.moments import check_stability
from repro.errors import ModelError
from repro.series.polynomial import as_exact
from repro.service.deterministic import DeterministicService
from repro.service.multisize import MultiSizeService

__all__ = ["InterpolationConstants", "PAPER_CONSTANTS", "LaterStageModel"]


@dataclass(frozen=True)
class InterpolationConstants:
    """Section IV interpolation coefficients.

    Attributes
    ----------
    mean_slope:
        ``a*k`` in ``r(rho) = 1 + (a*k/k) rho``; the paper's ``k = 2``
        fit gives ``a = 2/5`` i.e. ``mean_slope = 4/5`` (Eq. 11).
    alpha:
        Geometric stage-convergence ratio (``2/5``, Eq. 12).
    var_linear, var_quadratic:
        ``c_1, c_2`` in the variance inflation
        ``1 + (c_1 rho + c_2 rho^2)/k`` (Eqs. 13/14).
    var_light_traffic:
        Interior/first-stage variance ratio at ``rho -> 0`` for
        multi-packet messages; ``2/3`` from M/D/1 light traffic,
        ``7/10`` in the paper's practical fit (Eq. 16).
    var_m_linear, var_m_quadratic:
        Load corrections for the multi-packet variance (Eq. 16's
        ``C1, C2``), applied as
        ``(light + (C1 rho + C2 rho^2)/k) * m^2 * v_1_unit(rho)``.
        The printed values are OCR-lost; the defaults pin the paper's
        Table III ESTIMATE at ``rho = 1/2`` (factor ``7/6``) and take
        the curvature from our recalibration
        (:mod:`repro.core.calibration`).
    nonuniform_mean_slope, nonuniform_var_slope:
        ``B`` in the Section IV-D linear-in-``q`` factors
        ``(1 + (mean_slope/k) rho + B q) * exact first stage``.  The
        printed formulas are OCR-lost, but the paper's own Table V
        ESTIMATE row divided by the exact first-stage values is exactly
        linear in ``q``: the mean factor is ``1.2 - 0.2 q`` and the
        variance factor ``1.375 - 0.375 q`` at ``rho = 1/2, k = 2``,
        fixing ``B_mean = -1/5`` and ``B_var = -3/8``.
    """

    mean_slope: Fraction = Fraction(4, 5)
    alpha: Fraction = Fraction(2, 5)
    var_linear: Fraction = Fraction(1)
    var_quadratic: Fraction = Fraction(1)
    var_light_traffic: Fraction = Fraction(7, 10)
    var_m_linear: Fraction = Fraction(2, 3)
    var_m_quadratic: Fraction = Fraction(12, 5)
    nonuniform_mean_slope: Fraction = Fraction(-1, 5)
    nonuniform_var_slope: Fraction = Fraction(-3, 8)

    def mean_inflation(self, k: int, rho, stage: Optional[int] = None) -> Fraction:
        """``r(rho)`` (Eq. 11), optionally damped to stage ``i`` (Eq. 12)."""
        rho = as_exact(rho)
        factor = self.mean_slope * rho / k
        return 1 + factor * self._damping(stage)

    def variance_inflation(self, k: int, rho, stage: Optional[int] = None) -> Fraction:
        """Variance analogue of :meth:`mean_inflation` (Eqs. 13/14)."""
        rho = as_exact(rho)
        factor = (self.var_linear * rho + self.var_quadratic * rho * rho) / k
        return 1 + factor * self._damping(stage)

    def _damping(self, stage: Optional[int]) -> Fraction:
        """``1 - alpha^(i-1)`` for stage ``i``; 1 for the limit."""
        if stage is None:
            return Fraction(1)
        if stage < 1:
            raise ModelError(f"stage index must be >= 1, got {stage}")
        return 1 - self.alpha ** (stage - 1)


#: The constants as recovered from the paper (see class docstring).
PAPER_CONSTANTS = InterpolationConstants()


class LaterStageModel:
    """Approximate per-stage waiting statistics for a banyan network.

    One instance describes one homogeneous traffic scenario -- uniform
    or favourite-biased, single- or multi-packet messages -- on a
    network of ``k x k`` switches, and answers for the mean and variance
    of the waiting time at any stage and in the deep-network limit.

    Parameters
    ----------
    k:
        Switch degree.
    p:
        Per-input message probability per cycle (first stage).
    m:
        Packets per message (constant size); mutually exclusive with
        ``sizes``.
    sizes, probabilities:
        Multi-size message mix (Section IV-C).
    q:
        Favourite-output bias (Section IV-D; requires ``m == 1``).
    constants:
        Interpolation coefficients; default :data:`PAPER_CONSTANTS`.

    Examples
    --------
    >>> model = LaterStageModel(k=2, p=0.5)
    >>> float(model.limit_mean())      # w_inf at rho = 1/2
    0.3
    >>> float(model.stage_mean(1))     # exact first stage, Eq. (6)
    0.25
    """

    def __init__(
        self,
        k: int,
        p,
        m: int = 1,
        sizes: Optional[Sequence[int]] = None,
        probabilities: Optional[Sequence] = None,
        q=0,
        constants: InterpolationConstants = PAPER_CONSTANTS,
    ) -> None:
        self.k = k
        self.p = as_exact(p)
        self.q = as_exact(q)
        self.constants = constants
        if (sizes is None) != (probabilities is None):
            raise ModelError("sizes and probabilities must be given together")
        self.sizes = tuple(sizes) if sizes is not None else None
        self.probabilities = (
            tuple(as_exact(g) for g in probabilities) if probabilities is not None else None
        )
        if self.sizes is not None and m != 1:
            raise ModelError("give either a constant size m or a size mixture, not both")
        if self.q != 0 and (m != 1 or self.sizes is not None):
            raise ModelError(
                "the Section IV-D nonuniform approximation is calibrated for unit messages"
            )
        self.m = m
        if self.sizes is not None:
            service = MultiSizeService(self.sizes, self.probabilities)
        else:
            service = DeterministicService(m)
        self.mean_service = service.mean
        self.rho = check_stability(self.p, self.mean_service)  # lambda = p at a k x k switch
        if self.q != 0:
            arrivals = FavoriteOutputTraffic(k=k, p=self.p, q=self.q)
        else:
            arrivals = UniformTraffic(k=k, p=self.p)
        #: exact first-stage analysis for this scenario
        self.first_stage = FirstStageQueue(arrivals, service)

    # ------------------------------------------------------------------
    # unit-service building blocks (used at intensity rho for any m)
    # ------------------------------------------------------------------
    def _unit_mean_at(self, lam) -> Fraction:
        """First-stage unit-service mean at arrival rate ``lam`` (Eq. 6)."""
        return formulas.uniform_unit_mean(self.k, lam)

    def _unit_variance_at(self, lam) -> Fraction:
        """First-stage unit-service variance at arrival rate ``lam`` (Eq. 7)."""
        return formulas.uniform_unit_variance(self.k, lam)

    # ------------------------------------------------------------------
    # per-stage statistics
    # ------------------------------------------------------------------
    def stage_mean(self, stage: int) -> Fraction:
        """``w_i``: mean waiting time at stage ``stage`` (1-based)."""
        if stage < 1:
            raise ModelError(f"stage index must be >= 1, got {stage}")
        if stage == 1:
            return self.first_stage.waiting_mean()
        return self._approx_mean(stage)

    def stage_variance(self, stage: int) -> Fraction:
        """``v_i``: waiting-time variance at stage ``stage`` (1-based)."""
        if stage < 1:
            raise ModelError(f"stage index must be >= 1, got {stage}")
        if stage == 1:
            return self.first_stage.waiting_variance()
        return self._approx_variance(stage)

    def limit_mean(self) -> Fraction:
        """``w_inf``: deep-network limit of the per-stage mean."""
        return self._approx_mean(None)

    def limit_variance(self) -> Fraction:
        """``v_inf``: deep-network limit of the per-stage variance."""
        return self._approx_variance(None)

    # ------------------------------------------------------------------
    # internals: one method per paper subsection
    # ------------------------------------------------------------------
    def _approx_mean(self, stage: Optional[int]) -> Fraction:
        c = self.constants
        if self.q != 0:
            # Section IV-D: linear-in-q factor times the exact first stage
            base = c.mean_inflation(self.k, self.rho, stage)
            factor = base + c.nonuniform_mean_slope * self.q * self._damping_of(stage)
            return factor * self.first_stage.waiting_mean()
        if self.sizes is not None:
            # Section IV-C: average-size model, corrected by the exact
            # first-stage ratio (multi-size vs single average size).
            mbar = self.mean_service
            ratio = self.first_stage.waiting_mean() / self._single_size_mean_like(mbar)
            return ratio * self._constant_size_limit_mean(mbar, stage)
        if self.m == 1:
            # Section IV-A, Eqs. (11)/(12)
            return c.mean_inflation(self.k, self.rho, stage) * self.first_stage.waiting_mean()
        # Section IV-B, Eq. (15): unit-service system on an m-stretched cycle
        return self._constant_size_limit_mean(self.m, stage)

    def _constant_size_limit_mean(self, m, stage: Optional[int]) -> Fraction:
        c = self.constants
        return m * c.mean_inflation(self.k, self.rho, stage) * self._unit_mean_at(self.rho)

    def _single_size_mean_like(self, m) -> Fraction:
        """Exact first-stage mean if every message had the average size.

        The average size of a mixture need not be an integer; Eq. (2)
        with ``u2 = m(m-1)`` extends it continuously.
        """
        lam, r2, _ = formulas.binomial_factorial_moments(self.k, self.p / self.k)
        from repro.core.moments import waiting_time_mean

        return waiting_time_mean(lam, m, r2, m * (m - 1))

    def _approx_variance(self, stage: Optional[int]) -> Fraction:
        c = self.constants
        if self.q != 0:
            base = c.variance_inflation(self.k, self.rho, stage)
            factor = base + c.nonuniform_var_slope * self.q * self._damping_of(stage)
            return factor * self.first_stage.waiting_variance()
        if self.sizes is not None:
            mbar = self.mean_service
            ratio = self.first_stage.waiting_variance() / self._single_size_variance_like(mbar)
            return ratio * self._constant_size_limit_variance(mbar, stage)
        if self.m == 1:
            return (
                c.variance_inflation(self.k, self.rho, stage)
                * self.first_stage.waiting_variance()
            )
        return self._constant_size_limit_variance(self.m, stage)

    def _constant_size_limit_variance(self, m, stage: Optional[int]) -> Fraction:
        # Eq. (16): (light + (C1 rho + C2 rho^2)/k * damping) * m^2 * v1_unit(rho)
        c = self.constants
        load_term = (
            (c.var_m_linear * self.rho + c.var_m_quadratic * self.rho ** 2)
            / self.k
            * self._damping_of(stage)
        )
        return (c.var_light_traffic + load_term) * m * m * self._unit_variance_at(self.rho)

    def _single_size_variance_like(self, m) -> Fraction:
        lam, r2, r3 = formulas.binomial_factorial_moments(self.k, self.p / self.k)
        from repro.core.moments import waiting_time_variance

        u2 = m * (m - 1)
        u3 = m * (m - 1) * (m - 2)
        return waiting_time_variance(lam, m, r2, r3, u2, u3)

    def _damping_of(self, stage: Optional[int]) -> Fraction:
        return self.constants._damping(stage)

    def with_constants(self, constants: InterpolationConstants) -> "LaterStageModel":
        """A copy of this model using different interpolation constants."""
        return LaterStageModel(
            k=self.k,
            p=self.p,
            m=self.m,
            sizes=self.sizes,
            probabilities=self.probabilities,
            q=self.q,
            constants=constants,
        )

    def __repr__(self) -> str:
        extra = ""
        if self.sizes is not None:
            extra = f", sizes={self.sizes}, probabilities={self.probabilities}"
        elif self.m != 1:
            extra = f", m={self.m}"
        if self.q != 0:
            extra += f", q={self.q}"
        return f"LaterStageModel(k={self.k}, p={self.p}{extra})"

"""Total delay through the network (paper Section V).

Given per-stage means ``w_i`` and variances ``v_i`` from
:class:`~repro.core.later_stages.LaterStageModel`, the network totals
follow from the near-independence of stage waiting times:

* **mean** -- exact sum of the per-stage means (Little-style additivity
  needs no independence);
* **variance, independent approximation** -- sum of the ``v_i``
  (correlations of roughly ``0.12`` at lag one and geometrically less
  beyond contribute little);
* **variance, covariance chain** -- the refinement: with
  ``a = (1 - 2 m rho / 5) * 3 m rho / (5 k)`` and
  ``b = (1 - 2 m rho / 5) / k`` the inter-stage covariances are modelled
  as ``cov(w_i, w_{i+1}) = a v_i`` and
  ``cov(w_i, w_{i+j}) = a b^{j-1} v_i``; summing all covariances gives

  .. math::

     \\operatorname{Var}\\Bigl(\\sum_i w_i\\Bigr)
        \\approx \\sum_{i=1}^{n} v_i
           \\Bigl(1 + \\frac{2a(1-b^{\\,n-i})}{1-b}\\Bigr).

  (The paper's Table VI shows these constants match the simulated
  correlations: ``a = 0.12`` and ``ab = 0.048`` at ``k = 2``,
  ``rho = 1/2``, ``m = 1``.)

The distribution of the total is then approximated by a moment-matched
gamma (or truncated normal); the paper's Figures 3--8 superpose that
gamma on simulated histograms.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Literal

import numpy as np

from repro.core.distributions import GammaApproximant, TruncatedNormalApproximant
from repro.core.later_stages import LaterStageModel
from repro.errors import ModelError
from repro.series.polynomial import as_exact

__all__ = [
    "covariance_chain_constants",
    "covariance_matrix",
    "NetworkDelayModel",
]


def covariance_chain_constants(k: int, rho) -> tuple:
    """The Section V covariance-chain constants ``(a, b)``.

    ``a = (1 - 2 m rho/5) 3 m rho / (5k)`` scales the lag-one
    covariance; successive lags decay by ``b = (1 - 2 m rho/5)/k``.

    Note: ``rho`` here is the *traffic intensity* and ``m`` the message
    size; the paper writes the constants with ``m p = rho`` spelled out.
    """
    rho = as_exact(rho)
    # The paper's expressions are written in terms of m*p = rho (see
    # Section V); the damping factor saturates at heavy load.
    damp = 1 - 2 * rho / 5
    a = damp * 3 * rho / (5 * k)
    b = damp / k
    return a, b


def covariance_matrix(variances: List, a, b) -> np.ndarray:
    """Full model covariance matrix ``sigma_ij`` for ``n`` stages.

    ``sigma_ii = v_i``, ``sigma_{i,i+j} = a b^{j-1} v_i`` for ``j >= 1``
    (symmetrised).  Returned as a float array for inspection/plotting.
    """
    n = len(variances)
    v = np.asarray([float(x) for x in variances])
    out = np.diag(v)
    a, b = float(a), float(b)
    for i in range(n):
        for j in range(i + 1, n):
            cov = a * b ** (j - i - 1) * v[i]
            out[i, j] = out[j, i] = cov
    return out


class NetworkDelayModel:
    """Predicted total waiting time / delay for an ``n``-stage network.

    Parameters
    ----------
    stages:
        Number of network stages ``n >= 1``.
    model:
        The per-stage :class:`~repro.core.later_stages.LaterStageModel`.

    Examples
    --------
    >>> m = LaterStageModel(k=2, p=0.5)
    >>> net = NetworkDelayModel(stages=6, model=m)
    >>> round(float(net.total_waiting_mean()), 3)
    1.742
    """

    def __init__(self, stages: int, model: LaterStageModel) -> None:
        if stages < 1:
            raise ModelError(f"network must have >= 1 stage, got {stages}")
        self.stages = stages
        self.model = model

    # ------------------------------------------------------------------
    # per-stage series
    # ------------------------------------------------------------------
    def stage_means(self) -> List[Fraction]:
        """``[w_1, ..., w_n]``."""
        return [self.model.stage_mean(i) for i in range(1, self.stages + 1)]

    def stage_variances(self) -> List[Fraction]:
        """``[v_1, ..., v_n]``."""
        return [self.model.stage_variance(i) for i in range(1, self.stages + 1)]

    # ------------------------------------------------------------------
    # totals
    # ------------------------------------------------------------------
    def total_waiting_mean(self) -> Fraction:
        """Expected total waiting time: the sum of the stage means."""
        return sum(self.stage_means(), Fraction(0))

    def total_waiting_variance(
        self, method: Literal["covariance", "independent"] = "covariance"
    ) -> Fraction:
        """Variance of the total waiting time.

        ``method='independent'`` sums the per-stage variances (the
        paper's first approximation); ``method='covariance'`` adds the
        geometric covariance chain (the paper's refinement, used for
        Tables VII--XII).
        """
        variances = self.stage_variances()
        if method == "independent":
            return sum(variances, Fraction(0))
        if method != "covariance":
            raise ModelError(f"unknown variance method {method!r}")
        a, b = self.chain_constants()
        n = self.stages
        total = Fraction(0)
        for i, v in enumerate(variances, start=1):
            lags = n - i
            # 1 + 2a(1 - b^lags)/(1 - b); the b = 1 edge cannot occur for
            # stable loads (b < 1/k * 1 <= 1) but guard anyway.
            if b == 1:
                chain = 1 + 2 * a * lags
            else:
                chain = 1 + 2 * a * (1 - b ** lags) / (1 - b)
            total += v * chain
        return total

    def chain_constants(self) -> tuple:
        """``(a, b)`` for this scenario's ``k``, ``rho`` and ``m``."""
        return covariance_chain_constants(self.model.k, self.model.rho)

    def covariance_model(self) -> np.ndarray:
        """The full modelled covariance matrix across stages."""
        a, b = self.chain_constants()
        return covariance_matrix(self.stage_variances(), a, b)

    # ------------------------------------------------------------------
    # service and delay
    # ------------------------------------------------------------------
    def total_service_time(self, cut_through: bool = True) -> Fraction:
        """Total service through ``n`` stages.

        With consecutive-packet (cut-through) transmission a message of
        ``m`` packets spends ``n + m - 1`` cycles in service; with
        store-and-forward it spends ``n * m``.  (Paper, end of Section
        V.)  For multi-size traffic the *mean* size is used.
        """
        m = self.model.mean_service
        if cut_through:
            return self.stages + m - 1
        return self.stages * m

    def total_delay_mean(self, cut_through: bool = True) -> Fraction:
        """Mean total delay: waiting plus service."""
        return self.total_waiting_mean() + self.total_service_time(cut_through)

    def total_delay_variance(
        self, method: Literal["covariance", "independent"] = "covariance"
    ) -> Fraction:
        """Variance of the total delay.

        Waiting and service are nearly independent; for constant sizes
        the service variance is zero and the delay variance equals the
        waiting variance.  For multi-size traffic each stage adds one
        service draw (store-and-forward view).
        """
        var = self.total_waiting_variance(method)
        service_var = self.model.first_stage.service._cached_pgf().variance()
        return var + self.stages * service_var

    # ------------------------------------------------------------------
    # distribution approximation (Figures 3-8)
    # ------------------------------------------------------------------
    def gamma_approximation(
        self,
        method: Literal["covariance", "independent"] = "covariance",
    ) -> GammaApproximant:
        """Moment-matched gamma for the total waiting time."""
        return GammaApproximant(
            float(self.total_waiting_mean()),
            float(self.total_waiting_variance(method)),
        )

    def delay_quantile(self, q: float, cut_through: bool = True) -> float:
        """Approximate ``q``-quantile of the *total delay* (wait + service).

        For constant message sizes the service contribution is the
        deterministic pipeline latency, so the delay quantile is the
        waiting-time gamma quantile shifted by it -- the "memory access
        time" figure a machine designer quotes (e.g. a p99).
        """
        shift = float(self.total_service_time(cut_through))
        return self.gamma_approximation().quantile(q) + shift

    def delay_tail(self, x: float, cut_through: bool = True) -> float:
        """Approximate ``P(total delay > x)``."""
        shift = float(self.total_service_time(cut_through))
        return float(self.gamma_approximation().sf(max(x - shift, 0.0)))

    def normal_approximation(
        self,
        method: Literal["covariance", "independent"] = "covariance",
    ) -> TruncatedNormalApproximant:
        """Moment-matched truncated normal for the total waiting time."""
        return TruncatedNormalApproximant(
            float(self.total_waiting_mean()),
            float(self.total_waiting_variance(method)),
        )

    def __repr__(self) -> str:
        return f"NetworkDelayModel(stages={self.stages}, model={self.model!r})"

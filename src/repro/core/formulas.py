"""Closed-form specialisations of the first-stage analysis (Section III).

Each function evaluates one of the paper's worked examples as an exact
rational number.  The factorial moments of ``R`` and ``U`` are written
out explicitly (they are the quantities the paper tabulates before
substituting into Eqs. (4)/(5)); the final substitution goes through
:mod:`repro.core.moments`, i.e. through Eqs. (2)/(3).  The test-suite
checks every function against the fully independent transform route
(:class:`~repro.core.first_stage.FirstStageQueue`) with zero tolerance.

Equation map
------------
=============================================  ============
function                                        paper
=============================================  ============
:func:`uniform_unit_mean`                       Eq. (6)
:func:`uniform_unit_variance`                   Eq. (7)
:func:`bulk_mean` / :func:`bulk_variance`       Sec. III-A-2
:func:`nonuniform_mean` / ``..._variance``      Sec. III-A-3
:func:`geometric_mean` / ``..._variance``       Sec. III-B
:func:`constant_service_mean`                   Eq. (8)
:func:`constant_service_variance`               Eq. (9)
:func:`multisize_mean` / ``..._variance``       Sec. III-D-2
=============================================  ============
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.core import moments as mom
from repro.errors import ModelError
from repro.series.polynomial import as_exact
from repro.series.polynomial import binomial_coefficient as binomial_int

__all__ = [
    "uniform_unit_mean",
    "uniform_unit_variance",
    "bulk_mean",
    "bulk_variance",
    "nonuniform_mean",
    "nonuniform_variance",
    "geometric_mean",
    "geometric_variance",
    "constant_service_mean",
    "constant_service_variance",
    "multisize_mean",
    "multisize_variance",
    "binomial_factorial_moments",
]


def binomial_factorial_moments(k: int, a) -> tuple:
    """``(lambda, R''(1), R'''(1))`` for ``R(z) = (1 - a + a z)^k``.

    These are the moments the paper quotes for uniform traffic:
    ``lambda = ka``, ``R''(1) = lambda^2 (1-1/k)``,
    ``R'''(1) = lambda^3 (1-1/k)(1-2/k)``.
    """
    a = as_exact(a)
    lam = k * a
    r2 = k * (k - 1) * a * a
    r3 = k * (k - 1) * (k - 2) * a ** 3
    return lam, r2, r3


def _ks(k: int, s: int | None) -> int:
    return k if s is None else s


# ----------------------------------------------------------------------
# III-A-1: uniform traffic, single arrivals, unit service
# ----------------------------------------------------------------------

def uniform_unit_mean(k: int, p, s: int | None = None) -> Fraction:
    """Paper Eq. (6): ``E w = (1 - 1/k) lambda / (2 (1 - lambda))``.

    ``lambda = kp/s``; reduces to ``p(k-1)/s / (2(1-kp/s))``.
    """
    p = as_exact(p)
    lam = k * p / _ks(k, s)
    mom.check_stability(lam, 1)
    return (1 - Fraction(1, k)) * lam / (2 * (1 - lam))


def uniform_unit_variance(k: int, p, s: int | None = None) -> Fraction:
    """Paper Eq. (7)::

        Var w = (1 - 1/k) lambda [6 - 5 lambda (1 + 1/k)
                 + 2 lambda^2 (1 + 1/k)] / (12 (1 - lambda)^2)
    """
    p = as_exact(p)
    lam = k * p / _ks(k, s)
    mom.check_stability(lam, 1)
    inv_k = Fraction(1, k)
    bracket = 6 - 5 * lam * (1 + inv_k) + 2 * lam * lam * (1 + inv_k)
    return (1 - inv_k) * lam * bracket / (12 * (1 - lam) ** 2)


# ----------------------------------------------------------------------
# III-A-2: bulk arrivals, unit service
# ----------------------------------------------------------------------

def _bulk_moments(k: int, p, b: int, s: int | None) -> tuple:
    """``(lambda, r2, r3)`` for constant bulks of ``b`` packets.

    ``R(z) = (1 - p/s + (p/s) z^b)^k``; with ``beta = kp/s``:

    * ``lambda = beta b``
    * ``r2 = beta b(b-1) + beta^2 b^2 (1-1/k)
          = lambda (b - 1 + (1-1/k) lambda)``  (the paper's ``R''(1)``)
    * ``r3 = beta b(b-1)(b-2) + 3 beta^2 b^2 (b-1)(1-1/k)
          + beta^3 b^3 (1-1/k)(1-2/k)``
    """
    p = as_exact(p)
    a = p / _ks(k, s)
    beta = k * a
    lam = beta * b
    c = 1 - Fraction(1, k)
    d = 1 - Fraction(2, k)
    r2 = beta * b * (b - 1) + beta * beta * b * b * c
    r3 = (
        beta * b * (b - 1) * (b - 2)
        + 3 * beta * beta * b * b * (b - 1) * c
        + beta ** 3 * b ** 3 * c * d
    )
    return lam, r2, r3


def bulk_mean(k: int, p, b: int, s: int | None = None) -> Fraction:
    """Section III-A-2 mean: ``E w = (b - 1 + (1-1/k) lambda) / (2(1 - lambda))``."""
    lam, r2, _ = _bulk_moments(k, p, b, s)
    return mom.waiting_time_mean(lam, 1, r2, 0)


def bulk_variance(k: int, p, b: int, s: int | None = None) -> Fraction:
    """Section III-A-2 variance via Eq. (3) with the bulk moments."""
    lam, r2, r3 = _bulk_moments(k, p, b, s)
    return mom.waiting_time_variance(lam, 1, r2, r3, 0, 0)


# ----------------------------------------------------------------------
# III-A-3: nonuniform (favourite-output) traffic, unit service
# ----------------------------------------------------------------------

def _nonuniform_moments(k: int, p, q, b: int) -> tuple:
    """``(lambda, r2, r3)`` for favourite-output traffic (``k = s``).

    The tagged port receives *at most one* bulk per input per cycle:
    probability ``a = p(1-q)/k`` from each of the ``k-1`` unmatched
    inputs and ``f = p(q + (1-q)/k)`` from the matched one, so

    ``R(z) = (1 + f(z^b-1)) (1 + a(z^b-1))^{k-1}``.

    Expanding ``R(1+eps)`` with ``u = (1+eps)^b - 1`` and the elementary
    symmetric polynomials ``e_j`` of the ``k`` hit probabilities,

    * ``lambda = e1 b``
    * ``r2 = e1 b(b-1) + 2 e2 b^2``
    * ``r3 = e1 b(b-1)(b-2) + 6 e2 b^2 (b-1) + 6 e3 b^3``

    Note ``lambda = p b`` for every ``q`` -- bias conserves traffic.
    """
    p, q = as_exact(p), as_exact(q)
    a = p * (1 - q) / k
    f = p * (q + (1 - q) / Fraction(k))
    n = k - 1  # unmatched inputs
    e1 = n * a + f
    e2 = binomial_int(n, 2) * a * a + n * a * f
    e3 = binomial_int(n, 3) * a ** 3 + binomial_int(n, 2) * a * a * f
    lam = e1 * b
    r2 = e1 * b * (b - 1) + 2 * e2 * b * b
    r3 = e1 * b * (b - 1) * (b - 2) + 6 * e2 * b * b * (b - 1) + 6 * e3 * b ** 3
    return lam, r2, r3


def nonuniform_mean(k: int, p, q, b: int = 1) -> Fraction:
    """Section III-A-3 mean.

    For ``b = 1``: ``E w = 2 e2 / (2 p (1 - p)) = e2 / (p(1-p))`` with
    ``e2 = C(k-1,2) a^2 + (k-1) a f`` -- zero at ``q = 1`` and the
    Section III-A-1 value at ``q = 0``, as the paper checks.  (For
    ``k = 2`` this collapses to ``E w = p (1 - q^2) / (4 (1 - p))``,
    monotone decreasing in the bias.)
    """
    lam, r2, _ = _nonuniform_moments(k, p, q, b)
    return mom.waiting_time_mean(lam, 1, r2, 0)


def nonuniform_variance(k: int, p, q, b: int = 1) -> Fraction:
    """Section III-A-3 variance (the paper calls the printed form
    "quite lengthy"; this is the same quantity via Eq. (3))."""
    lam, r2, r3 = _nonuniform_moments(k, p, q, b)
    return mom.waiting_time_variance(lam, 1, r2, r3, 0, 0)


# ----------------------------------------------------------------------
# III-B: geometric service
# ----------------------------------------------------------------------

def _geometric_service_moments(mu) -> tuple:
    """``(m, u2, u3)`` for geometric service with parameter ``mu``.

    ``m = 1/mu``, ``U''(1) = 2(1-mu)/mu^2``, ``U'''(1) = 6(1-mu)^2/mu^3``.
    """
    mu = as_exact(mu)
    if not 0 < mu <= 1:
        raise ModelError(f"geometric parameter mu={mu} outside (0, 1]")
    m = 1 / mu
    u2 = 2 * (1 - mu) / mu ** 2
    u3 = 6 * (1 - mu) ** 2 / mu ** 3
    return m, u2, u3


def geometric_mean(k: int, p, mu, s: int | None = None) -> Fraction:
    """Section III-B mean: uniform single arrivals, geometric service."""
    lam, r2, _ = binomial_factorial_moments(k, as_exact(p) / _ks(k, s))
    m, u2, _ = _geometric_service_moments(mu)
    return mom.waiting_time_mean(lam, m, r2, u2)


def geometric_variance(k: int, p, mu, s: int | None = None) -> Fraction:
    """Section III-B variance: uniform single arrivals, geometric service."""
    lam, r2, r3 = binomial_factorial_moments(k, as_exact(p) / _ks(k, s))
    m, u2, u3 = _geometric_service_moments(mu)
    return mom.waiting_time_variance(lam, m, r2, r3, u2, u3)


# ----------------------------------------------------------------------
# III-D-1: constant service time m
# ----------------------------------------------------------------------

def constant_service_mean(k: int, p, m: int, s: int | None = None) -> Fraction:
    """Paper Eq. (8): ``E w = rho (m - 1/k) / (2 (1 - rho))``.

    Uniform single arrivals (rate ``lambda = kp/s``), service ``z^m``,
    ``rho = m lambda``.
    """
    p = as_exact(p)
    lam = k * p / _ks(k, s)
    rho = mom.check_stability(lam, m)
    return rho * (m - Fraction(1, k)) / (2 * (1 - rho))


def constant_service_variance(k: int, p, m: int, s: int | None = None) -> Fraction:
    """Paper Eq. (9) via the general variance with

    ``r2 = lambda^2(1-1/k)``, ``r3 = lambda^3(1-1/k)(1-2/k)``,
    ``u2 = m(m-1)``, ``u3 = m(m-1)(m-2)``.
    """
    lam, r2, r3 = binomial_factorial_moments(k, as_exact(p) / _ks(k, s))
    u2 = m * (m - 1)
    u3 = m * (m - 1) * (m - 2)
    return mom.waiting_time_variance(lam, m, r2, r3, u2, u3)


# ----------------------------------------------------------------------
# III-D-2: multiple constant sizes
# ----------------------------------------------------------------------

def _multisize_moments(sizes: Sequence[int], probabilities: Sequence) -> tuple:
    """``(m, u2, u3)`` for a mixture of constants."""
    probs = [as_exact(g) for g in probabilities]
    if len(sizes) != len(probs):
        raise ModelError("need one probability per size")
    if sum(probs) != 1:
        raise ModelError(f"probabilities sum to {sum(probs)}, expected 1")
    m = sum(mi * gi for mi, gi in zip(sizes, probs, strict=True))
    u2 = sum(mi * (mi - 1) * gi for mi, gi in zip(sizes, probs, strict=True))
    u3 = sum(mi * (mi - 1) * (mi - 2) * gi for mi, gi in zip(sizes, probs, strict=True))
    return m, u2, u3


def multisize_mean(
    k: int, p, sizes: Sequence[int], probabilities: Sequence, s: int | None = None
) -> Fraction:
    """Section III-D-2 mean::

        E w = (lambda sum_i m_i^2 g_i - rho/k) / (2 (1 - rho)) ,

    which the paper writes with ``sum m_i^2 g_i = U''(1) + m``.
    """
    lam, r2, _ = binomial_factorial_moments(k, as_exact(p) / _ks(k, s))
    m, u2, _ = _multisize_moments(sizes, probabilities)
    return mom.waiting_time_mean(lam, m, r2, u2)


def multisize_variance(
    k: int, p, sizes: Sequence[int], probabilities: Sequence, s: int | None = None
) -> Fraction:
    """Section III-D-2 variance ("quite lengthy and not particularly
    enlightening" in print; identical content via Eq. (3))."""
    lam, r2, r3 = binomial_factorial_moments(k, as_exact(p) / _ks(k, s))
    m, u2, u3 = _multisize_moments(sizes, probabilities)
    return mom.waiting_time_variance(lam, m, r2, r3, u2, u3)

"""Continuous approximants for the total waiting time (Section V).

"Typically in queueing systems, the distribution of waiting times has
an exponential or geometric tail, so we expect a gamma distribution
with the proper expected value and variance to be a good approximation
for even small networks."  The paper also mentions the (truncated)
normal limit guaranteed by the central limit theorem for many stages.

Both approximants are moment-matched: given the estimated mean and
variance of the *total* waiting time (from
:class:`~repro.core.total_delay.NetworkDelayModel`) they produce a
continuous distribution whose integer-bin probabilities can be laid
over a simulated histogram -- exactly the smooth curves of the paper's
Figures 3--8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import AnalysisError

__all__ = ["GammaApproximant", "TruncatedNormalApproximant"]


@dataclass(frozen=True)
class GammaApproximant:
    """Gamma distribution matched to a mean and variance.

    Shape ``kappa = mean^2 / variance`` and scale
    ``theta = variance / mean`` reproduce the two moments exactly.

    Parameters
    ----------
    mean, variance:
        Target moments; both must be positive.
    """

    mean: float
    variance: float

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.variance <= 0:
            raise AnalysisError(
                f"gamma approximant needs positive moments, got mean={self.mean}, "
                f"variance={self.variance}"
            )

    @property
    def shape(self) -> float:
        """Gamma shape parameter ``kappa``."""
        return self.mean ** 2 / self.variance

    @property
    def scale(self) -> float:
        """Gamma scale parameter ``theta``."""
        return self.variance / self.mean

    @property
    def frozen(self):
        """The matched ``scipy.stats.gamma`` frozen distribution."""
        return stats.gamma(self.shape, scale=self.scale)

    def pdf(self, x) -> np.ndarray:
        """Density at ``x`` (vectorised)."""
        return self.frozen.pdf(np.asarray(x, dtype=float))

    def cdf(self, x) -> np.ndarray:
        """Distribution function at ``x`` (vectorised)."""
        return self.frozen.cdf(np.asarray(x, dtype=float))

    def sf(self, x) -> np.ndarray:
        """Tail probability ``P(W > x)`` (vectorised)."""
        return self.frozen.sf(np.asarray(x, dtype=float))

    def quantile(self, q: float) -> float:
        """The ``q`` quantile."""
        return float(self.frozen.ppf(q))

    def integer_bin_probabilities(self, n_bins: int) -> np.ndarray:
        """``P(j - 1/2 < W <= j + 1/2)`` for ``j = 0, ..., n_bins - 1``.

        The continuity-corrected discretisation used to overlay the
        smooth gamma on an integer-valued waiting-time histogram.
        """
        if n_bins <= 0:
            raise AnalysisError("n_bins must be positive")
        edges = np.arange(n_bins + 1) - 0.5
        cdf = self.frozen.cdf(edges)
        cdf[0] = 0.0  # all mass below -1/2 is impossible for waiting times
        return np.diff(cdf)


@dataclass(frozen=True)
class TruncatedNormalApproximant:
    """Normal distribution truncated to ``[0, inf)``, moment-matched.

    The matching is done on the *untruncated* parameters (the paper's
    usage: for many stages the truncation is negligible); the class
    reports how much mass the truncation clips so callers can judge the
    quality of the approximation.
    """

    mean: float
    variance: float

    def __post_init__(self) -> None:
        if self.variance <= 0:
            raise AnalysisError(f"variance must be positive, got {self.variance}")

    @property
    def clipped_mass(self) -> float:
        """Mass of the untruncated normal below zero."""
        return float(stats.norm.cdf(0.0, loc=self.mean, scale=self.variance ** 0.5))

    @property
    def frozen(self):
        """The matched ``scipy.stats.truncnorm`` frozen distribution."""
        sigma = self.variance ** 0.5
        a = (0.0 - self.mean) / sigma
        return stats.truncnorm(a, np.inf, loc=self.mean, scale=sigma)

    def pdf(self, x) -> np.ndarray:
        """Density at ``x`` (vectorised)."""
        return self.frozen.pdf(np.asarray(x, dtype=float))

    def cdf(self, x) -> np.ndarray:
        """Distribution function at ``x`` (vectorised)."""
        return self.frozen.cdf(np.asarray(x, dtype=float))

    def quantile(self, q: float) -> float:
        """The ``q`` quantile."""
        return float(self.frozen.ppf(q))

    def integer_bin_probabilities(self, n_bins: int) -> np.ndarray:
        """``P(j - 1/2 < W <= j + 1/2)`` for ``j = 0, ..., n_bins - 1``."""
        if n_bins <= 0:
            raise AnalysisError("n_bins must be positive")
        edges = np.arange(n_bins + 1) - 0.5
        cdf = self.frozen.cdf(edges)
        cdf[0] = 0.0
        return np.diff(cdf)

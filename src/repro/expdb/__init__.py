"""Persistent experiment ledger for the Kruskal--Snir--Weiss reproduction.

``repro.expdb`` records every simulation run, benchmark measurement and
paper-target evaluation in a single SQLite file so that the repository's
claims -- "stage-one wait matches Table I", "the replica-batched engine
is 5x faster than serial" -- are backed by queryable history instead of
hand-edited markdown.

Layers:

* :mod:`repro.expdb.db` -- schema, migrations, corrupt-as-fresh open,
  digest-keyed idempotent upserts, deterministic export.
* :mod:`repro.expdb.ingest` -- adapters from the three producer
  surfaces: :func:`~repro.exec.runner.run_many` batches,
  :mod:`repro.obs` manifests/session directories, and the
  ``BENCH_*.json`` artifacts emitted by ``benchmarks/test_perf_*.py``.
* :mod:`repro.expdb.expectations` -- the paper's tables and figures as
  versioned machine-checkable targets with tolerance-based
  success/partial/failure classification and regression detection.
* :mod:`repro.expdb.report` -- the reproduction scorecard and the
  perf-trajectory report, rendered from DB rows alone.

The ledger never reads the wall clock: timestamps enter only through
explicit ``created_unix`` arguments supplied by the sanctioned timing
layers (:mod:`repro.exec`, the CLI), keeping the package clean under
lint rule RPR001.

CLI: ``python -m repro db {ingest,query,expectations,perf,export}``.
"""

from __future__ import annotations

from repro.expdb.db import (
    DEFAULT_DB_PATH,
    EXPDB_SCHEMA_VERSION,
    BenchRecord,
    EvalRecord,
    ExperimentDB,
    RunRecord,
    canonical_json,
)
from repro.expdb.expectations import (
    CLASSIFICATIONS,
    EXPECTATIONS_VERSION,
    PAPER_EXPECTATIONS,
    Expectation,
    ExpectationResult,
    classify,
    evaluate_expectations,
    find_regressions,
    record_evaluations,
)
from repro.expdb.ingest import (
    bench_record_from_artifact,
    engine_kind,
    ingest_batch,
    ingest_bench_file,
    ingest_manifest,
    ingest_outcome,
    ingest_session_dir,
    provenance,
    run_record_from_outcome,
    spec_record_fields,
)
from repro.expdb.report import (
    PERF_SPEEDUP_FLOORS,
    perf_regressions,
    render_expectations_markdown,
    render_perf_markdown,
    scorecard_counts,
)

__all__ = [
    "DEFAULT_DB_PATH",
    "EXPDB_SCHEMA_VERSION",
    "ExperimentDB",
    "RunRecord",
    "BenchRecord",
    "EvalRecord",
    "canonical_json",
    "CLASSIFICATIONS",
    "EXPECTATIONS_VERSION",
    "PAPER_EXPECTATIONS",
    "Expectation",
    "ExpectationResult",
    "classify",
    "evaluate_expectations",
    "find_regressions",
    "record_evaluations",
    "bench_record_from_artifact",
    "engine_kind",
    "ingest_batch",
    "ingest_bench_file",
    "ingest_manifest",
    "ingest_outcome",
    "ingest_session_dir",
    "provenance",
    "run_record_from_outcome",
    "spec_record_fields",
    "PERF_SPEEDUP_FLOORS",
    "perf_regressions",
    "render_expectations_markdown",
    "render_perf_markdown",
    "scorecard_counts",
]

"""The expectations engine: paper targets as machine-checkable records.

Each :class:`Expectation` encodes one number the paper (or its exact
theory) commits to -- a first-stage mean from Theorem 1 / Eq. (8), a
deep-stage Section IV estimate, a totals-table prediction -- together
with the scenario that produces it and the tolerance a finite
simulation is allowed.  Evaluating the set against the experiment
ledger (:func:`evaluate_expectations`) classifies every target
``success`` / ``partial`` / ``failure`` (or ``missing`` when the
ledger holds no matching run), replacing ad-hoc pytest asserts as the
canonical reproduction scorecard.

Classification rule (boundaries inclusive)::

    tol = atol + rtol * |expected|
    |measured - expected| <= tol                     -> success
    |measured - expected| <= partial_factor * tol    -> partial
    otherwise                                        -> failure

Two tiers ship in :data:`PAPER_EXPECTATIONS`:

* **smoke tier** -- targets for the ``smoke`` scenario set (the CI
  batch), with tolerances sized for its ~2000-cycle runs;
* **paper tier** -- targets for the paper-grade table/figure scenarios
  (8-stage Table I columns, Table II switch sizes, the Table IX /
  Figure 5 totals).  These stay ``missing`` until full-scale runs are
  ingested, and tighten to paper-grade tolerances when they are.

The set is versioned (:data:`EXPECTATIONS_VERSION`, recorded with
every evaluation) so a re-tuned tolerance can never be mistaken for a
re-measured result.  **Regression** is judged against the ledger's
evaluation history: an expectation whose last recorded classification
was ``success`` and which now evaluates ``partial``/``failure`` is a
regression (:func:`find_regressions`) -- the condition CI fails on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ExperimentDBError
from repro.expdb.db import EvalRecord, ExperimentDB

__all__ = [
    "EXPECTATIONS_VERSION",
    "CLASSIFICATIONS",
    "Expectation",
    "ExpectationResult",
    "PAPER_EXPECTATIONS",
    "classify",
    "extract_metric",
    "evaluate_expectations",
    "find_regressions",
    "record_evaluations",
]

#: Bumped whenever a target value or tolerance below changes meaning.
EXPECTATIONS_VERSION = 1

#: Worst-to-best order (used for regression comparisons).
CLASSIFICATIONS = ("failure", "partial", "success")

_RANK = {name: rank for rank, name in enumerate(CLASSIFICATIONS)}


@dataclass(frozen=True)
class Expectation:
    """One versioned, machine-checkable reproduction target."""

    id: str
    #: where the number comes from ("Table I", "Eq. (8)", "Figure 5" ...)
    source: str
    description: str
    #: metric to extract from the matched run row:
    #: "stage_mean" (with :attr:`stage`), "throughput", "total_mean",
    #: "total_variance"
    metric: str
    #: scenario selector: run columns -> required values
    select: Mapping[str, Any]
    expected: float
    rtol: float
    atol: float = 0.0
    #: multiple of the success tolerance still counted as partial
    partial_factor: float = 2.5
    #: stage index for the "stage_mean" metric (negative = from the end)
    stage: Optional[int] = None
    version: int = 1

    def tolerance(self) -> float:
        """The absolute success tolerance."""
        return self.atol + self.rtol * abs(self.expected)


@dataclass(frozen=True)
class ExpectationResult:
    """One expectation evaluated against the ledger."""

    expectation: Expectation
    classification: str  # "success" | "partial" | "failure" | "missing"
    measured: Optional[float] = None
    run_digest: Optional[str] = None
    run_label: str = ""

    @property
    def error(self) -> Optional[float]:
        if self.measured is None:
            return None
        return abs(self.measured - self.expectation.expected)


def classify(expectation: Expectation, measured: float) -> str:
    """Success/partial/failure for one measured value (bounds inclusive)."""
    err = abs(measured - expectation.expected)
    tol = expectation.tolerance()
    if err <= tol:
        return "success"
    if err <= expectation.partial_factor * tol:
        return "partial"
    return "failure"


def extract_metric(expectation: Expectation, run: Mapping[str, Any]) -> Optional[float]:
    """Pull the expectation's metric out of one ledger run row."""
    metric = expectation.metric
    if metric == "stage_mean":
        raw = run.get("stage_means")
        if raw is None or expectation.stage is None:
            return None
        means = json.loads(str(raw))
        try:
            value = means[expectation.stage]
        except IndexError:
            return None
        return float(value) if value is not None else None
    if metric in ("throughput", "total_mean", "total_variance"):
        value = run.get(metric)
        return float(value) if value is not None else None
    raise ExperimentDBError(f"unknown expectation metric {expectation.metric!r}")


def evaluate_expectations(
    db: ExperimentDB,
    expectations: Sequence[Expectation] = (),
) -> List[ExpectationResult]:
    """Evaluate every expectation against the newest matching run."""
    targets = expectations or PAPER_EXPECTATIONS
    results: List[ExpectationResult] = []
    for expectation in targets:
        run = db.match_run(expectation.select)
        measured = extract_metric(expectation, run) if run is not None else None
        if measured is None:
            results.append(ExpectationResult(expectation, "missing"))
            continue
        results.append(
            ExpectationResult(
                expectation,
                classify(expectation, measured),
                measured=measured,
                run_digest=(str(run["digest"]) if run is not None else None),
                run_label=str(run.get("label", "")) if run is not None else "",
            )
        )
    return results


def find_regressions(
    db: ExperimentDB, results: Sequence[ExpectationResult]
) -> List[ExpectationResult]:
    """Results that fell below a previously-recorded ``success``.

    ``missing`` results never regress (the ledger simply has no run to
    judge); call this *before* :func:`record_evaluations`, which
    appends the new classifications to the history being compared
    against.
    """
    previous = db.latest_evals()
    regressed: List[ExpectationResult] = []
    for result in results:
        if result.classification not in _RANK:
            continue
        last = previous.get(result.expectation.id)
        if last is None or last["classification"] != "success":
            continue
        if _RANK[result.classification] < _RANK["success"]:
            regressed.append(result)
    return regressed


def record_evaluations(
    db: ExperimentDB,
    results: Sequence[ExpectationResult],
    *,
    created_unix: Optional[float] = None,
) -> int:
    """Append the evaluations to the ledger's scorecard history."""
    for result in results:
        db.record_eval(
            EvalRecord(
                expectation_id=result.expectation.id,
                expectations_version=EXPECTATIONS_VERSION,
                expected=result.expectation.expected,
                classification=result.classification,
                run_digest=result.run_digest,
                measured=result.measured,
                created_unix=created_unix,
            )
        )
    return len(results)


# ----------------------------------------------------------------------
# the shipped target set
# ----------------------------------------------------------------------

def _smoke(scenario: Mapping[str, Any]) -> Dict[str, Any]:
    """Selector for one scenario of the CI ``smoke`` set."""
    base: Dict[str, Any] = {"n_stages": 3}
    base.update(scenario)
    return base


#: The canonical reproduction scorecard; see the module docstring.
PAPER_EXPECTATIONS: Tuple[Expectation, ...] = (
    # -- smoke tier: exact first-stage means, Theorem 1 / Eq. (8) ------
    Expectation(
        id="smoke-first-stage-p0.2",
        source="Eq. (8) / Table I ANALYSIS",
        description="first-stage mean wait, k=2 uniform traffic at p=0.2",
        metric="stage_mean",
        stage=0,
        select=_smoke({"k": 2, "p": 0.2, "width": 32}),
        expected=0.0625,
        rtol=0.15,
        atol=0.01,
    ),
    Expectation(
        id="smoke-first-stage-p0.35",
        source="Eq. (8) / Table I ANALYSIS",
        description="first-stage mean wait, k=2 uniform traffic at p=0.35",
        metric="stage_mean",
        stage=0,
        select=_smoke({"k": 2, "p": 0.35, "width": 32}),
        expected=0.134615,
        rtol=0.15,
        atol=0.01,
    ),
    Expectation(
        id="smoke-first-stage-p0.5",
        source="Eq. (8) / Table I ANALYSIS",
        description="first-stage mean wait, k=2 uniform traffic at p=0.5",
        metric="stage_mean",
        stage=0,
        select=_smoke({"k": 2, "p": 0.5, "width": 32, "message_size": 1}),
        expected=0.25,
        rtol=0.12,
        atol=0.01,
    ),
    Expectation(
        id="smoke-first-stage-p0.65",
        source="Eq. (8) / Table I ANALYSIS",
        description="first-stage mean wait, k=2 uniform traffic at p=0.65",
        metric="stage_mean",
        stage=0,
        select=_smoke({"k": 2, "p": 0.65, "width": 32}),
        expected=0.464286,
        rtol=0.12,
        atol=0.01,
    ),
    Expectation(
        id="smoke-first-stage-m2",
        source="Eq. (13) / Table III ANALYSIS",
        description="first-stage mean wait, 2-packet messages at rho=0.5",
        metric="stage_mean",
        stage=0,
        select=_smoke({"k": 2, "message_size": 2, "p": 0.25}),
        expected=0.75,
        rtol=0.12,
        atol=0.02,
    ),
    Expectation(
        id="smoke-first-stage-m4",
        source="Eq. (13) / Table III ANALYSIS",
        description="first-stage mean wait, 4-packet messages at rho=0.5",
        metric="stage_mean",
        stage=0,
        select=_smoke({"k": 2, "message_size": 4, "p": 0.125}),
        expected=1.75,
        rtol=0.12,
        atol=0.02,
    ),
    Expectation(
        id="smoke-first-stage-k4",
        source="Eq. (8) / Table II ANALYSIS",
        description="first-stage mean wait, 4x4 switches at p=0.5",
        metric="stage_mean",
        stage=0,
        select={"k": 4, "n_stages": 2, "p": 0.5},
        expected=0.375,
        rtol=0.12,
        atol=0.01,
    ),
    Expectation(
        id="smoke-first-stage-q0.25",
        source="Section III-C / Table V ANALYSIS",
        description="first-stage mean wait under favourite-output bias q=0.25",
        metric="stage_mean",
        stage=0,
        select=_smoke({"k": 2, "q": 0.25, "p": 0.5}),
        # the k=2 n=3 omega network has only 8 ports, so this target is
        # the noisiest of the smoke tier -- hence the loose rtol
        expected=0.234375,
        rtol=0.2,
        atol=0.015,
    ),
    Expectation(
        id="smoke-deep-stage-p0.5",
        source="Section IV estimate (Table I, 7th stage 0.2998)",
        description="last-stage mean wait approaches (1 + 2p/5) w1 = 0.3",
        metric="stage_mean",
        stage=-1,
        select=_smoke({"k": 2, "p": 0.5, "width": 32, "message_size": 1}),
        # at three stages the inflation has not fully settled, so the
        # target sits between w1 = 0.25 and the limit 0.30
        expected=0.30,
        rtol=0.15,
        atol=0.01,
    ),
    Expectation(
        id="smoke-throughput-p0.5",
        source="offered-load identity (stability sanity)",
        description="delivered throughput equals offered load width*p = 16",
        metric="throughput",
        select=_smoke({"k": 2, "p": 0.5, "width": 32, "message_size": 1}),
        expected=16.0,
        rtol=0.05,
    ),
    # -- paper tier: full-scale table/figure targets -------------------
    Expectation(
        id="table-I-first-stage-p0.5",
        source="Table I ANALYSIS row",
        description="8-stage Table I column p=0.5: exact first-stage mean",
        metric="stage_mean",
        stage=0,
        select={"k": 2, "n_stages": 8, "p": 0.5, "width": 128},
        expected=0.25,
        rtol=0.05,
        atol=0.005,
    ),
    Expectation(
        id="table-I-stage7-p0.5",
        source="Table I, 7th-stage SIMULATION entry",
        description="8-stage Table I column p=0.5: paper's 7th-stage mean 0.2998",
        metric="stage_mean",
        stage=6,
        select={"k": 2, "n_stages": 8, "p": 0.5, "width": 128},
        expected=0.2998,
        rtol=0.08,
    ),
    Expectation(
        id="table-II-first-stage-k8",
        source="Table II ANALYSIS row",
        description="6-stage Table II column k=8: exact first-stage mean",
        metric="stage_mean",
        stage=0,
        select={"k": 8, "n_stages": 6, "p": 0.5},
        expected=0.4375,
        rtol=0.05,
        atol=0.005,
    ),
    Expectation(
        id="table-IX-total-mean-6-stages",
        source="Table IX / Figure 5 (Section V prediction)",
        description="total waiting-time mean over 6 stages at p=0.5, m=1",
        metric="total_mean",
        select={"k": 2, "n_stages": 6, "p": 0.5, "message_size": 1, "q": 0.0},
        expected=1.717,
        rtol=0.1,
    ),
)

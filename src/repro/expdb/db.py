"""The SQLite experiment ledger: schema, upserts, queries, export.

One :class:`ExperimentDB` file is the durable record of everything this
reproduction has computed: simulation **runs** (keyed by the same
content digest as the result cache, so a row names its scenario
exactly), **benchmark** measurements (the ``BENCH_*.json`` series the
perf claims live in), and **expectation evaluations** (the
success/partial/failure history the reproduction scorecard is judged
against -- see :mod:`repro.expdb.expectations`).

Three rules carried over from the rest of the repository:

* **Digest-keyed idempotency** -- ``runs`` rows are unique per spec
  digest and ingestion is an upsert: re-ingesting the same run updates
  the row in place, never duplicates it, so :meth:`ExperimentDB.export`
  is byte-identical no matter how many times a batch was recorded.
* **Corrupt-DB-as-fresh** -- mirroring the result cache's
  corrupt-entry-as-miss rule, a file that SQLite cannot read is moved
  aside to ``<path>.corrupt`` and a fresh database is created in its
  place; opening a ledger never fails because of disk rot.  Only a
  database written by a *newer* schema version is a hard error
  (:class:`~repro.errors.ExperimentDBError`).
* **No wall clock** -- this module never reads the clock (RPR001
  discipline): every ``created_unix`` value enters through an explicit
  argument supplied by the sanctioned timing layers
  (:mod:`repro.exec`, the CLI), so ledger content is a pure function
  of what was ingested.
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ExperimentDBError

__all__ = [
    "EXPDB_SCHEMA_VERSION",
    "DEFAULT_DB_PATH",
    "RunRecord",
    "BenchRecord",
    "EvalRecord",
    "ExperimentDB",
    "canonical_json",
]

#: Bumped on any change to the table layout below; stored in the
#: ``meta`` table and checked on every open.  Databases from *older*
#: versions are migrated in place (:data:`_MIGRATIONS`); databases from
#: newer versions are refused.
EXPDB_SCHEMA_VERSION = 1

#: Default ledger location, relative to the working directory.
DEFAULT_DB_PATH = "experiments.sqlite"

_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS runs (
        id               INTEGER PRIMARY KEY,
        digest           TEXT NOT NULL UNIQUE,
        label            TEXT NOT NULL DEFAULT '',
        status           TEXT NOT NULL,
        engine           TEXT NOT NULL,
        source           TEXT NOT NULL,
        seed             INTEGER,
        n_cycles         INTEGER NOT NULL,
        warmup           INTEGER,
        k                INTEGER,
        n_stages         INTEGER,
        p                REAL,
        message_size     INTEGER,
        q                REAL,
        topology         TEXT,
        width            INTEGER,
        buffer_capacity  INTEGER,
        config_json      TEXT NOT NULL,
        stage_means      TEXT,
        stage_variances  TEXT,
        stage_counts     TEXT,
        injected         INTEGER,
        completed        INTEGER,
        dropped          INTEGER,
        throughput       REAL,
        total_mean       REAL,
        total_variance   REAL,
        attempts         INTEGER NOT NULL DEFAULT 0,
        elapsed_seconds  REAL NOT NULL DEFAULT 0.0,
        timings_json     TEXT,
        error            TEXT,
        repro_version    TEXT,
        git_revision     TEXT,
        platform         TEXT,
        numpy_version    TEXT,
        created_unix     REAL
    )
    """,
    "CREATE INDEX IF NOT EXISTS runs_scenario ON runs (k, n_stages, p)",
    """
    CREATE TABLE IF NOT EXISTS benchmarks (
        id               INTEGER PRIMARY KEY,
        fingerprint      TEXT NOT NULL UNIQUE,
        name             TEXT NOT NULL,
        scenario         TEXT,
        baseline_seconds REAL,
        measured_seconds REAL,
        speedup          REAL,
        n_cycles         INTEGER,
        detail_json      TEXT NOT NULL,
        repro_version    TEXT,
        git_revision     TEXT,
        created_unix     REAL
    )
    """,
    "CREATE INDEX IF NOT EXISTS benchmarks_name ON benchmarks (name)",
    """
    CREATE TABLE IF NOT EXISTS expectation_evals (
        id                   INTEGER PRIMARY KEY,
        expectation_id       TEXT NOT NULL,
        expectations_version INTEGER NOT NULL,
        run_digest           TEXT,
        expected             REAL NOT NULL,
        measured             REAL,
        classification       TEXT NOT NULL,
        created_unix         REAL
    )
    """,
    "CREATE INDEX IF NOT EXISTS evals_expectation ON expectation_evals (expectation_id)",
)

#: ``{from_version: migration(conn)}`` -- applied in order when an
#: older ledger is opened.  Empty at schema v1; the machinery exists so
#: v2 can add columns without orphaning v1 files.
_MIGRATIONS: Dict[int, Any] = {}


def canonical_json(doc: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)


def _finite(value: Optional[float]) -> Optional[float]:
    """NaN/Inf -> None so every stored REAL survives JSON export."""
    if value is None:
        return None
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return value


@dataclass(frozen=True)
class RunRecord:
    """One ledger row: a fully-identified run and what it measured.

    ``digest`` is the :attr:`ExperimentSpec.digest
    <repro.exec.spec.ExperimentSpec.digest>` of the scenario, which
    makes the row content-addressed exactly like the result cache.  The
    scenario columns (``k`` .. ``buffer_capacity``) are denormalised
    out of ``config_json`` so expectations and ad-hoc queries can
    select runs without parsing JSON.
    """

    digest: str
    status: str  # "completed" | "cached" | "failed"
    engine: str  # "serial" | "replica-batched" | "scenario-batched"
    source: str  # "exec" | "manifest" | ...
    n_cycles: int
    config_json: str
    label: str = ""
    seed: Optional[int] = None
    warmup: Optional[int] = None
    k: Optional[int] = None
    n_stages: Optional[int] = None
    p: Optional[float] = None
    message_size: Optional[int] = None
    q: Optional[float] = None
    topology: Optional[str] = None
    width: Optional[int] = None
    buffer_capacity: Optional[int] = None
    stage_means: Optional[str] = None  # JSON array
    stage_variances: Optional[str] = None
    stage_counts: Optional[str] = None
    injected: Optional[int] = None
    completed: Optional[int] = None
    dropped: Optional[int] = None
    throughput: Optional[float] = None
    total_mean: Optional[float] = None
    total_variance: Optional[float] = None
    attempts: int = 0
    elapsed_seconds: float = 0.0
    timings_json: Optional[str] = None
    error: Optional[str] = None
    repro_version: Optional[str] = None
    git_revision: Optional[str] = None
    platform: Optional[str] = None
    numpy_version: Optional[str] = None
    created_unix: Optional[float] = None


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark measurement (one point of a perf-trajectory series).

    ``fingerprint`` is a SHA-256 over the canonical artifact content;
    re-ingesting the same ``BENCH_*.json`` file is therefore an upsert,
    so historical backfills are idempotent.
    """

    fingerprint: str
    name: str  # series name: "replicas" | "sweep" | "exec" | ...
    detail_json: str
    scenario: Optional[str] = None
    baseline_seconds: Optional[float] = None
    measured_seconds: Optional[float] = None
    speedup: Optional[float] = None
    n_cycles: Optional[int] = None
    repro_version: Optional[str] = None
    git_revision: Optional[str] = None
    created_unix: Optional[float] = None


@dataclass(frozen=True)
class EvalRecord:
    """One recorded expectation evaluation (scorecard history)."""

    expectation_id: str
    expectations_version: int
    expected: float
    classification: str  # "success" | "partial" | "failure" | "missing"
    run_digest: Optional[str] = None
    measured: Optional[float] = None
    created_unix: Optional[float] = None


_RUN_COLUMNS: Tuple[str, ...] = tuple(f.name for f in fields(RunRecord))
_BENCH_COLUMNS: Tuple[str, ...] = tuple(f.name for f in fields(BenchRecord))
_EVAL_COLUMNS: Tuple[str, ...] = tuple(f.name for f in fields(EvalRecord))


class ExperimentDB:
    """A persistent, queryable experiment ledger (one SQLite file).

    Opening is self-healing: missing files are created, older schemas
    are migrated, and unreadable files are moved aside to
    ``<path>.corrupt`` and replaced (see the module docstring).  All
    writes commit immediately; the handle is safe to keep open for a
    whole batch.
    """

    def __init__(self, path: Union[str, Path] = DEFAULT_DB_PATH) -> None:
        self.path = Path(path)
        self._conn = self._open()

    # -- lifecycle ------------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path))
        try:
            version = self._read_version(conn)
        except sqlite3.DatabaseError:
            # corrupt-DB-as-fresh: keep the bytes for forensics, start over
            conn.close()
            os.replace(self.path, self.path.with_name(self.path.name + ".corrupt"))
            conn = sqlite3.connect(str(self.path))
            version = None
        if version is None:
            self._create(conn)
            return conn
        if version > EXPDB_SCHEMA_VERSION:
            conn.close()
            raise ExperimentDBError(
                f"{self.path} is schema v{version}, newer than this package's "
                f"v{EXPDB_SCHEMA_VERSION}; refusing to touch it"
            )
        while version < EXPDB_SCHEMA_VERSION:
            migrate = _MIGRATIONS.get(version)
            if migrate is None:  # pragma: no cover - defensive
                conn.close()
                raise ExperimentDBError(
                    f"no migration from schema v{version} to v{version + 1}"
                )
            migrate(conn)
            version += 1
            self._write_version(conn, version)
        return conn

    @staticmethod
    def _read_version(conn: sqlite3.Connection) -> Optional[int]:
        """The stored schema version, or ``None`` for a fresh file.

        Raises :class:`sqlite3.DatabaseError` when the file is not a
        SQLite database at all (the corrupt case) and
        :class:`~repro.errors.ExperimentDBError` when it is a valid
        database that is not one of ours.
        """
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if not tables:
            return None
        if "meta" not in tables:
            raise ExperimentDBError(
                "database has tables but no 'meta' -- not an experiment ledger"
            )
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            raise ExperimentDBError("ledger 'meta' table has no schema_version")
        return int(row[0])

    @staticmethod
    def _write_version(conn: sqlite3.Connection, version: int) -> None:
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('schema_version', ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (str(version),),
        )
        conn.commit()

    def _create(self, conn: sqlite3.Connection) -> None:
        for statement in _SCHEMA:
            conn.execute(statement)
        self._write_version(conn, EXPDB_SCHEMA_VERSION)

    @property
    def schema_version(self) -> int:
        """The schema version of the open ledger."""
        version = self._read_version(self._conn)
        assert version is not None  # _open guarantees an initialised file
        return version

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "ExperimentDB":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- writes ---------------------------------------------------------
    def _upsert(
        self, table: str, columns: Sequence[str], values: Sequence[Any], key: str
    ) -> None:
        # created_unix is first-write-wins: it records when the row was
        # first observed, so re-ingesting identical content later (a
        # backfill, a repeated CI run) leaves the row -- and therefore
        # export() -- byte-identical.
        assigns = ", ".join(
            f"{c} = excluded.{c}"
            for c in columns
            if c not in (key, "created_unix")
        )
        self._conn.execute(
            f"INSERT INTO {table} ({', '.join(columns)}) "
            f"VALUES ({', '.join('?' * len(columns))}) "
            f"ON CONFLICT({key}) DO UPDATE SET {assigns}",
            tuple(values),
        )
        self._conn.commit()

    def record_run(self, record: RunRecord) -> None:
        """Insert or update one run row (keyed by spec digest)."""
        values = [getattr(record, c) for c in _RUN_COLUMNS]
        self._upsert("runs", _RUN_COLUMNS, values, key="digest")

    def record_bench(self, record: BenchRecord) -> None:
        """Insert or update one benchmark point (keyed by fingerprint)."""
        values = [getattr(record, c) for c in _BENCH_COLUMNS]
        self._upsert("benchmarks", _BENCH_COLUMNS, values, key="fingerprint")

    def record_eval(self, record: EvalRecord) -> None:
        """Append one expectation evaluation to the scorecard history."""
        self._conn.execute(
            f"INSERT INTO expectation_evals ({', '.join(_EVAL_COLUMNS)}) "
            f"VALUES ({', '.join('?' * len(_EVAL_COLUMNS))})",
            tuple(getattr(record, c) for c in _EVAL_COLUMNS),
        )
        self._conn.commit()

    # -- queries --------------------------------------------------------
    def _rows(self, sql: str, params: Sequence[Any] = ()) -> Iterator[Dict[str, Any]]:
        cursor = self._conn.execute(sql, tuple(params))
        names = [d[0] for d in cursor.description]
        for row in cursor:
            yield dict(zip(names, row, strict=True))

    def runs(
        self,
        *,
        digest: Optional[str] = None,
        label: Optional[str] = None,
        status: Optional[str] = None,
        engine: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Run rows (newest first) matching the given filters."""
        where: List[str] = []
        params: List[Any] = []
        for column, value in (
            ("digest", digest),
            ("label", label),
            ("status", status),
            ("engine", engine),
        ):
            if value is not None:
                where.append(f"{column} = ?")
                params.append(value)
        sql = "SELECT * FROM runs"
        if where:
            sql += " WHERE " + " AND ".join(where)
        sql += " ORDER BY id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        return list(self._rows(sql, params))

    def match_run(self, select: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
        """The newest *usable* run matching a scenario selector.

        ``select`` maps denormalised scenario columns (``k``,
        ``n_stages``, ``p``, ``message_size``, ``q``, ``topology``,
        ``width``, ``n_cycles``, ...) to required values; float values
        match within 1e-9.  Failed runs never match (they carry no
        metrics).
        """
        where = ["status IN ('completed', 'cached')"]
        params: List[Any] = []
        for column, value in sorted(select.items()):
            if column not in _RUN_COLUMNS:
                raise ExperimentDBError(f"unknown run selector column {column!r}")
            if value is None:
                where.append(f"{column} IS NULL")
            elif isinstance(value, float):
                where.append(f"ABS({column} - ?) < 1e-9")
                params.append(value)
            else:
                where.append(f"{column} = ?")
                params.append(value)
        sql = (
            "SELECT * FROM runs WHERE "
            + " AND ".join(where)
            + " ORDER BY id DESC LIMIT 1"
        )
        rows = list(self._rows(sql, params))
        return rows[0] if rows else None

    def bench_names(self) -> List[str]:
        """Distinct benchmark series names, alphabetical."""
        return [
            str(row[0])
            for row in self._conn.execute(
                "SELECT DISTINCT name FROM benchmarks ORDER BY name"
            )
        ]

    def bench_series(self, name: str) -> List[Dict[str, Any]]:
        """All points of one benchmark series, in ingestion order."""
        return list(
            self._rows(
                "SELECT * FROM benchmarks WHERE name = ? ORDER BY id", (name,)
            )
        )

    def latest_evals(self) -> Dict[str, Dict[str, Any]]:
        """The most recent recorded evaluation per expectation id."""
        latest: Dict[str, Dict[str, Any]] = {}
        for row in self._rows("SELECT * FROM expectation_evals ORDER BY id"):
            latest[str(row["expectation_id"])] = row
        return latest

    def counts(self) -> Dict[str, int]:
        """Row counts per table (for ``db query`` summaries)."""
        out: Dict[str, int] = {}
        for table in ("runs", "benchmarks", "expectation_evals"):
            row = self._conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()
            out[table] = int(row[0])
        return out

    # -- export ---------------------------------------------------------
    def export(self) -> str:
        """The whole ledger as deterministic, canonical JSON.

        Rows are ordered by their content keys (digest / fingerprint /
        expectation id + insertion order) and the auto-increment ``id``
        column is dropped, so two ledgers holding the same records
        export byte-identically regardless of ingestion order or
        repetition.
        """

        def strip(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
            return [{k: v for k, v in row.items() if k != "id"} for row in rows]

        doc = {
            "schema_version": self.schema_version,
            "runs": strip(list(self._rows("SELECT * FROM runs ORDER BY digest"))),
            "benchmarks": strip(
                list(self._rows("SELECT * FROM benchmarks ORDER BY fingerprint"))
            ),
            "expectation_evals": strip(
                list(
                    self._rows(
                        "SELECT * FROM expectation_evals "
                        "ORDER BY expectation_id, id"
                    )
                )
            ),
        }
        return canonical_json(doc)

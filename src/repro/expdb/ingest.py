"""Ingestion bridges: batches, manifests, and BENCH artifacts -> ledger.

Three sources feed the experiment database, each already existing in
the repository before the ledger did:

* :func:`ingest_batch` -- the outcomes of one
  :func:`repro.exec.runner.run_many` call (wired in via
  ``run_many(..., db=...)``).  Records completed, cached, *and* failed
  tasks; the digest-keyed upsert means a retry that later succeeds
  overwrites its failure row.
* :func:`ingest_manifest` / :func:`ingest_session_dir` -- the
  ``run-NNNN.manifest.json`` documents an observation session writes
  (:mod:`repro.obs.manifest`).  The spec digest is reconstructed from
  the manifest's config + cycle budget, so a manifest-ingested run and
  a cache entry for the same scenario share a key (note: manifests
  carry the *resolved* warm-up, so their digests use it).
* :func:`ingest_bench_file` -- the ``BENCH_replicas.json`` /
  ``BENCH_sweep.json`` / ``BENCH_exec.json`` artifacts the perf
  benchmarks emit, fingerprinted by content so historical artifacts
  backfill the trajectory idempotently.

RPR001 discipline: nothing here reads the clock.  ``created_unix``
always arrives as an explicit argument (``run_many`` stamps its own
batches from :mod:`repro.exec`, the CLI stamps file ingests), and the
manifest's own ``created_unix`` rides along unchanged.
"""

from __future__ import annotations

import hashlib
import json
import math
import platform as platform_mod
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple, Union

from repro._version import __version__
from repro.errors import ExperimentDBError
from repro.expdb.db import BenchRecord, ExperimentDB, RunRecord, canonical_json
from repro.obs.manifest import git_revision

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.exec.runner import BatchResult, TaskOutcome
    from repro.exec.spec import ExperimentSpec

__all__ = [
    "provenance",
    "engine_kind",
    "spec_record_fields",
    "run_record_from_outcome",
    "ingest_outcome",
    "ingest_batch",
    "ingest_manifest",
    "ingest_session_dir",
    "ingest_bench_file",
    "bench_record_from_artifact",
]

#: Scenario columns denormalised from the config for selector queries.
_SCENARIO_COLUMNS = (
    "k",
    "n_stages",
    "p",
    "message_size",
    "q",
    "topology",
    "width",
    "buffer_capacity",
)

#: Key names (in priority order) holding the baseline / measured wall
#: times inside a BENCH artifact.  Covers the three shipped formats and
#: degrades gracefully for future ones (any other ``*_seconds`` pair).
_BASELINE_KEYS = ("serial_seconds", "per_load_batched_seconds", "numpy_seconds")
_MEASURED_KEYS = (
    "batched_seconds",
    "stacked_seconds",
    "parallel_seconds",
    "numba_seconds",
    "sharded_seconds",
)


def provenance() -> Dict[str, Optional[str]]:
    """Package/platform provenance for freshly-ingested rows."""
    try:
        import numpy

        numpy_version: Optional[str] = str(numpy.__version__)
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "repro_version": __version__,
        "git_revision": git_revision(),
        "platform": platform_mod.platform(),
        "numpy_version": numpy_version,
    }


def engine_kind(spec: "ExperimentSpec") -> str:
    """Which engine variant a spec's digest is keyed for."""
    if spec.batch_marker is None:
        return "serial"
    if spec.batch_marker[0] == "stream":
        # the composition-free streamed marker (repro.exec.spec.STREAM_MARKER)
        return "stream"
    rows = spec.batch_marker[2]
    if rows and isinstance(rows[0], str):
        return "scenario-batched"
    return "replica-batched"


def _clean(value: Optional[float]) -> Optional[float]:
    """NaN/Inf -> None; everything stored must survive JSON export."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def _scenario_fields(config_doc: Mapping[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for name in _SCENARIO_COLUMNS:
        value = config_doc.get(name)
        if name in ("p", "q") and value is not None:
            # exotic rate types (e.g. a Fraction repr) stay queryable
            # through config_json; the selector column goes NULL
            value = float(value) if isinstance(value, (int, float)) else None
        out[name] = value
    return out


def spec_record_fields(spec: "ExperimentSpec") -> Dict[str, Any]:
    """The spec -> row conversion every ingestion surface shares.

    Digest-keyed identity columns (digest, seed, budget, canonical
    config JSON, engine variant, denormalised scenario selectors) for
    one :class:`~repro.exec.spec.ExperimentSpec`.  Used by the batch
    path (:func:`run_record_from_outcome`, hence ``run_many(db=...)``
    and the :mod:`repro.api` service) and the manifest path
    (:func:`ingest_manifest`, hence ``db ingest --manifests``), so a
    run reaches identical identity columns no matter which surface
    recorded it.
    """
    config_doc = spec.identity()["config"]
    fields: Dict[str, Any] = {
        "digest": spec.digest,
        "engine": engine_kind(spec),
        "seed": spec.config.seed,
        "n_cycles": int(spec.n_cycles),
        "warmup": spec.warmup,
        "config_json": canonical_json(config_doc),
    }
    fields.update(_scenario_fields(config_doc))
    return fields


def run_record_from_outcome(
    outcome: "TaskOutcome",
    *,
    created_unix: Optional[float] = None,
    source: str = "exec",
) -> RunRecord:
    """Build the ledger row for one :class:`TaskOutcome`."""
    spec = outcome.spec
    result = outcome.result
    stage_means = stage_variances = stage_counts = None
    injected = completed = dropped = None
    throughput = total_mean = total_variance = None
    if result is not None:
        stage_means = json.dumps([_clean(v) for v in result.stage_means.tolist()])
        stage_variances = json.dumps(
            [_clean(v) for v in result.stage_variances.tolist()]
        )
        stage_counts = json.dumps([int(v) for v in result.stage_counts.tolist()])
        injected = int(result.injected)
        completed = int(result.completed)
        dropped = int(result.dropped)
        throughput = _clean(result.throughput())
        try:
            total_mean = _clean(result.total_waiting_mean())
            total_variance = _clean(result.total_waiting_variance())
        # repro: lint-ok RPR003 -- a run without a tracked cohort gets null totals
        except Exception:
            total_mean = total_variance = None
    prov = provenance()
    return RunRecord(
        label=spec.label,
        status=outcome.status,
        source=source,
        stage_means=stage_means,
        stage_variances=stage_variances,
        stage_counts=stage_counts,
        injected=injected,
        completed=completed,
        dropped=dropped,
        throughput=throughput,
        total_mean=total_mean,
        total_variance=total_variance,
        attempts=int(outcome.attempts),
        elapsed_seconds=float(outcome.elapsed_seconds),
        error=(outcome.error.strip().splitlines()[-1] if outcome.error else None),
        created_unix=created_unix,
        **spec_record_fields(spec),
        repro_version=prov["repro_version"],
        git_revision=prov["git_revision"],
        platform=prov["platform"],
        numpy_version=prov["numpy_version"],
    )


def ingest_outcome(
    db: ExperimentDB,
    outcome: "TaskOutcome",
    *,
    created_unix: Optional[float] = None,
    source: str = "exec",
) -> str:
    """Record one task outcome; returns its spec digest.

    The per-outcome surface shared by :func:`ingest_batch` and the
    simulation service (``python -m repro serve --db``, which records
    each job as it finishes with ``source="api"``).
    """
    record = run_record_from_outcome(
        outcome, created_unix=created_unix, source=source
    )
    db.record_run(record)
    return record.digest


def ingest_batch(
    db: ExperimentDB,
    batch: "BatchResult",
    *,
    created_unix: Optional[float] = None,
    source: str = "exec",
) -> int:
    """Record every outcome of one batch; returns the row count."""
    for outcome in batch.outcomes:
        ingest_outcome(db, outcome, created_unix=created_unix, source=source)
    return len(batch.outcomes)


# ----------------------------------------------------------------------
# manifests
# ----------------------------------------------------------------------

def ingest_manifest(
    db: ExperimentDB, manifest: Mapping[str, Any], *, source: str = "manifest"
) -> str:
    """Record one run manifest; returns the reconstructed spec digest.

    Raises :class:`~repro.errors.ExperimentDBError` for documents that
    are not run manifests or whose config cannot be rebuilt (e.g. an
    explicit service-model object that only survives as a ``repr``).
    """
    from repro.errors import ExecutionError
    from repro.exec.spec import spec_from_jsonable

    if manifest.get("kind") != "run":
        raise ExperimentDBError(
            f"not a run manifest (kind={manifest.get('kind')!r})"
        )
    try:
        spec = spec_from_jsonable(
            {
                "config": manifest["config"],
                "n_cycles": manifest["n_cycles"],
                "warmup": manifest["warmup"],
            }
        )
    except (ExecutionError, KeyError) as exc:
        raise ExperimentDBError(f"cannot rebuild spec from manifest: {exc}") from exc
    counts = manifest.get("counts", {})

    def _array(name: str) -> Optional[str]:
        value = manifest.get(name)
        if value is None:
            return None
        return json.dumps([_clean(v) for v in value])

    record = RunRecord(
        label=str(manifest.get("run_id", "")),
        status="completed",
        source=source,
        stage_means=_array("stage_means"),
        stage_variances=_array("stage_variances"),
        stage_counts=(
            json.dumps([int(v) for v in manifest["stage_counts"]])
            if manifest.get("stage_counts") is not None
            else None
        ),
        injected=counts.get("injected"),
        completed=counts.get("completed"),
        dropped=counts.get("dropped"),
        throughput=_clean(manifest.get("throughput")),
        elapsed_seconds=float(manifest.get("elapsed_seconds", 0.0)),
        timings_json=(
            canonical_json(manifest["timings"]) if manifest.get("timings") else None
        ),
        created_unix=_clean(manifest.get("created_unix")),
        **spec_record_fields(spec),
        repro_version=manifest.get("repro_version"),
        git_revision=manifest.get("git_revision"),
        platform=manifest.get("platform"),
        numpy_version=manifest.get("numpy_version"),
    )
    db.record_run(record)
    return spec.digest


def ingest_session_dir(
    db: ExperimentDB, directory: Union[str, Path]
) -> Tuple[int, int]:
    """Ingest every run manifest of one observation-session directory.

    Returns ``(ingested, skipped)``; non-run documents (replication /
    exec-batch indexes, metrics JSONL) and unreadable files are
    counted as skipped, never fatal -- a half-written session directory
    should still backfill what it can.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ExperimentDBError(f"{directory} is not a directory")
    ingested = skipped = 0
    for path in sorted(directory.glob("*.json")):
        try:
            manifest = json.loads(path.read_text())
            ingest_manifest(db, manifest)
            ingested += 1
        except (OSError, ValueError, ExperimentDBError):
            skipped += 1
    return ingested, skipped


# ----------------------------------------------------------------------
# BENCH artifacts
# ----------------------------------------------------------------------

def _first(artifact: Mapping[str, Any], keys: Tuple[str, ...]) -> Optional[float]:
    for key in keys:
        if key in artifact:
            return _clean(float(artifact[key]))
    return None


def bench_record_from_artifact(
    name: str,
    artifact: Mapping[str, Any],
    *,
    created_unix: Optional[float] = None,
) -> BenchRecord:
    """Build the ledger row for one BENCH artifact document.

    The fingerprint covers the series name plus the artifact content
    (not the ingestion time), so the same measurement ingested twice --
    or from two copies of the file -- lands on one row.
    """
    if not isinstance(artifact, Mapping) or "speedup" not in artifact:
        raise ExperimentDBError(
            f"BENCH artifact for {name!r} has no 'speedup' field"
        )
    content = canonical_json({"name": name, "artifact": artifact})
    fingerprint = hashlib.sha256(content.encode("utf-8")).hexdigest()
    baseline = _first(artifact, _BASELINE_KEYS)
    measured = _first(artifact, _MEASURED_KEYS)
    if baseline is None or measured is None:
        # future formats: any *_seconds pair, larger value as baseline
        seconds = sorted(
            float(v)
            for k, v in artifact.items()
            if k.endswith("_seconds") and isinstance(v, (int, float))
        )
        if len(seconds) >= 2:
            measured = measured if measured is not None else seconds[0]
            baseline = baseline if baseline is not None else seconds[-1]
    n_cycles = artifact.get("n_cycles")
    return BenchRecord(
        fingerprint=fingerprint,
        name=name,
        scenario=(str(artifact["scenario"]) if "scenario" in artifact else None),
        baseline_seconds=baseline,
        measured_seconds=measured,
        speedup=_clean(float(artifact["speedup"])),
        n_cycles=(int(n_cycles) if n_cycles is not None else None),
        detail_json=canonical_json(artifact),
        repro_version=__version__,
        git_revision=git_revision(),
        created_unix=created_unix,
    )


def _series_name(path: Path) -> str:
    """``BENCH_replicas.json`` -> ``replicas`` (fallback: the stem)."""
    stem = path.stem
    if stem.startswith("BENCH_"):
        return stem[len("BENCH_"):]
    return stem


def ingest_bench_file(
    db: ExperimentDB,
    path: Union[str, Path],
    *,
    name: Optional[str] = None,
    created_unix: Optional[float] = None,
) -> List[str]:
    """Ingest one ``BENCH_*.json`` artifact (or a JSON list of them).

    Returns the series names ingested.  The three shipped formats
    (``replicas``, ``sweep``, ``exec``) and any future single-object
    artifact with a ``speedup`` field are accepted.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ExperimentDBError(f"cannot read BENCH artifact {path}: {exc}") from exc
    series = name if name is not None else _series_name(path)
    artifacts = doc if isinstance(doc, list) else [doc]
    ingested: List[str] = []
    for artifact in artifacts:
        db.record_bench(
            bench_record_from_artifact(
                series, artifact, created_unix=created_unix
            )
        )
        ingested.append(series)
    return ingested

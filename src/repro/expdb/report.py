"""Config-free report generation straight from the experiment ledger.

Two documents, both plain markdown rendered from DB rows alone (no
simulation, no re-computation -- what the ledger recorded is what the
report shows):

* :func:`render_expectations_markdown` -- the reproduction scorecard:
  every paper target of :data:`~repro.expdb.expectations.PAPER_EXPECTATIONS`
  with its expected value, the measured value from the matched run,
  the relative error, and the success/partial/failure classification,
  in the style of the hand-maintained ``EXPERIMENTS.md``.
* :func:`render_perf_markdown` -- the perf trajectory: each benchmark
  series (``replicas``, ``sweep``, ``exec``, ...) as an ingestion-
  ordered table of measurements with regression flags.
  :func:`perf_regressions` applies the documented speedup floors (the
  same numbers ``benchmarks/test_perf_*.py`` asserts) so CI can fail
  on a series that sank below its claim.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.expdb.db import ExperimentDB
from repro.expdb.expectations import EXPECTATIONS_VERSION, ExpectationResult

__all__ = [
    "PERF_SPEEDUP_FLOORS",
    "render_expectations_markdown",
    "render_perf_markdown",
    "perf_regressions",
    "scorecard_counts",
]

#: Minimum acceptable speedup per benchmark series -- the same floors
#: the perf benchmarks assert (``test_perf_replicas``: >= 5x,
#: ``test_perf_sweep``: >= 3x, ``test_perf_exec``: >= 2x,
#: ``test_perf_backend``: numba JIT >= 3x over the NumPy reference,
#: ``test_perf_scale``: sharded multi-worker >= 2x over a single-shard
#: serial run).  A series whose *latest* point sits below its floor is
#: a perf regression.
PERF_SPEEDUP_FLOORS: Dict[str, float] = {
    "replicas": 5.0,
    "sweep": 3.0,
    "exec": 2.0,
    "backend": 3.0,
    "scale": 2.0,
}


def scorecard_counts(results: Sequence[ExpectationResult]) -> Dict[str, int]:
    """``{classification: count}`` over one evaluation (zeroes included)."""
    counts = {"success": 0, "partial": 0, "failure": 0, "missing": 0}
    for result in results:
        counts[result.classification] = counts.get(result.classification, 0) + 1
    return counts


def _fmt(value: Optional[float], places: int = 4) -> str:
    return "-" if value is None else f"{value:.{places}f}"


def render_expectations_markdown(
    results: Sequence[ExpectationResult],
    regressions: Sequence[ExpectationResult] = (),
) -> str:
    """The paper-vs-measured scorecard as a markdown document."""
    counts = scorecard_counts(results)
    regressed_ids = {r.expectation.id for r in regressions}
    lines: List[str] = [
        "# Reproduction scorecard",
        "",
        f"Expectations v{EXPECTATIONS_VERSION}: "
        f"{counts['success']} success, {counts['partial']} partial, "
        f"{counts['failure']} failure, {counts['missing']} missing "
        f"(of {len(results)} targets).",
        "",
        "| expectation | source | expected | measured | rel. err | tol | class |",
        "|---|---|---|---|---|---|---|",
    ]
    for result in results:
        e = result.expectation
        rel = (
            None
            if result.error is None or e.expected == 0
            else result.error / abs(e.expected)
        )
        flag = " **(regressed)**" if e.id in regressed_ids else ""
        lines.append(
            f"| {e.id} | {e.source} | {e.expected:.4f} | "
            f"{_fmt(result.measured)} | {_fmt(rel, 3)} | "
            f"{e.tolerance():.4f} | {result.classification}{flag} |"
        )
    lines.append("")
    missing = [r for r in results if r.classification == "missing"]
    if missing:
        lines.append(
            "Missing targets await full-scale runs in the ledger "
            "(`python -m repro table I --metrics-out DIR` then "
            "`python -m repro db ingest --manifests DIR`): "
            + ", ".join(r.expectation.id for r in missing)
            + "."
        )
        lines.append("")
    lines.append(
        "Classification: |measured - expected| within tol is success, "
        "within partial_factor x tol is partial, beyond is failure; "
        "see `docs/experiments-db.md`."
    )
    return "\n".join(lines) + "\n"


def _series_rows(points: Sequence[Mapping[str, Any]]) -> List[str]:
    lines = [
        "| # | speedup | baseline s | measured s | cycles | version | git | scenario |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for i, point in enumerate(points, start=1):
        git = str(point.get("git_revision") or "-")[:10]
        lines.append(
            "| {i} | {speedup} | {base} | {meas} | {cycles} | {ver} | {git} | {scen} |".format(
                i=i,
                speedup=_fmt(point.get("speedup"), 2),
                base=_fmt(point.get("baseline_seconds")),
                meas=_fmt(point.get("measured_seconds")),
                cycles=point.get("n_cycles") or "-",
                ver=point.get("repro_version") or "-",
                git=git,
                scen=point.get("scenario") or "-",
            )
        )
    return lines


def perf_regressions(db: ExperimentDB) -> List[str]:
    """Human-readable descriptions of series below their speedup floor."""
    problems: List[str] = []
    for name in db.bench_names():
        floor = PERF_SPEEDUP_FLOORS.get(name)
        points = db.bench_series(name)
        if floor is None or not points:
            continue
        latest = points[-1].get("speedup")
        if latest is not None and float(latest) < floor:
            problems.append(
                f"benchmark series {name!r}: latest speedup "
                f"{float(latest):.2f}x below the {floor:.1f}x floor"
            )
    return problems


def render_perf_markdown(db: ExperimentDB) -> str:
    """The perf-trajectory report for every ingested benchmark series."""
    names = db.bench_names()
    lines: List[str] = ["# Performance trajectory", ""]
    if not names:
        lines.append(
            "No benchmark points ingested yet.  Run the perf benchmarks "
            "(`make bench`) and ingest their artifacts: "
            "`python -m repro db ingest --bench BENCH_replicas.json`."
        )
        return "\n".join(lines) + "\n"
    problems = set(perf_regressions(db))
    for name in names:
        points = db.bench_series(name)
        floor = PERF_SPEEDUP_FLOORS.get(name)
        speedups = [
            float(p["speedup"]) for p in points if p.get("speedup") is not None
        ]
        lines.append(f"## {name} ({len(points)} point(s))")
        lines.append("")
        if floor is not None:
            lines.append(f"Asserted floor: {floor:.1f}x speedup.")
        if speedups:
            latest, best = speedups[-1], max(speedups)
            status = "OK"
            if floor is not None and latest < floor:
                status = "REGRESSION (below floor)"
            elif latest < 0.75 * best:
                status = "warning: latest < 75% of best"
            lines.append(
                f"Latest {latest:.2f}x, best {best:.2f}x -- {status}."
            )
        lines.append("")
        lines.extend(_series_rows(points))
        lines.append("")
    if problems:
        lines.append("Regressions: " + "; ".join(sorted(problems)) + ".")
        lines.append("")
    return "\n".join(lines) + "\n"

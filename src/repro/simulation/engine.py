"""The clocked simulation core.

One :meth:`ClockedEngine.step` is one network clock cycle:

1. **inject** -- fresh messages enter the first-stage output queues
   chosen by the topology's routing (arrivals and departures do not
   interfere, per the paper's switch model);
2. **serve** -- every idle output port whose queue head has arrived
   starts transmitting it; the waiting time (service start minus queue
   arrival) is recorded, the port becomes busy for the message's
   service time, and the message is handed to the next stage --
   immediately with arrival stamp ``t + 1`` under cut-through (the
   head packet crosses one switch per cycle while the tail still
   streams), or at ``t + service`` under store-and-forward;
3. **tick** -- busy counters decrement.

The engine is fully vectorised across all ``n_stages * width`` ports:
a cycle costs a fixed number of NumPy kernel calls independent of the
network population, which is what makes the paper's 12-stage sweeps
tractable in pure Python.
"""

from __future__ import annotations

# repro: lint-ok RPR001 -- phase profiling only; timings never enter simulation state
from time import perf_counter
from typing import Literal, Optional

import numpy as np

from repro.errors import SimulationError
from repro.obs.base import ObserverSet
from repro.obs.profiling import PhaseTimers
from repro.simulation.sanitize import (
    check_conservation,
    check_queue_depths,
    check_stage_stats,
    sanitizer_enabled,
)
from repro.simulation.stats import StageAccumulator, TrackedMessages
from repro.simulation.switch import RingBufferQueues
from repro.simulation.topology import MultistageTopology
from repro.simulation.traffic import NetworkTrafficGenerator

__all__ = ["ClockedEngine", "build_routing_tables"]


def build_routing_tables(topology: MultistageTopology):
    """Stacked per-stage wiring permutations and digit divisors.

    Returns ``(perm_stack, shifts)``: ``perm_stack[s]`` is stage ``s``'s
    input wiring permutation and ``shifts`` the destination-digit
    divisors (``None`` for topologies routed by coin flips).  Forwarding
    a mixed-stage batch then needs one gather, no per-stage Python loop;
    shared by :class:`ClockedEngine` and the replica-batched engine
    (every replica runs the *same* network, so one table serves all).
    """
    perm_stack = np.stack(
        [topology.input_wiring(s) for s in range(topology.n_stages)]
    )
    return perm_stack, topology.routing_shifts()


class ClockedEngine:
    """Cycle-accurate simulator of one multistage network.

    Parameters
    ----------
    topology:
        The wiring/routing model.
    traffic:
        First-stage message source.
    transfer:
        ``"cut_through"`` (paper model: total service ``n + m - 1``) or
        ``"store_forward"`` (total service ``n * m``).
    buffer_capacity:
        ``None`` for the paper's infinite buffers; an integer makes
        every output queue a finite FIFO that *drops* overflow.
    routing_rng:
        Kept for custom topologies whose :meth:`routing_digits` needs
        randomness (the built-in ones are deterministic in the
        destination).
    track_limit:
        Maximum number of per-message rows kept for correlation/total
        statistics (streaming stage statistics are unaffected).
    observer:
        Optional event sink (e.g.
        :class:`~repro.simulation.trace.MessageTracer`) attached at
        construction; any number more can be added with
        :meth:`add_observer` (see :mod:`repro.obs.base`).  With no
        observers the dispatch costs nothing.
    """

    def __init__(
        self,
        topology: MultistageTopology,
        traffic: NetworkTrafficGenerator,
        transfer: Literal["cut_through", "store_forward"] = "cut_through",
        buffer_capacity: Optional[int] = None,
        routing_rng: Optional[np.random.Generator] = None,
        track_limit: int = 200_000,
        observer=None,
    ) -> None:
        if traffic.width != topology.width:
            raise SimulationError(
                f"traffic width {traffic.width} != topology width {topology.width}"
            )
        if transfer not in ("cut_through", "store_forward"):
            raise SimulationError(f"unknown transfer mode {transfer!r}")
        self.topology = topology
        self.traffic = traffic
        self.transfer = transfer
        self.routing_rng = routing_rng
        #: composable observer registry (see :mod:`repro.obs.base`)
        self.observers = ObserverSet(self)
        #: phase timers (``inject``/``serve``/``tick``); ``None`` = off
        self.timers: Optional[PhaseTimers] = None
        self.width = topology.width
        self.n_stages = topology.n_stages
        n_ports = self.n_stages * self.width
        fields = {
            "dest": np.int64,
            "service": np.int64,
            "arrival": np.int64,
            "track": np.int64,
        }
        self.queues = RingBufferQueues(
            n_ports,
            fields,
            capacity=buffer_capacity or 64,
            finite=buffer_capacity is not None,
        )
        self.busy = np.zeros(n_ports, dtype=np.int64)
        self.stats = StageAccumulator(self.n_stages)
        self.tracker = TrackedMessages(track_limit, self.n_stages)
        self.now = 0
        #: cycle from which statistics are recorded and messages tracked
        self.measure_from = 0
        self.completed = 0
        self.injected = 0
        self._perm_stack, self._shifts = build_routing_tables(topology)
        #: when True, per-cycle (sum, count) of last-stage waits are
        #: appended to :attr:`cycle_wait_sums` / :attr:`cycle_wait_counts`
        #: (used by the automated warm-up detector)
        self.record_cycle_series = False
        self.cycle_wait_sums: list = []
        self.cycle_wait_counts: list = []
        if observer is not None:
            self.add_observer(observer)

    # ------------------------------------------------------------------
    # observers / instrumentation
    # ------------------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Attach an observer (idempotent); see :mod:`repro.obs.base`."""
        self.observers.add(observer)

    def remove_observer(self, observer) -> None:
        """Detach an observer (no-op if absent)."""
        self.observers.remove(observer)

    @property
    def observer(self):
        """Legacy single-observer view: the first attached, or ``None``.

        Assigning replaces *all* attached observers (the historical
        single-slot semantics); prefer :meth:`add_observer`.
        """
        attached = self.observers.observers
        return attached[0] if attached else None

    @observer.setter
    def observer(self, value) -> None:
        self.observers.replace([] if value is None else [value])

    def enable_profiling(self) -> PhaseTimers:
        """Start accumulating inject/serve/tick wall-clock phase timers."""
        if self.timers is None:
            self.timers = PhaseTimers()
        return self.timers

    # ------------------------------------------------------------------
    # simulation loop
    # ------------------------------------------------------------------
    def run(self, n_cycles: int, warmup: int = 0) -> None:
        """Advance ``n_cycles``; discard statistics before ``warmup``.

        With ``REPRO_SANITIZE=1`` every cycle is followed by the
        invariant hooks of :mod:`repro.simulation.sanitize` (finite
        statistics, non-negative queue depths, message conservation).
        """
        if n_cycles < 1:
            raise SimulationError(f"n_cycles must be >= 1, got {n_cycles}")
        if not 0 <= warmup < n_cycles:
            raise SimulationError(f"warmup {warmup} outside [0, {n_cycles})")
        self.measure_from = self.now + warmup
        end = self.now + n_cycles
        sanitize = sanitizer_enabled()
        while self.now < end:
            self.step()
            if sanitize:
                self._sanitize_cycle()

    def _sanitize_cycle(self) -> None:
        """One round of sanitizer checks (cycle just simulated)."""
        t = self.now - 1
        check_stage_stats(self.stats, cycle=t)
        check_queue_depths(self.queues.counts, cycle=t)
        check_conservation(
            self.injected,
            self.completed,
            self.in_flight,
            self.queues.dropped,
            cycle=t,
        )

    def step(self) -> None:
        """Simulate one clock cycle."""
        t = self.now
        measuring = t >= self.measure_from
        if self.record_cycle_series:
            self._cycle_probe = [0.0, 0]
        # on_cycle_end observers fire after inject+serve but before the
        # busy decrement, so a port transmitting during cycle t is still
        # visibly busy (utilization sampling would otherwise miss every
        # unit-service transmission).
        timers = self.timers
        if timers is None:
            self._inject(t, measuring)
            self._serve(t, measuring)
            for callback in self.observers.cycle_end:
                callback(t)
            np.subtract(self.busy, 1, out=self.busy, where=self.busy > 0)
        else:
            t0 = perf_counter()
            self._inject(t, measuring)
            t1 = perf_counter()
            self._serve(t, measuring)
            t2 = perf_counter()
            for callback in self.observers.cycle_end:
                callback(t)
            np.subtract(self.busy, 1, out=self.busy, where=self.busy > 0)
            t3 = perf_counter()
            timers.add("inject", t1 - t0, backend="numpy")
            timers.add("serve", t2 - t1, backend="numpy")
            timers.add("tick", t3 - t2, backend="numpy")
        if self.record_cycle_series:
            self.cycle_wait_sums.append(self._cycle_probe[0])
            self.cycle_wait_counts.append(self._cycle_probe[1])
        self.now = t + 1

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def _inject(self, t: int, measuring: bool) -> None:
        arrivals = self.traffic.generate()
        n = arrivals.sources.size
        if n == 0:
            return
        self.injected += n
        lines = self.topology.entry_queue(
            arrivals.sources, arrivals.destinations, self.routing_rng
        )
        track = (
            self.tracker.allocate(n) if measuring else np.full(n, -1, dtype=np.int64)
        )
        self.queues.push_batch(
            lines,  # stage 0 occupies global ports [0, width)
            dest=arrivals.destinations,
            service=arrivals.services,
            arrival=np.full(n, t, dtype=np.int64),
            track=track,
        )
        for callback in self.observers.inject:
            callback(t, arrivals.sources, lines, track)

    def _serve(self, t: int, measuring: bool) -> None:
        candidates = np.flatnonzero((self.busy == 0) & (self.queues.counts > 0))
        if candidates.size == 0:
            return
        head_arrival = self.queues.peek(candidates, "arrival")
        ready = candidates[head_arrival <= t]
        if ready.size == 0:
            return
        msg = self.queues.pop(ready)
        waits = (t - msg["arrival"]).astype(np.float64)
        stages = ready // self.width
        if measuring:
            self.stats.add(stages, waits)
            self.tracker.record(msg["track"], stages, waits)
        if self.record_cycle_series:
            last = stages == self.n_stages - 1
            self._cycle_probe[0] += float(waits[last].sum())
            self._cycle_probe[1] += int(last.sum())
        for callback in self.observers.service_start:
            callback(t, ready, stages, waits, msg["track"])
        self.busy[ready] = msg["service"]
        self._forward(t, ready, stages, msg)

    def _forward(self, t: int, ports: np.ndarray, stages: np.ndarray, msg: dict) -> None:
        moving = stages < self.n_stages - 1
        self.completed += int((~moving).sum())
        if not moving.any():
            return
        ports = ports[moving]
        stages = stages[moving]
        dest = msg["dest"][moving]
        lines = ports % self.width
        # stacked routing tables: one gather per batch, no per-stage loop
        in_lines = self._perm_stack[stages + 1, lines]
        if self._shifts is not None:
            digits = (dest // self._shifts[stages + 1]) % self.topology.k
        else:
            digits = self.routing_rng.integers(0, self.topology.k, size=lines.size)
        next_lines = (in_lines // self.topology.k) * self.topology.k + digits
        next_ports = (stages + 1) * self.width + next_lines
        if self.transfer == "cut_through":
            arrival = np.full(ports.size, t + 1, dtype=np.int64)
        else:
            arrival = t + msg["service"][moving]
        self.queues.push_batch(
            next_ports,
            dest=dest,
            service=msg["service"][moving],
            arrival=arrival,
            track=msg["track"][moving],
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Messages currently buffered anywhere in the network."""
        return self.queues.total_occupancy()

    def __repr__(self) -> str:
        return (
            f"ClockedEngine(t={self.now}, stages={self.n_stages}, "
            f"width={self.width}, in_flight={self.in_flight})"
        )

"""Pre-drawn Numba backend: the whole multi-cycle loop in one kernel.

At the paper's small widths a cycle of the NumPy reference backend is
~20 kernel calls on tiny arrays, so per-call Python dispatch dominates.
This backend removes it entirely: the *entire* run -- every cycle's
inject/serve/forward/tick -- is one nopython function over preallocated
arrays.

Bit-identity by pre-drawing
---------------------------
All randomness of a batched run lives in the inject phase: the traffic
generator draws one ``(R, width)`` uniform block (plus destinations,
bulk/favourite extras, and service samples) per cycle, and the built-in
topologies route by destination digits -- no routing RNG is consumed
(``routing_shifts()`` is non-``None``; enforced by
:meth:`NumbaBackend.unsupported_reason`).  So the backend first replays
the inject phase for **all** cycles in plain Python -- calling
:meth:`~repro.simulation.traffic.NetworkTrafficGenerator.generate_batch`,
:meth:`~repro.simulation.topology.MultistageTopology.entry_queue`, and
the tracker's slot allocator in exactly the order the reference backend
would -- which yields bit-identical `SeedSequence`-derived draws.  The
kernel then consumes the pre-drawn arrivals with no RNG at all.

Inside the kernel, each per-port FIFO is a linked list over one shared
node pool (node id = pre-drawn message index; a message occupies one
queue at a time, so ids never collide).  Each cycle pops every ready
head *before* any forward push -- the same snapshot semantics as the
reference backend's serve phase -- so queue contents, busy counters,
and per-queue occupancy high-water marks evolve identically.  Waiting
times are integers, and float64 sums of integers are exact below 2**53,
so the kernel's sequential accumulation equals the reference backend's
``bincount`` sums bit-for-bit (float32 tracker entries are likewise
exact below 2**24).

The kernel body is an ordinary Python function; with numba installed it
is compiled with ``@njit(cache=True)``, and without numba the same
function still runs (slowly) -- the always-on equivalence tests drive
it directly, so the algorithm is verified even where numba is absent.
"""

from __future__ import annotations

# repro: lint-ok RPR001 -- phase timers are wall-clock bookkeeping; never enter results
from time import perf_counter
from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.simulation.backends.base import register_backend

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.simulation.batched import BatchedClockedEngine

__all__ = ["NumbaBackend", "numba_available", "cycle_loop_kernel"]

try:
    from numba import njit  # type: ignore[import-not-found,import-untyped]
except ImportError:  # pragma: no cover - exercised only without numba
    njit = None


def numba_available() -> bool:
    """Whether numba is importable in this environment."""
    return njit is not None


def cycle_loop_kernel(
    n_cycles: int,
    warmup: int,
    n_ports: int,
    ports_per_replica: int,
    n_stages: int,
    width: int,
    k: int,
    cut_through: bool,
    offsets: np.ndarray,
    ports: np.ndarray,
    dests: np.ndarray,
    services: np.ndarray,
    tracks: np.ndarray,
    perm_stack: np.ndarray,
    shifts: np.ndarray,
    busy: np.ndarray,
    bin_count: np.ndarray,
    bin_shift: np.ndarray,
    bin_total: np.ndarray,
    bin_total_sq: np.ndarray,
    tracker_waits: np.ndarray,
    completed: np.ndarray,
    q_high: np.ndarray,
    streaming: bool,
    msg_total: np.ndarray,
    msg_done: np.ndarray,
) -> int:
    """Simulate all cycles over pre-drawn arrivals; returns in-flight count.

    Mutates ``busy``, the stat bins (shifted sums, first value seen per
    bin becomes its shift -- see
    :class:`~repro.simulation.stats.StageAccumulator`), ``tracker_waits``,
    ``completed``, and ``q_high`` in place.  Pure integer/float
    arithmetic, nopython-compatible; the messages of cycle ``t`` are
    ``ports/dests/services/tracks[offsets[t]:offsets[t + 1]]``.

    With ``streaming`` set, ``tracks`` holds per-message ids into
    ``msg_total``/``msg_done`` instead of tracker rows: each measured
    message accumulates its total wait across stages in ``msg_total``
    and flips ``msg_done`` when it leaves the last stage, so summary
    statistics need no per-message stage matrix.
    """
    n_msgs = offsets[n_cycles]
    node_next = np.full(n_msgs, -1, dtype=np.int64)
    node_arrival = np.zeros(n_msgs, dtype=np.int64)
    q_head = np.full(n_ports, -1, dtype=np.int64)
    q_tail = np.full(n_ports, -1, dtype=np.int64)
    q_count = np.zeros(n_ports, dtype=np.int64)
    served_nodes = np.empty(n_ports, dtype=np.int64)
    served_ports = np.empty(n_ports, dtype=np.int64)

    for t in range(n_cycles):
        measuring = t >= warmup

        # -- inject: append this cycle's pre-drawn arrivals ------------
        for i in range(offsets[t], offsets[t + 1]):
            port = ports[i]
            node_arrival[i] = t
            if q_count[port] == 0:
                q_head[port] = i
            else:
                node_next[q_tail[port]] = i
            q_tail[port] = i
            q_count[port] += 1
            if q_count[port] > q_high[port]:
                q_high[port] = q_count[port]

        # -- serve: pop every ready head BEFORE any forward push -------
        # (the reference backend snapshots its candidates, then pops,
        # then pushes; two passes reproduce that exactly, including the
        # occupancy high-water accounting)
        n_served = 0
        for port in range(n_ports):
            if busy[port] != 0 or q_count[port] == 0:
                continue
            node = q_head[port]
            if node_arrival[node] > t:
                continue
            q_head[port] = node_next[node]
            q_count[port] -= 1
            if q_count[port] == 0:
                q_tail[port] = -1
            wait = float(t - node_arrival[node])
            rep = port // ports_per_replica
            local = port - rep * ports_per_replica
            stage = local // width
            if measuring:
                b = rep * n_stages + stage
                if bin_count[b] == 0:
                    bin_shift[b] = wait
                centered = wait - bin_shift[b]
                bin_count[b] += 1
                bin_total[b] += centered
                bin_total_sq[b] += centered * centered
                tid = tracks[node]
                if tid >= 0:
                    if streaming:
                        msg_total[tid] += wait
                    else:
                        tracker_waits[tid, stage] = wait
            busy[port] = services[node]
            served_nodes[n_served] = node
            served_ports[n_served] = port
            n_served += 1

        # -- forward: route every served message to its next stage -----
        for j in range(n_served):
            node = served_nodes[j]
            port = served_ports[j]
            rep = port // ports_per_replica
            local = port - rep * ports_per_replica
            stage = local // width
            if stage == n_stages - 1:
                completed[rep] += 1
                if streaming and tracks[node] >= 0:
                    msg_done[tracks[node]] = 1
                continue
            line = local - stage * width
            in_line = perm_stack[stage + 1, line]
            digit = (dests[node] // shifts[stage + 1]) % k
            next_line = (in_line // k) * k + digit
            next_port = rep * ports_per_replica + (stage + 1) * width + next_line
            if cut_through:
                node_arrival[node] = t + 1
            else:
                node_arrival[node] = t + services[node]
            node_next[node] = -1
            if q_count[next_port] == 0:
                q_head[next_port] = node
            else:
                node_next[q_tail[next_port]] = node
            q_tail[next_port] = node
            q_count[next_port] += 1
            if q_count[next_port] > q_high[next_port]:
                q_high[next_port] = q_count[next_port]

        # -- tick ------------------------------------------------------
        for port in range(n_ports):
            if busy[port] > 0:
                busy[port] -= 1

    in_flight = 0
    for port in range(n_ports):
        in_flight += q_count[port]
    return int(in_flight)


_compiled_loop: Optional[Callable] = (
    njit(cache=True)(cycle_loop_kernel) if njit is not None else None
)


def compiled_kernel() -> Optional[Callable]:
    """The ``@njit``-compiled cycle loop, or ``None`` without numba.

    Shared with the streamed engine (:mod:`repro.simulation.streamed`),
    which drives the same kernel over differently pre-drawn arrivals.
    """
    return _compiled_loop


def _as_i64(parts: List[np.ndarray], total: int) -> np.ndarray:
    if not parts:
        return np.empty(total, dtype=np.int64)
    return np.concatenate(parts).astype(np.int64, copy=False)


@register_backend
class NumbaBackend:
    """JIT-compiled multi-cycle loop over pre-drawn arrivals.

    ``kernel`` defaults to the ``@njit``-compiled loop; the equivalence
    tests pass the interpreted :func:`cycle_loop_kernel` instead, which
    validates the pre-draw + kernel algorithm without numba installed.
    """

    name = "numba"
    requirement = "numba is not installed (pip install 'repro[numba]')"

    @classmethod
    def is_available(cls) -> bool:
        return numba_available()

    @classmethod
    def unsupported_reason(cls, engine: "BatchedClockedEngine") -> Optional[str]:
        if engine._shifts is None:
            return (
                "topology routes without a digit table (routing_shifts() is "
                "None), so forwarding would consume RNG mid-kernel"
            )
        if engine.now != 0 or engine.queues.total_occupancy() != 0:
            return "the pre-drawn loop needs a fresh engine (t=0, empty queues)"
        if engine.queues.finite:
            return "finite buffers are not modelled by the pre-drawn loop"
        return None

    def __init__(self, kernel: Optional[Callable] = None) -> None:
        self._kernel = kernel

    # ------------------------------------------------------------------
    def run(self, engine: "BatchedClockedEngine", n_cycles: int, warmup: int) -> None:
        kernel = self._kernel if self._kernel is not None else _compiled_loop
        if kernel is None:
            raise SimulationError(self.requirement)
        reason = self.unsupported_reason(engine)
        if reason is not None:
            raise SimulationError(f"numba backend cannot run this engine: {reason}")
        timers = engine.timers

        t0 = perf_counter()
        offsets, ports, dests, services, tracks = self._predraw(
            engine, n_cycles, warmup
        )
        t1 = perf_counter()
        q_high = np.zeros(engine.busy.size, dtype=np.int64)
        in_flight = kernel(
            n_cycles,
            warmup,
            engine.busy.size,
            engine.ports_per_replica,
            engine.n_stages,
            engine.width,
            engine.topology.k,
            engine.transfer == "cut_through",
            offsets,
            ports,
            dests,
            services,
            tracks,
            engine._perm_stack.astype(np.int64, copy=False),
            engine._shifts,
            engine.busy,
            engine.stats.count,
            engine.stats.shift,
            engine.stats.total,
            engine.stats.total_sq,
            engine.tracker.waits,
            engine.completed,
            q_high,
            False,
            np.zeros(1, dtype=np.float64),
            np.zeros(1, dtype=np.uint8),
        )
        t2 = perf_counter()

        engine.stats.refresh_unseen()
        engine.queues.record_high_water(q_high)
        engine.now += n_cycles
        # the in-flight messages live in the kernel's (discarded) node
        # pool, not the engine's ring buffers: expose the honest count
        # and refuse further stepping of this engine
        engine._in_flight_override = int(in_flight)
        engine._finalized = True
        if timers is not None:
            timers.add("predraw", t1 - t0, backend=self.name)
            timers.add("kernel", t2 - t1, backend=self.name)

    def _predraw(
        self, engine: "BatchedClockedEngine", n_cycles: int, warmup: int
    ) -> tuple:
        """Replay the inject phase's RNG draws for every cycle up front.

        Same generator, same call order, same per-cycle batch shapes as
        the reference backend's ``_inject`` -- hence the same draws.
        ``engine.injected`` and the tracker's slot allocator advance
        here exactly as they would cycle by cycle.
        """
        traffic = engine.traffic
        topology = engine.topology
        ppr = engine.ports_per_replica
        offsets = np.zeros(n_cycles + 1, dtype=np.int64)
        ports_parts: List[np.ndarray] = []
        dest_parts: List[np.ndarray] = []
        service_parts: List[np.ndarray] = []
        track_parts: List[np.ndarray] = []
        for t in range(n_cycles):
            arrivals = traffic.generate_batch()
            n = arrivals.sources.size
            offsets[t + 1] = offsets[t] + n
            if n == 0:
                continue
            reps = arrivals.replicas
            engine.injected += np.bincount(reps, minlength=engine.n_replicas)
            lines = topology.entry_queue(
                arrivals.sources, arrivals.destinations, engine.routing_rng
            )
            track = (
                engine.tracker.allocate(reps)
                if t >= warmup
                else np.full(n, -1, dtype=np.int64)
            )
            ports_parts.append(reps * ppr + lines)
            dest_parts.append(arrivals.destinations)
            service_parts.append(arrivals.services)
            track_parts.append(track)
        total = int(offsets[n_cycles])
        return (
            offsets,
            _as_i64(ports_parts, total),
            _as_i64(dest_parts, total),
            _as_i64(service_parts, total),
            _as_i64(track_parts, total),
        )

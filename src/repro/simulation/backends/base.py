"""The ``ComputeBackend`` protocol and backend registry.

The split follows the "Python orchestrates; the backend computes"
design: :class:`~repro.simulation.batched.BatchedClockedEngine` owns
model *state* (queues, busy counters, accumulators, trackers) and the
run *policy* (cycle budget, warm-up), while a backend owns the cycle
*loop* -- how inject/serve/forward/tick are actually executed over that
state.  The protocol is deliberately narrow: a backend advances a fresh
engine by ``n_cycles`` and leaves every statistic the engine exposes
(``stats``, ``tracker``, ``injected``, ``completed``, ``busy``, queue
high-water marks) exactly as the reference implementation would.

Determinism contract
--------------------
Backends must be **bit-identical** to the reference
:class:`~repro.simulation.backends.reference.NumpyBackend` -- not
statistically equivalent, identical.  All randomness of a batched run
is drawn in the inject phase by
:meth:`~repro.simulation.traffic.NetworkTrafficGenerator.generate_batch`
(the built-in topologies route by destination digits and consume no
routing RNG), so any backend that replays those draws in the same
per-cycle order gets the same sample path; the remaining freedom --
accumulation order of integer-valued waits in float64 bins -- is exact
below 2**53 and therefore order-independent.  See ``docs/backends.md``.

Backend *selection* is an execution detail, never an identity: it does
not appear in :class:`~repro.simulation.network.NetworkConfig`, in
:meth:`~repro.exec.spec.ExperimentSpec.identity`, or in any cache
digest (test-asserted).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Type, Union, runtime_checkable

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.simulation.batched import BatchedClockedEngine

__all__ = [
    "BACKEND_CHOICES",
    "DEFAULT_BACKEND",
    "ComputeBackend",
    "available_backends",
    "register_backend",
    "resolve_backend",
]

#: Values accepted wherever a backend is named (CLI, context, runners).
BACKEND_CHOICES = ("numpy", "numba", "auto")

#: ``auto`` picks the fastest available backend that supports the
#: engine, falling back to the NumPy reference when numba is absent.
DEFAULT_BACKEND = "auto"


@runtime_checkable
class ComputeBackend(Protocol):
    """What the batched engine needs from a cycle-loop executor."""

    #: short identifier recorded on results, manifests, and timers
    name: str

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend's dependencies are importable here."""
        ...

    @classmethod
    def unsupported_reason(cls, engine: "BatchedClockedEngine") -> Optional[str]:
        """``None`` if this backend can run ``engine``, else why not."""
        ...

    def run(self, engine: "BatchedClockedEngine", n_cycles: int, warmup: int) -> None:
        """Advance ``engine`` by ``n_cycles``, measuring from ``warmup``."""
        ...


_REGISTRY: Dict[str, Type] = {}


def register_backend(cls: Type) -> Type:
    """Register a backend class under its ``name`` (import-time hook)."""
    _REGISTRY[cls.name] = cls
    return cls


def available_backends() -> List[str]:
    """Names of the registered backends importable in this environment."""
    return [name for name, cls in sorted(_REGISTRY.items()) if cls.is_available()]


def resolve_backend(
    backend: Union[str, ComputeBackend, None],
    engine: "BatchedClockedEngine",
) -> ComputeBackend:
    """Turn a backend request into a ready instance for ``engine``.

    ``"auto"`` (or ``None``) degrades cleanly: the JIT backend is chosen
    only when numba is importable *and* it supports the engine;
    otherwise the NumPy reference runs.  An *explicit* name is strict --
    asking for ``"numba"`` without numba, or for an engine the JIT loop
    cannot reproduce, raises with the reason.  A ready
    :class:`ComputeBackend` instance passes through (after a support
    check), which is how the equivalence tests drive the pre-drawn loop
    through its pure-Python kernel.
    """
    if backend is None or backend == DEFAULT_BACKEND:
        jit_cls = _REGISTRY.get("numba")
        if (
            jit_cls is not None
            and jit_cls.is_available()
            and jit_cls.unsupported_reason(engine) is None
        ):
            return jit_cls()  # type: ignore[no-any-return]
        return _REGISTRY["numpy"]()  # type: ignore[no-any-return]
    if isinstance(backend, str):
        cls = _REGISTRY.get(backend)
        if cls is None:
            raise SimulationError(
                f"unknown compute backend {backend!r}; choose one of "
                f"{sorted(_REGISTRY)} or 'auto'"
            )
        if not cls.is_available():
            raise SimulationError(
                f"compute backend {backend!r} is not available: "
                f"{getattr(cls, 'requirement', 'missing dependency')}"
            )
        reason = cls.unsupported_reason(engine)
        if reason is not None:
            raise SimulationError(
                f"compute backend {backend!r} cannot run this engine: {reason}"
            )
        return cls()  # type: ignore[no-any-return]
    reason = type(backend).unsupported_reason(engine)
    if reason is not None:
        raise SimulationError(
            f"compute backend {backend.name!r} cannot run this engine: {reason}"
        )
    return backend

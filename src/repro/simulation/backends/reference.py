"""The NumPy reference backend: vectorised per-cycle kernels.

These are the kernels that used to live on
:class:`~repro.simulation.batched.BatchedClockedEngine` directly --
inject / serve / forward as whole-batch NumPy array passes, a fixed
number of kernel calls per cycle regardless of the replica count.
Every other backend is defined as "bit-identical to this one".

Per-cycle temporaries that the old methods allocated fresh each call
(the constant-fill ``arrival``/``track`` vectors) are hoisted into
scratch buffers owned by the backend instance and grown on demand --
:meth:`~repro.simulation.switch.RingBufferQueues.push_batch` copies
field values into its rings, so reusing the buffers across cycles is
safe and the equivalence tests pin that outputs are unchanged.
"""

from __future__ import annotations

# repro: lint-ok RPR001 -- phase timers are wall-clock bookkeeping; never enter results
from time import perf_counter
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.simulation.backends.base import register_backend
from repro.simulation.sanitize import sanitizer_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.simulation.batched import BatchedClockedEngine

__all__ = ["NumpyBackend"]


@register_backend
class NumpyBackend:
    """Vectorised NumPy cycle loop (always available; the reference)."""

    name = "numpy"
    requirement = "numpy (a hard dependency; always available)"

    @classmethod
    def is_available(cls) -> bool:
        return True

    @classmethod
    def unsupported_reason(cls, engine: "BatchedClockedEngine") -> Optional[str]:
        return None

    def __init__(self) -> None:
        # grown-on-demand scratch for the constant-fill push columns
        self._arrival_scratch = np.empty(0, dtype=np.int64)
        self._track_scratch = np.empty(0, dtype=np.int64)

    def _filled(self, which: str, n: int, value: int) -> np.ndarray:
        buf = getattr(self, which)
        if buf.size < n:
            buf = np.empty(max(n, 2 * buf.size), dtype=np.int64)
            setattr(self, which, buf)
        view = buf[:n]
        view.fill(value)
        return view

    # ------------------------------------------------------------------
    # cycle loop
    # ------------------------------------------------------------------
    def run(self, engine: "BatchedClockedEngine", n_cycles: int, warmup: int) -> None:
        end = engine.now + n_cycles
        sanitize = sanitizer_enabled()
        while engine.now < end:
            self.step(engine)
            if sanitize:
                engine.sanitize_state(engine.now - 1)

    def step(self, engine: "BatchedClockedEngine") -> None:
        """One clock cycle of every replica (inject / serve / tick)."""
        t = engine.now
        measuring = t >= engine.measure_from
        timers = engine.timers
        if timers is None:
            self._inject(engine, t, measuring)
            self._serve(engine, t, measuring)
            np.subtract(engine.busy, 1, out=engine.busy, where=engine.busy > 0)
        else:
            t0 = perf_counter()
            self._inject(engine, t, measuring)
            t1 = perf_counter()
            self._serve(engine, t, measuring)
            t2 = perf_counter()
            np.subtract(engine.busy, 1, out=engine.busy, where=engine.busy > 0)
            t3 = perf_counter()
            timers.add("inject", t1 - t0, backend=self.name)
            timers.add("serve", t2 - t1, backend=self.name)
            timers.add("tick", t3 - t2, backend=self.name)
        engine.now = t + 1

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def _inject(self, engine: "BatchedClockedEngine", t: int, measuring: bool) -> None:
        arrivals = engine.traffic.generate_batch()
        n = arrivals.sources.size
        if n == 0:
            return
        reps = arrivals.replicas
        engine.injected += np.bincount(reps, minlength=engine.n_replicas)
        lines = engine.topology.entry_queue(
            arrivals.sources, arrivals.destinations, engine.routing_rng
        )
        track = (
            engine.tracker.allocate(reps)
            if measuring
            else self._filled("_track_scratch", n, -1)
        )
        engine.queues.push_batch(
            reps * engine.ports_per_replica + lines,
            dest=arrivals.destinations,
            service=arrivals.services,
            arrival=self._filled("_arrival_scratch", n, t),
            track=track,
        )

    def _serve(self, engine: "BatchedClockedEngine", t: int, measuring: bool) -> None:
        candidates = np.flatnonzero((engine.busy == 0) & (engine.queues.counts > 0))
        if candidates.size == 0:
            return
        head_arrival = engine.queues.peek(candidates, "arrival")
        ready = candidates[head_arrival <= t]
        if ready.size == 0:
            return
        msg = engine.queues.pop(ready)
        waits = (t - msg["arrival"]).astype(np.float64)
        reps = ready // engine.ports_per_replica
        local = ready - reps * engine.ports_per_replica
        stages = local // engine.width
        if measuring:
            engine.stats.add(reps * engine.n_stages + stages, waits)
            engine.tracker.record(msg["track"], stages, waits)
        engine.busy[ready] = msg["service"]
        self._forward(engine, t, reps, local, stages, msg)

    def _forward(
        self,
        engine: "BatchedClockedEngine",
        t: int,
        reps: np.ndarray,
        local: np.ndarray,
        stages: np.ndarray,
        msg: dict,
    ) -> None:
        moving = stages < engine.n_stages - 1
        done = ~moving
        if done.any():
            engine.completed += np.bincount(reps[done], minlength=engine.n_replicas)
        if not moving.any():
            return
        reps = reps[moving]
        stages = stages[moving]
        dest = msg["dest"][moving]
        lines = local[moving] % engine.width
        in_lines = engine._perm_stack[stages + 1, lines]
        if engine._shifts is not None:
            digits = (dest // engine._shifts[stages + 1]) % engine.topology.k
        else:
            digits = engine.routing_rng.integers(0, engine.topology.k, size=lines.size)
        next_lines = (in_lines // engine.topology.k) * engine.topology.k + digits
        next_ports = (
            reps * engine.ports_per_replica + (stages + 1) * engine.width + next_lines
        )
        if engine.transfer == "cut_through":
            arrival = self._filled("_arrival_scratch", reps.size, t + 1)
        else:
            arrival = t + msg["service"][moving]
        engine.queues.push_batch(
            next_ports,
            dest=dest,
            service=msg["service"][moving],
            arrival=arrival,
            track=msg["track"][moving],
        )

"""Pluggable compute backends for the replica-batched engine.

``repro.simulation.backends`` separates *what* a batched run computes
(:class:`~repro.simulation.batched.BatchedClockedEngine` state and
statistics) from *how* the cycle loop executes:

* :class:`~repro.simulation.backends.reference.NumpyBackend` -- the
  vectorised NumPy kernels (always available; the reference every other
  backend must match bit-for-bit);
* :class:`~repro.simulation.backends.jit.NumbaBackend` -- the whole
  multi-cycle loop compiled to one nopython function over pre-drawn
  RNG blocks (used automatically when numba is importable).

Select a backend by name through ``run_stacked``/``run_batched``
(``backend="numpy" | "numba" | "auto"``), the execution layer
(:class:`~repro.exec.context.ExecutionContext`), or the CLI
(``--backend``).  Backend choice never changes results, digests, or
cache keys -- see :mod:`repro.simulation.backends.base` for the
determinism contract and ``docs/backends.md`` for the design.
"""

from repro.simulation.backends.base import (
    BACKEND_CHOICES,
    DEFAULT_BACKEND,
    ComputeBackend,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.simulation.backends.jit import NumbaBackend, numba_available
from repro.simulation.backends.reference import NumpyBackend

__all__ = [
    "BACKEND_CHOICES",
    "DEFAULT_BACKEND",
    "ComputeBackend",
    "NumbaBackend",
    "NumpyBackend",
    "available_backends",
    "numba_available",
    "register_backend",
    "resolve_backend",
]

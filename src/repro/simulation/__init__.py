"""Clocked discrete-event simulation of buffered banyan networks.

This subpackage is the reproduction's stand-in for the authors' (now
lost) in-house simulator: a cycle-accurate model of a multistage
interconnection network built from ``k x k`` output-queued switches,
vectorised over every port in the network with NumPy so that the
"extensive simulations" of the paper run in seconds on a laptop.

Modules
-------
:mod:`repro.simulation.rng`
    Seeding discipline (independent streams per subsystem).
:mod:`repro.simulation.topology`
    Omega / butterfly / baseline banyan wirings, digit routing, path
    tracing, and networkx export.
:mod:`repro.simulation.switch`
    Vectorised multi-queue FIFO ring buffers (the output queues).
:mod:`repro.simulation.traffic`
    First-stage message generation: Bernoulli loads, bulks, favourite
    bias, multi-size messages.
:mod:`repro.simulation.engine`
    The clocked core: one :meth:`~repro.simulation.engine.ClockedEngine.step`
    per network cycle.
:mod:`repro.simulation.batched`
    The replica-batched core: ``R`` independent replicas stacked into
    one set of arrays, amortising per-cycle kernel-call overhead.
:mod:`repro.simulation.network`
    The user-facing facade: :class:`~repro.simulation.network.NetworkSimulator`
    built from a :class:`~repro.simulation.network.NetworkConfig`,
    returning a :class:`~repro.simulation.network.NetworkResult`.
:mod:`repro.simulation.queue_sim`
    A separate O(n) fully-vectorised simulator of a *single* first-stage
    queue via the Lindley recursion -- the sharpest possible check of
    Theorem 1.
:mod:`repro.simulation.stats`
    Output analysis: accumulators, correlations, batch-means confidence
    intervals, histograms.
"""

from __future__ import annotations

from repro.simulation.batched import BatchedClockedEngine, run_batched, run_stacked
from repro.simulation.network import NetworkConfig, NetworkResult, NetworkSimulator
from repro.simulation.queue_sim import simulate_first_stage_queue
from repro.simulation.replication import replicate, replicated_statistic
from repro.simulation.sampling import AliasSampler
from repro.simulation.topology import (
    BaselineTopology,
    ButterflyTopology,
    OmegaTopology,
    RandomRoutingTopology,
)
from repro.simulation.trace import MessageTracer
from repro.simulation.warmup import mser5_truncation

__all__ = [
    "BatchedClockedEngine",
    "NetworkConfig",
    "NetworkResult",
    "NetworkSimulator",
    "run_batched",
    "run_stacked",
    "simulate_first_stage_queue",
    "OmegaTopology",
    "ButterflyTopology",
    "BaselineTopology",
    "RandomRoutingTopology",
    "AliasSampler",
    "MessageTracer",
    "replicate",
    "replicated_statistic",
    "mser5_truncation",
]

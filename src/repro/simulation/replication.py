"""Independent-replication experiments.

A single long run gives one sample path; the paper's claims ("the
approximation is slightly low for small p") need error bars across
*independent* runs to be testable.  This module runs ``R`` replications
of a scenario under independent seed streams and aggregates any scalar
statistic with a Student-t confidence interval -- the cross-replication
complement to the within-run batch-means interval in
:mod:`repro.simulation.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

import numpy as np
from scipy import stats as sps

from repro.errors import SimulationError
from repro.obs.session import current_session
from repro.simulation.network import NetworkConfig, NetworkResult

__all__ = [
    "AdaptiveReplication",
    "ReplicatedStatistic",
    "replicate",
    "replicate_until",
    "replicated_statistic",
]


@dataclass(frozen=True)
class ReplicatedStatistic:
    """A scalar statistic aggregated across replications."""

    values: tuple
    confidence: float

    @property
    def n(self) -> int:
        """Number of replications."""
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Cross-replication standard deviation (ddof=1)."""
        return float(np.std(self.values, ddof=1))

    @property
    def half_width(self) -> float:
        """Student-t half width at the configured confidence.

        Requires ``n >= 2``: with one replication the interval has
        ``df = 0`` degrees of freedom (``t.ppf`` returns NaN) and no
        cross-replication variance exists.
        """
        if self.n < 2:
            raise SimulationError(
                f"a confidence interval needs at least 2 replications, got {self.n} "
                "(a single run has no cross-replication variance; df = n - 1 = 0)"
            )
        t = float(sps.t.ppf(0.5 + self.confidence / 2, df=self.n - 1))
        return t * self.std / self.n ** 0.5

    def interval(self) -> tuple:
        """``(low, high)`` confidence interval."""
        return (self.mean - self.half_width, self.mean + self.half_width)

    def covers(self, target: float) -> bool:
        """Whether the interval contains ``target``."""
        low, high = self.interval()
        return low <= target <= high

    def __str__(self) -> str:
        return f"{self.mean:.4f} +/- {self.half_width:.4f} (n={self.n})"


def replicate(
    config: NetworkConfig,
    n_replications: int,
    n_cycles: int,
    warmup=None,
    base_seed: int = 1000,
    workers: Optional[int] = None,
    vectorize: Optional[bool] = None,
) -> List[NetworkResult]:
    """Run ``n_replications`` independent copies of ``config``.

    Each replication gets seed ``base_seed + i`` (ignoring any seed in
    ``config``, which would silently correlate the runs), so the batch
    is deterministic and cacheable regardless of worker count.

    The batch goes through :func:`repro.exec.run_many`; ``workers``
    overrides the ambient :class:`~repro.exec.context.ExecutionContext`
    (default: serial, no cache -- identical to the historical inline
    loop).  ``vectorize=True`` stacks the replications onto the
    replica-batched engine (:mod:`repro.simulation.batched`) -- one
    stacked run instead of ``R`` serial ones; with infinite buffers the
    result schema is unchanged and metrics/manifests are off (batched
    runs are uninstrumented).  ``None`` defers to the ambient context.
    """
    if n_replications < 2:
        raise SimulationError("need at least 2 replications for an interval")
    if not isinstance(warmup, (int, type(None))):
        raise SimulationError(
            f"replicate() needs an integer warm-up (or None), got {warmup!r}"
        )
    from repro.exec.context import current_execution
    from repro.exec.runner import run_many
    from repro.exec.spec import ExperimentSpec

    ctx = current_execution()
    effective_workers = ctx.workers if workers is None else workers
    effective_vectorize = ctx.vectorize if vectorize is None else vectorize
    specs = [
        ExperimentSpec(
            config=replace(config, seed=base_seed + i),
            n_cycles=n_cycles,
            warmup=warmup,
            label=f"replication-{i}",
        )
        for i in range(n_replications)
    ]
    batch = run_many(
        specs,
        workers=effective_workers,
        cache=ctx.cache,
        retries=ctx.retries,
        timeout=ctx.timeout,
        vectorize=effective_vectorize,
    )
    batch.raise_on_failure()
    out = batch.results()
    session = current_session()
    if (
        session is not None
        and effective_workers == 1
        and batch.n_cached == 0
        and not effective_vectorize
    ):
        # tie the per-run manifests together as one reproducible batch
        # (run manifests only exist when the runs happened inline in
        # this process; parallel/cached batches are indexed by the
        # exec-batch manifest instead)
        session.record_batch(out)
    return out


@dataclass(frozen=True)
class AdaptiveReplication:
    """Outcome of :func:`replicate_until`."""

    #: the aggregated statistic over every replication actually run
    statistic: ReplicatedStatistic
    #: growth rounds taken (1 = the pilot already converged)
    rounds: int
    #: replications actually executed
    n_replications: int
    #: the half-width the caller asked for
    target_half_width: float
    #: whether the target was met (``False`` = ``r_max`` exhausted)
    converged: bool
    #: total engine cycles actually simulated across all rounds
    #: (cache-served replicas excluded) -- the work metric the
    #: early-stopping tests assert on
    engine_cycles: int

    @property
    def half_width(self) -> float:
        return self.statistic.half_width

    def __str__(self) -> str:
        state = "converged" if self.converged else "NOT converged"
        return (
            f"{self.statistic} [{state} to +/-{self.target_half_width:g} "
            f"in {self.rounds} round(s), {self.n_replications} replication(s)]"
        )


def replicate_until(
    config: NetworkConfig,
    statistic: Callable[[NetworkResult], float],
    target_half_width: float,
    n_cycles: int,
    *,
    warmup: Optional[int] = None,
    base_seed: int = 1000,
    confidence: float = 0.95,
    r0: int = 8,
    r_max: int = 4096,
    workers: Optional[int] = None,
    stream: Optional[bool] = None,
    shard_mem: Optional[int] = None,
) -> AdaptiveReplication:
    """Grow replications until the t-interval is tight enough.

    Runs a pilot of ``r0`` replications (seeds ``base_seed + i``, the
    same derivation as :func:`replicate`), then repeatedly extends the
    sample until the Student-t half-width of ``statistic`` drops to
    ``target_half_width`` or ``r_max`` replications have run.  Each
    round's size combines a variance forecast
    ``n ~ (t * std / target)**2`` (the classical sequential
    fixed-width procedure) with a doubling floor, so low-variance scenarios
    stop after the pilot while noisy ones approach their forecast in
    O(log) rounds rather than creeping one replication at a time.

    Replications are executed through :func:`repro.exec.run_many` on
    the streamed engine by default (``stream=None`` follows the ambient
    :class:`~repro.exec.context.ExecutionContext`; its default is
    streamed here because adaptive growth *extends* earlier rounds, and
    streamed replicas are exactly the engine whose results are
    extension-invariant and individually cacheable).  Earlier rounds'
    replicas are therefore never re-simulated: a grown round re-submits
    their specs and the cache (when ambient) serves them, or the
    streamed engine reproduces them bit-identically.

    The early-stopping contract asserted by the tests: for a
    low-variance scenario, ``engine_cycles`` is strictly less than the
    fixed-``r_max`` budget, while the returned interval still covers
    the Theorem 1 prediction at every load.
    """
    if target_half_width <= 0:
        raise SimulationError(
            f"target_half_width must be > 0, got {target_half_width}"
        )
    if r0 < 2:
        raise SimulationError(f"pilot size r0 must be >= 2, got {r0}")
    if r_max < r0:
        raise SimulationError(f"r_max {r_max} < pilot size r0 {r0}")
    if not 0 < confidence < 1:
        raise SimulationError(f"confidence {confidence} outside (0, 1)")
    from repro.exec.context import current_execution
    from repro.exec.runner import run_many
    from repro.exec.spec import ExperimentSpec

    ctx = current_execution()
    effective_workers = ctx.workers if workers is None else workers
    effective_stream = ctx.stream if stream is None else stream
    effective_shard_mem = ctx.shard_mem if shard_mem is None else shard_mem
    if not effective_stream:
        effective_shard_mem = None

    def specs_for(count: int) -> list:
        return [
            ExperimentSpec(
                config=replace(config, seed=base_seed + i),
                n_cycles=n_cycles,
                warmup=warmup,
                label=f"replication-{i}",
            )
            for i in range(count)
        ]

    n = r0
    rounds = 0
    simulated = 0
    while True:
        rounds += 1
        batch = run_many(
            specs_for(n),
            workers=effective_workers,
            cache=ctx.cache,
            retries=ctx.retries,
            timeout=ctx.timeout,
            stream=effective_stream,
            shard_mem=effective_shard_mem,
        )
        batch.raise_on_failure()
        simulated += batch.n_simulated
        agg = replicated_statistic(batch.results(), statistic, confidence)
        if agg.half_width <= target_half_width or n >= r_max:
            return AdaptiveReplication(
                statistic=agg,
                rounds=rounds,
                n_replications=n,
                target_half_width=target_half_width,
                converged=agg.half_width <= target_half_width,
                engine_cycles=simulated * n_cycles,
            )
        t = float(sps.t.ppf(0.5 + confidence / 2, df=n - 1))
        forecast = int(np.ceil((t * agg.std / target_half_width) ** 2))
        n = min(r_max, max(2 * n, forecast))


def replicated_statistic(
    results: Sequence[NetworkResult],
    statistic: Callable[[NetworkResult], float],
    confidence: float = 0.95,
) -> ReplicatedStatistic:
    """Aggregate ``statistic`` over replications with a t-interval."""
    if len(results) < 2:
        raise SimulationError("need at least 2 replications for an interval")
    if not 0 < confidence < 1:
        raise SimulationError(f"confidence {confidence} outside (0, 1)")
    values = tuple(float(statistic(r)) for r in results)
    return ReplicatedStatistic(values=values, confidence=confidence)

"""Independent-replication experiments.

A single long run gives one sample path; the paper's claims ("the
approximation is slightly low for small p") need error bars across
*independent* runs to be testable.  This module runs ``R`` replications
of a scenario under independent seed streams and aggregates any scalar
statistic with a Student-t confidence interval -- the cross-replication
complement to the within-run batch-means interval in
:mod:`repro.simulation.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Sequence

import numpy as np
from scipy import stats as sps

from repro.errors import SimulationError
from repro.obs.session import current_session
from repro.simulation.network import NetworkConfig, NetworkResult, NetworkSimulator

__all__ = ["ReplicatedStatistic", "replicate", "replicated_statistic"]


@dataclass(frozen=True)
class ReplicatedStatistic:
    """A scalar statistic aggregated across replications."""

    values: tuple
    confidence: float

    @property
    def n(self) -> int:
        """Number of replications."""
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Cross-replication standard deviation (ddof=1)."""
        return float(np.std(self.values, ddof=1))

    @property
    def half_width(self) -> float:
        """Student-t half width at the configured confidence."""
        t = float(sps.t.ppf(0.5 + self.confidence / 2, df=self.n - 1))
        return t * self.std / self.n ** 0.5

    def interval(self) -> tuple:
        """``(low, high)`` confidence interval."""
        return (self.mean - self.half_width, self.mean + self.half_width)

    def covers(self, target: float) -> bool:
        """Whether the interval contains ``target``."""
        low, high = self.interval()
        return low <= target <= high

    def __str__(self) -> str:
        return f"{self.mean:.4f} +/- {self.half_width:.4f} (n={self.n})"


def replicate(
    config: NetworkConfig,
    n_replications: int,
    n_cycles: int,
    warmup=None,
    base_seed: int = 1000,
) -> List[NetworkResult]:
    """Run ``n_replications`` independent copies of ``config``.

    Each replication gets seed ``base_seed + i`` (ignoring any seed in
    ``config``, which would silently correlate the runs).
    """
    if n_replications < 2:
        raise SimulationError("need at least 2 replications for an interval")
    out = []
    for i in range(n_replications):
        cfg = replace(config, seed=base_seed + i)
        out.append(NetworkSimulator(cfg).run(n_cycles, warmup=warmup))
    session = current_session()
    if session is not None:
        # tie the per-run manifests together as one reproducible batch
        session.record_batch(out)
    return out


def replicated_statistic(
    results: Sequence[NetworkResult],
    statistic: Callable[[NetworkResult], float],
    confidence: float = 0.95,
) -> ReplicatedStatistic:
    """Aggregate ``statistic`` over replications with a t-interval."""
    if len(results) < 2:
        raise SimulationError("need at least 2 replications for an interval")
    if not 0 < confidence < 1:
        raise SimulationError(f"confidence {confidence} outside (0, 1)")
    values = tuple(float(statistic(r)) for r in results)
    return ReplicatedStatistic(values=values, confidence=confidence)

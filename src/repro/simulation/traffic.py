"""First-stage traffic generation for the network simulator.

Per clock cycle, each of the ``width`` network inputs independently
receives a message with probability ``p``; a message is ``bulk_size``
packets injected together (Section III-A-2), each packet carrying the
same destination; service (transmission) time per packet comes from the
scenario's service model (one cycle for the bulk model, ``m`` cycles
for the Section III-D multi-packet model, a mixture for Section IV-C).

Destinations are uniform over the network outputs, except with
favourite bias ``q`` (Section III-A-3/IV-D): with probability ``q``
the destination is ``favorite[input]`` (a permutation -- each output is
some input's private memory), otherwise uniform.

The generator works in the engine's flat representation: it returns,
for one cycle, parallel arrays (source, destination, service) of the
injected packets.

Parameter stacking
------------------
For the scenario-stacked engine (:mod:`repro.simulation.batched`),
``p``, ``q``, ``bulk_size``, and ``service`` each accept *per-replica*
values -- a length-``n_replicas`` sequence instead of a scalar.  The
per-cycle kernel structure is unchanged: the injection coin flips
compare the one shared ``(n_replicas, width)`` uniform block against an
``(n_replicas, 1)`` probability column (a broadcast, zero extra RNG
draws), the favourite gate compares one uniform vector against the
per-packet ``q`` column, and bulk expansion repeats by a per-packet
count vector.  Service times are drawn per *distinct* service model in
first-appearance order, so a stack whose replicas share one model makes
exactly the homogeneous path's single ``sample`` call.  Consequently a
stacked generator whose per-replica parameters happen to be equal
consumes the RNG stream bit-for-bit like the scalar-parameter
generator -- the equivalence anchor the batched-engine tests assert.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence, Union

import numpy as np

from repro.errors import ModelError
from repro.service.base import ServiceProcess

__all__ = ["BatchArrivals", "CycleArrivals", "NetworkTrafficGenerator"]


class CycleArrivals(NamedTuple):
    """Packets injected at the network inputs in one cycle."""

    sources: np.ndarray
    destinations: np.ndarray
    services: np.ndarray


class BatchArrivals(NamedTuple):
    """Packets injected across a replica batch in one cycle."""

    replicas: np.ndarray
    sources: np.ndarray
    destinations: np.ndarray
    services: np.ndarray


def _per_replica(value, n_replicas: int, name: str, dtype) -> np.ndarray:
    """A scalar or length-``n_replicas`` sequence as an ``(R,)`` array."""
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim == 0:
        return np.full(n_replicas, arr[()], dtype=dtype)
    if arr.shape != (n_replicas,):
        raise ModelError(
            f"{name} must be a scalar or a length-{n_replicas} sequence, "
            f"got shape {arr.shape}"
        )
    return arr.copy()


def _models_equal(a: ServiceProcess, b: ServiceProcess) -> bool:
    """Value equality, tolerating models whose fields don't compare.

    Two failure modes count as "not equal": array-valued fields whose
    ``==`` is elementwise (``bool`` of the result raises ``ValueError``)
    and exotic fields that refuse comparison outright (``TypeError``).
    Anything else propagates -- treating, say, a ``RecursionError`` as
    inequality would silently split one service group into two and
    change the RNG draw order.
    """
    if a is b:
        return True
    try:
        return bool(a == b)
    except (TypeError, ValueError):
        return False


class NetworkTrafficGenerator:
    """Vectorised per-cycle message source.

    Parameters
    ----------
    width:
        Number of network inputs (= outputs).
    p:
        Per-input message probability per cycle.  Scalar, or one value
        per replica for a parameter-stacked batch.
    service:
        Service-time model for individual packets/messages.  One
        :class:`~repro.service.base.ServiceProcess`, or a sequence of
        ``n_replicas`` models for a parameter-stacked batch.
    bulk_size:
        Packets per message batch (each serviced separately).  Scalar
        or per-replica.
    q:
        Favourite-output bias.  Scalar or per-replica.
    favorite:
        Favourite permutation (default: identity -- input ``i``'s
        private memory is output ``i``).  Shared by all replicas.
    dest_space:
        Number of destination values (defaults to ``width``; the
        width-decoupled topology uses its virtual digit space instead).
        Favourite bias requires ``dest_space == width``.
    rng:
        Generator for all traffic randomness.
    n_replicas:
        Number of stacked replicas served by :meth:`generate_batch`
        (one shared RNG stream; replicas consume disjoint slices of it).

    With any per-replica parameter actually varying, the generator is
    *heterogeneous*: the scalar convenience attributes ``p`` / ``q`` /
    ``bulk_size`` / ``service`` are ``None`` (the per-replica truth
    lives in ``p_per_replica`` and friends) and the single-replica
    :meth:`generate` path refuses to run.
    """

    def __init__(
        self,
        width: int,
        p: Union[float, Sequence[float]],
        service: Union[ServiceProcess, Sequence[ServiceProcess]],
        rng: np.random.Generator,
        bulk_size: Union[int, Sequence[int]] = 1,
        q: Union[float, Sequence[float]] = 0.0,
        favorite: Optional[np.ndarray] = None,
        dest_space: Optional[int] = None,
        n_replicas: int = 1,
    ) -> None:
        if width < 1:
            raise ModelError(f"width must be >= 1, got {width}")
        if n_replicas < 1:
            raise ModelError(f"n_replicas must be >= 1, got {n_replicas}")
        self.width = width
        self.n_replicas = n_replicas
        self.rng = rng

        p_arr = _per_replica(p, n_replicas, "p", np.float64)
        if ((p_arr < 0) | (p_arr > 1)).any():
            raise ModelError(f"input load p={p} outside [0, 1]")
        q_arr = _per_replica(q, n_replicas, "q", np.float64)
        if ((q_arr < 0) | (q_arr > 1)).any():
            raise ModelError(f"favourite bias q={q} outside [0, 1]")
        bulk_arr = _per_replica(bulk_size, n_replicas, "bulk_size", np.int64)
        if (bulk_arr < 1).any():
            raise ModelError(f"bulk size must be >= 1, got {bulk_size}")

        if isinstance(service, ServiceProcess):
            services = (service,) * n_replicas
        else:
            services = tuple(service)
            if len(services) != n_replicas:
                raise ModelError(
                    f"need one service model per replica: got {len(services)} "
                    f"for n_replicas={n_replicas}"
                )
            for s in services:
                if not isinstance(s, ServiceProcess):
                    raise ModelError(
                        f"service models must be ServiceProcess instances, "
                        f"got {type(s).__name__}"
                    )
        # distinct models in first-appearance order; replica -> group id.
        # Heterogeneous service draws happen per group in this order, so
        # one distinct model degenerates to the homogeneous single call.
        models = []
        group = np.empty(n_replicas, dtype=np.int64)
        for r, s in enumerate(services):
            for gid, m in enumerate(models):
                if _models_equal(m, s):
                    group[r] = gid
                    break
            else:
                group[r] = len(models)
                models.append(s)

        #: per-replica parameter columns (the stacked-engine truth)
        self.p_per_replica = p_arr
        self.q_per_replica = q_arr
        self.bulk_per_replica = bulk_arr
        self.services = services
        self._p_col = p_arr[:, None]
        self._q_max = float(q_arr.max())
        self._bulk_max = int(bulk_arr.max())
        self._service_models = models
        self._service_group = group

        #: True when any parameter actually varies across replicas
        self.heterogeneous = bool(
            (p_arr != p_arr[0]).any()
            or (q_arr != q_arr[0]).any()
            or (bulk_arr != bulk_arr[0]).any()
            or len(models) > 1
        )
        # scalar convenience attributes (None when heterogeneous)
        self.p = None if self.heterogeneous else float(p_arr[0])
        self.q = None if self.heterogeneous else float(q_arr[0])
        self.bulk_size = None if self.heterogeneous else int(bulk_arr[0])
        self.service = None if self.heterogeneous else services[0]

        self.dest_space = width if dest_space is None else int(dest_space)
        if self.dest_space < 1:
            raise ModelError(f"dest_space must be >= 1, got {self.dest_space}")
        if self._q_max > 0 and self.dest_space != width:
            raise ModelError(
                "favourite bias requires real destinations (dest_space == width)"
            )
        if favorite is None:
            favorite = np.arange(width)
        favorite = np.asarray(favorite)
        if sorted(favorite.tolist()) != list(range(width)):
            raise ModelError("favorite map must be a permutation of the outputs")
        self.favorite = favorite
        # preallocated per-cycle uniform block, filled in place so a
        # cycle's coin flips cost no allocation; row 0 doubles as the
        # single-replica buffer (rng.random(out=view) consumes the
        # stream exactly like rng.random(width), so this fast path is
        # bit-identical to the old allocating draw)
        self._uniform = np.empty((n_replicas, width))
        #: total packets injected so far (offered load bookkeeping)
        self.injected = 0

    def generate(self) -> CycleArrivals:
        """Arrivals for one cycle (single replica)."""
        if self.heterogeneous:
            raise ModelError(
                "per-replica parameters vary; there is no single-replica "
                "stream -- use generate_batch()"
            )
        buf = self._uniform[0]
        self.rng.random(out=buf)
        active = np.flatnonzero(buf < self.p)
        n = active.size
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return CycleArrivals(empty, empty, empty)
        dests = self.rng.integers(0, self.dest_space, size=n)
        if self.q > 0:
            use_fav = self.rng.random(n) < self.q
            dests = np.where(use_fav, self.favorite[active], dests)
        if self.bulk_size > 1:
            active = np.repeat(active, self.bulk_size)
            dests = np.repeat(dests, self.bulk_size)
        services = self.service.sample(self.rng, active.size)
        self.injected += active.size
        return CycleArrivals(active, dests, np.asarray(services, dtype=np.int64))

    def generate_batch(self) -> BatchArrivals:
        """Arrivals for one cycle across all ``n_replicas`` replicas.

        One ``(n_replicas, width)`` uniform block decides every
        replica's injections, then destination/favourite/service draws
        run over the concatenated active set -- the per-cycle kernel
        count stays flat in ``n_replicas`` whether or not the replicas
        share parameters.  At ``n_replicas == 1`` the stream consumption
        is identical to :meth:`generate`, so a batched run of one
        replica reproduces a serial run bit-for-bit; equal per-replica
        parameter columns reproduce the scalar-parameter generator
        bit-for-bit (see the module notes).
        """
        buf = self._uniform
        self.rng.random(out=buf)
        flat = np.flatnonzero((buf < self._p_col).ravel())
        n = flat.size
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return BatchArrivals(empty, empty, empty, empty)
        replicas = flat // self.width
        active = flat - replicas * self.width
        dests = self.rng.integers(0, self.dest_space, size=n)
        if self._q_max > 0:
            use_fav = self.rng.random(n) < self.q_per_replica[replicas]
            dests = np.where(use_fav, self.favorite[active], dests)
        if self._bulk_max > 1:
            counts = self.bulk_per_replica[replicas]
            replicas = np.repeat(replicas, counts)
            active = np.repeat(active, counts)
            dests = np.repeat(dests, counts)
        services = self._sample_services(replicas)
        self.injected += active.size
        return BatchArrivals(
            replicas, active, dests, np.asarray(services, dtype=np.int64)
        )

    def _sample_services(self, replicas: np.ndarray) -> np.ndarray:
        """Service times for one cycle's packets (replica-major order).

        One distinct model: a single vectorised ``sample`` call, exactly
        the homogeneous kernel.  Several: one call per distinct model in
        first-appearance order over its packet subset -- the draw order
        is a pure function of the cycle's batch composition, keeping
        stacked runs deterministic.
        """
        if len(self._service_models) == 1:
            return self._service_models[0].sample(self.rng, replicas.size)
        out = np.empty(replicas.size, dtype=np.int64)
        groups = self._service_group[replicas]
        for gid, model in enumerate(self._service_models):
            mask = groups == gid
            count = int(mask.sum())
            if count:
                out[mask] = model.sample(self.rng, count)
        return out

    @property
    def offered_load(self) -> float:
        """Mean packets injected per input per cycle (``p * bulk_size``),
        averaged over replicas when parameters vary."""
        return float(np.mean(self.p_per_replica * self.bulk_per_replica))

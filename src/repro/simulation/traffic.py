"""First-stage traffic generation for the network simulator.

Per clock cycle, each of the ``width`` network inputs independently
receives a message with probability ``p``; a message is ``bulk_size``
packets injected together (Section III-A-2), each packet carrying the
same destination; service (transmission) time per packet comes from the
scenario's service model (one cycle for the bulk model, ``m`` cycles
for the Section III-D multi-packet model, a mixture for Section IV-C).

Destinations are uniform over the network outputs, except with
favourite bias ``q`` (Section III-A-3/IV-D): with probability ``q``
the destination is ``favorite[input]`` (a permutation -- each output is
some input's private memory), otherwise uniform.

The generator works in the engine's flat representation: it returns,
for one cycle, parallel arrays (source, destination, service) of the
injected packets.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np

from repro.errors import ModelError
from repro.service.base import ServiceProcess

__all__ = ["BatchArrivals", "CycleArrivals", "NetworkTrafficGenerator"]


class CycleArrivals(NamedTuple):
    """Packets injected at the network inputs in one cycle."""

    sources: np.ndarray
    destinations: np.ndarray
    services: np.ndarray


class BatchArrivals(NamedTuple):
    """Packets injected across a replica batch in one cycle."""

    replicas: np.ndarray
    sources: np.ndarray
    destinations: np.ndarray
    services: np.ndarray


class NetworkTrafficGenerator:
    """Vectorised per-cycle message source.

    Parameters
    ----------
    width:
        Number of network inputs (= outputs).
    p:
        Per-input message probability per cycle.
    service:
        Service-time model for individual packets/messages.
    bulk_size:
        Packets per message batch (each serviced separately).
    q:
        Favourite-output bias.
    favorite:
        Favourite permutation (default: identity -- input ``i``'s
        private memory is output ``i``).
    dest_space:
        Number of destination values (defaults to ``width``; the
        width-decoupled topology uses its virtual digit space instead).
        Favourite bias requires ``dest_space == width``.
    rng:
        Generator for all traffic randomness.
    n_replicas:
        Number of stacked replicas served by :meth:`generate_batch`
        (one shared RNG stream; replicas consume disjoint slices of it).
    """

    def __init__(
        self,
        width: int,
        p: float,
        service: ServiceProcess,
        rng: np.random.Generator,
        bulk_size: int = 1,
        q: float = 0.0,
        favorite: Optional[np.ndarray] = None,
        dest_space: Optional[int] = None,
        n_replicas: int = 1,
    ) -> None:
        if width < 1:
            raise ModelError(f"width must be >= 1, got {width}")
        if not 0 <= p <= 1:
            raise ModelError(f"input load p={p} outside [0, 1]")
        if not 0 <= q <= 1:
            raise ModelError(f"favourite bias q={q} outside [0, 1]")
        if bulk_size < 1:
            raise ModelError(f"bulk size must be >= 1, got {bulk_size}")
        self.width = width
        self.p = float(p)
        self.q = float(q)
        self.bulk_size = bulk_size
        self.service = service
        self.rng = rng
        self.dest_space = width if dest_space is None else int(dest_space)
        if self.dest_space < 1:
            raise ModelError(f"dest_space must be >= 1, got {self.dest_space}")
        if q > 0 and self.dest_space != width:
            raise ModelError(
                "favourite bias requires real destinations (dest_space == width)"
            )
        if favorite is None:
            favorite = np.arange(width)
        favorite = np.asarray(favorite)
        if sorted(favorite.tolist()) != list(range(width)):
            raise ModelError("favorite map must be a permutation of the outputs")
        self.favorite = favorite
        if n_replicas < 1:
            raise ModelError(f"n_replicas must be >= 1, got {n_replicas}")
        self.n_replicas = n_replicas
        # preallocated per-cycle uniform block, filled in place so a
        # cycle's coin flips cost no allocation; row 0 doubles as the
        # single-replica buffer (rng.random(out=view) consumes the
        # stream exactly like rng.random(width), so this fast path is
        # bit-identical to the old allocating draw)
        self._uniform = np.empty((n_replicas, width))
        #: total packets injected so far (offered load bookkeeping)
        self.injected = 0

    def generate(self) -> CycleArrivals:
        """Arrivals for one cycle (single replica)."""
        buf = self._uniform[0]
        self.rng.random(out=buf)
        active = np.flatnonzero(buf < self.p)
        n = active.size
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return CycleArrivals(empty, empty, empty)
        dests = self.rng.integers(0, self.dest_space, size=n)
        if self.q > 0:
            use_fav = self.rng.random(n) < self.q
            dests = np.where(use_fav, self.favorite[active], dests)
        if self.bulk_size > 1:
            active = np.repeat(active, self.bulk_size)
            dests = np.repeat(dests, self.bulk_size)
        services = self.service.sample(self.rng, active.size)
        self.injected += active.size
        return CycleArrivals(active, dests, np.asarray(services, dtype=np.int64))

    def generate_batch(self) -> BatchArrivals:
        """Arrivals for one cycle across all ``n_replicas`` replicas.

        One ``(n_replicas, width)`` uniform block decides every
        replica's injections, then destination/favourite/service draws
        run over the concatenated active set -- the per-cycle kernel
        count stays flat in ``n_replicas``.  At ``n_replicas == 1`` the
        stream consumption is identical to :meth:`generate`, so a
        batched run of one replica reproduces a serial run bit-for-bit.
        """
        buf = self._uniform
        self.rng.random(out=buf)
        flat = np.flatnonzero(buf.ravel() < self.p)
        n = flat.size
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return BatchArrivals(empty, empty, empty, empty)
        replicas = flat // self.width
        active = flat - replicas * self.width
        dests = self.rng.integers(0, self.dest_space, size=n)
        if self.q > 0:
            use_fav = self.rng.random(n) < self.q
            dests = np.where(use_fav, self.favorite[active], dests)
        if self.bulk_size > 1:
            replicas = np.repeat(replicas, self.bulk_size)
            active = np.repeat(active, self.bulk_size)
            dests = np.repeat(dests, self.bulk_size)
        services = self.service.sample(self.rng, active.size)
        self.injected += active.size
        return BatchArrivals(
            replicas, active, dests, np.asarray(services, dtype=np.int64)
        )

    @property
    def offered_load(self) -> float:
        """Mean packets injected per input per cycle (``p * bulk_size``)."""
        return self.p * self.bulk_size

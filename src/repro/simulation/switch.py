"""Vectorised FIFO output queues (the buffered switch substrate).

Every output port of every switch in the network is a FIFO queue; the
engine manipulates all of them at once.  :class:`RingBufferQueues`
stores ``n_queues`` fixed-capacity ring buffers as 2-D NumPy arrays --
one row per queue, one array per message field -- and supports the two
bulk operations a clock cycle needs:

* :meth:`push_batch` -- append many messages, possibly several to the
  *same* queue in one cycle (the paper's assumption that "each output
  port buffer can accept any number of messages from the input ports in
  a clock cycle");
* :meth:`pop` -- remove the head of each queue in a given set.

Infinite buffers are emulated by growing capacity on demand (doubling),
so the idealised model of the paper is exact; a *finite* buffer mode
rejects pushes beyond a fixed capacity and reports them, supporting the
finite-buffer ablation the paper lists as future work.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import SimulationError

__all__ = ["RingBufferQueues"]


class RingBufferQueues:
    """``n_queues`` parallel FIFO ring buffers with named integer fields.

    Parameters
    ----------
    n_queues:
        Number of queues (network output ports).
    fields:
        Mapping of field name to NumPy dtype, e.g.
        ``{"dest": np.int32, "arrival": np.int64}``.
    capacity:
        Initial per-queue capacity (grows automatically unless
        ``finite`` is set).
    finite:
        If True the capacity is a hard limit: overfull pushes are
        dropped and counted in :attr:`dropped`.
    """

    def __init__(
        self,
        n_queues: int,
        fields: Dict[str, np.dtype],
        capacity: int = 64,
        finite: bool = False,
    ) -> None:
        if n_queues < 1:
            raise SimulationError(f"need at least one queue, got {n_queues}")
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.n_queues = n_queues
        self.capacity = capacity
        self.finite = finite
        self._fields = {
            name: np.zeros((n_queues, capacity), dtype=dtype)
            for name, dtype in fields.items()
        }
        self._head = np.zeros(n_queues, dtype=np.int64)
        self._count = np.zeros(n_queues, dtype=np.int64)
        # per-queue occupancy high-water marks, updated only for the
        # queues touched by each push (never an O(n_queues) scan)
        self._high_water = np.zeros(n_queues, dtype=np.int64)
        # scratch for the duplicate-rank peeling in push_batch
        self._first_pos = np.empty(n_queues, dtype=np.int64)
        # push_batch runs every cycle: its per-call temporaries (the
        # 0..n-1 ramp and the rank vector) are hoisted into buffers
        # grown on demand and reused across cycles
        self._iota = np.empty(0, dtype=np.int64)
        self._rank = np.empty(0, dtype=np.int64)
        #: messages rejected by finite buffers (finite mode only)
        self.dropped = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def counts(self) -> np.ndarray:
        """Current length of every queue (read-only view)."""
        return self._count

    @property
    def max_occupancy(self) -> int:
        """High-water mark of any queue length, for buffer sizing studies."""
        return int(self._high_water.max())

    def high_water(self) -> np.ndarray:
        """Per-queue occupancy high-water marks (read-only view).

        Lets a caller that partitions the queues (e.g. the
        replica-batched engine, one block of queues per replica) report
        a high-water mark per partition instead of one global scalar.
        """
        return self._high_water

    def total_occupancy(self) -> int:
        """Total messages currently buffered."""
        return int(self._count.sum())

    def peek(self, queues: np.ndarray, field: str) -> np.ndarray:
        """Field value at the head of each queue in ``queues``.

        Caller must ensure the queues are non-empty.
        """
        idx = self._head[queues] % self.capacity
        return self._fields[field][queues, idx]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def push_batch(self, queues: np.ndarray, **values: np.ndarray) -> int:
        """Append one message per entry of ``queues`` (repeats allowed).

        ``values`` must supply every field.  Messages bound for the same
        queue are appended in their order of appearance.  Returns the
        number actually stored (less than ``len(queues)`` only in finite
        mode, where the overflow is *dropped* and tallied).
        """
        queues = np.asarray(queues)
        n = queues.size
        if n == 0:
            return 0
        if set(values) != set(self._fields):
            raise SimulationError(
                f"push_batch needs fields {sorted(self._fields)}, got {sorted(values)}"
            )
        binc = np.bincount(queues, minlength=self.n_queues)
        rank = self._appearance_ranks(queues, binc)

        slots = self._count[queues] + rank
        needed = int(slots.max()) + 1
        if needed > self.capacity:
            if self.finite:
                keep = slots < self.capacity
                self.dropped += int((~keep).sum())
                queues, slots = queues[keep], slots[keep]
                values = {k: np.asarray(v)[keep] for k, v in values.items()}
                if queues.size == 0:
                    return 0
                binc = np.bincount(queues, minlength=self.n_queues)
            else:
                self._grow(needed)
        pos = (self._head[queues] + slots) % self.capacity
        for name, arr in values.items():
            self._fields[name][queues, pos] = arr
        self._count += binc
        # `slots + 1` is each message's queue length the instant it is
        # stored, so the touched queues' high-water marks update in
        # O(batch) -- no scan over all n_queues
        np.maximum.at(self._high_water, queues, slots + 1)
        return int(queues.size)

    def _appearance_ranks(self, queues: np.ndarray, binc: np.ndarray) -> np.ndarray:
        """Rank of each message among same-queue messages of one push.

        ``rank[i]`` = how many earlier entries of ``queues`` name the
        same queue (FIFO order of appearance).  The common case -- no
        queue named twice -- is detected from the bincount in O(batch)
        and costs nothing more.  Duplicates are resolved by peeling:
        each pass marks the first remaining message of every queue
        (reverse scatter, so the earliest write wins) and assigns it the
        pass number, finishing in max-multiplicity passes -- O(batch)
        per pass with no sort, vs. the stable argsort this replaces.
        """
        n = queues.size
        if self._rank.size < n:
            self._rank = np.empty(max(n, 2 * self._rank.size), dtype=np.int64)
        rank = self._rank[:n]
        rank.fill(0)
        if int(binc[queues].max()) == 1:
            return rank
        scratch = self._first_pos
        idx = self._arange(n)
        remaining_q = queues
        level = 0
        while remaining_q.size:
            pos = self._arange(remaining_q.size)
            scratch[remaining_q[::-1]] = pos[::-1]
            is_first = scratch[remaining_q] == pos
            rank[idx[is_first]] = level
            idx = idx[~is_first]
            remaining_q = remaining_q[~is_first]
            level += 1
        return rank

    def _arange(self, n: int) -> np.ndarray:
        """A read-only-by-convention view of ``[0, n)`` from scratch."""
        if self._iota.size < n:
            self._iota = np.arange(max(n, 2 * self._iota.size), dtype=np.int64)
        return self._iota[:n]

    def record_high_water(self, values: np.ndarray) -> None:
        """Merge externally observed per-queue occupancy high-water marks.

        Used by compute backends that bypass the ring buffers (the
        pre-drawn JIT loop keeps its own queue structures) so
        :attr:`max_occupancy` / :meth:`high_water` stay authoritative.
        """
        np.maximum(self._high_water, values, out=self._high_water)

    def pop(self, queues: np.ndarray) -> Dict[str, np.ndarray]:
        """Remove and return the head message of each queue in ``queues``.

        Caller must ensure the queues are non-empty and distinct; a pop
        touching any empty queue raises *before* mutating, so the queue
        state survives the error intact.
        """
        queues = np.asarray(queues)
        if (self._count[queues] < 1).any():
            raise SimulationError("pop from an empty queue")
        idx = self._head[queues] % self.capacity
        out = {name: arr[queues, idx].copy() for name, arr in self._fields.items()}
        self._head[queues] += 1
        self._count[queues] -= 1
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _grow(self, needed: int) -> None:
        """Double capacity (at least to ``needed``), linearising rings."""
        new_cap = self.capacity
        while new_cap < needed:
            new_cap *= 2
        rows = np.arange(self.n_queues)[:, None]
        take = (self._head[:, None] + np.arange(self.capacity)[None, :]) % self.capacity
        for name, arr in self._fields.items():
            new_arr = np.zeros((self.n_queues, new_cap), dtype=arr.dtype)
            new_arr[:, : self.capacity] = arr[rows, take]
            self._fields[name] = new_arr
        self._head[:] = 0
        self.capacity = new_cap

    def __repr__(self) -> str:
        return (
            f"RingBufferQueues(n_queues={self.n_queues}, capacity={self.capacity}, "
            f"finite={self.finite}, occupied={self.total_occupancy()})"
        )

"""Fast discrete sampling: Walker's alias method, vectorised.

The general traffic/service models (:class:`~repro.arrivals.compound.
CustomArrivals`, :class:`~repro.service.general.GeneralService`, random
bulks) need millions of draws from a fixed finite pmf.
``Generator.choice(..., p=...)`` re-scans the probability vector on
every call (O(K) per *batch element* via inverse-CDF on sorted
uniforms); Walker's alias method does O(K) setup once and then O(1)
per draw -- two uniform numbers, one table lookup -- and vectorises to
a couple of NumPy ops per batch.

The construction is the standard two-stack algorithm: scale the pmf by
``K``, then repeatedly pair an under-full cell with an over-full one so
every alias cell holds at most two outcomes.  Exactness: the table
represents the input pmf to float round-off (verified by reconstructing
the pmf from the table in the tests).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = ["AliasSampler"]


class AliasSampler:
    """O(1)-per-draw sampler for a fixed finite distribution.

    Parameters
    ----------
    pmf:
        Probability vector (non-negative, sums to ~1; renormalised).
    values:
        Optional outcome values (defaults to ``arange(len(pmf))``).

    Examples
    --------
    >>> import numpy as np
    >>> s = AliasSampler([0.5, 0.25, 0.25])
    >>> draws = s.sample(np.random.default_rng(0), 10_000)
    >>> abs((draws == 0).mean() - 0.5) < 0.02
    True
    """

    def __init__(self, pmf: Sequence, values: Optional[np.ndarray] = None) -> None:
        p = np.asarray(pmf, dtype=np.float64)
        if p.ndim != 1 or p.size == 0:
            raise SimulationError("pmf must be a non-empty 1-D vector")
        if (p < 0).any():
            raise SimulationError("pmf has negative mass")
        total = p.sum()
        if not np.isfinite(total) or total <= 0:
            raise SimulationError(f"pmf sums to {total}; cannot normalise")
        p = p / total
        k = p.size
        self.n_outcomes = k
        if values is None:
            values = np.arange(k, dtype=np.int64)
        else:
            values = np.asarray(values)
            if values.shape != (k,):
                raise SimulationError(
                    f"values shape {values.shape} does not match pmf length {k}"
                )
        self.values = values

        # two-stack table construction
        scaled = p * k
        self._prob = np.ones(k)
        self._alias = np.arange(k)
        small = [i for i in range(k) if scaled[i] < 1.0]
        large = [i for i in range(k) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            self._prob[s] = scaled[s]
            self._alias[s] = l
            scaled[l] = scaled[l] - (1.0 - scaled[s])
            (small if scaled[l] < 1.0 else large).append(l)
        # leftovers are 1.0 within round-off
        for i in small + large:
            self._prob[i] = 1.0
            self._alias[i] = i

    def sample_indices(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` outcome *indices*."""
        if size < 0:
            raise SimulationError(f"size must be >= 0, got {size}")
        cells = rng.integers(0, self.n_outcomes, size=size)
        keep = rng.random(size) < self._prob[cells]
        return np.where(keep, cells, self._alias[cells])

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` outcome *values*."""
        return self.values[self.sample_indices(rng, size)]

    def reconstructed_pmf(self) -> np.ndarray:
        """The pmf the table actually encodes (for exactness checks)."""
        out = self._prob.copy()
        np.add.at(out, self._alias, 1.0 - self._prob)
        return out / self.n_outcomes

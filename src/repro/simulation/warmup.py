"""Warm-up (initial-transient) detection for steady-state estimation.

The paper's tables are steady-state quantities; a clocked network
started empty is *not* in steady state, and including the ramp-up
biases every waiting-time estimate low.  Fixed warm-up fractions work
but waste data at light load and can under-delete at heavy load; this
module implements the standard automated truncation rules:

* **MSER-5** (Marginal Standard Error Rule, batch size 5): choose the
  truncation point minimising the marginal standard error of the
  remaining batch means -- the de-facto default in simulation-output
  analysis;
* **Welch-style smoothing** helper for eyeballing the transient.

The network facade accepts ``warmup="auto"`` and applies MSER-5 to a
pilot statistic (per-cycle mean waiting time at the last stage, the
slowest-converging one).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = ["mser5_truncation", "moving_average"]


def mser5_truncation(series: np.ndarray, batch: int = 5, cap_fraction: float = 0.5) -> int:
    """MSER truncation index for a (possibly transient) series.

    Groups ``series`` into batches of ``batch``, then returns the
    truncation point ``d*`` (in original samples) minimising

    .. math:: \\text{MSER}(d) = \\frac{S^2_{d}}{(n-d)^2}

    over the first ``cap_fraction`` of the data (the standard guard: a
    minimum in the last half usually signals the run is simply too
    short, so the rule refuses to truncate more than the cap).

    NaN entries (cycles with no observations) are tolerated: they are
    filled by carrying the previous batch value forward.
    """
    series = np.asarray(series, dtype=float)
    if series.size < 4 * batch:
        raise SimulationError(
            f"series of {series.size} samples is too short for MSER-{batch}"
        )
    if not 0 < cap_fraction <= 1:
        raise SimulationError(f"cap_fraction {cap_fraction} outside (0, 1]")
    usable = series.size - series.size % batch
    grouped = series[:usable].reshape(-1, batch)
    # nanmean of an all-NaN batch is NaN by design; silence the warning
    # (the forward-fill below handles those batches)
    counts = np.sum(~np.isnan(grouped), axis=1)
    sums = np.nansum(grouped, axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    # forward-fill any all-NaN batches
    mask = np.isnan(means)
    if mask.all():
        raise SimulationError("series contains no observations")
    if mask.any():
        idx = np.where(~mask, np.arange(means.size), 0)
        np.maximum.accumulate(idx, out=idx)
        means = means[idx]
        if np.isnan(means[0]):
            first = np.flatnonzero(~np.isnan(means))[0]
            means[: first + 1] = means[first]

    n = means.size
    cap = max(1, int(n * cap_fraction))
    # suffix sums for O(n) evaluation of variance of means[d:]
    suffix_sum = np.cumsum(means[::-1])[::-1]
    suffix_sq = np.cumsum((means ** 2)[::-1])[::-1]
    best_d, best_val = 0, np.inf
    for d in range(cap):
        remaining = n - d
        if remaining < 2:
            break
        mean = suffix_sum[d] / remaining
        var = suffix_sq[d] / remaining - mean * mean
        val = var / remaining  # marginal standard error (squared)
        if val < best_val:
            best_val, best_d = val, d
    return best_d * batch


def moving_average(series: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average (Welch plot helper), NaN-tolerant."""
    series = np.asarray(series, dtype=float)
    if window < 1 or window > series.size:
        raise SimulationError(f"window {window} outside [1, {series.size}]")
    filled = np.where(np.isnan(series), 0.0, series)
    weight = (~np.isnan(series)).astype(float)
    kernel = np.ones(window)
    num = np.convolve(filled, kernel, mode="same")
    den = np.convolve(weight, kernel, mode="same")
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(den > 0, num / den, np.nan)

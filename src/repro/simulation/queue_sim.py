"""Exact single-queue simulation via the vectorised Lindley recursion.

The first-stage output queue evolves by the unfinished-work recursion of
the Theorem 1 proof:

.. math:: s_n = \\max(0,\\; s_{n-1} + c_n - 1),

with ``c_n`` the total service of the batch arriving in cycle ``n``.
A message in that batch waits ``s_{n-1}`` plus the service of the batch
members served before it.  The recursion looks inherently sequential,
but it has the classical closed solution (reflection / running minimum)

.. math::

    s_n = S_n - \\min\\bigl(0, \\min_{j \\le n} S_j\\bigr),
    \\qquad S_n = \\sum_{i \\le n} (c_i - 1),

so the whole sample path falls out of one ``cumsum`` and one
``minimum.accumulate`` -- millions of cycles per second in NumPy, with
no per-cycle Python loop at all.  This is the reproduction's sharpest
check of the analysis: the simulated waiting-time distribution can be
compared bin-by-bin against the exact pmf extracted from ``t(z)``.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.errors import SimulationError
from repro.service.base import ServiceProcess
from repro.simulation.rng import make_rng

__all__ = ["QueueSimulationResult", "simulate_first_stage_queue", "lindley_unfinished_work"]


class QueueSimulationResult(NamedTuple):
    """Waiting times (and components) from a single-queue run."""

    waits: np.ndarray
    unfinished_work: np.ndarray
    predecessor_service: np.ndarray
    arrival_cycle: np.ndarray

    def mean(self) -> float:
        """Sample mean waiting time."""
        return float(self.waits.mean())

    def variance(self) -> float:
        """Sample variance of the waiting time."""
        return float(self.waits.var(ddof=1))

    def pmf(self, n_bins: int) -> np.ndarray:
        """Empirical ``P(w = j)`` for ``j < n_bins``."""
        counts = np.bincount(self.waits.astype(np.int64), minlength=n_bins)[:n_bins]
        return counts / self.waits.size


def lindley_unfinished_work(work_per_cycle: np.ndarray) -> np.ndarray:
    """End-of-cycle unfinished work ``s_n`` for a work sequence.

    ``work_per_cycle[n] = c_n``; one unit of work is served per cycle.
    Fully vectorised via the reflection identity (module docstring).
    """
    x = np.asarray(work_per_cycle, dtype=np.int64) - 1
    s_cum = np.cumsum(x)
    running_min = np.minimum.accumulate(np.minimum(s_cum, 0))
    return s_cum - running_min


# repro: lint-ok RPR007 -- scalar single-queue model: one stream feeds arrivals and service with a fixed serial interleaving, so the coupled sequence is the replayable unit
def simulate_first_stage_queue(
    arrivals: ArrivalProcess,
    service: ServiceProcess,
    n_cycles: int,
    rng: Optional[np.random.Generator] = None,
    warmup: Optional[int] = None,
) -> QueueSimulationResult:
    """Simulate one first-stage output queue for ``n_cycles`` cycles.

    Returns the waiting time of every message arriving after ``warmup``
    (default ``n_cycles // 10``), together with its decomposition into
    unfinished work seen (``s``) and same-batch predecessor service
    (``w'``) -- the two independent components of Theorem 1, so each can
    be validated separately.
    """
    if n_cycles < 2:
        raise SimulationError(f"n_cycles must be >= 2, got {n_cycles}")
    rng = make_rng(rng)
    if warmup is None:
        warmup = n_cycles // 10
    if not 0 <= warmup < n_cycles:
        raise SimulationError(f"warmup {warmup} outside [0, {n_cycles})")

    counts = arrivals.sample_counts(rng, n_cycles)
    total_msgs = int(counts.sum())
    if total_msgs == 0:
        raise SimulationError("no messages arrived; raise the load or run longer")
    services = service.sample(rng, total_msgs).astype(np.int64)

    # per-cycle total work c_n: sum of service times of that cycle's batch
    cycle_of_msg = np.repeat(np.arange(n_cycles), counts)
    work = np.bincount(cycle_of_msg, weights=services, minlength=n_cycles).astype(np.int64)

    s = lindley_unfinished_work(work)
    s_seen = np.concatenate(([0], s[:-1]))[cycle_of_msg]  # batch sees s_{n-1}

    # same-batch predecessor service: exclusive prefix sum within batch
    excl = np.cumsum(services) - services
    # first message index of each cycle's batch (clipped: the value is
    # only consulted for cycles that actually have messages)
    batch_starts = np.minimum(
        np.concatenate(([0], np.cumsum(counts)))[:-1], total_msgs - 1
    )
    excl_at_start = excl[batch_starts][cycle_of_msg]
    predecessor = excl - excl_at_start

    waits = s_seen + predecessor
    keep = cycle_of_msg >= warmup
    return QueueSimulationResult(
        waits=waits[keep],
        unfinished_work=s_seen[keep],
        predecessor_service=predecessor[keep],
        arrival_cycle=cycle_of_msg[keep],
    )

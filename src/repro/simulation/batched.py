"""Replica-batched simulation: R independent runs in one set of arrays.

The paper's tables average many independent replications, and for its
small networks (``k = 2``, width 8--128) a :class:`ClockedEngine` cycle
is ~20 NumPy kernel calls on tiny arrays -- per-call Python overhead
dominates, so running replicas one after another multiplies that
overhead by ``R``.  :class:`BatchedClockedEngine` instead stacks ``R``
replicas into flat arrays of ``R * n_stages * width`` ports (global
port = ``replica * n_stages * width + stage * width + line``;
:class:`~repro.simulation.switch.RingBufferQueues` takes any
``n_queues``, so the substrate needs no change) and advances all of
them with the *same* fixed number of kernel calls per cycle.

Randomness
----------
One traffic generator draws a single ``(R, width)`` uniform block per
cycle; replicas consume disjoint slices of one shared stream, which
keeps them statistically independent.  The stream is seeded from the
*list* of per-replica seeds (``SeedSequence([s_0, ..., s_{R-1}])``),
so a batch's results are a pure function of the ordered seed list.
Because ``SeedSequence([s]) == SeedSequence(s)`` and in-place uniform
draws consume the stream exactly like allocating ones, a batch of
**one** replica reproduces the serial engine **bit-for-bit** -- this is
test-asserted.  For ``R > 1`` each replica's sample path depends on the
whole batch (still a valid i.i.d. replication design, just a different
one than ``R`` serial runs), which is why :mod:`repro.exec` marks
batched specs with a distinct cache digest.

Limitations (by construction)
-----------------------------
* Finite buffers are refused: drops are counted globally by the
  substrate, not per replica.
* Observers/metrics collectors are not wired: per-cycle metrics on a
  stacked batch would interleave replicas.  Batched runs are
  *metrics-off*; run serially when you need instrumentation.
* ``warmup="auto"`` (MSER-5) is refused: the detector is a per-run
  pilot; pass an explicit warm-up instead.

Compute backends
----------------
The engine owns model *state*; the cycle *loop* is executed by a
pluggable :mod:`compute backend <repro.simulation.backends>`.  The
default (``backend="auto"``) runs the JIT-compiled pre-drawn loop when
numba is importable and the vectorised NumPy reference otherwise;
either way the results are bit-identical (test-asserted), so backend
choice is an execution detail -- never part of a spec digest or cache
key.
"""

from __future__ import annotations

from dataclasses import replace

# repro: lint-ok RPR001 -- elapsed_seconds bookkeeping; never enters results
from time import perf_counter
from typing import List, Literal, Optional, Sequence, Union

import numpy as np

from repro.errors import SimulationError
from repro.obs.profiling import PhaseTimers
from repro.simulation.backends import ComputeBackend, NumpyBackend, resolve_backend
from repro.simulation.engine import build_routing_tables
from repro.simulation.network import NetworkConfig, NetworkResult
from repro.simulation.rng import DEFAULT_SEED, spawn_stacked_rngs
from repro.simulation.sanitize import (
    check_conservation,
    check_queue_depths,
    check_stage_stats,
    sanitizer_enabled,
)
from repro.simulation.stats import BatchedTrackedMessages, StageAccumulator
from repro.simulation.switch import RingBufferQueues
from repro.simulation.topology import MultistageTopology
from repro.simulation.traffic import NetworkTrafficGenerator

__all__ = ["BatchedClockedEngine", "run_batched", "run_stacked"]

#: A backend request: a registry name (``"numpy"``/``"numba"``/
#: ``"auto"``) or a ready :class:`~repro.simulation.backends.ComputeBackend`.
BackendSpec = Union[str, ComputeBackend]

#: config fields that fix the stacked engine's array shapes -- scenarios
#: in one batch must agree on all of these (everything else may vary)
STACK_SHAPE_FIELDS = (
    "k",
    "n_stages",
    "topology",
    "width",
    "transfer",
    "buffer_capacity",
    "track_limit",
)


class BatchedClockedEngine:
    """Cycle-accurate simulator of ``n_replicas`` identical networks.

    The step structure mirrors :class:`~repro.simulation.engine.ClockedEngine`
    (inject / serve / tick) with every phase operating on the stacked
    port space; per-replica statistics come from flat ``(replica,
    stage)`` bins and block-partitioned trackers.

    Parameters mirror the serial engine's; ``traffic`` must have been
    built with ``n_replicas`` matching (see
    :meth:`NetworkConfig.build_traffic`).
    """

    def __init__(
        self,
        topology: MultistageTopology,
        traffic: NetworkTrafficGenerator,
        n_replicas: int,
        transfer: Literal["cut_through", "store_forward"] = "cut_through",
        routing_rng: Optional[np.random.Generator] = None,
        track_limit: int = 200_000,
    ) -> None:
        if traffic.width != topology.width:
            raise SimulationError(
                f"traffic width {traffic.width} != topology width {topology.width}"
            )
        if traffic.n_replicas != n_replicas:
            raise SimulationError(
                f"traffic built for {traffic.n_replicas} replicas, engine "
                f"stacking {n_replicas}"
            )
        if transfer not in ("cut_through", "store_forward"):
            raise SimulationError(f"unknown transfer mode {transfer!r}")
        if n_replicas < 1:
            raise SimulationError(f"need >= 1 replica, got {n_replicas}")
        self.topology = topology
        self.traffic = traffic
        self.transfer = transfer
        self.routing_rng = routing_rng
        self.n_replicas = n_replicas
        self.width = topology.width
        self.n_stages = topology.n_stages
        self.ports_per_replica = self.n_stages * self.width
        n_ports = n_replicas * self.ports_per_replica
        fields = {
            "dest": np.int64,
            "service": np.int64,
            "arrival": np.int64,
            "track": np.int64,
        }
        self.queues = RingBufferQueues(n_ports, fields, capacity=64)
        self.busy = np.zeros(n_ports, dtype=np.int64)
        # flat (replica, stage) bins: bin = replica * n_stages + stage
        self.stats = StageAccumulator(n_replicas * self.n_stages)
        self.tracker = BatchedTrackedMessages(n_replicas, track_limit, self.n_stages)
        self.now = 0
        self.measure_from = 0
        self.completed = np.zeros(n_replicas, dtype=np.int64)
        self.injected = np.zeros(n_replicas, dtype=np.int64)
        self._perm_stack, self._shifts = build_routing_tables(topology)
        #: wall-clock phase timers (enable via :meth:`enable_profiling`);
        #: entries carry the backend that executed each phase
        self.timers: Optional[PhaseTimers] = None
        #: registry name of the backend the last :meth:`run` resolved to
        self.backend_name: Optional[str] = None
        self._step_backend: Optional[NumpyBackend] = None
        self._in_flight_override: Optional[int] = None
        self._finalized = False

    def enable_profiling(self) -> PhaseTimers:
        """Start accumulating per-phase wall-clock timers."""
        if self.timers is None:
            self.timers = PhaseTimers()
        return self.timers

    # ------------------------------------------------------------------
    # simulation loop
    # ------------------------------------------------------------------
    def run(self, n_cycles: int, warmup: int = 0, backend: BackendSpec = "auto") -> None:
        """Advance ``n_cycles``; discard statistics before ``warmup``.

        ``backend`` names the cycle-loop executor (``"numpy"``,
        ``"numba"``, or ``"auto"``; see
        :func:`~repro.simulation.backends.resolve_backend`) or is a
        ready backend instance.  Results are backend-independent.
        """
        if n_cycles < 1:
            raise SimulationError(f"n_cycles must be >= 1, got {n_cycles}")
        if not 0 <= warmup < n_cycles:
            raise SimulationError(f"warmup {warmup} outside [0, {n_cycles})")
        self._check_not_finalized()
        self.measure_from = self.now + warmup
        resolved = resolve_backend(backend, self)
        self.backend_name = resolved.name
        resolved.run(self, n_cycles, warmup)
        # backends with a live per-cycle loop (numpy) already sanitized
        # every cycle; this end-of-run pass is what covers pre-drawn
        # kernels (numba), whose loop state is opaque until it returns
        if sanitizer_enabled():
            self.sanitize_state(self.now - 1)

    def sanitize_state(self, cycle: int) -> None:
        """Run the sanitizer invariant hooks against current state."""
        check_stage_stats(self.stats, cycle=cycle, n_stages=self.n_stages)
        check_queue_depths(
            self.queues.counts, cycle=cycle, ports_per_replica=self.ports_per_replica
        )
        check_conservation(
            int(self.injected.sum()),
            int(self.completed.sum()),
            self.in_flight,
            self.queues.dropped,
            cycle=cycle,
        )

    def step(self) -> None:
        """Simulate one clock cycle of every replica (reference backend)."""
        self._check_not_finalized()
        if self._step_backend is None:
            self._step_backend = NumpyBackend()
        self._step_backend.step(self)

    def _check_not_finalized(self) -> None:
        if self._finalized:
            raise SimulationError(
                "engine state was consumed by a pre-drawn JIT run; build a "
                "fresh engine to simulate further"
            )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Messages currently buffered across all replicas."""
        if self._in_flight_override is not None:
            return self._in_flight_override
        return self.queues.total_occupancy()

    def __repr__(self) -> str:
        return (
            f"BatchedClockedEngine(t={self.now}, replicas={self.n_replicas}, "
            f"stages={self.n_stages}, width={self.width}, "
            f"in_flight={self.in_flight})"
        )


def _build_stacked_engine(configs: Sequence[NetworkConfig]) -> BatchedClockedEngine:
    """A fresh stacked engine for ``configs`` (validated, seeded, t=0).

    Factored out of :func:`run_stacked` so backend tests can hold the
    engine itself; the shape validation and the per-scenario seeding
    (one ``SeedSequence`` over the ordered seed list) live here.
    """
    if not configs:
        raise SimulationError("need at least one scenario config")
    first = configs[0]
    for other in configs[1:]:
        for name in STACK_SHAPE_FIELDS:
            if getattr(other, name) != getattr(first, name):
                raise SimulationError(
                    "scenario stacking needs identical array shapes: "
                    f"{name}={getattr(other, name)!r} != {getattr(first, name)!r}"
                )
    if first.buffer_capacity is not None:
        raise SimulationError(
            "replica batching supports infinite buffers only; run finite-"
            "buffer scenarios serially"
        )
    if first.track_limit == 0:
        raise SimulationError(
            "track_limit=0 (streaming summary mode) is only supported by "
            "the streamed engine -- use repro.simulation.streamed."
            "run_streamed; see docs/scaling.md"
        )
    n_replicas = len(configs)
    entropy = [DEFAULT_SEED if c.seed is None else int(c.seed) for c in configs]
    traffic_rng, routing_rng = spawn_stacked_rngs(entropy)

    topology = first.build_topology()
    traffic = NetworkTrafficGenerator(
        width=topology.width,
        p=[c.p for c in configs],
        service=[c.service_model() for c in configs],
        rng=traffic_rng,
        bulk_size=[c.bulk_size for c in configs],
        q=[c.q for c in configs],
        dest_space=topology.destination_space,
        n_replicas=n_replicas,
    )
    return BatchedClockedEngine(
        topology,
        traffic,
        n_replicas,
        transfer=first.transfer,
        routing_rng=routing_rng,
        track_limit=first.track_limit,
    )


def run_stacked(
    configs: Sequence[NetworkConfig],
    n_cycles: int,
    warmup: Optional[int] = None,
    backend: BackendSpec = "auto",
) -> List[NetworkResult]:
    """Run ``len(configs)`` *scenarios* in one stacked engine.

    The scenario generalisation of :func:`run_batched`: each replica of
    the batch simulates its own :class:`NetworkConfig`, which may differ
    in arrival rate ``p``, bulk size, favourite bias ``q``, service
    model (``message_size`` / ``sizes`` / explicit ``service``), and
    seed -- anything that does not change the engine's array shapes.
    The shape-fixing fields (:data:`STACK_SHAPE_FIELDS`: ``k``,
    ``n_stages``, ``topology``, ``width``, ``transfer``,
    ``buffer_capacity``, ``track_limit``) must agree across the batch.

    Returns one :class:`NetworkResult` per config, in order, each
    carrying its own config -- the same schema serial runs produce, so
    downstream analysis and the result cache need no batch awareness.
    ``elapsed_seconds`` is the batch wall clock divided by ``R`` (the
    amortised per-replica cost).

    A stack whose rows are identical except for the seed consumes the
    RNG stream exactly like the homogeneous batched engine (see
    :mod:`repro.simulation.traffic`), so :func:`run_batched` is this
    function applied to ``[replace(config, seed=s) for s in seeds]``
    and the R=1 serial bit-identity anchor carries over unchanged.

    ``backend`` selects the cycle-loop executor (default ``"auto"``:
    the JIT loop when numba is importable, the NumPy reference
    otherwise); every backend produces bit-identical results, and the
    one that actually ran is recorded on each
    :attr:`NetworkResult.backend <repro.simulation.network.NetworkResult.backend>`.

    Refuses finite buffers and ``warmup="auto"`` (see module notes).
    """
    configs = list(configs)
    engine = _build_stacked_engine(configs)
    first = configs[0]
    if warmup == "auto":
        raise SimulationError(
            'warmup="auto" is a per-run pilot; give an explicit warm-up '
            "for batched replicas"
        )
    if warmup is None:
        warmup = max(500, n_cycles // 10)
    warmup = int(warmup)
    if warmup >= n_cycles:
        raise SimulationError(f"warmup {warmup} >= n_cycles {n_cycles}")
    n_replicas = len(configs)
    started = perf_counter()
    engine.run(n_cycles, warmup=warmup, backend=backend)
    elapsed = perf_counter() - started

    S = first.n_stages
    means = engine.stats.means().reshape(n_replicas, S)
    variances = engine.stats.variances().reshape(n_replicas, S)
    counts = engine.stats.count.reshape(n_replicas, S)
    high_water = engine.queues.high_water().reshape(
        n_replicas, engine.ports_per_replica
    )
    results: List[NetworkResult] = []
    for i, config in enumerate(configs):
        results.append(
            NetworkResult(
                config=config,
                n_cycles=n_cycles,
                warmup=warmup,
                stage_means=means[i].copy(),
                stage_variances=variances[i].copy(),
                stage_counts=counts[i].copy(),
                tracked=engine.tracker.replica_tracker(i),
                injected=int(engine.injected[i]),
                completed=int(engine.completed[i]),
                dropped=0,
                max_occupancy=int(high_water[i].max()),
                elapsed_seconds=elapsed / n_replicas,
                backend=engine.backend_name or "numpy",
            )
        )
    return results


def run_batched(
    config: NetworkConfig,
    seeds: Sequence[Optional[int]],
    n_cycles: int,
    warmup: Optional[int] = None,
    backend: BackendSpec = "auto",
) -> List[NetworkResult]:
    """Run ``len(seeds)`` replicas of ``config`` in one stacked engine.

    The homogeneous special case of :func:`run_stacked`: every replica
    simulates the same scenario under its own seed.  Returns one
    :class:`NetworkResult` per seed, in order, each carrying ``config``
    with its own seed.  ``backend`` is forwarded to :func:`run_stacked`.

    Refuses finite buffers and ``warmup="auto"`` (see module notes).
    """
    if config.buffer_capacity is not None:
        raise SimulationError(
            "replica batching supports infinite buffers only; run finite-"
            "buffer scenarios serially"
        )
    if not seeds:
        raise SimulationError("need at least one replica seed")
    return run_stacked(
        [replace(config, seed=seed) for seed in seeds],
        n_cycles,
        warmup=warmup,
        backend=backend,
    )
